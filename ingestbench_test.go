package nntstream

import (
	"strings"
	"testing"

	"nntstream/internal/server"
)

// ingestFrame is a representative step frame for the decode benchmark: four
// streams, eight ops, mixed inserts and deletes — roughly what one loadgen
// batch line looks like.
var ingestFrame = []byte(strings.Join([]string{
	`{"changes":[`,
	`{"stream":0,"ops":[{"op":"ins","u":101,"v":102,"ul":3,"vl":4,"el":5},{"op":"del","u":7,"v":8}]},`,
	`{"stream":1,"ops":[{"op":"ins","u":-9,"v":10,"ul":0,"vl":1,"el":2}]},`,
	`{"stream":2,"ops":[{"op":"ins","u":201,"v":202,"ul":7,"vl":7,"el":0},{"op":"del","u":201,"v":199},{"op":"ins","u":202,"v":203,"ul":7,"vl":2,"el":1}]},`,
	`{"stream":3,"ops":[{"op":"del","u":1,"v":2},{"op":"ins","u":3,"v":4,"ul":5,"vl":6,"el":7}]}`,
	`]}`,
}, ""))

var ingestDecodeSink int

// BenchmarkIngestDecode measures the warm ingest frame decoder — the per-line
// cost of the /v1/ingest hot loop. Its allocs_per_op is pinned to 0 by the
// benchgate -max-allocs gate: the decoder reuses its backing storage, so the
// steady state must not allocate.
func BenchmarkIngestDecode(b *testing.B) {
	var d server.IngestDecoder
	if _, err := d.DecodeStep(ingestFrame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(ingestFrame)))
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		step, err := d.DecodeStep(ingestFrame)
		if err != nil {
			b.Fatal(err)
		}
		n += step.OpCount()
	}
	ingestDecodeSink = n
}
