module nntstream

go 1.22

// Pin the toolchain CI resolves so local `make verify` and the workflow's
// setup-go step agree on the compiler bit-for-bit.
toolchain go1.24.0
