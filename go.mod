module nntstream

go 1.22
