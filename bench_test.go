// Package nntstream's root benchmark suite regenerates the cost side of
// every figure in the paper's evaluation as testing.B benchmarks — one
// bench (or sub-bench group) per table/figure — over small fixed-seed
// workloads. cmd/experiments produces the corresponding effectiveness
// tables; EXPERIMENTS.md pairs the two.
//
// Stream benches replay a recorded stream; when b.N exceeds the recording,
// the cursor wraps around. All change operations are idempotent against an
// already-final state (re-inserts and deletes of absent edges are no-ops),
// so wrapped replay keeps filters consistent while measuring steady-state
// per-timestamp cost.
package nntstream

import (
	"math/rand"
	"sync"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/factor"
	"nntstream/internal/gindex"
	"nntstream/internal/graph"
	"nntstream/internal/graphgrep"
	"nntstream/internal/iso"
	"nntstream/internal/join"
	"nntstream/internal/nnt"
	"nntstream/internal/npv"
	"nntstream/internal/skyline"
)

// --- shared workloads, generated once ---

type streamBenchWorkload struct {
	queries []*graph.Graph
	streams []*graph.Stream
}

var (
	onceWorkloads sync.Once
	wSparse       streamBenchWorkload
	wDense        streamBenchWorkload
	wReal         streamBenchWorkload
	chemDB        []*graph.Graph
	synDB         []*graph.Graph
)

func workloads() {
	onceWorkloads.Do(func() {
		const pairs, ts = 8, 120
		mk := func(flip datagen.FlipConfig, seed int64) streamBenchWorkload {
			flip.Timestamps = ts
			cfg := datagen.DefaultStreamWorkload(flip)
			cfg.Gen.NumGraphs = pairs
			w := datagen.SyntheticStreams(cfg, rand.New(rand.NewSource(seed)))
			return streamBenchWorkload{queries: w.Queries, streams: w.Streams}
		}
		wSparse = mk(datagen.SparseFlipDefaults(), 101)
		wDense = mk(datagen.DenseFlipDefaults(), 102)

		pcfg := datagen.ProximityDefaults()
		pcfg.Timestamps = ts
		r := rand.New(rand.NewSource(103))
		series := datagen.Proximity(pcfg, rand.New(rand.NewSource(103)))
		wReal = streamBenchWorkload{
			queries: datagen.ProximityQueries(series, 6, 2, 6, r),
			streams: datagen.ProximityStreams(pcfg, 6, r),
		}

		ccfg := datagen.ChemicalDefaults()
		ccfg.NumGraphs = 200
		chemDB = datagen.Chemical(ccfg, rand.New(rand.NewSource(104)))

		scfg := datagen.StaticSyntheticDefaults()
		scfg.NumGraphs = 200
		scfg.NumSeeds = 8
		synDB = datagen.Synthetic(scfg, rand.New(rand.NewSource(105)))
	})
}

// stepper wires a filter to a workload and yields one StepAll per call.
type stepper struct {
	mon     *core.Monitor
	cursors []*graph.Cursor
	ids     []core.StreamID
	streams []*graph.Stream
}

func newStepper(b *testing.B, f core.Filter, w streamBenchWorkload) *stepper {
	b.Helper()
	s := &stepper{mon: core.NewMonitor(f), streams: w.streams}
	for _, q := range w.queries {
		if _, err := s.mon.AddQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	for _, st := range w.streams {
		id, err := s.mon.AddStream(st.Start)
		if err != nil {
			b.Fatal(err)
		}
		s.ids = append(s.ids, id)
		s.cursors = append(s.cursors, graph.NewCursor(st))
	}
	return s
}

func (s *stepper) step(b *testing.B) {
	b.Helper()
	changes := make(map[core.StreamID]graph.ChangeSet, len(s.cursors))
	for i, c := range s.cursors {
		cs, ok := c.Next()
		if !ok {
			c = graph.NewCursor(s.streams[i]) // wrap around
			s.cursors[i] = c
			cs, ok = c.Next()
			if !ok {
				continue
			}
		}
		if len(cs) > 0 {
			changes[s.ids[i]] = cs
		}
	}
	if _, err := s.mon.StepAll(changes); err != nil {
		b.Fatal(err)
	}
}

func benchStream(b *testing.B, mk func() core.Filter, w streamBenchWorkload) {
	workloads()
	s := newStepper(b, mk(), w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(b)
	}
}

// --- Figure 2: preliminary comparison (per-timestamp cost) ---

func BenchmarkFig02_GraphGrep(b *testing.B) {
	benchStream(b, func() core.Filter { return graphgrep.New(graphgrep.DefaultLength) }, benchSparse(b))
}

func BenchmarkFig02_GIndex2(b *testing.B) {
	benchStream(b, func() core.Filter { return gindex.New(gindex.Setting2()) }, benchSparse(b))
}

func BenchmarkFig02_NPVDSC(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchSparse(b))
}

func benchSparse(b *testing.B) streamBenchWorkload { workloads(); return wSparse }
func benchDense(b *testing.B) streamBenchWorkload  { workloads(); return wDense }
func benchReal(b *testing.B) streamBenchWorkload   { workloads(); return wReal }

// --- Figure 12: NNT depth sweep (candidate computation per query) ---

func BenchmarkFig12_Depth(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 4} {
		depth := depth
		b.Run(map[int]string{1: "L1", 2: "L2", 3: "L3", 4: "L4"}[depth], func(b *testing.B) {
			benchFig12Depth(b, depth)
		})
	}
}

// benchFig12Depth is the leaf body of the depth sweep, factored out so the
// benchjson registry can drive each depth as an independent record. The
// database vectors are frozen into packed form up front — the static
// filter-and-verify shape — so the sweep measures the production dominance
// kernel, not the map projection it replaced.
func benchFig12Depth(b *testing.B, depth int) {
	workloads()
	r := rand.New(rand.NewSource(112))
	queries := datagen.QuerySet(chemDB, 10, 8, r)
	vecs := make([][]npv.PackedVector, len(chemDB))
	for i, g := range chemDB {
		vecs[i] = npv.PackAll(npv.VectorsByVertex(npv.ProjectGraph(g, depth)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		maximal := skyline.MaximalPacked(npv.PackAll(npv.VectorsByVertex(npv.ProjectGraph(q, depth))))
		count := 0
	graphs:
		for gi := range vecs {
			for _, u := range maximal {
				ok := false
				for _, v := range vecs[gi] {
					if v.Dominates(u) {
						ok = true
						break
					}
				}
				if !ok {
					continue graphs
				}
			}
			count++
		}
		_ = count
	}
}

// --- Figure 13: static effectiveness (per-query filtering cost) ---

func BenchmarkFig13_NPVQuery(b *testing.B) {
	workloads()
	r := rand.New(rand.NewSource(113))
	queries := datagen.QuerySet(synDB, 10, 8, r)
	vecs := make([][]npv.PackedVector, len(synDB))
	for i, g := range synDB {
		vecs[i] = npv.PackAll(npv.VectorsByVertex(npv.ProjectGraph(g, join.DefaultDepth)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		maximal := skyline.MaximalPacked(npv.PackAll(npv.VectorsByVertex(npv.ProjectGraph(q, join.DefaultDepth))))
		count := 0
	graphs:
		for gi := range vecs {
			for _, u := range maximal {
				ok := false
				for _, v := range vecs[gi] {
					if v.Dominates(u) {
						ok = true
						break
					}
				}
				if !ok {
					continue graphs
				}
			}
			count++
		}
		_ = count
	}
}

func BenchmarkFig13_GIndex1Query(b *testing.B) {
	workloads()
	r := rand.New(rand.NewSource(113))
	queries := datagen.QuerySet(synDB, 10, 8, r)
	idx := gindex.Build(synDB, gindex.Setting1().MineConfig(len(synDB)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Candidates(queries[i%len(queries)], len(synDB))
	}
}

func BenchmarkFig13_GIndex1Mining(b *testing.B) {
	workloads()
	for i := 0; i < b.N; i++ {
		_ = gindex.Build(synDB, gindex.Setting1().MineConfig(len(synDB)))
	}
}

func BenchmarkFig13_GraphGrepQuery(b *testing.B) {
	workloads()
	r := rand.New(rand.NewSource(113))
	queries := datagen.QuerySet(synDB, 10, 8, r)
	fps := make([]graphgrep.Fingerprint, len(synDB))
	for i, g := range synDB {
		fps[i] = graphgrep.Compute(g, graphgrep.DefaultLength)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qfp := graphgrep.Compute(queries[i%len(queries)], graphgrep.DefaultLength)
		count := 0
		for gi := range fps {
			if graphgrep.Covers(fps[gi], qfp) {
				count++
			}
		}
		_ = count
	}
}

// --- Figures 14/15: stream effectiveness & efficiency (per-timestamp) ---

func BenchmarkFig1415_Real_GraphGrep(b *testing.B) {
	benchStream(b, func() core.Filter { return graphgrep.New(graphgrep.DefaultLength) }, benchReal(b))
}

func BenchmarkFig1415_Real_GIndex1(b *testing.B) {
	benchStream(b, func() core.Filter { return gindex.New(gindex.Setting1()) }, benchReal(b))
}

func BenchmarkFig1415_Real_GIndex2(b *testing.B) {
	benchStream(b, func() core.Filter { return gindex.New(gindex.Setting2()) }, benchReal(b))
}

func BenchmarkFig1415_Real_NPVDSC(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchReal(b))
}

func BenchmarkFig1415_SynSparse_GraphGrep(b *testing.B) {
	benchStream(b, func() core.Filter { return graphgrep.New(graphgrep.DefaultLength) }, benchSparse(b))
}

func BenchmarkFig1415_SynSparse_GIndex1(b *testing.B) {
	benchStream(b, func() core.Filter { return gindex.New(gindex.Setting1()) }, benchSparse(b))
}

func BenchmarkFig1415_SynSparse_GIndex2(b *testing.B) {
	benchStream(b, func() core.Filter { return gindex.New(gindex.Setting2()) }, benchSparse(b))
}

func BenchmarkFig1415_SynSparse_NPVDSC(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchSparse(b))
}

func BenchmarkFig1415_SynDense_GraphGrep(b *testing.B) {
	benchStream(b, func() core.Filter { return graphgrep.New(graphgrep.DefaultLength) }, benchDense(b))
}

func BenchmarkFig1415_SynDense_GIndex2(b *testing.B) {
	benchStream(b, func() core.Filter { return gindex.New(gindex.Setting2()) }, benchDense(b))
}

func BenchmarkFig1415_SynDense_NPVDSC(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchDense(b))
}

// --- Figure 16: query scalability (join strategies at max queries) ---

func BenchmarkFig16_NL(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewNL(join.DefaultDepth) }, benchSparse(b))
}

func BenchmarkFig16_DSC(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchSparse(b))
}

func BenchmarkFig16_Skyline(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewSkyline(join.DefaultDepth) }, benchSparse(b))
}

// --- Figure 17: stream scalability (join strategies on the real data) ---

func BenchmarkFig17_NL(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewNL(join.DefaultDepth) }, benchReal(b))
}

func BenchmarkFig17_DSC(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchReal(b))
}

func BenchmarkFig17_Skyline(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewSkyline(join.DefaultDepth) }, benchReal(b))
}

// --- Parallel evaluation: worker pool over the multi-stream figures ---

// benchParallelStream replays a multi-stream workload through a filter with
// an explicit worker bound. The Monitor batches each timestamp through
// ApplyAll, so the filter's evalPool fans the dirty (stream, query) pairs
// across the workers; W1 is the sequential inline path and the baseline the
// speedup in BENCH_<rev>.json is measured against. The output contract (pool
// results identical to sequential) is pinned by internal/join's determinism
// tests, so these benches only measure cost.
func benchParallelStream(b *testing.B, mk func() core.Filter, w streamBenchWorkload, workers int) {
	workloads()
	f := mk()
	f.(core.ParallelFilter).SetWorkers(workers)
	s := newStepper(b, f, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(b)
	}
}

func BenchmarkParallel_NL_W1(b *testing.B) {
	benchParallelStream(b, func() core.Filter { return join.NewNL(join.DefaultDepth) }, benchSparse(b), 1)
}

func BenchmarkParallel_NL_W4(b *testing.B) {
	benchParallelStream(b, func() core.Filter { return join.NewNL(join.DefaultDepth) }, benchSparse(b), 4)
}

func BenchmarkParallel_DSC_W1(b *testing.B) {
	benchParallelStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchSparse(b), 1)
}

func BenchmarkParallel_DSC_W4(b *testing.B) {
	benchParallelStream(b, func() core.Filter { return join.NewDSC(join.DefaultDepth) }, benchSparse(b), 4)
}

func BenchmarkParallel_Skyline_W1(b *testing.B) {
	benchParallelStream(b, func() core.Filter { return join.NewSkyline(join.DefaultDepth) }, benchReal(b), 1)
}

func BenchmarkParallel_Skyline_W4(b *testing.B) {
	benchParallelStream(b, func() core.Filter { return join.NewSkyline(join.DefaultDepth) }, benchReal(b), 4)
}

// --- Query-count sweep: dominance candidate index vs linear scan ---

// The qindex tentpole claims per-timestamp evaluation cost sub-linear in
// the number of registered queries. The sweep holds the stream workload
// fixed (two low-churn flip streams) and grows the query set 10× and 100×,
// once with candidate generation on (the default) and once through the
// DisableQueryIndex scan path — the flattening of indexed vs scan across
// Q16 → Q160 → Q1600 is the recorded evidence. DSC appears once: its
// column store *is* the index, with no scan fallback to compare against.
//
// The streams deliberately use 50×-smaller flip rates than the paper's
// sparse regime at the same stationary density (p1/(p1+p2) = 1/4): a few
// edge events per timestamp instead of a ~15% graph rewrite. That is the
// continuous-monitoring regime the index targets — per-timestamp work
// proportional to what actually flipped. Under bulk rewrites most
// dominance bits genuinely flip, every query is truly affected, and no
// sound candidate generator can prune (the Fig16/Fig17 benches already
// cover that regime).
var (
	onceQSweep    sync.Once
	qsweepQueries []*graph.Graph
	qsweepStreams []*graph.Stream
)

const qsweepMaxQueries = 1600

func qsweepWorkload(n int) streamBenchWorkload {
	onceQSweep.Do(func() {
		cfg := datagen.DefaultStreamWorkload(datagen.FlipConfig{
			AppearProb: 0.002, DisappearProb: 0.006, Timestamps: 120,
		})
		cfg.Gen.NumGraphs = 2
		w := datagen.SyntheticStreams(cfg, rand.New(rand.NewSource(117)))
		qsweepStreams = w.Streams
		db := make([]*graph.Graph, 0, len(qsweepStreams))
		for _, st := range qsweepStreams {
			db = append(db, st.Start)
		}
		r := rand.New(rand.NewSource(118))
		qsweepQueries = datagen.QuerySet(db, qsweepMaxQueries, 6, r)
	})
	return streamBenchWorkload{queries: qsweepQueries[:n], streams: qsweepStreams}
}

func benchQSweep(b *testing.B, variant string, n int) {
	mk := map[string]func() core.Filter{
		"NL": func() core.Filter { return join.NewNL(join.DefaultDepth) },
		"NLScan": func() core.Filter {
			f := join.NewNL(join.DefaultDepth)
			f.DisableQueryIndex()
			return f
		},
		"Skyline": func() core.Filter { return join.NewSkyline(join.DefaultDepth) },
		"SkylineScan": func() core.Filter {
			f := join.NewSkyline(join.DefaultDepth)
			f.DisableQueryIndex()
			return f
		},
		"DSC": func() core.Filter { return join.NewDSC(join.DefaultDepth) },
	}[variant]
	benchStream(b, mk, qsweepWorkload(n))
}

var qsweepCounts = map[string]int{"Q16": 16, "Q160": 160, "Q1600": 1600}

func benchQSweepGroup(b *testing.B, variant string) {
	for _, name := range []string{"Q16", "Q160", "Q1600"} {
		n := qsweepCounts[name]
		b.Run(name, func(b *testing.B) { benchQSweep(b, variant, n) })
	}
}

func BenchmarkQSweep_NL(b *testing.B)          { benchQSweepGroup(b, "NL") }
func BenchmarkQSweep_NLScan(b *testing.B)      { benchQSweepGroup(b, "NLScan") }
func BenchmarkQSweep_Skyline(b *testing.B)     { benchQSweepGroup(b, "Skyline") }
func BenchmarkQSweep_SkylineScan(b *testing.B) { benchQSweepGroup(b, "SkylineScan") }
func BenchmarkQSweep_DSC(b *testing.B)         { benchQSweepGroup(b, "DSC") }

// --- Overlap sweep: shared factor evaluation vs per-query baseline ---

// The factor tentpole claims per-timestamp dominance work sub-linear in the
// effective query count when queries share structure. The sweep holds the
// query count fixed (8 templates × 24 variants = 192 queries) and turns the
// datagen overlap knob: at Ov00 queries are independent random subgraphs, at
// Ov90 almost the whole edge budget comes from a core shared verbatim by the
// 24 variants of each template. The factored curve flattening toward high
// overlap against the NoFactor baseline is the recorded evidence — the
// shared part of every dominance test collapses into one factor verdict per
// (vertex, factor) instead of 24 per-query merges.
var (
	onceOverlap    sync.Once
	overlapStreams []*graph.Stream
	overlapQueries map[string][]*graph.Graph
)

var overlapLevels = []struct {
	name string
	frac float64
}{{"Ov00", 0.0}, {"Ov50", 0.5}, {"Ov90", 0.9}}

func overlapWorkload(level string) streamBenchWorkload {
	onceOverlap.Do(func() {
		cfg := datagen.DefaultStreamWorkload(datagen.FlipConfig{
			AppearProb: 0.002, DisappearProb: 0.006, Timestamps: 120,
		})
		cfg.Gen.NumGraphs = 2
		w := datagen.SyntheticStreams(cfg, rand.New(rand.NewSource(119)))
		overlapStreams = w.Streams
		overlapQueries = make(map[string][]*graph.Graph, len(overlapLevels))
		r := rand.New(rand.NewSource(120))
		for _, lv := range overlapLevels {
			overlapQueries[lv.name] = datagen.OverlapQuerySet(overlapStreams[0].Start,
				datagen.OverlapConfig{Templates: 8, PerTemplate: 24, Edges: 6, Overlap: lv.frac}, r)
		}
	})
	return streamBenchWorkload{queries: overlapQueries[level], streams: overlapStreams}
}

func benchQSweepOverlap(b *testing.B, variant, level string) {
	mk := map[string]func() core.Filter{
		"NL": func() core.Filter { return join.NewNL(join.DefaultDepth) },
		"NLNoFactor": func() core.Filter {
			f := join.NewNL(join.DefaultDepth)
			f.DisableFactors()
			return f
		},
		"Skyline": func() core.Filter { return join.NewSkyline(join.DefaultDepth) },
		"SkylineNoFactor": func() core.Filter {
			f := join.NewSkyline(join.DefaultDepth)
			f.DisableFactors()
			return f
		},
		"DSC": func() core.Filter { return join.NewDSC(join.DefaultDepth) },
		"DSCNoFactor": func() core.Filter {
			f := join.NewDSC(join.DefaultDepth)
			f.DisableFactors()
			return f
		},
	}[variant]
	benchStream(b, mk, overlapWorkload(level))
}

func benchQSweepOverlapGroup(b *testing.B, variant string) {
	for _, lv := range overlapLevels {
		b.Run(lv.name, func(b *testing.B) { benchQSweepOverlap(b, variant, lv.name) })
	}
}

func BenchmarkQSweepOverlap_NL(b *testing.B)      { benchQSweepOverlapGroup(b, "NL") }
func BenchmarkQSweepOverlap_Skyline(b *testing.B) { benchQSweepOverlapGroup(b, "Skyline") }
func BenchmarkQSweepOverlap_DSC(b *testing.B)     { benchQSweepOverlapGroup(b, "DSC") }
func BenchmarkQSweepOverlap_NLNoFactor(b *testing.B) {
	benchQSweepOverlapGroup(b, "NLNoFactor")
}
func BenchmarkQSweepOverlap_SkylineNoFactor(b *testing.B) {
	benchQSweepOverlapGroup(b, "SkylineNoFactor")
}
func BenchmarkQSweepOverlap_DSCNoFactor(b *testing.B) {
	benchQSweepOverlapGroup(b, "DSCNoFactor")
}

// --- factor short-circuit microbenchmark ---

// Benchmark_Factor_ShortCircuit measures one factored dominance test —
// memoized factor-verdict lookup plus packed residual merge — in isolation,
// on a sealed table of 16 templates × 4 member queries probed by 64 stream
// vectors. benchgate caps it at 0 allocs/op: the factor hot path must stay
// allocation-free just like the raw packed kernel it short-circuits.
var (
	onceFactorSC sync.Once
	fscMemo      *factor.Memo
	fscStream    []npv.PackedVector
	fscDecs      []factor.Factored
	fscSink      bool
)

func factorSCWorkload() {
	onceFactorSC.Do(func() {
		r := rand.New(rand.NewSource(121))
		tbl := factor.NewTable()
		var keys []factor.Key
		for t := 0; t < 16; t++ {
			base := make(npv.Vector)
			for len(base) < 8 {
				base[npv.Dim(r.Intn(64))] = int32(1 + r.Intn(4))
			}
			for c := 0; c < 4; c++ {
				v := make(npv.Vector, len(base)+2)
				for d, n := range base {
					v[d] = n
				}
				v[npv.Dim(64+r.Intn(32))] = int32(1 + r.Intn(3))
				k := factor.Key{Query: core.QueryID(4*t + c), Vertex: graph.VertexID(c)}
				tbl.Add(k, npv.Pack(v))
				keys = append(keys, k)
			}
		}
		tbl.Seal()
		for _, k := range keys {
			dec, ok := tbl.Decomp(k)
			if !ok {
				panic("factor bench: missing decomposition")
			}
			fscDecs = append(fscDecs, dec)
		}
		fscMemo = factor.NewMemo(tbl)
		for i := 0; i < 64; i++ {
			v := make(npv.Vector)
			for d := 0; d < 96; d++ {
				if r.Intn(3) == 0 {
					v[npv.Dim(d)] = int32(1 + r.Intn(5))
				}
			}
			p := npv.Pack(v)
			fscStream = append(fscStream, p)
			fscMemo.Update(graph.VertexID(i), p, true, nil)
		}
	})
}

func Benchmark_Factor_ShortCircuit(b *testing.B) {
	factorSCWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		v := i % len(fscStream)
		sink = fscMemo.Dominated(graph.VertexID(v), fscStream[v], fscDecs[i%len(fscDecs)])
	}
	fscSink = sink
}

// --- Ablation: branch-compatible NNT vs NPV vs exact ---

func BenchmarkAblation_Branch(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewBranch(join.DefaultDepth) }, benchSparse(b))
}

func BenchmarkAblation_Exact(b *testing.B) {
	benchStream(b, func() core.Filter { return join.NewExact() }, benchSparse(b))
}

// --- NPV dominance kernel microbenchmarks ---

// The map/packed pair below measures one Lemma 4.2 dominance test in
// isolation on an identical, deterministic pair workload: stream-side
// vectors from the chemical database projected at depth 3, query-side
// vectors from a query set drawn over the same database, probed in a fixed
// pseudo-random pair order. The only difference between the two benches is
// the vector representation, so their ratio is the kernel speedup itself.
var (
	onceDominance   sync.Once
	domStreamMap    []npv.Vector
	domQueryMap     []npv.Vector
	domStreamPacked []npv.PackedVector
	domQueryPacked  []npv.PackedVector
	domPairs        [][2]int
	domSink         bool
)

func dominanceWorkload() {
	workloads()
	onceDominance.Do(func() {
		const depth = 3
		r := rand.New(rand.NewSource(114))
		for _, g := range chemDB {
			domStreamMap = append(domStreamMap, npv.VectorsByVertex(npv.ProjectGraph(g, depth))...)
		}
		for _, q := range datagen.QuerySet(chemDB, 20, 8, r) {
			domQueryMap = append(domQueryMap, npv.VectorsByVertex(npv.ProjectGraph(q, depth))...)
		}
		domStreamPacked = npv.PackAll(domStreamMap)
		domQueryPacked = npv.PackAll(domQueryMap)
		for i := 0; i < 4096; i++ {
			domPairs = append(domPairs, [2]int{r.Intn(len(domStreamMap)), r.Intn(len(domQueryMap))})
		}
	})
}

func Benchmark_NPV_Dominates_Map(b *testing.B) {
	dominanceWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := domPairs[i%len(domPairs)]
		sink = domStreamMap[p[0]].Dominates(domQueryMap[p[1]])
	}
	domSink = sink
}

func Benchmark_NPV_Dominates_Packed(b *testing.B) {
	dominanceWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := domPairs[i%len(domPairs)]
		sink = domStreamPacked[p[0]].Dominates(domQueryPacked[p[1]])
	}
	domSink = sink
}

// --- substrate microbenchmarks ---

// BenchmarkNNTMaintenance measures the Insert-Edge/Delete-Edge procedures
// of Section III-B (Lemma 3.2) in isolation.
func BenchmarkNNTMaintenance(b *testing.B) {
	workloads()
	tpl := wSparse.streams[0]
	f := nnt.NewForest(tpl.Start, join.DefaultDepth)
	cur := graph.NewCursor(tpl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, ok := cur.Next()
		if !ok {
			b.StopTimer()
			cur = graph.NewCursor(tpl)
			f = nnt.NewForest(tpl.Start, join.DefaultDepth)
			b.StartTimer()
			cs, _ = cur.Next()
		}
		if err := f.ApplySet(cs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVF2HardInstance shows why the paper avoids exact isomorphism on
// the hot path: a near-regular unlabeled instance forces deep backtracking.
func BenchmarkVF2HardInstance(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := graph.New()
	const n = 26
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), 0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.45 {
				_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
			}
		}
	}
	// Query: a 9-vertex near-clique that is absent.
	q := graph.New()
	for i := 0; i < 9; i++ {
		_ = q.AddVertex(graph.VertexID(i), 0)
	}
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			if (i+j)%7 != 0 {
				_ = q.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
			}
		}
	}
	m := iso.NewMatcher(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Contains(g)
	}
}
