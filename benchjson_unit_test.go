package nntstream

import (
	"regexp"
	"testing"
)

func TestBenchRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range benchRegistry() {
		if e.name == "" || e.fn == nil {
			t.Fatalf("malformed registry entry %+v", e)
		}
		if seen[e.name] {
			t.Fatalf("duplicate registry name %q", e.name)
		}
		seen[e.name] = true
	}
	// Spot-check that the names the CI bench gate keys on are present.
	for _, want := range []string{"Fig16_DSC", "Fig17_Skyline", "Parallel_DSC_W4", "Fig12_Depth/L3"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestCollectBenchJSONFiltersAndConverts(t *testing.T) {
	ran := map[string]int{}
	entries := []benchEntry{
		{"Tiny/A", func(b *testing.B) {
			ran["Tiny/A"]++
			for i := 0; i < b.N; i++ {
				_ = i * i
			}
		}},
		{"Other/B", func(b *testing.B) {
			ran["Other/B"]++
			for i := 0; i < b.N; i++ {
				_ = i * i
			}
		}},
	}
	report := collectBenchJSON(entries, regexp.MustCompile(`^Tiny`), "10ms")
	if ran["Other/B"] != 0 {
		t.Fatal("regexp filter did not exclude Other/B")
	}
	if ran["Tiny/A"] == 0 {
		t.Fatal("Tiny/A never ran")
	}
	if len(report.Results) != 1 {
		t.Fatalf("results = %+v; want exactly Tiny/A", report.Results)
	}
	res := report.Results[0]
	if res.Name != "Tiny/A" || res.Iterations <= 0 || res.NsPerOp <= 0 {
		t.Fatalf("bad converted result %+v", res)
	}
	if report.Benchtime != "10ms" {
		t.Fatalf("benchtime not recorded: %+v", report)
	}
}
