#!/bin/sh
# Loadtest smoke drill: build serve + loadgen, run a sustained + overload
# arrival schedule against a real socket, and leave behind the JSON
# artifacts CI uploads (load_report.json, BENCH_load_pr.json).
#
# The admission limits are sized against the schedule: at the default
# RATE=50 batches/s the workload is 50 x 8 steps x 4 ops = 1600 ops/s,
# the tenant quota clears it with 1.5x headroom, and the 6x overload phase
# (9600 ops/s) deterministically drives the quota into shedding — loadgen's
# -expect-shed asserts the 429s actually happened, so a regression that
# quietly disables admission control fails the drill.
#
# Knobs (environment): LOADTEST_RATE, LOADTEST_DURATION,
# LOADTEST_OVERLOAD_FACTOR, LOADTEST_OVERLOAD_DURATION, LOADTEST_PORT,
# LOADTEST_OUT, LOADTEST_BENCH_OUT.
set -eu

RATE=${LOADTEST_RATE:-50}
DURATION=${LOADTEST_DURATION:-20s}
OVERLOAD_FACTOR=${LOADTEST_OVERLOAD_FACTOR:-6}
OVERLOAD_DURATION=${LOADTEST_OVERLOAD_DURATION:-10s}
PORT=${LOADTEST_PORT:-18571}
OUT=${LOADTEST_OUT:-load_report.json}
BENCH_OUT=${LOADTEST_BENCH_OUT:-BENCH_load_pr.json}
REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/serve" ./cmd/serve
go build -o "$TMP/loadgen" ./cmd/loadgen

# A durable engine (WAL + fsync-always) so the drill exercises the group
# commit the batched ingest path exists for.
"$TMP/serve" -addr "127.0.0.1:$PORT" -data-dir "$TMP/data" -fsync always \
    -ingest-max-inflight 64 \
    -ingest-rate $((RATE * 48)) -ingest-burst $((RATE * 96)) \
    -ingest-read-timeout 5s &
SERVE_PID=$!

i=0
until curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "loadtest: serve did not become healthy on port $PORT" >&2
        exit 1
    fi
    sleep 0.2
done

"$TMP/loadgen" -target "http://127.0.0.1:$PORT" \
    -rate "$RATE" -duration "$DURATION" \
    -overload-factor "$OVERLOAD_FACTOR" -overload-duration "$OVERLOAD_DURATION" \
    -batch 8 -ops 4 -streams 4 -queries 8 -tenants 1 \
    -out "$OUT" -bench-out "$BENCH_OUT" -rev "$REV" -expect-shed

# Warn-only trajectory compare against the committed load baseline. Load
# numbers are far noisier than microbenchmarks (shared CI runners), so the
# gate only surfaces drift — it never fails the drill.
if [ -f BENCH_load.json ]; then
    go run ./cmd/benchgate -baseline BENCH_load.json -candidate "$BENCH_OUT" \
        -threshold 0.50 -warn-only
fi
