# Verification gate: everything CI (and a pre-commit run) should enforce.
GO ?= go

.PHONY: verify fmt vet build test race crashtest

verify: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engines and the HTTP server claim concurrent-read safety; hold them to
# it under the race detector. The WAL claims safe concurrent appends/syncs.
race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/wal/...

# Crash-recovery property tests: WAL torn at every byte, fault-injected
# writes/fsyncs, checkpoint crash windows. -count=3 shakes out ordering
# assumptions in the recovery paths.
crashtest:
	$(GO) test -count=3 -run 'Crash|Recover|Torn|KillPoint|Fault' ./internal/wal/... ./internal/core/...
