# Verification gate: everything CI (and a pre-commit run) should enforce.
GO ?= go

.PHONY: verify fmt vet build test race

verify: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engines and the HTTP server claim concurrent-read safety; hold them to
# it under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/server/...
