# Verification gate: everything CI (and a pre-commit run) should enforce.
GO ?= go

.PHONY: verify fmt vet lint build test race crashtest fuzzsmoke

verify: fmt vet lint build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific invariants go vet cannot know about: lock discipline,
# errors.Is on sentinels, sorted map iteration, WAL append-before-apply, and
# constant Prometheus metric names. Suppress a conservative finding in place
# with `//lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/nntlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engines and the HTTP server claim concurrent-read safety; hold them to
# it under the race detector. The WAL claims safe concurrent appends/syncs.
race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/wal/...

# Crash-recovery property tests: WAL torn at every byte, fault-injected
# writes/fsyncs, checkpoint crash windows. -count=3 shakes out ordering
# assumptions in the recovery paths.
crashtest:
	$(GO) test -count=3 -run 'Crash|Recover|Torn|KillPoint|Fault' ./internal/wal/... ./internal/core/...

# Short native-fuzzer runs over every decoder that reads crash debris or
# user files: WAL frames, checkpoint JSON, graph text formats. Five seconds
# per target keeps it pre-commit-friendly; drop the -fuzztime for a real
# campaign.
fuzzsmoke:
	$(GO) test -fuzz=FuzzReadRecord -fuzztime=5s ./internal/wal/
	$(GO) test -fuzz=FuzzDecodeSnapshot -fuzztime=5s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeGraph -fuzztime=5s ./internal/graph/
