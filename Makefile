# Verification gate: everything CI (and a pre-commit run) should enforce.
GO ?= go

# Per-target fuzzing budget for fuzzsmoke. Pre-commit keeps the 5s default;
# the nightly CI schedule raises it (FUZZTIME=60s) for a deeper campaign.
FUZZTIME ?= 5s

# benchjson knobs: where the trajectory lands and how long each benchmark
# runs. 100ms is the CI smoke setting; recorded baselines should use longer.
BENCHJSON_OUT ?= BENCH_pr.json
BENCHTIME ?= 100ms
REV ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: verify fmt vet lint lint-fix-audit build test race crashtest crashtest-cluster fuzzsmoke benchjson benchgate loadtest

verify: fmt vet lint build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific invariants go vet cannot know about: lock discipline,
# errors.Is on sentinels, sorted map iteration, WAL append-before-apply,
# constant Prometheus metric names, and the interprocedural call-graph
# checks (blocking under locks, lock-order cycles, context re-rooting,
# hot-path allocations). Suppress a conservative finding in place with
# `//lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/nntlint ./...

# Suppression debt review: every active //lint:ignore and //nnt:nonblocking
# in shipped code, with file:line and the reviewed reason. Fixture
# suppressions under testdata exercise the mechanism and are excluded, as
# are the analyzers' own marker-matching string literals (the grep anchors
# on comment position).
lint-fix-audit:
	@grep -rnE --include='*.go' '^[[:space:]]*//(lint:ignore|nnt:nonblocking) ' \
		cmd internal | grep -v '/testdata/' | sed 's/^[[:space:]]*//' || true

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engines and the HTTP server claim concurrent-read safety; hold them to
# it under the race detector. The WAL claims safe concurrent appends/syncs.
# internal/join carries the parallel ApplyAll fan-out and internal/gindex is
# shared read-side state under the sharded engine — both race-critical.
# internal/npv holds the packed-vector cache read concurrently by that
# fan-out and the atomic kernel counters. internal/qindex is the sealed
# query-candidate index read concurrently by the same fan-out, and
# internal/factor is the sealed factor table (plus per-stream verdict memos)
# read by it too.
# internal/cluster mixes the coordinator's heartbeat goroutine with the data
# plane and ships WAL records from under the engine lock; internal/retry backs
# every cluster RPC.
#
# Coverage audit against the blockhold/lockorder lock inventory (mutex-holding
# shipped packages): cluster (Coordinator.mu, workerGroup.mu, FaultTransport.mu),
# core (DurableEngine.mu, ShardedMonitor.mu), gindex (Filter.mu), obs
# (Registry.mu), server (Server.mu, admission.mu), wal (Log.mu, fault/atomic
# wrappers) — all covered below; internal/obs was the gap (its registry is
# scraped concurrently with engine steps) and is now included. cmd/loadgen's
# open-loop scheduler fans HTTP exchanges out across goroutines, so its tests
# run under the detector too. internal/analysis also matches the grep but only
# inside its own analyzer pattern strings; it runs single-threaded under the
# driver and stays out of the race gate.
race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/wal/... \
		./internal/join/... ./internal/gindex/... ./internal/npv/... ./internal/qindex/... \
		./internal/factor/... \
		./internal/cluster/... ./internal/retry/... ./internal/obs/... ./cmd/loadgen/...

# Crash-recovery property tests: WAL torn at every byte, fault-injected
# writes/fsyncs, checkpoint crash windows. -count=3 shakes out ordering
# assumptions in the recovery paths.
crashtest:
	$(GO) test -count=3 -run 'Crash|Recover|Torn|KillPoint|Fault' ./internal/wal/... ./internal/core/...

# Cluster fault drills: a primary killed at every WAL-record boundary (answers
# must stay bit-identical to a single node), randomized partition/heal
# schedules, degraded-mode behavior, rejoin-after-failover, and the live
# heartbeat loop. -count=1 defeats the test cache so every run re-drills.
crashtest-cluster:
	$(GO) test -count=1 -run 'Kill|Partition|Degraded|Rejoin|Heartbeat' ./internal/cluster/...

# Short native-fuzzer runs over every decoder that reads crash debris or
# user files (WAL frames, checkpoint JSON, graph text formats) plus the
# kernel-equivalence properties (packed dominance, qindex candidate
# soundness). The default budget keeps it pre-commit-friendly; override
# FUZZTIME for a real campaign.
fuzzsmoke:
	$(GO) test -fuzz=FuzzReadRecord -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzDecodeGraph -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -fuzz=FuzzPackedDominates -fuzztime=$(FUZZTIME) ./internal/npv/
	$(GO) test -fuzz=FuzzQindexCandidates -fuzztime=$(FUZZTIME) ./internal/qindex/
	$(GO) test -fuzz=FuzzFactorSeal -fuzztime=$(FUZZTIME) ./internal/factor/

# Record a benchmark trajectory (see benchjson_test.go): every figure bench
# as JSON, tagged with the current revision.
benchjson:
	$(GO) test -run - -benchjson $(BENCHJSON_OUT) -benchjson-rev $(REV) \
		-bench . -benchtime $(BENCHTIME) .

# Gate the current trajectory against the committed baseline. Warn-only by
# default mirrors CI; drop WARN_ONLY for a hard gate. The NPV dominance
# microbenches run in tens of nanoseconds, where a 100ms smoke -benchtime is
# far noisier than the end-to-end figures — they get a looser per-bench
# threshold instead of loosening the global gate. The -max-allocs caps are
# hard even under -warn-only (alloc counts are deterministic): the packed
# dominance kernel and the ingest frame decoder must stay zero-alloc.
WARN_ONLY ?= -warn-only
benchgate:
	$(GO) run ./cmd/benchgate -baseline BENCH_main.json -candidate $(BENCHJSON_OUT) \
		-threshold 0.20 \
		-threshold-for NPV_Dominates_Map=0.50 -threshold-for NPV_Dominates_Packed=0.50 \
		-threshold-for IngestDecode=0.50 -threshold-for Factor_ShortCircuit=0.50 \
		-max-allocs NPV_Dominates_Packed=0 -max-allocs IngestDecode=0 \
		-max-allocs Factor_ShortCircuit=0 \
		$(WARN_ONLY)

# Sustained-throughput drill against a live serve socket (see
# scripts/loadtest.sh): open-loop sustain + overload phases, asserting the
# admission control sheds under overload, plus a warn-only trajectory
# compare against the committed BENCH_load.json. Knobs via LOADTEST_* env.
loadtest:
	sh scripts/loadtest.sh
