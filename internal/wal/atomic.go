package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file crash-safely: the content goes to
// <path>.tmp, is fsynced, and is renamed over path, so readers only ever see
// either the complete previous file or the complete new one. The parent
// directory is fsynced after the rename so the new directory entry itself is
// durable. On any error the previous file at path is left intact (a stale
// .tmp may remain; callers ignore or remove it on boot).
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: renaming %s: %w", tmp, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-created or just-renamed entry survives
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}
