package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// AtomicStage names the fallible stages of WriteFileAtomic, for fault
// injection.
type AtomicStage int

const (
	// StageWrite fails the content write into the temp file.
	StageWrite AtomicStage = iota + 1
	// StageSync fails the temp file's fsync (content was written).
	StageSync
	// StageRename fails the rename over the destination (the temp file is
	// complete and synced, but never became the published file).
	StageRename
)

func (s AtomicStage) String() string {
	switch s {
	case StageWrite:
		return "write"
	case StageSync:
		return "sync"
	case StageRename:
		return "rename"
	default:
		return fmt.Sprintf("AtomicStage(%d)", int(s))
	}
}

// AtomicFault injects one failure into a chosen stage of WriteFileAtomic —
// the checkpoint-path analogue of FaultFile. Arm it with the stage to break;
// the next WriteFileAtomic call through it fails there, after which the fault
// disarms (subsequent checkpoints succeed, as a transiently full disk would).
// It is safe for concurrent use.
type AtomicFault struct {
	mu      sync.Mutex
	stage   AtomicStage // 0 = disarmed
	tripped int
}

// Arm sets the stage the next WriteFileAtomic call fails at.
func (f *AtomicFault) Arm(stage AtomicStage) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stage = stage
}

// Tripped reports how many operations the fault has failed.
func (f *AtomicFault) Tripped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// fire reports whether the armed stage matches, consuming the arming.
func (f *AtomicFault) fire(stage AtomicStage) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stage != stage {
		return false
	}
	f.stage = 0
	f.tripped++
	return true
}

// WriteFileAtomic writes a file crash-safely: the content goes to
// <path>.tmp, is fsynced, and is renamed over path, so readers only ever see
// either the complete previous file or the complete new one. The parent
// directory is fsynced after the rename so the new directory entry itself is
// durable. On any error the previous file at path is left intact (a stale
// .tmp may remain; callers ignore or remove it on boot).
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return WriteFileAtomicFault(path, write, nil)
}

// WriteFileAtomicFault is WriteFileAtomic with an optional fault injector
// (nil behaves identically to WriteFileAtomic). Injected failures take the
// same cleanup paths as real ones, so tests exercise the genuine error
// handling.
func WriteFileAtomicFault(path string, write func(w io.Writer) error, fault *AtomicFault) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	werr := write(f)
	if werr == nil && fault.fire(StageWrite) {
		werr = fmt.Errorf("injected write fault")
	}
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing %s: %w", tmp, werr)
	}
	if fault.fire(StageSync) {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing %s: %w", tmp, fmt.Errorf("injected fsync fault"))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing %s: %w", tmp, err)
	}
	if fault.fire(StageRename) {
		os.Remove(tmp)
		return fmt.Errorf("wal: renaming %s: %w", tmp, fmt.Errorf("injected rename fault"))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: renaming %s: %w", tmp, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-created or just-renamed entry survives
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}
