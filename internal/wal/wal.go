// Package wal is the durability substrate of the monitoring engine: an
// append-only write-ahead log of logical engine mutations (query and stream
// registrations, per-timestamp change sets) plus crash-safe file helpers for
// checkpointing.
//
// Records are length-prefixed and CRC32-checksummed, carry strictly
// increasing log sequence numbers, and are written with a single sequential
// write each, so a crash can tear at most the final record. Opening a log
// replays its valid prefix and physically truncates the torn tail instead of
// failing — recovery after a hard kill is the designed-for path, not an
// error path. Fsync policy is configurable per log: every append, on a
// background interval, or never (leaving flushing to the OS).
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// SyncPolicy selects when the log fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: zero acknowledged-write loss,
	// append latency includes the device flush.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence: a crash loses at most
	// the last interval's appends.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: fastest, weakest.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the -fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// LogFile is the file surface the log needs; *os.File satisfies it, and
// FaultFile wraps one for recovery tests.
type LogFile interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// DefaultSyncInterval is the SyncInterval cadence when Options leaves it
// zero.
const DefaultSyncInterval = 100 * time.Millisecond

// Options configures Open.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background flush cadence for SyncInterval
	// (default DefaultSyncInterval).
	SyncInterval time.Duration
	// OnRecord, when non-nil, receives each valid record of the existing
	// log during Open, in LSN order — the recovery replay hook. An error
	// aborts Open.
	OnRecord func(Record) error
	// Metrics receives append/fsync/recovery observations; nil disables.
	Metrics *Metrics
	// WrapFile, when non-nil, wraps the opened file — the fault-injection
	// hook for tests.
	WrapFile func(LogFile) LogFile
}

// Log is a single-file append-only record log. Appends are serialized
// internally; one Log has exactly one writer process (no advisory locking —
// the engine layer guarantees it).
type Log struct {
	mu      sync.Mutex
	f       LogFile
	path    string
	offset  int64 // end of the valid frame region (includes the magic)
	lastLSN uint64
	policy  SyncPolicy
	dirty   bool // bytes written since the last fsync
	// deferSync suppresses the per-append SyncAlways fsync inside a
	// GroupCommit window; the window's closing fsync covers every record
	// appended within it.
	deferSync bool
	err       error // sticky failure; the log refuses further appends
	metrics   *Metrics
	scratch   []byte

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if absent) the log at path, replays the valid record
// prefix through opts.OnRecord, truncates any torn tail, and positions the
// log for appending. LSNs continue from the last valid record.
func Open(path string, opts Options) (*Log, error) {
	raw, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	var f LogFile = raw
	if opts.WrapFile != nil {
		f = opts.WrapFile(raw)
	}
	l := &Log{
		f:       f,
		path:    path,
		policy:  opts.Sync,
		metrics: opts.Metrics,
	}
	if err := l.recover(opts.OnRecord); err != nil {
		f.Close()
		return nil, err
	}
	if opts.Sync == SyncInterval {
		interval := opts.SyncInterval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop(interval)
	}
	return l, nil
}

// recover scans the existing file, replays valid records, and truncates the
// file to the valid prefix.
func (l *Log) recover(onRecord func(Record) error) error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", l.path, err)
	}
	if len(data) == 0 {
		if _, err := l.f.Write(fileMagic); err != nil {
			return fmt.Errorf("wal: writing magic to %s: %w", l.path, err)
		}
		l.offset = int64(len(fileMagic))
		l.dirty = true
		return nil
	}
	if len(data) < len(fileMagic) {
		// A crash tore the very first write (the magic itself): start over.
		if err := l.rewindTo(0); err != nil {
			return err
		}
		if _, err := l.f.Write(fileMagic); err != nil {
			return fmt.Errorf("wal: rewriting magic to %s: %w", l.path, err)
		}
		l.offset = int64(len(fileMagic))
		l.dirty = true
		l.metrics.observeRecovery(scanResult{}, int64(len(data)))
		return nil
	}
	if !bytes.Equal(data[:len(fileMagic)], fileMagic) {
		// Never truncate a file that isn't ours.
		return fmt.Errorf("wal: %s is not a WAL file (bad magic)", l.path)
	}
	res, err := scanFrames(data[len(fileMagic):], onRecord)
	if err != nil {
		return fmt.Errorf("wal: replaying %s: %w", l.path, err)
	}
	end := int64(len(fileMagic)) + res.validLen
	torn := int64(len(data)) - end
	l.metrics.observeRecovery(res, torn)
	if torn > 0 {
		if err := l.rewindTo(end); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing truncated %s: %w", l.path, err)
		}
	} else {
		if _, err := l.f.Seek(end, io.SeekStart); err != nil {
			return fmt.Errorf("wal: seeking %s: %w", l.path, err)
		}
	}
	l.offset = end
	l.lastLSN = res.lastLSN
	return nil
}

// rewindTo truncates the file to size and repositions the write cursor
// there (a bare Truncate leaves the cursor beyond EOF, where the next write
// would punch a zero-filled hole).
func (l *Log) rewindTo(size int64) error {
	if err := l.f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating %s to %d: %w", l.path, size, err)
	}
	if _, err := l.f.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking %s to %d: %w", l.path, size, err)
	}
	return nil
}

// Append assigns the next LSN to r, frames it, and writes it in one write
// call, fsyncing per policy. It returns the assigned LSN. On a failed or
// short write the file is rolled back to the previous record boundary so the
// log never retains a half-written frame across its own error return.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	r.LSN = l.lastLSN + 1
	if err := l.appendLocked(r); err != nil {
		return 0, err
	}
	return r.LSN, nil
}

// AppendAt appends a record that already carries its LSN — the replication
// receive path, where a replica persists records exactly as the primary's log
// assigned them so the two logs stay LSN-identical. The LSN must be strictly
// beyond the last local record; LSN gaps are legal (the gap records were
// folded into a shipped snapshot).
func (l *Log) AppendAt(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if r.LSN <= l.lastLSN {
		return fmt.Errorf("wal: AppendAt LSN %d is not beyond last LSN %d", r.LSN, l.lastLSN)
	}
	return l.appendLocked(r)
}

func (l *Log) appendLocked(r Record) error {
	payload, err := appendPayload(l.scratch[:0], r)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	l.scratch = payload[:0]

	start := time.Now()
	n, werr := l.f.Write(frame)
	if werr != nil || n < len(frame) {
		// Partially written frame: roll the file back to the record
		// boundary so the in-memory view stays truthful. (A crash before
		// the rollback is fine — recovery truncates the torn frame.)
		if rerr := l.rewindTo(l.offset); rerr != nil {
			l.err = fmt.Errorf("wal: rollback after failed append: %w", rerr)
			return l.err
		}
		l.dirty = true
		if werr == nil {
			werr = io.ErrShortWrite
		}
		return fmt.Errorf("wal: appending record %d: %w", r.LSN, werr)
	}
	l.metrics.observeAppend(time.Since(start), n)
	l.offset += int64(n)
	l.lastLSN = r.LSN
	l.dirty = true
	if l.policy == SyncAlways && !l.deferSync {
		return l.syncLocked()
	}
	return nil
}

// ErrSyncFailed marks a GroupCommit whose closing fsync did not succeed:
// records staged during the batch — and any in-memory state the caller built
// on them — are not known durable. Test with errors.Is; callers that promise
// durability to their own clients must not acknowledge the batch when the
// returned error carries this marker.
var ErrSyncFailed = errors.New("wal: group-commit closing fsync failed")

// GroupCommit runs fn with the per-append SyncAlways fsync deferred, then
// issues at most one fsync covering every record fn appended — the batched
// ingest path's group commit. Records appended inside fn are staged exactly
// as usual (framed, CRC'd, LSN'd) but only become durable when GroupCommit's
// closing fsync returns, so callers must not acknowledge the batch until
// GroupCommit itself returns without an ErrSyncFailed-marked error. Under
// SyncInterval and SyncNever the closing fsync is skipped (those policies
// never promised per-append durability). fn runs without the log lock held:
// it is expected to call Append/TruncateTo, which take the lock per call.
//
// A non-nil error from fn is returned after the closing fsync still runs —
// records appended before the failure may have been applied by the caller
// and must reach the disk with the same guarantee as a full batch. When the
// closing fsync itself fails (or a mid-batch failure left the log in its
// sticky-error state with unflushed records), the returned error wraps
// ErrSyncFailed — in addition to fn's error, if fn also failed — so the
// caller can tell "a step was rejected, the applied prefix is durable" apart
// from "durability of the whole batch is unknown".
func (l *Log) GroupCommit(fn func() error) error {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if l.deferSync {
		l.mu.Unlock()
		return fmt.Errorf("wal: nested GroupCommit on %s", l.path)
	}
	l.deferSync = true
	l.mu.Unlock()

	fnErr := fn()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.deferSync = false
	var syncErr error
	if l.policy == SyncAlways && l.dirty {
		if l.err != nil {
			// The log went sticky-failed mid-batch with records still
			// unflushed; fsync semantics after a failure are undefined, so
			// the closing fsync is skipped — report instead of masking.
			syncErr = fmt.Errorf("%w: %w", ErrSyncFailed, l.err)
		} else if err := l.syncLocked(); err != nil {
			syncErr = fmt.Errorf("%w: %w", ErrSyncFailed, err)
		}
	}
	switch {
	case fnErr != nil && syncErr != nil:
		return fmt.Errorf("%w (and %w)", fnErr, syncErr)
	case fnErr != nil:
		return fnErr
	default:
		return syncErr
	}
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		// Post-failure fsync semantics are undefined (the page cache may
		// have dropped the dirty pages), so the error is sticky: the log
		// refuses further appends rather than risk silent divergence.
		l.err = fmt.Errorf("wal: fsync %s: %w", l.path, err)
		return l.err
	}
	l.metrics.observeFsync(time.Since(start))
	l.dirty = false
	return nil
}

// ErrCompacted reports that records requested from the log were already
// folded into a checkpoint and reset away: the caller must fall back to a
// snapshot transfer instead of record replay.
var ErrCompacted = fmt.Errorf("wal: requested records were compacted into a checkpoint")

// RecordsFrom invokes fn, in LSN order, for every record in the log with an
// LSN strictly greater than from — the catch-up iterator a replication
// primary uses to re-ship a lagging replica's missing suffix. It returns
// ErrCompacted when the log no longer holds the full suffix (a checkpoint
// reset discarded it); a non-nil error from fn aborts the scan and is
// returned verbatim. The scan re-reads the file under the append lock, so it
// sees a record-boundary-consistent prefix and cannot interleave with
// appends.
func (l *Log) RecordsFrom(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if from >= l.lastLSN {
		return nil // nothing beyond from has ever been appended here
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking %s for catch-up scan: %w", l.path, err)
	}
	data := make([]byte, l.offset)
	if _, err := io.ReadFull(l.f, data); err != nil {
		return fmt.Errorf("wal: reading %s for catch-up scan: %w", l.path, err)
	}
	if _, err := l.f.Seek(l.offset, io.SeekStart); err != nil {
		l.err = fmt.Errorf("wal: restoring append cursor on %s: %w", l.path, err)
		return l.err
	}
	// The valid region was established at open/append time; frames here must
	// parse. The first surviving record tells us whether the suffix after
	// `from` is complete: primary logs assign contiguous LSNs, so a first
	// record beyond from+1 (or an empty log with lastLSN > from) means the
	// records in between were checkpointed away.
	first := true
	var scanErr error
	res, err := scanFrames(data[len(fileMagic):], func(r Record) error {
		if first {
			first = false
			if r.LSN > from+1 {
				scanErr = ErrCompacted
				return scanErr
			}
		}
		if r.LSN <= from {
			return nil
		}
		return fn(r)
	})
	if scanErr != nil {
		return scanErr
	}
	if err != nil {
		return err
	}
	if res.records == 0 {
		// Log is empty but lastLSN > from: everything was reset away.
		return ErrCompacted
	}
	return nil
}

// Offset returns the current end of the log in bytes (including the file
// magic).
func (l *Log) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offset
}

// LastLSN returns the LSN of the most recent record (0 when the log is
// empty and no record was ever appended).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// TruncateTo rolls the log back to a boundary previously captured with
// Offset/LastLSN — the engine's undo for an append whose apply was rejected.
// It is only valid between a failed apply and the next Append.
func (l *Log) TruncateTo(offset int64, lastLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if offset > l.offset {
		return fmt.Errorf("wal: TruncateTo(%d) beyond end %d", offset, l.offset)
	}
	if err := l.rewindTo(offset); err != nil {
		l.err = err
		return err
	}
	l.offset = offset
	l.lastLSN = lastLSN
	l.dirty = true
	if l.policy == SyncAlways && !l.deferSync {
		return l.syncLocked()
	}
	return nil
}

// Reset empties the log after a checkpoint made its records redundant. The
// LSN counter is not reset — LSNs stay monotonic across resets so a
// checkpoint's recorded LSN unambiguously splits old records from new.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.rewindTo(int64(len(fileMagic))); err != nil {
		l.err = err
		return err
	}
	l.offset = int64(len(fileMagic))
	l.dirty = true
	return l.syncLocked()
}

// Rebase advances the LSN counter of an empty log to lsn, so the next append
// is assigned lsn+1. Boot uses it when a checkpoint's recorded LSN is ahead of
// the log (the process died between checkpoint publication and log reset, or
// the tail was torn away): numbering must continue above everything a
// checkpoint has ever folded in, or the next recovery would skip fresh
// records — and replication watermarks would run backwards across restarts.
func (l *Log) Rebase(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.offset != int64(len(fileMagic)) {
		return fmt.Errorf("wal: Rebase on a log holding records")
	}
	if lsn > l.lastLSN {
		l.lastLSN = lsn
	}
	return nil
}

// Close stops the background sync (if any), flushes, and closes the file.
//
//nnt:nonblocking shutdown path: waits only for the sync loop to observe stop, bounded by one in-flight fsync
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var syncErr error
	if l.dirty && l.err == nil {
		syncErr = l.syncLocked()
	}
	closeErr := l.f.Close()
	if l.err == nil {
		l.err = fmt.Errorf("wal: log %s is closed", l.path)
	}
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("wal: closing %s: %w", l.path, closeErr)
	}
	return nil
}

func (l *Log) syncLoop(interval time.Duration) {
	defer l.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if l.dirty && l.err == nil {
				_ = l.syncLocked() // sticky error surfaces on the next Append
			}
			l.mu.Unlock()
		}
	}
}
