package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	for i, r := range testRecords() {
		r.LSN = uint64(i + 1)
		data, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		got, err := DecodeRecord(data)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.LSN != r.LSN || got.Kind != r.Kind || got.ID != r.ID {
			t.Fatalf("record %d round-trip: got %+v, want %+v", i, got, r)
		}
		if !reflect.DeepEqual(got.Changes, r.Changes) {
			t.Fatalf("record %d changes diverged", i)
		}
		// Re-encoding the decoded record is byte-identical (deterministic
		// encoding is what makes replica logs bit-comparable).
		again, err := EncodeRecord(got)
		if err != nil {
			t.Fatalf("re-encode %d: %v", i, err)
		}
		if string(again) != string(data) {
			t.Fatalf("record %d encoding not deterministic across round-trip", i)
		}
	}
}

func TestAppendAtPreservesLSNs(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.log")
	dst := filepath.Join(dir, "dst.log")
	l, err := Open(src, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	shipped := replayAll(t, src)

	d, err := Open(dst, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range shipped {
		if err := d.AppendAt(r); err != nil {
			t.Fatalf("AppendAt %d: %v", i, err)
		}
	}
	// Re-shipping an old record must be rejected (the engine layer treats
	// that as an idempotent skip before it reaches the log).
	if err := d.AppendAt(shipped[0]); err == nil {
		t.Fatal("AppendAt with a stale LSN succeeded")
	}
	if d.LastLSN() != shipped[len(shipped)-1].LSN {
		t.Fatalf("replica LastLSN = %d, want %d", d.LastLSN(), shipped[len(shipped)-1].LSN)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The two logs are byte-identical: same records, same LSNs, same framing.
	a, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("replica log bytes diverge from primary log")
	}
}

func TestAppendAtAllowsGapAfterSnapshot(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A replica bootstrapped from a snapshot at LSN 40 receives its first
	// record at 41 while its own log is empty.
	if err := l.AppendAt(Record{LSN: 41, Kind: KindRemoveQuery, ID: 1}); err != nil {
		t.Fatalf("AppendAt over gap: %v", err)
	}
	if l.LastLSN() != 41 {
		t.Fatalf("LastLSN = %d, want 41", l.LastLSN())
	}
}

func TestRecordsFrom(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, testRecords())
	n := uint64(len(testRecords()))

	for from := uint64(0); from <= n+1; from++ {
		var got []uint64
		if err := l.RecordsFrom(from, func(r Record) error {
			got = append(got, r.LSN)
			return nil
		}); err != nil {
			t.Fatalf("RecordsFrom(%d): %v", from, err)
		}
		var want []uint64
		for lsn := from + 1; lsn <= n; lsn++ {
			want = append(want, lsn)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RecordsFrom(%d) = %v, want %v", from, got, want)
		}
	}

	// The iterator must not disturb the append cursor.
	if _, err := l.Append(Record{Kind: KindRemoveQuery, ID: 5}); err != nil {
		t.Fatalf("append after scan: %v", err)
	}
	var lsns []uint64
	if err := l.RecordsFrom(0, func(r Record) error {
		lsns = append(lsns, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != int(n)+1 {
		t.Fatalf("after post-scan append: %d records, want %d", len(lsns), n+1)
	}
}

func TestRecordsFromCompacted(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, testRecords())
	if err := l.Reset(); err != nil { // checkpoint folded records 1..4 away
		t.Fatal(err)
	}
	// Empty log, lastLSN still 4: anything before 4 is gone.
	if err := l.RecordsFrom(2, func(Record) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("RecordsFrom(2) after reset = %v, want ErrCompacted", err)
	}
	// From the reset point onward there is nothing to ship — not an error.
	if err := l.RecordsFrom(4, func(Record) error { return nil }); err != nil {
		t.Fatalf("RecordsFrom(4) after reset: %v", err)
	}
	// New appends land at LSN 5; a replica at 4 can catch up, a replica at 2
	// cannot.
	if _, err := l.Append(Record{Kind: KindRemoveQuery, ID: 9}); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if err := l.RecordsFrom(4, func(r Record) error { got = append(got, r.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{5}) {
		t.Fatalf("RecordsFrom(4) = %v, want [5]", got)
	}
	if err := l.RecordsFrom(2, func(Record) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("RecordsFrom(2) with post-reset suffix = %v, want ErrCompacted", err)
	}
}

func TestWriteFileAtomicFaultStages(t *testing.T) {
	for _, stage := range []AtomicStage{StageWrite, StageSync, StageRename} {
		t.Run(stage.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "file.json")
			if err := WriteFileAtomic(path, func(w io.Writer) error {
				_, err := io.WriteString(w, "old")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			fault := &AtomicFault{}
			fault.Arm(stage)
			err := WriteFileAtomicFault(path, func(w io.Writer) error {
				_, werr := io.WriteString(w, "new")
				return werr
			}, fault)
			if err == nil {
				t.Fatalf("stage %v: injected fault did not fail the write", stage)
			}
			if !strings.Contains(err.Error(), "injected") {
				t.Fatalf("stage %v: error %v does not carry the injected fault", stage, err)
			}
			if fault.Tripped() != 1 {
				t.Fatalf("stage %v: tripped %d times, want 1", stage, fault.Tripped())
			}
			// The published file is untouched and no temp debris remains.
			data, rerr := os.ReadFile(path)
			if rerr != nil || string(data) != "old" {
				t.Fatalf("stage %v: previous file not intact: %q, %v", stage, data, rerr)
			}
			if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
				t.Fatalf("stage %v: temp file left behind", stage)
			}
			// The fault disarms after firing: the next write succeeds.
			if err := WriteFileAtomicFault(path, func(w io.Writer) error {
				_, werr := io.WriteString(w, "new")
				return werr
			}, fault); err != nil {
				t.Fatalf("stage %v: write after disarm: %v", stage, err)
			}
			if data, _ := os.ReadFile(path); string(data) != "new" {
				t.Fatalf("stage %v: post-disarm content %q", stage, data)
			}
		})
	}
}
