package wal

import (
	"fmt"
	"sync"
)

// FaultMode selects how a FaultFile misbehaves once its byte budget is
// exhausted.
type FaultMode int

const (
	// FaultNone passes everything through (a FaultFile at rest).
	FaultNone FaultMode = iota
	// FaultError makes Write fail with an error after the budget; bytes up
	// to the budget are still written, modeling a partially persisted
	// record.
	FaultError
	// FaultShortWrite makes Write persist only the budgeted bytes and
	// report the short count with a nil error — the laziest tear a crash
	// can produce.
	FaultShortWrite
	// FaultDropSync leaves writes intact but turns Sync into a silent
	// no-op once the budget is exhausted, modeling a device that lies
	// about durability.
	FaultDropSync
)

// FaultFile wraps a LogFile and injects write-path faults after a byte
// budget, for recovery tests: torn records (FaultError, FaultShortWrite) and
// lost durability (FaultDropSync). It is safe for concurrent use.
type FaultFile struct {
	mu sync.Mutex
	f  LogFile
	// mode and remaining define the armed fault; use FaultNone for a
	// passthrough wrapper.
	mode      FaultMode
	remaining int64
	// Tripped counts how many operations the fault affected.
	tripped int
	// droppedSyncs counts Sync calls silently swallowed.
	droppedSyncs int
}

// NewFaultFile wraps f. The fault fires on the first write (or sync, for
// FaultDropSync) that would exceed afterBytes further bytes.
func NewFaultFile(f LogFile, mode FaultMode, afterBytes int64) *FaultFile {
	return &FaultFile{f: f, mode: mode, remaining: afterBytes}
}

// Arm re-points the fault: mode fires once afterBytes further bytes have
// passed through.
func (ff *FaultFile) Arm(mode FaultMode, afterBytes int64) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.mode = mode
	ff.remaining = afterBytes
}

// Heal disarms the fault; subsequent operations pass through.
func (ff *FaultFile) Heal() {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.mode = FaultNone
}

// Tripped reports how many operations the fault affected.
func (ff *FaultFile) Tripped() int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.tripped
}

// DroppedSyncs reports how many Sync calls were silently swallowed.
func (ff *FaultFile) DroppedSyncs() int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.droppedSyncs
}

func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	switch ff.mode {
	case FaultError, FaultShortWrite:
		if int64(len(p)) > ff.remaining {
			ff.tripped++
			keep := ff.remaining
			if keep < 0 {
				keep = 0
			}
			n, err := ff.f.Write(p[:keep])
			ff.remaining -= int64(n)
			if ff.mode == FaultError {
				if err == nil {
					err = fmt.Errorf("wal: injected write fault after %d bytes", n)
				}
				return n, err
			}
			return n, err // short write, nil error unless the file itself failed
		}
		n, err := ff.f.Write(p)
		ff.remaining -= int64(n)
		return n, err
	default:
		n, err := ff.f.Write(p)
		if ff.mode == FaultDropSync {
			ff.remaining -= int64(n)
		}
		return n, err
	}
}

func (ff *FaultFile) Sync() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.mode == FaultDropSync && ff.remaining <= 0 {
		ff.tripped++
		ff.droppedSyncs++
		return nil
	}
	return ff.f.Sync()
}

func (ff *FaultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *FaultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *FaultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

func (ff *FaultFile) Close() error { return ff.f.Close() }
