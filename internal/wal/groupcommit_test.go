package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
)

func openSyncAlways(t *testing.T, m *Metrics) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, path
}

func stepRecord(u, v int32) Record {
	return Record{Kind: KindStepAll, Changes: map[int64]graph.ChangeSet{
		0: {graph.InsertOp(graph.VertexID(u), 1, graph.VertexID(v), 2, 3)},
	}}
}

// TestGroupCommitSingleFsync is the batched-ingest durability contract: N
// appends inside one GroupCommit window cost exactly one fsync, while the
// same appends outside a window cost one each.
func TestGroupCommitSingleFsync(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	l, path := openSyncAlways(t, m)

	const n = 8
	before := m.Fsyncs.Value()
	err := l.GroupCommit(func() error {
		for i := int32(0); i < n; i++ {
			if _, err := l.Append(stepRecord(i, i+1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("GroupCommit: %v", err)
	}
	if got := m.Fsyncs.Value() - before; got != 1 {
		t.Fatalf("fsyncs inside GroupCommit = %d; want 1", got)
	}

	before = m.Fsyncs.Value()
	for i := int32(0); i < n; i++ {
		if _, err := l.Append(stepRecord(100+i, 101+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Fsyncs.Value() - before; got != n {
		t.Fatalf("fsyncs outside GroupCommit = %d; want %d (SyncAlways per append)", got, n)
	}

	// All 2n records are durable and replayable.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 2*n {
		t.Fatalf("replayed %d records; want %d", len(got), 2*n)
	}
}

// TestGroupCommitEmptyWindow pins that a window with no appends performs no
// fsync: the dirty flag, not the window itself, drives the closing sync.
func TestGroupCommitEmptyWindow(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	l, _ := openSyncAlways(t, m)
	// Settle the freshly written file header so the window starts clean.
	if _, err := l.Append(stepRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	before := m.Fsyncs.Value()
	if err := l.GroupCommit(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Fsyncs.Value() - before; got != 0 {
		t.Fatalf("fsyncs for empty window = %d; want 0", got)
	}
}

// TestGroupCommitNested rejects a window opened inside a window — silent
// nesting would let an inner "commit" return before its records are durable.
func TestGroupCommitNested(t *testing.T) {
	l, _ := openSyncAlways(t, nil)
	err := l.GroupCommit(func() error {
		return l.GroupCommit(func() error { return nil })
	})
	if err == nil || !strings.Contains(err.Error(), "nested GroupCommit") {
		t.Fatalf("nested GroupCommit error = %v; want nested-window rejection", err)
	}
	// The outer window closed; a fresh window works again.
	if err := l.GroupCommit(func() error { _, e := l.Append(stepRecord(1, 2)); return e }); err != nil {
		t.Fatalf("window after nested rejection: %v", err)
	}
}

// TestGroupCommitFnErrorStillSyncs: when fn fails midway, records it already
// appended are still fsynced before GroupCommit returns — the caller's error
// handling (TruncateTo withdrawal, partial-batch ack) sees a durable log, and
// the fn error is preserved over the sync outcome.
func TestGroupCommitFnErrorStillSyncs(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	l, path := openSyncAlways(t, m)
	before := m.Fsyncs.Value()
	wantErr := "apply rejected"
	err := l.GroupCommit(func() error {
		if _, err := l.Append(stepRecord(1, 2)); err != nil {
			return err
		}
		return &testError{wantErr}
	})
	if err == nil || err.Error() != wantErr {
		t.Fatalf("GroupCommit = %v; want fn error %q", err, wantErr)
	}
	if got := m.Fsyncs.Value() - before; got != 1 {
		t.Fatalf("fsyncs after fn error = %d; want 1 (appended record still synced)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 1 {
		t.Fatalf("replayed %d records; want 1", len(got))
	}
}

// TestGroupCommitTruncateDeferred: a TruncateTo withdrawal inside the window
// must not fsync on its own — the closing sync covers it (and the window may
// end with nothing to sync if the withdrawal undid the only append).
func TestGroupCommitTruncateDeferred(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	l, _ := openSyncAlways(t, m)
	before := m.Fsyncs.Value()
	err := l.GroupCommit(func() error {
		off, lsn := l.Offset(), l.LastLSN()
		if _, err := l.Append(stepRecord(1, 2)); err != nil {
			return err
		}
		return l.TruncateTo(off, lsn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Fsyncs.Value() - before; got != 1 {
		t.Fatalf("fsyncs for append+withdraw window = %d; want 1", got)
	}
	if l.LastLSN() != 0 {
		t.Fatalf("LastLSN after withdrawal = %d; want 0", l.LastLSN())
	}
}

type testError struct{ msg string }

func (e *testError) Error() string { return e.msg }

// failSyncFile wraps a LogFile and makes Sync fail on demand — the
// closing-fsync fault GroupCommit must surface rather than mask.
type failSyncFile struct {
	LogFile
	fail bool
}

func (f *failSyncFile) Sync() error {
	if f.fail {
		return fmt.Errorf("injected sync failure")
	}
	return f.LogFile.Sync()
}

func openFailSync(t *testing.T) (*Log, *failSyncFile) {
	t.Helper()
	ff := &failSyncFile{}
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways, WrapFile: func(f LogFile) LogFile {
		ff.LogFile = f
		return ff
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, ff
}

// TestGroupCommitSyncFailureSurfaced: a failed closing fsync must reach the
// caller as ErrSyncFailed even though every append inside the window
// succeeded — records were staged but never made durable, so returning nil
// would let the caller acknowledge a batch the disk may not hold.
func TestGroupCommitSyncFailureSurfaced(t *testing.T) {
	l, ff := openFailSync(t)
	ff.fail = true
	err := l.GroupCommit(func() error {
		_, e := l.Append(stepRecord(1, 2))
		return e
	})
	if !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("GroupCommit with failed closing fsync = %v; want ErrSyncFailed", err)
	}
}

// TestGroupCommitFnAndSyncFailure: when fn fails AND the closing fsync
// fails, the returned error must carry both — the fn error for the caller's
// per-step handling, and the ErrSyncFailed marker so the applied prefix is
// not promised as durable.
func TestGroupCommitFnAndSyncFailure(t *testing.T) {
	l, ff := openFailSync(t)
	ff.fail = true
	wantErr := "apply rejected"
	err := l.GroupCommit(func() error {
		if _, e := l.Append(stepRecord(1, 2)); e != nil {
			return e
		}
		return &testError{wantErr}
	})
	if !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("GroupCommit = %v; want ErrSyncFailed in the chain", err)
	}
	if err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("GroupCommit = %v; want fn error %q preserved", err, wantErr)
	}
}
