package wal

import (
	"time"

	"nntstream/internal/obs"
)

// Metrics bundles the durability instruments. All methods are nil-receiver
// safe so the log and the durable engine can record unconditionally.
type Metrics struct {
	// AppendSeconds is the latency of encoding + writing one record (fsync
	// excluded; see FsyncSeconds).
	AppendSeconds *obs.Histogram
	// FsyncSeconds is the latency of one fsync of the log file.
	FsyncSeconds *obs.Histogram
	// RecordsAppended counts records durably staged in the log.
	RecordsAppended *obs.Counter
	// BytesAppended counts framed bytes written to the log.
	BytesAppended *obs.Counter
	// Fsyncs counts fsync calls on the log file.
	Fsyncs *obs.Counter
	// Recoveries counts engine boots that opened an existing data
	// directory.
	Recoveries *obs.Counter
	// RecordsReplayed counts records replayed from the log during recovery
	// (including records skipped because a checkpoint already covered them).
	RecordsReplayed *obs.Counter
	// TornTruncations counts recoveries that discarded a torn or corrupt
	// log tail.
	TornTruncations *obs.Counter
	// TornBytes counts bytes discarded by torn-tail truncation.
	TornBytes *obs.Counter
	// CheckpointSeconds is the latency of writing one checkpoint (snapshot
	// encode + fsync + rename + log reset).
	CheckpointSeconds *obs.Histogram
	// Checkpoints counts checkpoints successfully written.
	Checkpoints *obs.Counter
	// CheckpointFailures counts checkpoint attempts that failed (the log
	// keeps growing; state is still recoverable from the previous
	// checkpoint plus the longer log).
	CheckpointFailures *obs.Counter
}

// NewMetrics registers the WAL instruments in r under the nntstream_wal_
// prefix. Registering twice against the same registry returns instruments
// backed by the same state.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		AppendSeconds: r.Histogram("nntstream_wal_append_seconds",
			"Latency of encoding and writing one WAL record, excluding fsync.", nil),
		FsyncSeconds: r.Histogram("nntstream_wal_fsync_seconds",
			"Latency of one fsync of the WAL file.", nil),
		RecordsAppended: r.Counter("nntstream_wal_records_appended_total",
			"WAL records appended."),
		BytesAppended: r.Counter("nntstream_wal_bytes_appended_total",
			"Framed bytes appended to the WAL."),
		Fsyncs: r.Counter("nntstream_wal_fsyncs_total",
			"fsync calls on the WAL file."),
		Recoveries: r.Counter("nntstream_wal_recoveries_total",
			"Engine boots that recovered from an existing data directory."),
		RecordsReplayed: r.Counter("nntstream_wal_recovery_records_replayed_total",
			"WAL records read back during recovery."),
		TornTruncations: r.Counter("nntstream_wal_recovery_torn_truncations_total",
			"Recoveries that discarded a torn or corrupt WAL tail."),
		TornBytes: r.Counter("nntstream_wal_recovery_torn_bytes_total",
			"Bytes discarded by torn-tail truncation."),
		CheckpointSeconds: r.Histogram("nntstream_wal_checkpoint_seconds",
			"Latency of writing one checkpoint.", nil),
		Checkpoints: r.Counter("nntstream_wal_checkpoints_total",
			"Checkpoints successfully written."),
		CheckpointFailures: r.Counter("nntstream_wal_checkpoint_failures_total",
			"Checkpoint attempts that failed."),
	}
}

func (m *Metrics) observeAppend(d time.Duration, bytes int) {
	if m == nil {
		return
	}
	m.AppendSeconds.Observe(d.Seconds())
	m.RecordsAppended.Inc()
	m.BytesAppended.Add(int64(bytes))
}

func (m *Metrics) observeFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.FsyncSeconds.Observe(d.Seconds())
	m.Fsyncs.Inc()
}

func (m *Metrics) observeRecovery(res scanResult, tornBytes int64) {
	if m == nil {
		return
	}
	m.RecordsReplayed.Add(int64(res.records))
	if tornBytes > 0 {
		m.TornTruncations.Inc()
		m.TornBytes.Add(tornBytes)
	}
}

// ObserveCheckpoint records one checkpoint attempt; it is exported for the
// engine layer that owns checkpointing.
func (m *Metrics) ObserveCheckpoint(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.CheckpointFailures.Inc()
		return
	}
	m.CheckpointSeconds.Observe(d.Seconds())
	m.Checkpoints.Inc()
}

// ObserveRecoveryStart counts one boot over an existing data directory; it is
// exported for the engine layer that drives recovery.
func (m *Metrics) ObserveRecoveryStart() {
	if m == nil {
		return
	}
	m.Recoveries.Inc()
}
