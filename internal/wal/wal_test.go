package wal

import (
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindAddQuery, ID: 0, Graph: lineGraph(2)},
		{Kind: KindAddStream, ID: 0, Graph: lineGraph(3)},
		{Kind: KindStepAll, Changes: map[int64]graph.ChangeSet{
			0: {graph.InsertOp(10, 1, 11, 2, 3), graph.DeleteOp(0, 1)},
		}},
		{Kind: KindRemoveQuery, ID: 0},
	}
}

func lineGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		if err := g.AddVertex(graph.VertexID(i), graph.Label(i%3)); err != nil {
			panic(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(graph.VertexID(i-1), graph.VertexID(i), 0); err != nil {
			panic(err)
		}
	}
	return g
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for i, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, path string) []Record {
	t.Helper()
	var got []Record
	l, err := Open(path, Options{OnRecord: func(r Record) error {
		got = append(got, r)
		return nil
	}})
	if err != nil {
		t.Fatalf("open for replay: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close after replay: %v", err)
	}
	return got
}

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	if got := l.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d; want 4", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 4 {
		t.Fatalf("replayed %d records; want 4", len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d LSN = %d", i, r.LSN)
		}
	}
	if got[0].Kind != KindAddQuery || got[2].Kind != KindStepAll || got[3].Kind != KindRemoveQuery {
		t.Fatalf("kinds = %v %v %v %v", got[0].Kind, got[1].Kind, got[2].Kind, got[3].Kind)
	}
}

// TestLogTornTailEveryByte is the wal-level kill-point test: the log is cut
// at every byte boundary and reopened. The replayed prefix must be exactly
// the records whose frames fully fit, the file must be truncated back to that
// boundary, and the log must accept new appends afterwards.
func TestLogTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scanFrames(full[len(fileMagic):], nil)
	if err != nil || res.records != 4 || res.torn {
		t.Fatalf("baseline scan: %+v err %v", res, err)
	}
	// boundaries[i] is the file size once records 0..i-1 are fully on disk.
	boundaries := append([]int64{int64(len(fileMagic))}, frameOffsets(t, full)...)

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		cutPath := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords := 0
		for _, b := range boundaries[1:] {
			if cut >= b {
				wantRecords++
			}
		}
		reg := obs.NewRegistry()
		m := NewMetrics(reg)
		var got []Record
		l, err := Open(cutPath, Options{Metrics: m, OnRecord: func(r Record) error {
			got = append(got, r)
			return nil
		}})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if len(got) != wantRecords {
			t.Fatalf("cut %d: replayed %d records; want %d", cut, len(got), wantRecords)
		}
		// The torn tail must be physically gone and the log appendable.
		if _, err := l.Append(Record{Kind: KindRemoveQuery, ID: 99}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		reopened := replayAll(t, cutPath)
		if len(reopened) != wantRecords+1 {
			t.Fatalf("cut %d: after heal replay %d records; want %d", cut, len(reopened), wantRecords+1)
		}
		if last := reopened[len(reopened)-1]; last.Kind != KindRemoveQuery || last.ID != 99 {
			t.Fatalf("cut %d: healed tail = %+v", cut, last)
		}
		tornWant := cut - boundaries[wantRecords]
		if wantRecords == 0 && cut < int64(len(fileMagic)) {
			tornWant = cut // torn magic counts whole file
		}
		if tornWant > 0 && m.TornTruncations.Value() != 1 {
			t.Fatalf("cut %d: torn truncation not counted (torn %d bytes)", cut, tornWant)
		}
	}
}

// frameOffsets returns the file size after each complete frame.
func frameOffsets(t *testing.T, data []byte) []int64 {
	t.Helper()
	var out []int64
	pos := int64(len(fileMagic))
	for pos+frameHeaderSize <= int64(len(data)) {
		payloadLen := int64(binary.LittleEndian.Uint32(data[pos:]))
		end := pos + frameHeaderSize + payloadLen
		if payloadLen < minPayload || end > int64(len(data)) {
			break
		}
		out = append(out, end)
		pos = end
	}
	return out
}

func TestLogCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := frameOffsets(t, data)
	// Flip one byte inside the second record's payload.
	data[offsets[0]+frameHeaderSize+1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 1 {
		t.Fatalf("replayed %d records past corruption; want 1", len(got))
	}
	// The log healed itself: everything from the corrupt record on is gone.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != offsets[0] {
		t.Fatalf("file size %d after heal; want %d", info.Size(), offsets[0])
	}
}

func TestLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("definitely json{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("foreign file opened as WAL")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "definitely json{}" {
		t.Fatal("foreign file was modified")
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	// LSNs continue after a reset; replay of the emptied log sees only the
	// new record with its post-reset LSN.
	lsn, err := l.Append(Record{Kind: KindRemoveQuery, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("post-reset LSN = %d; want 5", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 1 || got[0].LSN != 5 {
		t.Fatalf("replay after reset = %+v", got)
	}
}

func TestLogTruncateToUndoesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords()[:2])
	off, lsn := l.Offset(), l.LastLSN()
	if _, err := l.Append(Record{Kind: KindRemoveQuery, ID: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(off, lsn); err != nil {
		t.Fatal(err)
	}
	// The undone record must not replay, and its LSN is reused.
	lsn2, err := l.Append(Record{Kind: KindRemoveQuery, ID: 8})
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 != lsn+1 {
		t.Fatalf("LSN after undo = %d; want %d", lsn2, lsn+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 3 || got[2].ID != 8 {
		t.Fatalf("replay after undo = %d records, tail %+v", len(got), got[len(got)-1])
	}
}

func TestLogFaultInjection(t *testing.T) {
	t.Run("short_write_rolls_back", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wal.log")
		var ff *FaultFile
		l, err := Open(path, Options{Sync: SyncAlways, WrapFile: func(f LogFile) LogFile {
			ff = NewFaultFile(f, FaultNone, 0)
			return ff
		}})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, testRecords()[:2])
		// Arm: allow 5 more bytes, then tear mid-frame.
		ff.Arm(FaultShortWrite, 5)
		if _, err := l.Append(testRecords()[2]); err == nil {
			t.Fatal("append through short write succeeded")
		}
		ff.Heal()
		// The log rolled back; the next append lands cleanly.
		if _, err := l.Append(Record{Kind: KindRemoveQuery, ID: 42}); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, path)
		if len(got) != 3 || got[2].ID != 42 {
			t.Fatalf("replay = %d records, tail %+v", len(got), got[len(got)-1])
		}
	})
	t.Run("write_error_rolls_back", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wal.log")
		var ff *FaultFile
		l, err := Open(path, Options{Sync: SyncNever, WrapFile: func(f LogFile) LogFile {
			ff = NewFaultFile(f, FaultNone, 0)
			return ff
		}})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, testRecords()[:1])
		ff.Arm(FaultError, 3)
		if _, err := l.Append(testRecords()[1]); err == nil {
			t.Fatal("append through write fault succeeded")
		}
		ff.Heal()
		if _, err := l.Append(testRecords()[1]); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, path); len(got) != 2 {
			t.Fatalf("replay = %d records; want 2", len(got))
		}
	})
	t.Run("dropped_sync_is_counted", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wal.log")
		var ff *FaultFile
		l, err := Open(path, Options{Sync: SyncAlways, WrapFile: func(f LogFile) LogFile {
			ff = NewFaultFile(f, FaultDropSync, 0)
			return ff
		}})
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, testRecords()[:2])
		if ff.DroppedSyncs() == 0 {
			t.Fatal("no syncs were dropped")
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLogIntervalSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	l, err := Open(path, Options{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	deadline := time.Now().Add(2 * time.Second)
	for m.Fsyncs.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Fsyncs.Value() == 0 {
		t.Fatal("background sync never ran")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileAtomicKeepsOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return os.ErrClosed // simulated mid-write failure
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(data) != "good" {
		t.Fatalf("previous content destroyed: %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind after handled failure")
	}
}
