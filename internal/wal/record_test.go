package wal

import (
	"testing"

	"nntstream/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{0: 3, 1: 4, 2: 5} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][3]int{{0, 1, 7}, {1, 2, 8}} {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRecordRoundTrip(t *testing.T) {
	g := testGraph(t)
	records := []Record{
		{LSN: 1, Kind: KindAddQuery, ID: 0, Graph: g},
		{LSN: 2, Kind: KindAddStream, ID: 3, Graph: g},
		{LSN: 3, Kind: KindRemoveQuery, ID: 0},
		{LSN: 4, Kind: KindStepAll, Changes: map[int64]graph.ChangeSet{
			0: {graph.InsertOp(5, 1, 6, 2, 9), graph.DeleteOp(0, 1)},
			3: {graph.DeleteOp(1, 2)},
			7: nil,
		}},
	}
	for _, want := range records {
		payload, err := appendPayload(nil, want)
		if err != nil {
			t.Fatalf("%s: encode: %v", want.Kind, err)
		}
		got, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Kind, err)
		}
		if got.LSN != want.LSN || got.Kind != want.Kind || got.ID != want.ID {
			t.Fatalf("%s: header round trip: got %+v", want.Kind, got)
		}
		if want.Graph != nil && !got.Graph.Equal(want.Graph) {
			t.Fatalf("%s: graph round trip mismatch", want.Kind)
		}
		if len(got.Changes) != len(want.Changes) {
			t.Fatalf("%s: changes round trip: got %d streams, want %d",
				want.Kind, len(got.Changes), len(want.Changes))
		}
		for id, cs := range want.Changes {
			gcs := got.Changes[id]
			if len(gcs) != len(cs) {
				t.Fatalf("stream %d: got %d ops, want %d", id, len(gcs), len(cs))
			}
			for i := range cs {
				if gcs[i] != cs[i] {
					t.Fatalf("stream %d op %d: got %v, want %v", id, i, gcs[i], cs[i])
				}
			}
		}
	}
}

func TestRecordEncodeDeterministic(t *testing.T) {
	r := Record{LSN: 9, Kind: KindStepAll, Changes: map[int64]graph.ChangeSet{
		2: {graph.DeleteOp(0, 1)}, 0: {graph.DeleteOp(2, 3)}, 1: nil,
	}}
	a, err := appendPayload(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := appendPayload(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("encoding is not deterministic across map iteration orders")
		}
	}
}

func TestRecordDecodeRejectsDamage(t *testing.T) {
	payload, err := appendPayload(nil, Record{LSN: 1, Kind: KindAddQuery, ID: 2, Graph: testGraph(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail to parse (no silent partial decode).
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodePayload(payload[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(payload))
		}
	}
	// Trailing garbage must fail too.
	if _, err := decodePayload(append(append([]byte{}, payload...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown kinds must fail.
	bad := append([]byte{}, payload...)
	bad[1] = 0xEE // kind byte follows the 1-byte LSN varint
	if _, err := decodePayload(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
