package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"nntstream/internal/graph"
)

// frame wraps a payload in the on-disk [len][crc][payload] framing.
func frame(payload []byte) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// FuzzReadRecord drives the recovery decoder with arbitrary bytes: whatever
// a crash (or disk corruption) leaves in the frame region, the reader must
// classify it as a valid prefix plus torn tail — never panic, never
// over-read, never yield a record it did not fully validate.
func FuzzReadRecord(f *testing.F) {
	g := graph.New()
	if err := g.AddVertex(1, 10); err != nil {
		f.Fatal(err)
	}
	if err := g.AddVertex(2, 20); err != nil {
		f.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 5); err != nil {
		f.Fatal(err)
	}
	seeds := []Record{
		{LSN: 1, Kind: KindAddQuery, ID: 7, Graph: g},
		{LSN: 2, Kind: KindRemoveQuery, ID: 7},
		{LSN: 3, Kind: KindAddStream, ID: 9, Graph: g},
		{LSN: 4, Kind: KindStepAll, Changes: map[int64]graph.ChangeSet{
			9: {graph.InsertOp(3, 30, 1, 10, 6)},
		}},
	}
	var stream []byte
	for _, r := range seeds {
		payload, err := appendPayload(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		f.Add(frame(payload))
		stream = append(stream, frame(payload)...)
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-3]) // torn tail
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The bare payload decoder must reject or accept, never panic.
		if rec, err := decodePayload(data); err == nil {
			// An accepted payload must re-encode (the engine re-frames
			// replayed records during checkpoint-driven log resets).
			if _, err := appendPayload(nil, rec); err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
		}
		// The frame scanner must terminate with a consistent summary.
		var lastLSN uint64
		res, err := scanFrames(data, func(r Record) error {
			if r.LSN <= lastLSN {
				t.Fatalf("scanFrames yielded non-increasing LSN %d after %d", r.LSN, lastLSN)
			}
			lastLSN = r.LSN
			return nil
		})
		if err != nil {
			t.Fatalf("scanFrames returned callback error without one being raised: %v", err)
		}
		if res.validLen < 0 || res.validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0,%d]", res.validLen, len(data))
		}
		if res.lastLSN != lastLSN {
			t.Fatalf("summary lastLSN %d != observed %d", res.lastLSN, lastLSN)
		}
		if !res.torn && res.validLen != int64(len(data)) {
			t.Fatalf("not torn but validLen %d != %d", res.validLen, len(data))
		}
	})
}
