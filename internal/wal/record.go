package wal

import (
	"encoding/binary"
	"fmt"
	"sort"

	"nntstream/internal/graph"
)

// Kind discriminates the engine mutations a WAL record can carry. The log
// records logical operations (not physical page changes): each record is one
// engine mutation, so replaying the records in LSN order against an empty
// engine reconstructs the exact pre-crash state.
type Kind uint8

const (
	// KindAddQuery registers a query pattern (ID + graph).
	KindAddQuery Kind = 1
	// KindRemoveQuery deregisters a query pattern (ID).
	KindRemoveQuery Kind = 2
	// KindAddStream registers a stream with its starting graph (ID + graph).
	KindAddStream Kind = 3
	// KindStepAll advances one global timestamp (per-stream change sets).
	KindStepAll Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindAddQuery:
		return "add-query"
	case KindRemoveQuery:
		return "remove-query"
	case KindAddStream:
		return "add-stream"
	case KindStepAll:
		return "step-all"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logical engine mutation. IDs are plain integers so the log
// stays independent of the engine package (internal/core depends on wal, not
// the other way around).
type Record struct {
	// LSN is the log sequence number, assigned by Log.Append: strictly
	// increasing, never reused, monotonic across checkpoint-driven log
	// resets. The reader treats a non-increasing LSN as corruption.
	LSN uint64
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// ID is the query/stream ID for the single-entity kinds.
	ID int64
	// Graph is the query pattern (KindAddQuery) or starting stream graph
	// (KindAddStream).
	Graph *graph.Graph
	// Changes holds the per-stream change sets of a KindStepAll record.
	Changes map[int64]graph.ChangeSet
}

// EncodeRecord serializes a record (LSN included, framing excluded) in the
// log's deterministic payload encoding — the wire form replication ships
// between nodes, so a shipped record round-trips bit-identically into the
// replica's log.
func EncodeRecord(r Record) ([]byte, error) {
	return appendPayload(nil, r)
}

// DecodeRecord parses a payload produced by EncodeRecord (or read out of a
// log frame). Any structural defect is an error.
func DecodeRecord(data []byte) (Record, error) {
	return decodePayload(data)
}

// appendPayload serializes the record (without framing) onto buf. Encoding is
// varint-based: collections are length-prefixed, vertex IDs use zig-zag
// varints (signed), labels and counts unsigned varints. Map entries are
// emitted in sorted key order so the encoding is deterministic.
func appendPayload(buf []byte, r Record) ([]byte, error) {
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindAddQuery, KindAddStream:
		buf = binary.AppendVarint(buf, r.ID)
		if r.Graph == nil {
			return nil, fmt.Errorf("wal: %s record without graph", r.Kind)
		}
		buf = appendGraph(buf, r.Graph)
	case KindRemoveQuery:
		buf = binary.AppendVarint(buf, r.ID)
	case KindStepAll:
		ids := make([]int64, 0, len(r.Changes))
		for id := range r.Changes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.AppendVarint(buf, id)
			buf = appendChangeSet(buf, r.Changes[id])
		}
	default:
		return nil, fmt.Errorf("wal: cannot encode record kind %d", r.Kind)
	}
	return buf, nil
}

func appendGraph(buf []byte, g *graph.Graph) []byte {
	vids := g.VertexIDs() // ascending order
	buf = binary.AppendUvarint(buf, uint64(len(vids)))
	for _, v := range vids {
		buf = binary.AppendVarint(buf, int64(v))
		buf = binary.AppendUvarint(buf, uint64(g.MustVertexLabel(v)))
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i].Canonical(), edges[j].Canonical()
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		c := e.Canonical()
		buf = binary.AppendVarint(buf, int64(c.U))
		buf = binary.AppendVarint(buf, int64(c.V))
		buf = binary.AppendUvarint(buf, uint64(c.Label))
	}
	return buf
}

func appendChangeSet(buf []byte, cs graph.ChangeSet) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(cs)))
	for _, op := range cs {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendVarint(buf, int64(op.U))
		buf = binary.AppendVarint(buf, int64(op.V))
		if op.Kind == graph.OpInsert {
			buf = binary.AppendUvarint(buf, uint64(op.ULabel))
			buf = binary.AppendUvarint(buf, uint64(op.VLabel))
			buf = binary.AppendUvarint(buf, uint64(op.EdgeLabel))
		}
	}
	return buf
}

// payloadDecoder folds the error handling of sequential varint reads.
type payloadDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *payloadDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("wal: truncated uvarint at payload offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *payloadDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("wal: truncated varint at payload offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *payloadDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.err = fmt.Errorf("wal: truncated byte at payload offset %d", d.pos)
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *payloadDecoder) graph() *graph.Graph {
	g := graph.New()
	nv := d.uvarint()
	for i := uint64(0); i < nv && d.err == nil; i++ {
		v := graph.VertexID(d.varint())
		l := graph.Label(d.uvarint())
		if d.err == nil {
			if err := g.AddVertex(v, l); err != nil {
				d.err = err
			}
		}
	}
	ne := d.uvarint()
	for i := uint64(0); i < ne && d.err == nil; i++ {
		u := graph.VertexID(d.varint())
		v := graph.VertexID(d.varint())
		l := graph.Label(d.uvarint())
		if d.err == nil {
			if err := g.AddEdge(u, v, l); err != nil {
				d.err = err
			}
		}
	}
	return g
}

func (d *payloadDecoder) changeSet() graph.ChangeSet {
	n := d.uvarint()
	var cs graph.ChangeSet
	for i := uint64(0); i < n && d.err == nil; i++ {
		kind := graph.OpKind(d.byte())
		op := graph.ChangeOp{
			Kind: kind,
			U:    graph.VertexID(d.varint()),
			V:    graph.VertexID(d.varint()),
		}
		switch kind {
		case graph.OpInsert:
			op.ULabel = graph.Label(d.uvarint())
			op.VLabel = graph.Label(d.uvarint())
			op.EdgeLabel = graph.Label(d.uvarint())
		case graph.OpDelete:
		default:
			d.err = fmt.Errorf("wal: unknown change op kind %d", kind)
		}
		cs = append(cs, op)
	}
	return cs
}

// decodePayload parses one record payload. Any structural defect (truncated
// varint, unknown kind, trailing bytes) is an error; the reader treats it as
// corruption and truncates the log there.
func decodePayload(payload []byte) (Record, error) {
	d := &payloadDecoder{buf: payload}
	var r Record
	r.LSN = d.uvarint()
	r.Kind = Kind(d.byte())
	switch r.Kind {
	case KindAddQuery, KindAddStream:
		r.ID = d.varint()
		r.Graph = d.graph()
	case KindRemoveQuery:
		r.ID = d.varint()
	case KindStepAll:
		n := d.uvarint()
		r.Changes = make(map[int64]graph.ChangeSet, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			id := d.varint()
			cs := d.changeSet()
			if _, dup := r.Changes[id]; dup {
				d.err = fmt.Errorf("wal: duplicate stream %d in step record", id)
			}
			r.Changes[id] = cs
		}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("wal: unknown record kind %d", r.Kind)
		}
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.pos != len(payload) {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(payload)-d.pos)
	}
	return r, nil
}
