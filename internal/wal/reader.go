package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Framing: the file starts with an 8-byte magic, followed by frames of
//
//	[u32 payload length][u32 CRC32-IEEE of payload][payload]
//
// with fixed-width little-endian header fields. A record is valid only if its
// whole frame is present, the CRC matches, the payload parses, and its LSN is
// strictly greater than the previous record's. The first violation marks the
// torn tail: everything before it is the valid prefix, everything from it on
// is discarded. This is exactly the write-side guarantee inverted — appends
// are single sequential writes, so a crash can only tear the final frame.
const (
	frameHeaderSize = 8
	// maxPayload bounds a single record. A length field above it is treated
	// as corruption rather than an allocation request, so a torn length
	// prefix cannot make recovery attempt a multi-gigabyte read.
	maxPayload = 64 << 20
	// minPayload is the smallest parseable payload: 1-byte LSN varint plus
	// the kind byte.
	minPayload = 2
)

// fileMagic identifies a WAL file (8 bytes, version 1 in the last byte).
var fileMagic = []byte("nntwal\x00\x01")

// scanResult summarizes one pass over the frame region of a log file.
type scanResult struct {
	// validLen is the byte length of the valid frame prefix (excluding the
	// file magic).
	validLen int64
	// lastLSN is the LSN of the final valid record (0 when none).
	lastLSN uint64
	// records counts valid records.
	records int
	// torn reports whether trailing bytes after the valid prefix were
	// present (and must be truncated).
	torn bool
}

// scanFrames walks data (the file content after the magic), invoking fn for
// each valid record in order. It stops at the first torn or corrupt frame.
// A non-nil error from fn aborts the scan and is returned verbatim; framing
// corruption is not an error, it just ends the valid prefix.
func scanFrames(data []byte, fn func(Record) error) (scanResult, error) {
	var res scanResult
	pos := int64(0)
	n := int64(len(data))
	for {
		if n-pos < frameHeaderSize {
			res.torn = pos < n
			break
		}
		payloadLen := int64(binary.LittleEndian.Uint32(data[pos:]))
		sum := binary.LittleEndian.Uint32(data[pos+4:])
		if payloadLen < minPayload || payloadLen > maxPayload || pos+frameHeaderSize+payloadLen > n {
			res.torn = true
			break
		}
		payload := data[pos+frameHeaderSize : pos+frameHeaderSize+payloadLen]
		if crc32.ChecksumIEEE(payload) != sum {
			res.torn = true
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			res.torn = true
			break
		}
		if rec.LSN <= res.lastLSN {
			// LSNs are strictly increasing within a file; a regression means
			// the frame boundary landed on stale bytes.
			res.torn = true
			break
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		pos += frameHeaderSize + payloadLen
		res.validLen = pos
		res.lastLSN = rec.LSN
		res.records++
	}
	return res, nil
}
