package obs

// Collector is implemented by components (filters, monitors) that can report
// point-in-time samples — typically structure sizes that are cheaper to
// compute on demand than to maintain as registered gauges.
//
// CollectMetrics must not mutate the collector's observable state: it is
// invoked on read paths that may run concurrently with other readers (see
// the concurrency contract in internal/server). Emitting the same name more
// than once is allowed; Gather sums duplicates, which lets a sharded engine
// aggregate the per-shard emissions of identical filter instances.
type Collector interface {
	CollectMetrics(emit func(name string, value float64))
}

// Gather runs c and returns its samples summed by name. Samples with
// invalid Prometheus names are dropped.
func Gather(c Collector) map[string]float64 {
	out := make(map[string]float64)
	c.CollectMetrics(func(name string, value float64) {
		if !ValidMetricName(name) {
			return
		}
		out[name] += value
	})
	return out
}
