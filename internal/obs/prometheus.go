package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// promWriter accumulates Prometheus text-format lines.
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) line(parts ...string) {
	if p.err != nil {
		return
	}
	for _, s := range parts {
		if _, p.err = p.w.WriteString(s); p.err != nil {
			return
		}
	}
	p.err = p.w.WriteByte('\n')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func (p *promWriter) header(name, help, kind string) {
	if help != "" {
		p.line("# HELP ", name, " ", help)
	}
	p.line("# TYPE ", name, " ", kind)
}

func (c *Counter) write(p *promWriter) {
	p.header(c.name, c.help, "counter")
	p.line(c.name, " ", formatInt(c.Value()))
}

func (g *Gauge) write(p *promWriter) {
	p.header(g.name, g.help, "gauge")
	p.line(g.name, " ", formatFloat(g.Value()))
}

func (h *Histogram) write(p *promWriter) {
	p.header(h.name, h.help, "histogram")
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		p.line(h.name, `_bucket{le="`, formatFloat(bound), `"} `, formatInt(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	p.line(h.name, `_bucket{le="+Inf"} `, formatInt(cum))
	p.line(h.name, "_sum ", formatFloat(h.Sum()))
	p.line(h.name, "_count ", formatInt(h.Count()))
}

// WritePrometheus renders every registered instrument in registration order
// as Prometheus text format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]metric, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()
	p := &promWriter{w: bufio.NewWriter(w)}
	for _, m := range metrics {
		m.write(p)
	}
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// WriteSamples renders point-in-time samples (for example those gathered
// from a Collector) as untyped metrics in sorted name order.
func WriteSamples(w io.Writer, samples map[string]float64) error {
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	p := &promWriter{w: bufio.NewWriter(w)}
	for _, name := range names {
		p.line("# TYPE ", name, " untyped")
		p.line(name, " ", formatFloat(samples[name]))
	}
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
