// Package obs is a lightweight, dependency-free observability layer for the
// monitoring engine: atomic counters, gauges, and fixed-bucket latency
// histograms collected in a Registry that renders Prometheus text format.
//
// Instruments are safe for concurrent use. Streaming-graph-search systems
// need continuous per-timestamp telemetry (selectivity, latency, structure
// sizes) because filter effectiveness drifts as the stream evolves; this
// package is the measurement substrate that the engine, the join filters,
// and the HTTP server record into.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative delta %d on counter %s", delta, c.name))
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning 1µs–10s —
// wide enough for both per-timestamp filter maintenance (typically µs–ms)
// and full re-mining filters such as gIndex (seconds).
var DefBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// exposition. Bucket bounds are upper bounds in ascending order; an implicit
// +Inf bucket is always present.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Int64 // len(bounds)+1, last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric is the exposition surface shared by all instrument kinds.
type metric interface {
	metricName() string
	write(w *promWriter)
}

func (c *Counter) metricName() string   { return c.name }
func (g *Gauge) metricName() string     { return g.name }
func (h *Histogram) metricName() string { return h.name }

// Registry holds named instruments. Registration methods return the existing
// instrument when the name is already registered with the same kind, and
// panic on a kind mismatch (a programming error).
type Registry struct {
	mu      sync.Mutex
	ordered []metric
	byName  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as %T", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as %T", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Histogram registers (or retrieves) a histogram. A nil or empty bounds
// slice selects DefBuckets. Bounds must be strictly ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %s already registered as %T", name, m))
		}
		return h
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

func (r *Registry) register(m metric) {
	if !ValidMetricName(m.metricName()) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.metricName()))
	}
	r.byName[m.metricName()] = m
	r.ordered = append(r.ordered, m)
}

// ValidMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*. The registry panics on names that fail it, and
// the nntlint metricname analyzer enforces it at build time for constant
// names, so invalid names never survive to a scrape.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
