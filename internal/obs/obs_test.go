package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("name", "")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name should panic")
		}
	}()
	NewRegistry().Counter("0bad name", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(7)
	r.Gauge("ratio", "fraction").Set(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\nreqs_total 7\n",
		"# TYPE ratio gauge\nratio 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSamplesSorted(t *testing.T) {
	var b strings.Builder
	if err := WriteSamples(&b, map[string]float64{"zzz": 1, "aaa": 2}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "aaa 2") || !strings.Contains(out, "zzz 1") {
		t.Fatalf("samples missing:\n%s", out)
	}
	if strings.Index(out, "aaa") > strings.Index(out, "zzz") {
		t.Fatalf("samples not sorted:\n%s", out)
	}
}

type emitPair struct {
	name  string
	value float64
}

type staticCollector []emitPair

func (s staticCollector) CollectMetrics(emit func(string, float64)) {
	for _, p := range s {
		emit(p.name, p.value)
	}
}

func TestGatherSumsDuplicatesAndDropsInvalid(t *testing.T) {
	got := Gather(staticCollector{
		{"size", 3}, {"size", 4}, {"other", 1}, {"bad name", 9},
	})
	if len(got) != 2 || got["size"] != 7 || got["other"] != 1 {
		t.Fatalf("gathered = %v", got)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 1000)
			}
		}()
	}
	// Concurrent scrapes must not race with writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0012)
		}
	})
}
