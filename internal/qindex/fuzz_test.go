package qindex

import (
	"math/rand"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// decodeFuzzVec reads one small vector from the byte stream: each entry is
// one byte of dimension (folded into a 16-dim pool so supports collide) and
// one byte of count.
func decodeFuzzVec(data []byte) (npv.PackedVector, []byte) {
	if len(data) == 0 {
		return npv.PackedVector{}, data
	}
	n := int(data[0] % 4)
	data = data[1:]
	v := make(npv.Vector)
	for i := 0; i < n && len(data) >= 2; i++ {
		v[npv.Dim(data[0]%16)] = int32(data[1]%8) + 1
		data = data[2:]
	}
	return npv.Pack(v), data
}

// FuzzQindexCandidates drives the soundness property from arbitrary bytes:
// an index over byte-derived query vectors must always name every query
// whose dominance bits flip across a byte-derived seal transition. This is
// the same invariant as TestAffectedQueriesSupersetQuickcheck with the
// corpus exploring the decode space instead of a fixed distribution.
func FuzzQindexCandidates(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 3, 2, 5, 1, 1, 4, 3, 2, 1, 3, 3, 1, 2})
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		b := make([]byte, 4+r.Intn(64))
		r.Read(b)
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nq := 1 + int(data[0]%6)
		flags := data[1]
		data = data[2:]

		ix := New()
		vectors := make(map[Key]npv.PackedVector)
		for q := 0; q < nq; q++ {
			var p npv.PackedVector
			p, data = decodeFuzzVec(data)
			k := Key{Query: core.QueryID(q), Vertex: 0}
			ix.Add(k, p)
			vectors[k] = p
		}
		ix.Seal()
		if flags&1 != 0 && nq > 1 {
			// Post-seal churn: drop query 0, add a fresh one.
			ix.RemoveQuery(0)
			delete(vectors, Key{Query: 0, Vertex: 0})
			var p npv.PackedVector
			p, data = decodeFuzzVec(data)
			k := Key{Query: core.QueryID(nq), Vertex: 0}
			ix.Add(k, p)
			vectors[k] = p
		}

		var deltas []npv.DirtyDelta
		for v := 0; len(data) > 0 && v < 4; v++ {
			dl := npv.DirtyDelta{Vertex: graph.VertexID(v)}
			kind := data[0] % 4
			data = data[1:]
			if kind == 1 || kind == 3 {
				dl.Old, data = decodeFuzzVec(data)
				dl.HadOld = true
			}
			if kind == 2 || kind == 3 {
				dl.New, data = decodeFuzzVec(data)
				dl.HasNew = true
			}
			deltas = append(deltas, dl)
		}

		got := ix.AffectedQueries(deltas)
		member := make(map[core.QueryID]struct{}, len(got))
		for _, q := range got {
			member[q] = struct{}{}
		}
		for _, q := range bruteAffected(vectors, deltas) {
			if _, ok := member[q]; !ok {
				t.Fatalf("affected query %d missing from candidates %v (vectors %v, deltas %+v)",
					q, got, vectors, deltas)
			}
		}
	})
}
