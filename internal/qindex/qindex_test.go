package qindex

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// vec builds a packed vector from (dim, count) pairs.
func vec(pairs ...int) npv.PackedVector {
	v := make(npv.Vector, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		v[npv.Dim(pairs[i])] = int32(pairs[i+1])
	}
	return npv.Pack(v)
}

func key(q, v int) Key {
	return Key{Query: core.QueryID(q), Vertex: graph.VertexID(v)}
}

func TestIndexLifecycle(t *testing.T) {
	ix := New()
	if ix.Sealed() {
		t.Fatal("fresh index reports sealed")
	}
	ix.Add(key(0, 0), vec(1, 3, 2, 1))
	ix.Add(key(0, 1), vec(1, 5))
	ix.Add(key(1, 0), vec(2, 2))
	ix.Add(key(2, 0), vec()) // empty support
	if got := ix.QueryCount(); got != 3 {
		t.Fatalf("QueryCount = %d; want 3", got)
	}
	if got := ix.PostingCount(); got != 4 {
		t.Fatalf("PostingCount = %d; want 4", got)
	}
	if got := ix.DimCount(); got != 2 {
		t.Fatalf("DimCount = %d; want 2", got)
	}
	e0 := ix.Epoch()
	ix.Seal()
	if !ix.Sealed() || ix.Epoch() != e0+1 {
		t.Fatalf("Seal: sealed=%v epoch=%d; want true, %d", ix.Sealed(), ix.Epoch(), e0+1)
	}
	ix.Seal() // idempotent
	if ix.Epoch() != e0+1 {
		t.Fatalf("second Seal bumped epoch to %d", ix.Epoch())
	}

	// Column 1 sorted ascending by count: (0,0)@3, (0,1)@5.
	col := ix.Postings(npv.Dim(1))
	if len(col) != 2 || col[0].Count != 3 || col[1].Count != 5 {
		t.Fatalf("column 1 = %v", col)
	}
	if UpperBound(col, 2) != 0 || UpperBound(col, 3) != 1 || UpperBound(col, 9) != 2 {
		t.Fatalf("UpperBound over %v misplaced", col)
	}
	if !ix.HasDim(npv.Dim(2)) || ix.HasDim(npv.Dim(7)) {
		t.Fatal("HasDim wrong")
	}

	// Post-seal add inserts at the sorted position and bumps the epoch.
	ix.Add(key(3, 0), vec(1, 4))
	if ix.Epoch() != e0+2 {
		t.Fatalf("post-seal Add epoch = %d; want %d", ix.Epoch(), e0+2)
	}
	col = ix.Postings(npv.Dim(1))
	if len(col) != 3 || col[1].Count != 4 || col[1].Key != key(3, 0) {
		t.Fatalf("post-seal insert misplaced: %v", col)
	}

	// Removal tears down every posting and the empty-support record.
	if !ix.RemoveQuery(core.QueryID(0)) {
		t.Fatal("RemoveQuery(0) = false")
	}
	if ix.RemoveQuery(core.QueryID(0)) {
		t.Fatal("double RemoveQuery(0) = true")
	}
	if got := ix.PostingCount(); got != 2 {
		t.Fatalf("PostingCount after removal = %d; want 2", got)
	}
	if !ix.RemoveQuery(core.QueryID(2)) {
		t.Fatal("RemoveQuery(2) = false")
	}
	deltas := []npv.DirtyDelta{{Vertex: 0, New: vec(1, 9, 2, 9), HasNew: true}}
	got := ix.AffectedQueries(deltas)
	want := []core.QueryID{1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AffectedQueries after removals = %v; want %v", got, want)
	}
}

func TestAffectedQueriesPanicsUnsealed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AffectedQueries on an unsealed index did not panic")
		}
	}()
	ix := New()
	ix.Add(key(0, 0), vec(1, 1))
	ix.AffectedQueries([]npv.DirtyDelta{{Vertex: 0, New: vec(1, 1), HasNew: true}})
}

func TestAffectedQueriesCases(t *testing.T) {
	build := func() *Index {
		ix := New()
		ix.Add(key(0, 0), vec(1, 3))       // flips when dim 1 crosses 3
		ix.Add(key(1, 0), vec(1, 3, 2, 1)) // needs dims 1 and 2
		ix.Add(key(2, 0), vec(5, 1))       // unrelated dimension
		ix.Add(key(3, 0), vec())           // empty support: presence only
		ix.Seal()
		return ix
	}
	for _, tc := range []struct {
		name   string
		deltas []npv.DirtyDelta
		want   []core.QueryID
	}{
		{
			// Count moved 2→4 in dim 1: crosses count 3 of queries 0 and 1.
			// No presence change, so the empty-support query 3 is spared; the
			// dim-5 query 2 is never reached.
			name:   "count crossing",
			deltas: []npv.DirtyDelta{{Vertex: 0, Old: vec(1, 2, 2, 1), New: vec(1, 4, 2, 1), HadOld: true, HasNew: true}},
			want:   []core.QueryID{0, 1},
		},
		{
			// Count moved 4→5: no posting in (4,5], nothing affected.
			name:   "no crossing",
			deltas: []npv.DirtyDelta{{Vertex: 0, Old: vec(1, 4, 2, 1), New: vec(1, 5, 2, 1), HadOld: true, HasNew: true}},
			want:   []core.QueryID{},
		},
		{
			// Vertex appeared reaching dim 1 only: query 0 could be newly
			// dominated; query 1 needs dim 2 too (signature prunes it);
			// presence pulls in the empty-support query 3.
			name:   "vertex added",
			deltas: []npv.DirtyDelta{{Vertex: 0, New: vec(1, 9), HasNew: true}},
			want:   []core.QueryID{0, 3},
		},
		{
			// Vertex retired: the dominance its last sealed vector could have
			// held is withdrawn, and presence pulls in query 3.
			name:   "vertex retired",
			deltas: []npv.DirtyDelta{{Vertex: 0, Old: vec(1, 9, 2, 9), HadOld: true}},
			want:   []core.QueryID{0, 1, 3},
		},
		{
			// Added and retired within one timestamp: no sealed vector ever
			// existed on either side, nothing to re-evaluate.
			name:   "ghost vertex",
			deltas: []npv.DirtyDelta{{Vertex: 0}},
			want:   []core.QueryID{},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := build().AffectedQueries(tc.deltas)
			if got == nil {
				got = []core.QueryID{}
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("AffectedQueries = %v; want %v", got, tc.want)
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	c0, p0 := Counters()
	ix := New()
	ix.Add(key(0, 0), vec(1, 3))
	ix.Add(key(1, 0), vec(9, 1))
	ix.Seal()
	got := ix.AffectedQueries([]npv.DirtyDelta{
		{Vertex: 0, Old: vec(1, 1), New: vec(1, 5), HadOld: true, HasNew: true},
	})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("AffectedQueries = %v", got)
	}
	c1, p1 := Counters()
	if c1-c0 != 1 || p1-p0 != 1 {
		t.Fatalf("counters moved by (%d, %d); want (1, 1)", c1-c0, p1-p0)
	}
	seen := map[string]float64{}
	Stats{}.CollectMetrics(func(name string, value float64) { seen[name] = value })
	if seen["nntstream_qindex_candidates_total"] != float64(c1) ||
		seen["nntstream_qindex_pruned_total"] != float64(p1) {
		t.Fatalf("Stats emitted %v; counters are (%d, %d)", seen, c1, p1)
	}
}

// randomVec draws a vector over a small dimension pool so supports overlap
// often — the regime where candidate generation has to be careful.
func randomVec(r *rand.Rand) npv.PackedVector {
	v := make(npv.Vector)
	for _, d := range []npv.Dim{1, 2, 3, 4, 5} {
		if r.Intn(2) == 0 {
			v[d] = int32(1 + r.Intn(6))
		}
	}
	return npv.Pack(v)
}

// randomDelta draws one vertex transition: changed, added, retired, or
// ghost (added and retired within the timestamp).
func randomDelta(r *rand.Rand, v graph.VertexID) npv.DirtyDelta {
	dl := npv.DirtyDelta{Vertex: v}
	if r.Intn(4) > 0 {
		dl.Old, dl.HadOld = randomVec(r), true
	}
	if r.Intn(4) > 0 {
		dl.New, dl.HasNew = randomVec(r), true
	}
	return dl
}

// bruteAffected is the ground truth AffectedQueries must cover: the queries
// owning a vector whose dominance by some dirty vertex differs between the
// two sides of its seal transition. Verdicts of a filter are monotone
// functions of exactly these per-(vertex, vector) dominance bits, so a
// query outside this set cannot have changed verdict.
func bruteAffected(vectors map[Key]npv.PackedVector, deltas []npv.DirtyDelta) []core.QueryID {
	set := make(map[core.QueryID]struct{})
	for k, u := range vectors {
		for _, dl := range deltas {
			before := dl.HadOld && dl.Old.Dominates(u)
			after := dl.HasNew && dl.New.Dominates(u)
			if before != after {
				set[k.Query] = struct{}{}
				break
			}
		}
	}
	out := make([]core.QueryID, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestAffectedQueriesSupersetQuickcheck is the soundness property: across
// random query sets and random seal transitions, the candidate set always
// contains every query whose dominance bits actually flipped — no false
// negatives, ever. The contract allows false positives (the filters
// re-evaluate candidates exactly), but the implementation settles every
// range hit with the packed kernel and is exact at dominance-bit
// granularity, so the test pins full equality: weakening the per-posting
// flip test would silently re-inflate candidate sets and the sweep bench.
func TestAffectedQueriesSupersetQuickcheck(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		ix := New()
		vectors := make(map[Key]npv.PackedVector)
		nq := 1 + r.Intn(8)
		for q := 0; q < nq; q++ {
			for vtx := 0; vtx < 1+r.Intn(3); vtx++ {
				k := key(q, vtx)
				p := randomVec(r)
				vectors[k] = p
				ix.Add(k, p)
			}
		}
		ix.Seal()
		// Dynamic churn: remove one query, re-add another, post-seal.
		if nq > 2 && r.Intn(2) == 0 {
			victim := core.QueryID(r.Intn(nq))
			ix.RemoveQuery(victim)
			for k := range vectors {
				if k.Query == victim {
					delete(vectors, k)
				}
			}
			k := key(nq, 0)
			p := randomVec(r)
			vectors[k] = p
			ix.Add(k, p)
		}
		for trial := 0; trial < 20; trial++ {
			var deltas []npv.DirtyDelta
			for v := 0; v < 1+r.Intn(4); v++ {
				deltas = append(deltas, randomDelta(r, graph.VertexID(v)))
			}
			got := ix.AffectedQueries(deltas)
			if got == nil {
				got = []core.QueryID{}
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("seed=%d trial=%d: candidates not sorted: %v", seed, trial, got)
			}
			if brute := bruteAffected(vectors, deltas); !reflect.DeepEqual(got, brute) {
				t.Fatalf("seed=%d trial=%d: candidates %v != affected %v (deltas %+v)",
					seed, trial, got, brute, deltas)
			}
		}
	}
}
