// Package qindex is an exact candidate-generating index over the packed
// NPV vectors of registered queries, the structure that makes per-timestamp
// query matching sub-linear in the number of registered queries.
//
// Every join strategy answers the same question each timestamp: which of
// the registered queries could a dirty stream vertex have newly dominated
// or un-dominated (Lemma 4.2)? Scanning all queries is O(queries) per dirty
// vertex — the wall at "millions of users each registering queries". The
// index inverts the query set instead, borrowing the candidate-generation
// discipline of graph NN indexes but adapted from metric geometry to exact
// dominance, where sound pruning needs no distance bound:
//
//   - One sorted posting list per NPV dimension ("column"), holding every
//     registered query vector's count in that dimension. A stream vertex
//     whose count in dimension d moved from a to b can only have flipped
//     the per-dimension predicate v[d] ≥ u[d] for query vectors u with
//     u[d] in (min(a,b), max(a,b)] — two binary searches per changed
//     dimension retrieve exactly those postings.
//   - Each posting carries its whole vector's 64-bit support signature
//     (npv.PackedVector.Sig). A query vector u can be dominated by a stream
//     vector p only if sig(u) &^ sig(p) == 0, so postings whose signature is
//     not a subset of the before-vector's nor the after-vector's signature
//     are pruned without touching the query again: their dominance verdict
//     was false on both sides of the transition.
//   - Each posting also carries its whole packed vector, so a range hit is
//     settled on the spot by the packed kernel against the *one* dirty
//     vertex: the query is a candidate iff old-dominates ≠ new-dominates.
//     That test is two small sorted merges — orders of magnitude cheaper
//     than the full re-evaluation (every vector of the query against every
//     stream vertex) it saves when the bit did not flip, which is the
//     common case on streams whose counts drift by ±1.
//
// Dominance of u by v flips only if some per-dimension predicate of u's
// support flips, so the union of the per-dimension crossings over a dirty
// vertex's (old, new) transition covers every query vector whose dominance
// by that vertex changed; the per-posting flip test then keeps exactly
// those. A query outside the result provably kept every per-(vertex,
// vector) dominance bit, hence its verdict — a monotone function of those
// bits — is unchanged. No false negatives by construction; the caller
// re-evaluates the returned queries with the ordinary kernel, so filter
// answers are bit-identical to the unindexed scan.
//
// Lifecycle mirrors the packed stream cache: the index is epoch-sealed.
// Registration appends cheaply; Seal sorts the columns once; post-seal
// mutations (dynamic query add/remove) keep the columns sorted in place and
// bump the epoch. Between mutations the index is immutable, so the join
// pool's fan-out reads it race-free — mutation only ever happens on the
// engines' serialized registration path.
package qindex

import (
	"sort"
	"sync/atomic"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// Key identifies one registered query vector: the owning query plus a
// vector identity within it. Strategies that keep per-vertex vectors (DSC)
// use the query-graph vertex ID; strategies that keep positional slices
// (NL, Skyline's maximal set) use the slice index.
type Key struct {
	Query  core.QueryID
	Vertex graph.VertexID
}

// Posting is one column entry: a registered query vector's count in the
// column's dimension, the vector's support signature for the subset
// pre-filter, and the packed vector itself for the exact flip test (the
// slices inside Vec are shared with the registered vector, not copied).
// Postings are ordered by (Count, Key) within a sealed column.
type Posting struct {
	Key   Key
	Count int32
	Sig   uint64
	Vec   npv.PackedVector
}

// Candidate-generation telemetry: query verdicts re-evaluated because the
// index named them, and query verdicts proven unchanged without a dominance
// test. Process-global atomics (AffectedQueries runs concurrently inside
// the join pool's fan-out, and a sharded engine holds one index per shard);
// Stats exposes them as an obs.Collector on /v1/metrics.
var (
	candidatesTotal atomic.Int64
	prunedTotal     atomic.Int64
)

// Stats is an obs.Collector (satisfied structurally; qindex does not import
// obs) reporting the index's process-global selectivity counters.
type Stats struct{}

// CollectMetrics emits the candidate and pruned totals.
func (Stats) CollectMetrics(emit func(name string, value float64)) {
	emit("nntstream_qindex_candidates_total", float64(candidatesTotal.Load()))
	emit("nntstream_qindex_pruned_total", float64(prunedTotal.Load()))
}

// Counters returns the raw totals behind Stats, for tests.
func Counters() (candidates, pruned int64) {
	return candidatesTotal.Load(), prunedTotal.Load()
}

// Index is the candidate-generating index over one filter's registered
// query vectors. The zero value is not ready; use New.
type Index struct {
	cols map[npv.Dim][]Posting
	// vectors counts registered vectors per query (including empty-support
	// ones); its key set is the candidate universe AffectedQueries prunes.
	vectors map[core.QueryID]int
	// empties counts empty-support vectors per query. An empty vector is
	// dominated by any present vertex, so its verdict can flip only when
	// vertex presence changes — those queries are indexed here instead of
	// in the columns.
	empties map[core.QueryID]int
	sealed  bool
	epoch   uint64
}

// New returns an empty, unsealed index.
func New() *Index {
	return &Index{
		cols:    make(map[npv.Dim][]Posting),
		vectors: make(map[core.QueryID]int),
		empties: make(map[core.QueryID]int),
	}
}

// Add registers one query vector under k. Before Seal, postings are
// appended (sorted once at Seal); afterwards each posting is inserted at
// its sorted position and the epoch advances. Registering the same key
// twice is a caller bug and is not detected here — filters already reject
// duplicate query IDs.
func (ix *Index) Add(k Key, p npv.PackedVector) {
	ix.vectors[k.Query]++
	if p.Len() == 0 {
		ix.empties[k.Query]++
		if ix.sealed {
			ix.epoch++
		}
		return
	}
	sig := p.Sig()
	for i := 0; i < p.Len(); i++ {
		d := p.Dim(i)
		e := Posting{Key: k, Count: p.Count(i), Sig: sig, Vec: p}
		col := ix.cols[d]
		if !ix.sealed {
			ix.cols[d] = append(col, e)
			continue
		}
		at := sort.Search(len(col), func(i int) bool { return !postingLess(col[i], e) })
		col = append(col, Posting{})
		copy(col[at+1:], col[at:])
		col[at] = e
		ix.cols[d] = col
	}
	if ix.sealed {
		ix.epoch++
	}
}

// RemoveQuery drops every posting of q and reports whether q was
// registered. Columns left empty are deleted, so HasDim stays an exact
// "some query uses this dimension" test.
func (ix *Index) RemoveQuery(q core.QueryID) bool {
	if _, ok := ix.vectors[q]; !ok {
		return false
	}
	delete(ix.vectors, q)
	delete(ix.empties, q)
	for d, col := range ix.cols {
		kept := col[:0]
		for _, e := range col {
			if e.Key.Query != q {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(ix.cols, d)
		} else {
			ix.cols[d] = kept
		}
	}
	if ix.sealed {
		ix.epoch++
	}
	return true
}

// Seal sorts the build-phase columns and marks the index readable. The
// first call does the one-time sort; later calls are no-ops, so filters
// may call it unconditionally at every evaluation entry point.
func (ix *Index) Seal() {
	if ix.sealed {
		return
	}
	ix.sealed = true
	ix.epoch++
	for _, col := range ix.cols {
		sort.Slice(col, func(i, j int) bool { return postingLess(col[i], col[j]) })
	}
}

// postingLess orders postings by count, breaking ties by key so sealed
// column order is deterministic (the mapdeterm discipline: ties must not
// depend on registration map iteration).
//
//nnt:hotpath
func postingLess(a, b Posting) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	if a.Key.Query != b.Key.Query {
		return a.Key.Query < b.Key.Query
	}
	return a.Key.Vertex < b.Key.Vertex
}

// Sealed reports whether Seal has run.
func (ix *Index) Sealed() bool { return ix.sealed }

// Epoch counts seal generations: the one-time Seal plus every post-seal
// mutation. Readers that cache derived state can use it as a validity
// stamp, exactly like npv.Space.Epoch.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// QueryCount reports the number of registered queries.
func (ix *Index) QueryCount() int { return len(ix.vectors) }

// PostingCount reports the total number of column entries.
func (ix *Index) PostingCount() int {
	n := 0
	for _, col := range ix.cols {
		n += len(col)
	}
	return n
}

// DimCount reports the number of non-empty columns.
func (ix *Index) DimCount() int { return len(ix.cols) }

// HasDim reports whether any registered query vector uses dimension d.
func (ix *Index) HasDim(d npv.Dim) bool {
	_, ok := ix.cols[d]
	return ok
}

// Postings returns dimension d's sorted column (nil when unused). The
// slice is owned by the index: callers must not mutate it, and must not
// retain it across a mutation. DSC reads its crossed-entry ranges straight
// from these columns.
func (ix *Index) Postings(d npv.Dim) []Posting { return ix.cols[d] }

// UpperBound returns the number of postings with Count ≤ val — the
// position a stream vertex with count val occupies in the column.
//
//nnt:hotpath
func UpperBound(col []Posting, val int32) int {
	return sort.Search(len(col), func(i int) bool { return col[i].Count > val })
}

// AffectedQueries returns the queries whose dominance verdict against the
// stream could have changed across the given seal transition, in ascending
// QueryID order. The contract the filters rely on is "never misses an
// affected query"; the implementation is in fact exact at the granularity
// of per-(vertex, vector) dominance bits — a query is returned iff some of
// its vectors' dominance by some dirty vertex flipped (treating an absent
// vertex as dominating nothing, so empty-support vectors flip with
// presence). The caller re-evaluates exactly these and keeps every other
// verdict.
//
// It must only be called on a sealed index. It reads immutable state plus
// atomic counters, so concurrent calls (one per stream inside the batch
// fan-out) are race-free.
func (ix *Index) AffectedQueries(deltas []npv.DirtyDelta) []core.QueryID {
	if !ix.sealed {
		panic("qindex: AffectedQueries before Seal")
	}
	if len(ix.vectors) == 0 || len(deltas) == 0 {
		return nil
	}
	set := make(map[core.QueryID]struct{})
	presence := false
	for _, dl := range deltas {
		switch {
		case dl.HadOld && dl.HasNew:
			ix.collectChanged(dl.Old, dl.New, set)
		case dl.HasNew:
			// Vertex appeared: it can only add dominance, and only over
			// vectors whose support it reaches.
			presence = true
			ix.collectReachable(dl.New, set)
		case dl.HadOld:
			// Vertex retired: it can only withdraw dominance it could have
			// held, bounded by its last sealed vector.
			presence = true
			ix.collectReachable(dl.Old, set)
		}
	}
	if presence {
		// Empty-support vectors are dominated by any present vertex, so
		// their queries are affected whenever presence changed (the stream
		// may have gained its first vertex or lost its last).
		for q := range ix.empties {
			set[q] = struct{}{}
		}
	}
	out := make([]core.QueryID, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	candidatesTotal.Add(int64(len(out)))
	prunedTotal.Add(int64(len(ix.vectors) - len(out)))
	return out
}

// collectChanged walks the two sorted supports of a present-before-and-
// after vertex in lockstep. A query vector's per-dimension predicate
// v[d] ≥ u[d] flipped iff u[d] lies in (min(old[d],new[d]), max(...)]
// (absent dimensions count as zero), so each differing dimension turns
// into one crossed-range scan; range hits are settled exactly by
// collectChangedRange's flip test.
//
//nnt:hotpath
func (ix *Index) collectChanged(old, new npv.PackedVector, set map[core.QueryID]struct{}) {
	sigOld, sigNew := old.Sig(), new.Sig()
	i, j := 0, 0
	for i < old.Len() || j < new.Len() {
		switch {
		case j == new.Len() || (i < old.Len() && old.Dim(i) < new.Dim(j)):
			ix.collectChangedRange(old.Dim(i), 0, old.Count(i), old, new, sigOld, sigNew, set)
			i++
		case i == old.Len() || new.Dim(j) < old.Dim(i):
			ix.collectChangedRange(new.Dim(j), 0, new.Count(j), old, new, sigOld, sigNew, set)
			j++
		default:
			if oc, nc := old.Count(i), new.Count(j); oc != nc {
				lo, hi := oc, nc
				if lo > hi {
					lo, hi = hi, lo
				}
				ix.collectChangedRange(old.Dim(i), lo, hi, old, new, sigOld, sigNew, set)
			}
			i++
			j++
		}
	}
}

// collectChangedRange examines dimension d's postings with lo < Count ≤ hi
// for a vertex present on both sides of the transition. The signature test
// drops vectors that could not have been dominated on either side; survivors
// are settled exactly — the query is affected iff dominance by this vertex
// differs between the old and new vector. Queries already in the set skip
// every test.
//
//nnt:hotpath
func (ix *Index) collectChangedRange(d npv.Dim, lo, hi int32, old, new npv.PackedVector, sigOld, sigNew uint64, set map[core.QueryID]struct{}) {
	col := ix.cols[d]
	if len(col) == 0 {
		return
	}
	for _, e := range col[UpperBound(col, lo):UpperBound(col, hi)] {
		if _, dup := set[e.Key.Query]; dup {
			continue
		}
		if e.Sig&^sigOld != 0 && e.Sig&^sigNew != 0 {
			continue
		}
		if old.Dominates(e.Vec) != new.Dominates(e.Vec) {
			set[e.Key.Query] = struct{}{}
		}
	}
}

// collectReachable collects the queries a one-sided vertex (appeared or
// retired, vector p on its present side) flips: exactly the vectors p
// dominates, since the absent side dominates nothing. Any dominated vector
// u has supp(u) ⊆ supp(p) with u[d] ≤ p[d], so u appears in the (0, p[d]]
// range of every dimension of its own support — the union over p's
// dimensions cannot miss it.
//
//nnt:hotpath
func (ix *Index) collectReachable(p npv.PackedVector, set map[core.QueryID]struct{}) {
	sig := p.Sig()
	for i := 0; i < p.Len(); i++ {
		col := ix.cols[p.Dim(i)]
		if len(col) == 0 {
			continue
		}
		for _, e := range col[:UpperBound(col, p.Count(i))] {
			if _, dup := set[e.Key.Query]; dup {
				continue
			}
			if e.Sig&^sig != 0 {
				continue
			}
			if p.Dominates(e.Vec) {
				set[e.Key.Query] = struct{}{}
			}
		}
	}
}
