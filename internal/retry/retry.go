// Package retry is the module's shared backoff engine: capped exponential
// delays with multiplicative jitter, driven under a context so cancellation
// always wins over sleeping. The cluster transport (internal/cluster) wraps
// every inter-node RPC in a Policy, and cmd/streamwatch uses one to reconnect
// to a remote monitor; both need identical semantics — deadline-aware sleeps,
// a hard attempt cap, and a way for callers to mark an error as not worth
// retrying.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes one retry discipline. The zero value is usable: it takes
// the defaults documented on each field.
type Policy struct {
	// MaxAttempts bounds the total number of calls (first try included).
	// Zero or negative selects DefaultMaxAttempts.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure (default
	// DefaultBaseDelay). Each subsequent failure multiplies it by Multiplier
	// up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter delay (default DefaultMaxDelay).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2; values below 1
	// are treated as 1).
	Multiplier float64
	// Jitter is the multiplicative jitter fraction in [0, 1): each delay is
	// scaled by a uniform factor in [1-Jitter, 1+Jitter] so synchronized
	// clients spread out. Default DefaultJitter; negative disables.
	Jitter float64

	// Rand supplies the jitter uniform in [0, 1); nil uses math/rand. Tests
	// inject a deterministic source.
	Rand func() float64
	// Sleep waits for d or until ctx is done; nil uses a timer. Tests inject
	// a virtual clock.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Defaults for the zero Policy.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 20 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultJitter      = 0.2
)

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately and returns the wrapped error
// unmodified. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// Delay returns the jittered delay to wait after the given zero-based failed
// attempt. The pre-jitter value grows as BaseDelay·Multiplier^attempt, capped
// at MaxDelay; jitter then scales it by a uniform factor in
// [1-Jitter, 1+Jitter].
func (p Policy) Delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = DefaultMaxDelay
	}
	mult := p.Multiplier
	if mult < 1 {
		if mult == 0 {
			mult = 2
		} else {
			mult = 1
		}
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	jitter := p.Jitter
	if p.Jitter == 0 {
		jitter = DefaultJitter
	}
	if jitter > 0 {
		u := p.uniform()
		d *= 1 + jitter*(2*u-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func (p Policy) uniform() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	return rand.Float64()
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do calls fn until it returns nil, returns an error marked Permanent, the
// attempt budget is exhausted, or ctx is done. Between attempts it sleeps the
// jittered backoff delay; a context cancellation during the sleep wins and is
// folded into the returned error alongside the last attempt's failure.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	attempts := p.maxAttempts()
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("retry: %w (context done: %w)", last, err)
			}
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		last = err
		if attempt == attempts-1 {
			break
		}
		if serr := p.sleep(ctx, p.Delay(attempt)); serr != nil {
			return fmt.Errorf("retry: %w (context done: %w)", last, serr)
		}
	}
	return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, last)
}
