package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fixedRand returns a Rand that cycles through the given uniforms.
func fixedRand(us ...float64) func() float64 {
	i := 0
	return func() float64 {
		u := us[i%len(us)]
		i++
		return u
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   80 * time.Millisecond,
		Multiplier: 2,
		Jitter:     -1, // disable jitter for exact values
	}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   time.Second,
		Multiplier: 2,
		Jitter:     0.25,
	}
	// Extremes of the uniform map onto the documented interval
	// [1-Jitter, 1+Jitter] around the pre-jitter delay.
	p.Rand = fixedRand(0)
	if got, want := p.Delay(0), 75*time.Millisecond; got != want {
		t.Errorf("low jitter: Delay(0) = %v, want %v", got, want)
	}
	p.Rand = fixedRand(1 - 1e-12)
	if got := p.Delay(0); got < 124*time.Millisecond || got > 125*time.Millisecond {
		t.Errorf("high jitter: Delay(0) = %v, want ~125ms", got)
	}
	// Random uniforms always land inside the bounds.
	p.Rand = nil
	for i := 0; i < 1000; i++ {
		d := p.Delay(2) // pre-jitter 400ms
		if d < 300*time.Millisecond || d > 500*time.Millisecond {
			t.Fatalf("jittered Delay(2) = %v outside [300ms, 500ms]", d)
		}
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	calls := 0
	p := Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	errBoom := errors.New("boom")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return errBoom
	})
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	calls := 0
	p := Policy{
		MaxAttempts: 5,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	errFatal := errors.New("bad request")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(errFatal)
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
	if !errors.Is(err, errFatal) {
		t.Fatalf("err = %v, want wrapped %v", err, errFatal)
	}
	if !IsPermanent(err) {
		t.Fatalf("err should still be marked permanent")
	}
}

func TestDoContextCanceledDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancellation races the backoff sleep and must win
			return ctx.Err()
		},
	}
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (canceled during first sleep)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
}

func TestDoContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{}.Do(ctx, func(context.Context) error {
		calls++
		return nil
	})
	if calls != 0 {
		t.Fatalf("fn called %d times on a dead context, want 0", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
	if IsPermanent(errors.New("x")) {
		t.Fatal("plain error misclassified as permanent")
	}
}
