package datagen

import (
	"math/rand"

	"nntstream/internal/graph"
)

// FlipConfig is the paper's synthetic stream mutator: every potential edge
// of a template graph flips a biased coin per timestamp — absent edges
// appear with probability AppearProb (p1), present edges disappear with
// DisappearProb (p2). The paper's settings: dense streams p1=20%, p2=15%;
// sparse streams p1=10%, p2=30%.
type FlipConfig struct {
	AppearProb    float64 // p1
	DisappearProb float64 // p2
	Timestamps    int
}

// DenseFlipDefaults are the paper's dense synthetic stream parameters.
func DenseFlipDefaults() FlipConfig {
	return FlipConfig{AppearProb: 0.20, DisappearProb: 0.15, Timestamps: 1000}
}

// SparseFlipDefaults are the paper's sparse synthetic stream parameters.
func SparseFlipDefaults() FlipConfig {
	return FlipConfig{AppearProb: 0.10, DisappearProb: 0.30, Timestamps: 1000}
}

// TemplateConfig controls the stream-template construction around a basic
// query graph. The template's edge set is the potential-edge universe the
// coin flips act on, so its size (relative to the query) together with the
// flip equilibrium p1/(p1+p2) sets how often query neighborhoods are
// dominated by stream neighborhoods — the knob that positions the dense and
// sparse regimes around the query density the way the paper's candidate
// ratios imply.
type TemplateConfig struct {
	// GrowthFactor multiplies the vertex count (the paper: 1.5).
	GrowthFactor float64
	// MinWires/MaxWires bound the random edges attaching each added
	// vertex.
	MinWires, MaxWires int
	// ExtraEdgeFrac adds this fraction of the query's edge count as extra
	// random potential edges between template vertices.
	ExtraEdgeFrac float64
}

// TemplateDefaults grows vertices by 1.5× per the paper and sizes the
// potential-edge universe so the dense flip equilibrium (~57%) lands
// slightly above the query's own density and the sparse one (~25%) well
// below it.
func TemplateDefaults() TemplateConfig {
	return TemplateConfig{GrowthFactor: 1.5, MinWires: 1, MaxWires: 3, ExtraEdgeFrac: 6.5}
}

// DeriveTemplate implements the paper's stream-template construction: the
// basic (query) graph is grown to GrowthFactor times its vertex count by
// adding randomly labeled vertices wired with random edges, then extra
// random potential edges are sprinkled between template vertices.
func DeriveTemplate(q *graph.Graph, cfg TemplateConfig, vlabels, elabels int, r *rand.Rand) *graph.Graph {
	t := q.Clone()
	ids := t.VertexIDs()
	if len(ids) == 0 {
		return t
	}
	next := ids[len(ids)-1] + 1
	extra := int(float64(len(ids))*cfg.GrowthFactor) - len(ids)
	for i := 0; i < extra; i++ {
		v := next
		next++
		_ = t.AddVertex(v, graph.Label(r.Intn(vlabels)))
		wires := cfg.MinWires
		if cfg.MaxWires > cfg.MinWires {
			wires += r.Intn(cfg.MaxWires - cfg.MinWires + 1)
		}
		for w := 0; w < wires; w++ {
			u := ids[r.Intn(len(ids))]
			_ = t.AddEdge(v, u, graph.Label(r.Intn(elabels)))
		}
		ids = append(ids, v)
	}
	want := t.EdgeCount() + int(cfg.ExtraEdgeFrac*float64(q.EdgeCount()))
	for attempts := 0; t.EdgeCount() < want && attempts < 50*want; attempts++ {
		u := ids[r.Intn(len(ids))]
		v := ids[r.Intn(len(ids))]
		if u != v && !t.HasEdge(u, v) {
			_ = t.AddEdge(u, v, graph.Label(r.Intn(elabels)))
		}
	}
	return t
}

// FlipStream runs the coin-flip process over the template's edges and
// returns the recorded stream. G_0 draws each potential edge with the
// stationary probability p1/(p1+p2), so the stream starts in equilibrium.
func FlipStream(template *graph.Graph, cfg FlipConfig, r *rand.Rand) *graph.Stream {
	potential := template.Edges()
	present := make([]bool, len(potential))
	stationary := cfg.AppearProb / (cfg.AppearProb + cfg.DisappearProb)

	start := graph.New()
	addEdge := func(g *graph.Graph, e graph.Edge) {
		_ = g.AddVertex(e.U, template.MustVertexLabel(e.U))
		_ = g.AddVertex(e.V, template.MustVertexLabel(e.V))
		_ = g.AddEdge(e.U, e.V, e.Label)
	}
	for i, e := range potential {
		if r.Float64() < stationary {
			present[i] = true
			addEdge(start, e)
		}
	}

	s := &graph.Stream{Start: start}
	for t := 0; t < cfg.Timestamps; t++ {
		var cs graph.ChangeSet
		for i, e := range potential {
			if present[i] {
				if r.Float64() < cfg.DisappearProb {
					present[i] = false
					cs = append(cs, graph.DeleteOp(e.U, e.V))
				}
			} else if r.Float64() < cfg.AppearProb {
				present[i] = true
				cs = append(cs, graph.InsertOp(
					e.U, template.MustVertexLabel(e.U),
					e.V, template.MustVertexLabel(e.V),
					e.Label))
			}
		}
		s.Changes = append(s.Changes, cs.Normalize())
	}
	return s
}

// StreamWorkloadConfig assembles the full synthetic stream experiment
// input.
type StreamWorkloadConfig struct {
	Gen      SyntheticConfig
	Flip     FlipConfig
	Template TemplateConfig
	// QueryMinEdges/QueryMaxEdges bound the monitored patterns extracted
	// from each basic graph. The paper monitors the basic graphs
	// themselves; with its underspecified generator that construction
	// degenerates (every filter reports ≈0% or ≈100% — see
	// EXPERIMENTS.md), so patterns of the static experiments' sizes are
	// extracted instead, which restores the paper's reported dynamic
	// range.
	QueryMinEdges, QueryMaxEdges int
}

// DefaultStreamWorkload is the calibrated reproduction of the paper's
// synthetic stream setup for a given flip regime.
func DefaultStreamWorkload(flip FlipConfig) StreamWorkloadConfig {
	return StreamWorkloadConfig{
		Gen:           StreamSyntheticDefaults(),
		Flip:          flip,
		Template:      TemplateDefaults(),
		QueryMinEdges: 8,
		QueryMaxEdges: 12,
	}
}

// SyntheticStreamWorkload is the generated experiment input: the basic
// graphs, the monitored query patterns extracted from them, and one stream
// per basic graph derived from its grown template under the flip process.
type SyntheticStreamWorkload struct {
	Basics  []*graph.Graph
	Queries []*graph.Graph
	Streams []*graph.Stream
}

// SyntheticStreams generates the workload (the paper: D=70 basic graphs
// with L=20, I=10, T=40, V=4, E=1).
func SyntheticStreams(cfg StreamWorkloadConfig, r *rand.Rand) SyntheticStreamWorkload {
	basics := Synthetic(cfg.Gen, r)
	w := SyntheticStreamWorkload{Basics: basics}
	for _, b := range basics {
		template := DeriveTemplate(b, cfg.Template, cfg.Gen.VertexLabels, cfg.Gen.EdgeLabels, r)
		w.Streams = append(w.Streams, FlipStream(template, cfg.Flip, r))
		span := cfg.QueryMaxEdges - cfg.QueryMinEdges
		want := cfg.QueryMinEdges
		if span > 0 {
			want += r.Intn(span + 1)
		}
		w.Queries = append(w.Queries, RandomConnectedSubgraph(b, want, r))
	}
	return w
}
