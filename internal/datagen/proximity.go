package datagen

import (
	"math/rand"

	"nntstream/internal/graph"
)

// ProximityConfig drives the Reality-Mining-like generator standing in for
// the MIT Device Span dataset: a fixed population of devices (97 in the
// paper) carrying one of a few device/role labels (10 in the paper), split
// into social groups across two labs. Per timestamp, group members are
// co-located with high probability and cross-group contacts are rare;
// existing contacts persist preferentially, which produces the strong
// temporal locality real proximity data exhibits.
type ProximityConfig struct {
	Devices     int
	Labels      int
	Groups      int
	Timestamps  int
	InGroupProb float64 // chance an in-group contact forms this step
	CrossProb   float64 // chance a cross-group contact forms this step
	PersistProb float64 // chance an existing contact persists this step
}

// ProximityDefaults matches the paper's setup: 97 devices, 10 labels, data
// for 1000 timestamps.
func ProximityDefaults() ProximityConfig {
	return ProximityConfig{
		Devices:     97,
		Labels:      10,
		Groups:      8,
		Timestamps:  1000,
		InGroupProb: 0.07,
		CrossProb:   0.002,
		PersistProb: 0.80,
	}
}

// Proximity generates one canonical proximity snapshot series.
func Proximity(cfg ProximityConfig, r *rand.Rand) []*graph.Graph {
	labels := make([]graph.Label, cfg.Devices)
	group := make([]int, cfg.Devices)
	for d := 0; d < cfg.Devices; d++ {
		labels[d] = graph.Label(r.Intn(cfg.Labels))
		group[d] = r.Intn(cfg.Groups)
	}

	type pair struct{ a, b int }
	contacts := make(map[pair]bool)
	snap := func() *graph.Graph {
		g := graph.New()
		for p := range contacts {
			_ = g.AddVertex(graph.VertexID(p.a), labels[p.a])
			_ = g.AddVertex(graph.VertexID(p.b), labels[p.b])
			_ = g.AddEdge(graph.VertexID(p.a), graph.VertexID(p.b), 0)
		}
		return g
	}

	var out []*graph.Graph
	for t := 0; t < cfg.Timestamps; t++ {
		// One pass over all pairs in a fixed order keeps the generator
		// deterministic for a given seed.
		next := make(map[pair]bool, len(contacts))
		for a := 0; a < cfg.Devices; a++ {
			for b := a + 1; b < cfg.Devices; b++ {
				p := pair{a, b}
				if contacts[p] {
					if r.Float64() < cfg.PersistProb {
						next[p] = true
					}
					continue
				}
				prob := cfg.CrossProb
				if group[a] == group[b] {
					prob = cfg.InGroupProb
				}
				if r.Float64() < prob {
					next[p] = true
				}
			}
		}
		contacts = next
		out = append(out, snap())
	}
	return out
}

// ProximityStreams derives numStreams streams from one canonical series by
// random rotation — the paper "randomly reorders the original graph series
// to derive new graph streams"; rotation keeps the per-step locality that
// makes the incremental maintenance meaningful while giving each stream a
// distinct trajectory.
func ProximityStreams(cfg ProximityConfig, numStreams int, r *rand.Rand) []*graph.Stream {
	series := Proximity(cfg, r)
	streams := make([]*graph.Stream, 0, numStreams)
	for s := 0; s < numStreams; s++ {
		offset := r.Intn(len(series))
		rotated := make([]*graph.Graph, 0, len(series))
		rotated = append(rotated, series[offset:]...)
		rotated = append(rotated, series[:offset]...)
		st, err := graph.StreamFromSnapshots(rotated)
		if err != nil {
			// The series is generator-produced; a diff failure is a bug.
			panic(err)
		}
		streams = append(streams, st)
	}
	return streams
}

// ProximityQueries extracts query patterns from random snapshots of the
// canonical series: connected subgraphs with edge counts in [minEdges,
// maxEdges]. Snapshots with too few edges are skipped.
func ProximityQueries(series []*graph.Graph, num, minEdges, maxEdges int, r *rand.Rand) []*graph.Graph {
	var out []*graph.Graph
	for len(out) < num {
		g := series[r.Intn(len(series))]
		if g.EdgeCount() < minEdges {
			continue
		}
		want := minEdges + r.Intn(maxEdges-minEdges+1)
		q := RandomConnectedSubgraph(g, want, r)
		if q.EdgeCount() >= 1 {
			out = append(out, q)
		}
	}
	return out
}
