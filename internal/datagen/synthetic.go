package datagen

import (
	"math/rand"

	"nntstream/internal/graph"
)

// SyntheticConfig mirrors the parameters of the Kuramochi–Karypis generator
// as the paper reports them: D graphs are assembled by repeatedly inserting
// randomly chosen seed fragments until each graph reaches its target size.
// Sizes count edges; seed and graph sizes are Poisson with means I and T.
type SyntheticConfig struct {
	NumGraphs    int     // D: number of graphs to generate
	NumSeeds     int     // L: number of seed fragments (potential frequent patterns)
	SeedSize     float64 // I: mean seed fragment size (edges)
	GraphSize    float64 // T: mean graph size (edges)
	VertexLabels int     // V: number of distinct vertex labels
	EdgeLabels   int     // E: number of distinct edge labels
	// OverlapProb is the chance an inserted seed vertex is glued onto an
	// existing same-label graph vertex rather than added fresh, which is
	// how fragments come to share structure.
	OverlapProb float64
}

// StaticSyntheticDefaults reproduces the paper's static synthetic database:
// D=10000, L=200, I=10, T=50, V=4, E=1.
func StaticSyntheticDefaults() SyntheticConfig {
	return SyntheticConfig{
		NumGraphs:    10000,
		NumSeeds:     200,
		SeedSize:     10,
		GraphSize:    50,
		VertexLabels: 4,
		EdgeLabels:   1,
		OverlapProb:  0.3,
	}
}

// StreamSyntheticDefaults reproduces the paper's synthetic stream basis:
// D=70, L=20, I=10, T=40, V=4, E=1.
func StreamSyntheticDefaults() SyntheticConfig {
	return SyntheticConfig{
		NumGraphs:    70,
		NumSeeds:     20,
		SeedSize:     10,
		GraphSize:    40,
		VertexLabels: 4,
		EdgeLabels:   1,
		OverlapProb:  0.3,
	}
}

// Synthetic generates the database.
func Synthetic(cfg SyntheticConfig, r *rand.Rand) []*graph.Graph {
	seeds := make([]*graph.Graph, cfg.NumSeeds)
	for i := range seeds {
		size := poisson(r, cfg.SeedSize)
		if size < 1 {
			size = 1
		}
		seeds[i] = randomConnectedBySize(r, size, cfg.VertexLabels, cfg.EdgeLabels)
	}
	out := make([]*graph.Graph, cfg.NumGraphs)
	for i := range out {
		target := poisson(r, cfg.GraphSize)
		if target < 1 {
			target = 1
		}
		out[i] = assemble(r, seeds, target, cfg)
	}
	return out
}

// randomConnectedBySize grows a connected graph with exactly `edges` edges:
// each step either attaches a new vertex or closes a cycle between existing
// vertices.
func randomConnectedBySize(r *rand.Rand, edges, vlabels, elabels int) *graph.Graph {
	g := graph.New()
	_ = g.AddVertex(0, graph.Label(r.Intn(vlabels)))
	next := graph.VertexID(1)
	ids := []graph.VertexID{0}
	for g.EdgeCount() < edges {
		if r.Float64() < 0.7 || len(ids) < 3 {
			// Attach a new vertex.
			u := ids[r.Intn(len(ids))]
			v := next
			next++
			_ = g.AddVertex(v, graph.Label(r.Intn(vlabels)))
			_ = g.AddEdge(u, v, graph.Label(r.Intn(elabels)))
			ids = append(ids, v)
		} else {
			// Close a cycle.
			u := ids[r.Intn(len(ids))]
			v := ids[r.Intn(len(ids))]
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v, graph.Label(r.Intn(elabels)))
			}
		}
	}
	return g
}

// assemble builds one database graph by inserting seeds until the edge
// target is reached, then wiring any disconnected components together.
func assemble(r *rand.Rand, seeds []*graph.Graph, target int, cfg SyntheticConfig) *graph.Graph {
	g := graph.New()
	next := graph.VertexID(0)
	// byLabel tracks existing vertices per label for overlap gluing.
	byLabel := make(map[graph.Label][]graph.VertexID)

	addVertex := func(l graph.Label) graph.VertexID {
		v := next
		next++
		_ = g.AddVertex(v, l)
		byLabel[l] = append(byLabel[l], v)
		return v
	}

	for g.EdgeCount() < target {
		seed := seeds[r.Intn(len(seeds))]
		// Map seed vertices into g, in ID order for determinism.
		mapping := make(map[graph.VertexID]graph.VertexID, seed.VertexCount())
		for _, sv := range seed.VertexIDs() {
			l := seed.MustVertexLabel(sv)
			if cand := byLabel[l]; len(cand) > 0 && r.Float64() < cfg.OverlapProb {
				mapping[sv] = cand[r.Intn(len(cand))]
			} else {
				mapping[sv] = addVertex(l)
			}
		}
		for _, e := range seed.Edges() {
			u, v := mapping[e.U], mapping[e.V]
			if u == v || g.HasEdge(u, v) {
				continue // gluing collapsed this edge; keep the original
			}
			_ = g.AddEdge(u, v, e.Label)
		}
	}
	connect(r, g, cfg.EdgeLabels)
	return g
}

// connect wires the connected components of g together with random bridge
// edges so the result satisfies the paper's connectedness assumption.
func connect(r *rand.Rand, g *graph.Graph, elabels int) {
	comps := g.ConnectedComponents()
	for i := 1; i < len(comps); i++ {
		u := comps[0][r.Intn(len(comps[0]))]
		v := comps[i][r.Intn(len(comps[i]))]
		_ = g.AddEdge(u, v, graph.Label(r.Intn(elabels)))
	}
}
