package datagen

import (
	"math/rand"

	"nntstream/internal/graph"
)

// ChemicalConfig drives the AIDS-like compound generator. The defaults are
// matched to the paper's AIDS sample statistics: 10,000 graphs averaging
// 24.8 vertices and 26.8 edges, with a heavily skewed atom-label
// distribution (organic molecules are mostly carbon) over a few dozen
// distinct labels, tree-like backbones, and a small number of rings.
type ChemicalConfig struct {
	NumGraphs int
	// MeanAtoms is the mean vertex count (normal-ish around this value).
	MeanAtoms float64
	// MeanRings is the mean number of ring-closing extra edges, so mean
	// edges ≈ MeanAtoms - 1 + MeanRings.
	MeanRings float64
	// RareLabels pads the alphabet beyond the common atoms with this many
	// rare labels (heavy atoms and ions appearing with low probability).
	RareLabels int
	// BondLabels is the number of distinct edge labels (bond types).
	BondLabels int
	// MaxValence caps vertex degree, as chemistry does.
	MaxValence int
}

// ChemicalDefaults matches the paper's AIDS sample: 10,000 compounds,
// 24.8 vertices and ~26.8 edges on average.
func ChemicalDefaults() ChemicalConfig {
	return ChemicalConfig{
		NumGraphs:  10000,
		MeanAtoms:  24.8,
		MeanRings:  2.8,
		RareLabels: 50,
		BondLabels: 3,
		MaxValence: 4,
	}
}

// commonAtomWeights is the organic-chemistry-flavored label skew: label 0
// plays carbon at ~60%, then oxygen, nitrogen, and a fading tail.
var commonAtomWeights = []float64{0.60, 0.12, 0.10, 0.04, 0.035, 0.025, 0.02, 0.015, 0.01, 0.01}

// Chemical generates the compound database.
func Chemical(cfg ChemicalConfig, r *rand.Rand) []*graph.Graph {
	out := make([]*graph.Graph, cfg.NumGraphs)
	for i := range out {
		out[i] = oneCompound(cfg, r)
	}
	return out
}

func sampleAtom(cfg ChemicalConfig, r *rand.Rand) graph.Label {
	x := r.Float64()
	// 2% of all draws spread uniformly over the rare tail.
	if x < 0.02 && cfg.RareLabels > 0 {
		return graph.Label(len(commonAtomWeights) + r.Intn(cfg.RareLabels))
	}
	x = r.Float64()
	acc := 0.0
	for i, w := range commonAtomWeights {
		acc += w
		if x < acc {
			return graph.Label(i)
		}
	}
	return 0
}

func sampleBond(cfg ChemicalConfig, r *rand.Rand) graph.Label {
	x := r.Float64()
	switch {
	case x < 0.75 || cfg.BondLabels < 2:
		return 0 // single bond
	case x < 0.95 || cfg.BondLabels < 3:
		return 1 // double bond
	default:
		return 2 // aromatic/triple
	}
}

func oneCompound(cfg ChemicalConfig, r *rand.Rand) *graph.Graph {
	n := int(cfg.MeanAtoms + r.NormFloat64()*cfg.MeanAtoms/4)
	if n < 3 {
		n = 3
	}
	g := graph.New()
	_ = g.AddVertex(0, sampleAtom(cfg, r))
	// Tree backbone with valence-capped preferential attachment to short
	// chains (molecules are mostly chains with branches).
	for i := 1; i < n; i++ {
		v := graph.VertexID(i)
		_ = g.AddVertex(v, sampleAtom(cfg, r))
		for {
			u := graph.VertexID(r.Intn(i))
			if g.Degree(u) < cfg.MaxValence {
				_ = g.AddEdge(u, v, sampleBond(cfg, r))
				break
			}
		}
	}
	// Ring closures.
	rings := poisson(r, cfg.MeanRings)
	for k := 0; k < rings; k++ {
		u := graph.VertexID(r.Intn(n))
		v := graph.VertexID(r.Intn(n))
		if u != v && !g.HasEdge(u, v) &&
			g.Degree(u) < cfg.MaxValence && g.Degree(v) < cfg.MaxValence {
			_ = g.AddEdge(u, v, sampleBond(cfg, r))
		}
	}
	return g
}
