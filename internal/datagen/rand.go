// Package datagen generates the workloads of the paper's evaluation:
//
//   - Synthetic graph databases in the style of the Kuramochi–Karypis
//     generator [12] (seed fragments inserted into graphs), used for the
//     static synthetic experiments and as the basis of the synthetic
//     streams.
//   - An AIDS-like chemical compound generator standing in for the real
//     AIDS Antiviral Screen dataset (unavailable offline), matched to the
//     paper's sample statistics.
//   - A Reality-Mining-like Bluetooth proximity stream generator standing
//     in for the MIT Device Span dataset.
//   - The paper's coin-flip stream mutator (edge appear/disappear
//     probabilities p1/p2 over a derived template graph).
//   - Random connected-subgraph query extraction (the paper's Q_m query
//     sets).
//
// Every generator takes an explicit *rand.Rand so workloads are exactly
// reproducible.
package datagen

import (
	"math"
	"math/rand"
)

// poisson samples a Poisson variate with the given mean via Knuth's method,
// adequate for the small means the generators use.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	const maxMean = 500 // e^-500 underflows; generators never get close
	if mean > maxMean {
		mean = maxMean
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
