package datagen

import (
	"math/rand"

	"nntstream/internal/graph"
)

// RandomConnectedSubgraph extracts a connected subgraph of g with up to
// wantEdges edges by growing an edge set from a random start vertex. The
// result has at least one vertex (the start) and at most wantEdges edges;
// fewer when g's component is exhausted first. The original vertex IDs and
// labels are preserved.
func RandomConnectedSubgraph(g *graph.Graph, wantEdges int, r *rand.Rand) *graph.Graph {
	sub := graph.New()
	ids := g.VertexIDs()
	if len(ids) == 0 {
		return sub
	}
	start := ids[r.Intn(len(ids))]
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	growSubgraph(g, sub, wantEdges, r)
	return sub
}

// growSubgraph extends sub (already holding at least one vertex of g) to up
// to wantEdges edges by the same frontier walk RandomConnectedSubgraph uses,
// seeding the frontier with every vertex already in sub so growth continues
// from an arbitrary core, not just a single start vertex.
func growSubgraph(g, sub *graph.Graph, wantEdges int, r *rand.Rand) {
	frontier := sub.VertexIDs()
	for sub.EdgeCount() < wantEdges && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
}

// OverlapConfig parameterizes OverlapQuerySet. The workload is Templates
// distinct template subgraphs, each expanded into PerTemplate queries of
// about Edges edges. Overlap in [0,1] is the fraction of each query's edge
// budget drawn from a core shared verbatim by all queries of the same
// template: 1.0 yields PerTemplate identical copies, 0.0 yields independent
// random subgraphs, and values between interpolate — the knob the shared
// factor table's benefit is measured against.
type OverlapConfig struct {
	Templates   int
	PerTemplate int
	Edges       int
	Overlap     float64
}

// OverlapQuerySet draws a query workload with controllable inter-query
// overlap from a single database graph g. Each template contributes a
// connected core of round(Overlap·Edges) edges; every query of that
// template clones the core and independently regrows to Edges edges, so
// queries of one template share the core's vertices exactly (same IDs,
// labels, and edges) and diverge in the regrown remainder.
func OverlapQuerySet(g *graph.Graph, cfg OverlapConfig, r *rand.Rand) []*graph.Graph {
	if cfg.Overlap < 0 || cfg.Overlap > 1 {
		panic("datagen: OverlapConfig.Overlap must be in [0,1]")
	}
	coreEdges := int(cfg.Overlap*float64(cfg.Edges) + 0.5)
	out := make([]*graph.Graph, 0, cfg.Templates*cfg.PerTemplate)
	for t := 0; t < cfg.Templates; t++ {
		core := RandomConnectedSubgraph(g, coreEdges, r)
		for i := 0; i < cfg.PerTemplate; i++ {
			q := core.Clone()
			growSubgraph(g, q, cfg.Edges, r)
			out = append(out, q)
		}
	}
	return out
}

// QuerySet extracts the paper's Q_m workload: num connected subgraphs with
// exactly m edges, drawn from random database graphs. Graphs too small to
// yield m edges are skipped; if the database cannot produce the requested
// sizes the function keeps the largest extractable subgraphs rather than
// looping forever (bounded attempts per query).
func QuerySet(db []*graph.Graph, num, m int, r *rand.Rand) []*graph.Graph {
	out := make([]*graph.Graph, 0, num)
	const maxAttempts = 50
	for len(out) < num {
		var best *graph.Graph
		for attempt := 0; attempt < maxAttempts; attempt++ {
			g := db[r.Intn(len(db))]
			if g.EdgeCount() < m {
				continue
			}
			q := RandomConnectedSubgraph(g, m, r)
			if q.EdgeCount() == m {
				best = q
				break
			}
			if best == nil || q.EdgeCount() > best.EdgeCount() {
				best = q
			}
		}
		if best == nil {
			// Database graphs are all smaller than m; extract what exists.
			g := db[r.Intn(len(db))]
			best = RandomConnectedSubgraph(g, g.EdgeCount(), r)
		}
		out = append(out, best)
	}
	return out
}
