package datagen

import (
	"math/rand"

	"nntstream/internal/graph"
)

// RandomConnectedSubgraph extracts a connected subgraph of g with up to
// wantEdges edges by growing an edge set from a random start vertex. The
// result has at least one vertex (the start) and at most wantEdges edges;
// fewer when g's component is exhausted first. The original vertex IDs and
// labels are preserved.
func RandomConnectedSubgraph(g *graph.Graph, wantEdges int, r *rand.Rand) *graph.Graph {
	sub := graph.New()
	ids := g.VertexIDs()
	if len(ids) == 0 {
		return sub
	}
	start := ids[r.Intn(len(ids))]
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	frontier := []graph.VertexID{start}
	for sub.EdgeCount() < wantEdges && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return sub
}

// QuerySet extracts the paper's Q_m workload: num connected subgraphs with
// exactly m edges, drawn from random database graphs. Graphs too small to
// yield m edges are skipped; if the database cannot produce the requested
// sizes the function keeps the largest extractable subgraphs rather than
// looping forever (bounded attempts per query).
func QuerySet(db []*graph.Graph, num, m int, r *rand.Rand) []*graph.Graph {
	out := make([]*graph.Graph, 0, num)
	const maxAttempts = 50
	for len(out) < num {
		var best *graph.Graph
		for attempt := 0; attempt < maxAttempts; attempt++ {
			g := db[r.Intn(len(db))]
			if g.EdgeCount() < m {
				continue
			}
			q := RandomConnectedSubgraph(g, m, r)
			if q.EdgeCount() == m {
				best = q
				break
			}
			if best == nil || q.EdgeCount() > best.EdgeCount() {
				best = q
			}
		}
		if best == nil {
			// Database graphs are all smaller than m; extract what exists.
			g := db[r.Intn(len(db))]
			best = RandomConnectedSubgraph(g, g.EdgeCount(), r)
		}
		out = append(out, best)
	}
	return out
}
