package datagen

import (
	"math"
	"math/rand"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, mean := range []float64{1, 5, 10, 50} {
		sum := 0
		n := 3000
		for i := 0; i < n; i++ {
			sum += poisson(r, mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.15+0.5 {
			t.Fatalf("poisson(%v) sample mean = %v", mean, got)
		}
	}
	if poisson(r, 0) != 0 || poisson(r, -3) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestSyntheticShape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := SyntheticConfig{
		NumGraphs: 50, NumSeeds: 10, SeedSize: 5, GraphSize: 30,
		VertexLabels: 4, EdgeLabels: 2, OverlapProb: 0.3,
	}
	db := Synthetic(cfg, r)
	if len(db) != 50 {
		t.Fatalf("generated %d graphs; want 50", len(db))
	}
	totalEdges := 0
	for i, g := range db {
		if !g.IsConnected() {
			t.Fatalf("graph %d not connected", i)
		}
		if g.EdgeCount() == 0 {
			t.Fatalf("graph %d empty", i)
		}
		totalEdges += g.EdgeCount()
		g.Vertices(func(_ graph.VertexID, l graph.Label) bool {
			if int(l) >= cfg.VertexLabels {
				t.Fatalf("graph %d has out-of-range vertex label %d", i, l)
			}
			return true
		})
		for _, e := range g.Edges() {
			if int(e.Label) >= cfg.EdgeLabels {
				t.Fatalf("graph %d has out-of-range edge label %d", i, e.Label)
			}
		}
	}
	avg := float64(totalEdges) / 50
	if avg < cfg.GraphSize*0.8 || avg > cfg.GraphSize*1.8 {
		t.Fatalf("average edges = %v; want near %v", avg, cfg.GraphSize)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{
		NumGraphs: 5, NumSeeds: 4, SeedSize: 4, GraphSize: 12,
		VertexLabels: 3, EdgeLabels: 1, OverlapProb: 0.3,
	}
	a := Synthetic(cfg, rand.New(rand.NewSource(7)))
	b := Synthetic(cfg, rand.New(rand.NewSource(7)))
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("graph %d differs across same-seed runs", i)
		}
	}
}

func TestChemicalShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := ChemicalDefaults()
	cfg.NumGraphs = 300
	db := Chemical(cfg, r)
	var atoms, edges, carbons, total int
	for _, g := range db {
		atoms += g.VertexCount()
		edges += g.EdgeCount()
		g.Vertices(func(_ graph.VertexID, l graph.Label) bool {
			total++
			if l == 0 {
				carbons++
			}
			return true
		})
		if g.MaxDegree() > cfg.MaxValence {
			t.Fatalf("valence cap violated: %d", g.MaxDegree())
		}
	}
	avgAtoms := float64(atoms) / float64(len(db))
	avgEdges := float64(edges) / float64(len(db))
	if avgAtoms < 20 || avgAtoms > 30 {
		t.Fatalf("avg atoms = %v; want ≈24.8", avgAtoms)
	}
	if avgEdges < avgAtoms-1 || avgEdges > avgAtoms+4 {
		t.Fatalf("avg edges = %v for avg atoms %v; want ≈ atoms+2", avgEdges, avgAtoms)
	}
	carbonFrac := float64(carbons) / float64(total)
	if carbonFrac < 0.45 || carbonFrac > 0.72 {
		t.Fatalf("carbon fraction = %v; want ≈0.6", carbonFrac)
	}
}

func TestDeriveTemplateGrowsVertices(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	q := Synthetic(SyntheticConfig{
		NumGraphs: 1, NumSeeds: 3, SeedSize: 4, GraphSize: 10,
		VertexLabels: 4, EdgeLabels: 1, OverlapProb: 0.3,
	}, r)[0]
	tpl := DeriveTemplate(q, TemplateDefaults(), 4, 1, r)
	wantV := int(float64(q.VertexCount()) * 1.5)
	if tpl.VertexCount() != wantV {
		t.Fatalf("template has %d vertices; want %d", tpl.VertexCount(), wantV)
	}
	// Template contains the query as a subgraph by construction.
	if !iso.Contains(q, tpl) {
		t.Fatal("template must contain its basic graph")
	}
}

func TestFlipStreamReplaysConsistently(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	q := Synthetic(StreamSyntheticDefaults(), r)[0]
	tpl := DeriveTemplate(q, TemplateDefaults(), 4, 1, r)
	cfg := FlipConfig{AppearProb: 0.2, DisappearProb: 0.15, Timestamps: 40}
	s := FlipStream(tpl, cfg, r)
	if s.Timestamps() != 41 {
		t.Fatalf("Timestamps = %d; want 41", s.Timestamps())
	}
	// Replay is consistent and every snapshot's edges are template edges.
	tplEdges := make(map[graph.Edge]bool)
	for _, e := range tpl.Edges() {
		tplEdges[e] = true
	}
	cur := graph.NewCursor(s)
	for {
		for _, e := range cur.Graph().Edges() {
			if !tplEdges[e] {
				t.Fatalf("t=%d: edge %v not in template", cur.Timestamp(), e)
			}
		}
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	// Churn per timestamp is modest (temporal locality), but nonzero on
	// average.
	totalOps := 0
	for _, cs := range s.Changes {
		totalOps += len(cs)
	}
	if totalOps == 0 {
		t.Fatal("flip stream produced no changes")
	}
	avgOps := float64(totalOps) / float64(len(s.Changes))
	if avgOps > float64(tpl.EdgeCount()) {
		t.Fatalf("churn %v exceeds potential edge count %d", avgOps, tpl.EdgeCount())
	}
}

func TestSyntheticStreamsWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	flip := SparseFlipDefaults()
	flip.Timestamps = 10
	cfg := DefaultStreamWorkload(flip)
	cfg.Gen.NumGraphs = 5
	w := SyntheticStreams(cfg, r)
	if len(w.Basics) != 5 || len(w.Queries) != 5 || len(w.Streams) != 5 {
		t.Fatalf("workload sizes: %d basics, %d queries, %d streams",
			len(w.Basics), len(w.Queries), len(w.Streams))
	}
	for i, s := range w.Streams {
		if s.Timestamps() != 11 {
			t.Fatalf("stream %d has %d timestamps", i, s.Timestamps())
		}
	}
	for i, q := range w.Queries {
		if q.EdgeCount() < cfg.QueryMinEdges || q.EdgeCount() > cfg.QueryMaxEdges {
			t.Fatalf("query %d has %d edges; want within [%d,%d]",
				i, q.EdgeCount(), cfg.QueryMinEdges, cfg.QueryMaxEdges)
		}
		// Each monitored pattern comes from its basic graph.
		if !iso.Contains(q, w.Basics[i]) {
			t.Fatalf("query %d not contained in its basic graph", i)
		}
	}
}

func TestProximityShape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := ProximityDefaults()
	cfg.Timestamps = 30
	series := Proximity(cfg, r)
	if len(series) != 30 {
		t.Fatalf("series length = %d", len(series))
	}
	nonEmpty := 0
	for _, g := range series {
		if g.EdgeCount() > 0 {
			nonEmpty++
		}
		if g.VertexCount() > cfg.Devices {
			t.Fatalf("more vertices than devices: %d", g.VertexCount())
		}
	}
	if nonEmpty < 25 {
		t.Fatalf("too many empty snapshots: %d/30 non-empty", nonEmpty)
	}
	// Temporal locality: consecutive snapshots share most edges.
	shared, total := 0, 0
	for i := 1; i < len(series); i++ {
		cur := make(map[graph.Edge]bool)
		for _, e := range series[i].Edges() {
			cur[e] = true
		}
		for _, e := range series[i-1].Edges() {
			total++
			if cur[e] {
				shared++
			}
		}
	}
	if total > 0 && float64(shared)/float64(total) < 0.5 {
		t.Fatalf("persistence too low: %d/%d edges survive a step", shared, total)
	}
}

func TestProximityStreamsAndQueries(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	cfg := ProximityDefaults()
	cfg.Timestamps = 20
	streams := ProximityStreams(cfg, 3, r)
	if len(streams) != 3 {
		t.Fatalf("streams = %d", len(streams))
	}
	for i, s := range streams {
		if s.Timestamps() != 20 {
			t.Fatalf("stream %d timestamps = %d", i, s.Timestamps())
		}
	}
	series := Proximity(cfg, rand.New(rand.NewSource(8)))
	queries := ProximityQueries(series, 5, 2, 5, r)
	if len(queries) != 5 {
		t.Fatalf("queries = %d", len(queries))
	}
	for i, q := range queries {
		if q.EdgeCount() < 1 || !q.IsConnected() {
			t.Fatalf("query %d malformed: %v", i, q)
		}
	}
}

func TestQuerySetSizes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := Synthetic(SyntheticConfig{
		NumGraphs: 30, NumSeeds: 5, SeedSize: 5, GraphSize: 25,
		VertexLabels: 4, EdgeLabels: 1, OverlapProb: 0.3,
	}, r)
	qs := QuerySet(db, 20, 8, r)
	if len(qs) != 20 {
		t.Fatalf("QuerySet returned %d queries", len(qs))
	}
	for i, q := range qs {
		if q.EdgeCount() != 8 {
			t.Fatalf("query %d has %d edges; want 8", i, q.EdgeCount())
		}
		if !q.IsConnected() {
			t.Fatalf("query %d not connected", i)
		}
	}
}

// TestQueriesAreSubgraphs: every extracted query embeds in its source
// database (spot check via a fresh extraction against a single graph).
func TestQueriesAreSubgraphs(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	g := Synthetic(SyntheticConfig{
		NumGraphs: 1, NumSeeds: 5, SeedSize: 5, GraphSize: 30,
		VertexLabels: 4, EdgeLabels: 2, OverlapProb: 0.3,
	}, r)[0]
	for i := 0; i < 20; i++ {
		q := RandomConnectedSubgraph(g, 2+r.Intn(8), r)
		if !iso.Contains(q, g) {
			t.Fatalf("extraction %d is not a subgraph", i)
		}
	}
}

// TestOverlapQuerySet pins the overlap knob's semantics at its extremes and
// its structural guarantees in between: Overlap=1 yields identical copies
// within a template, Overlap=0 yields independently grown subgraphs sharing
// only a start vertex, and every setting yields Templates×PerTemplate
// connected subgraphs of the database graph that share their template's core
// edges verbatim.
func TestOverlapQuerySet(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := Synthetic(SyntheticConfig{
		NumGraphs: 1, NumSeeds: 5, SeedSize: 5, GraphSize: 60,
		VertexLabels: 4, EdgeLabels: 2, OverlapProb: 0.3,
	}, r)[0]

	for _, overlap := range []float64{0, 0.5, 1} {
		cfg := OverlapConfig{Templates: 4, PerTemplate: 5, Edges: 6, Overlap: overlap}
		qs := OverlapQuerySet(g, cfg, r)
		if len(qs) != cfg.Templates*cfg.PerTemplate {
			t.Fatalf("overlap=%.1f: %d queries; want %d", overlap, len(qs), cfg.Templates*cfg.PerTemplate)
		}
		for i, q := range qs {
			if q.VertexCount() == 0 || !q.IsConnected() {
				t.Fatalf("overlap=%.1f query %d: disconnected or empty", overlap, i)
			}
			if !iso.Contains(q, g) {
				t.Fatalf("overlap=%.1f query %d is not a subgraph of the database graph", overlap, i)
			}
		}
		for tpl := 0; tpl < cfg.Templates; tpl++ {
			group := qs[tpl*cfg.PerTemplate : (tpl+1)*cfg.PerTemplate]
			if overlap == 1 {
				for i := 1; i < len(group); i++ {
					if !group[0].Equal(group[i]) {
						t.Fatalf("overlap=1 template %d: variant %d differs from variant 0", tpl, i)
					}
				}
				continue
			}
			// The shared core is exactly the intersection-by-construction:
			// every edge of the template core must appear in every variant.
			// Reconstruct it as the edges common to all variants and check
			// it carries at least round(overlap·Edges) edges.
			wantCore := int(overlap*float64(cfg.Edges) + 0.5)
			shared := 0
			for _, e := range group[0].Edges() {
				inAll := true
				for _, q := range group[1:] {
					if !q.HasEdge(e.U, e.V) {
						inAll = false
						break
					}
				}
				if inAll {
					shared++
				}
			}
			if shared < wantCore {
				t.Fatalf("overlap=%.1f template %d: %d shared edges; want >= %d", overlap, tpl, shared, wantCore)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("OverlapQuerySet accepted Overlap outside [0,1]")
		}
	}()
	OverlapQuerySet(g, OverlapConfig{Templates: 1, PerTemplate: 1, Edges: 4, Overlap: 1.5}, r)
}
