package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func lineStream(t *testing.T) *Stream {
	t.Helper()
	g0 := New()
	mustAddVertex(t, g0, 0, 1)
	mustAddVertex(t, g0, 1, 2)
	mustAddEdge(t, g0, 0, 1, 0)
	return &Stream{
		Start: g0,
		Changes: []ChangeSet{
			{InsertOp(1, 2, 2, 3, 0)},                 // t1: extend the path
			{DeleteOp(0, 1)},                          // t2: drop the first edge
			{InsertOp(2, 3, 0, 1, 0), DeleteOp(1, 2)}, // t3: rewire
		},
	}
}

func TestStreamAt(t *testing.T) {
	s := lineStream(t)
	if s.Timestamps() != 4 {
		t.Fatalf("Timestamps = %d; want 4", s.Timestamps())
	}
	g0, err := s.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if !g0.Equal(s.Start) {
		t.Fatal("At(0) differs from Start")
	}
	g1, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.EdgeCount() != 2 || !g1.HasEdge(1, 2) {
		t.Fatalf("At(1) = %v", g1)
	}
	g3, err := s.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if g3.EdgeCount() != 1 || !g3.HasEdge(0, 2) {
		t.Fatalf("At(3) = %v", g3)
	}
	if _, err := s.At(4); err == nil {
		t.Fatal("At(4) should be out of range")
	}
	if _, err := s.At(-1); err == nil {
		t.Fatal("At(-1) should be out of range")
	}
}

func TestCursorWalksWholeStream(t *testing.T) {
	s := lineStream(t)
	c := NewCursor(s)
	if c.Timestamp() != 0 {
		t.Fatalf("initial timestamp = %d", c.Timestamp())
	}
	steps := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		steps++
		want, err := s.At(c.Timestamp())
		if err != nil {
			t.Fatal(err)
		}
		if !c.Graph().Equal(want) {
			t.Fatalf("cursor graph at t=%d diverges from replay", c.Timestamp())
		}
	}
	if steps != 3 {
		t.Fatalf("cursor took %d steps; want 3", steps)
	}
	// Cursor does not mutate the recorded start graph.
	if s.Start.EdgeCount() != 1 {
		t.Fatal("cursor mutated Stream.Start")
	}
}

func TestStreamFromSnapshots(t *testing.T) {
	s := lineStream(t)
	var snaps []*Graph
	for i := 0; i < s.Timestamps(); i++ {
		g, err := s.At(i)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, g)
	}
	s2, err := StreamFromSnapshots(snaps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Timestamps(); i++ {
		want, _ := s.At(i)
		got, err := s2.At(i)
		if err != nil {
			t.Fatal(err)
		}
		// Compare edge structure (isolated vertices may be retired).
		we, ge := want.Edges(), got.Edges()
		if len(we) != len(ge) {
			t.Fatalf("t=%d: %d edges vs %d", i, len(ge), len(we))
		}
		for j := range we {
			if we[j] != ge[j] {
				t.Fatalf("t=%d: edge %d: %v vs %v", i, j, ge[j], we[j])
			}
		}
	}
	if _, err := StreamFromSnapshots(nil); err == nil {
		t.Fatal("empty snapshot list should error")
	}
}

func TestStreamIORoundTrip(t *testing.T) {
	s := lineStream(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Timestamps() != s.Timestamps() {
		t.Fatalf("timestamps %d != %d", s2.Timestamps(), s.Timestamps())
	}
	for i := 0; i < s.Timestamps(); i++ {
		a, _ := s.At(i)
		b, err := s2.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("t=%d differs after round trip", i)
		}
	}
}

func TestDatabaseIORoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var graphs []*Graph
	for i := 0; i < 5; i++ {
		graphs = append(graphs, randomGraph(r, 3+r.Intn(10), 4, 0.4))
	}
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, graphs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(graphs) {
		t.Fatalf("read %d graphs; want %d", len(got), len(graphs))
	}
	for i := range graphs {
		if !graphs[i].Equal(got[i]) {
			t.Fatalf("graph %d differs after round trip", i)
		}
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	cases := []string{
		"v 0 1\n",                 // vertex before header
		"t # 0\nv 0\n",            // short vertex line
		"t # 0\ne 0 1 2\nv 0 1\n", // edge to absent vertices
		"t # 0\nx what\n",         // unknown directive
	}
	for i, c := range cases {
		if _, err := ReadDatabase(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d: expected parse error", i)
		}
	}
}

func TestReadStreamErrors(t *testing.T) {
	cases := []string{
		"ts\nv 0 1\n",   // graph line after ts
		"+ 0 1 0 0 0\n", // change before ts
		"ts\n+ 0 1\n",   // short insertion
		"ts\n- 0\n",     // short deletion
	}
	for i, c := range cases {
		if _, err := ReadStream(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d: expected parse error", i)
		}
	}
}

func TestAlphabet(t *testing.T) {
	a := NewAlphabet()
	c := a.Intern("C")
	o := a.Intern("O")
	if c == o {
		t.Fatal("distinct names interned to same label")
	}
	if again := a.Intern("C"); again != c {
		t.Fatal("re-intern returned different label")
	}
	if got, ok := a.Lookup("O"); !ok || got != o {
		t.Fatal("Lookup(O) failed")
	}
	if _, ok := a.Lookup("N"); ok {
		t.Fatal("Lookup of absent name succeeded")
	}
	if a.Name(c) != "C" || a.Name(Label(99)) != "#99" {
		t.Fatal("Name rendering wrong")
	}
	if a.Size() != 2 {
		t.Fatalf("Size = %d; want 2", a.Size())
	}
}
