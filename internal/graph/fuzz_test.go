package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestParsersNeverPanic mutates valid serialized inputs and checks the
// parsers fail cleanly (error or success, never a panic) — the robustness a
// daemon reading workload files from disk needs.
func TestParsersNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	// Seed corpus: a database and a stream.
	g := randomGraph(r, 8, 3, 0.4)
	var db bytes.Buffer
	if err := WriteDatabase(&db, []*Graph{g, g}); err != nil {
		t.Fatal(err)
	}
	s := &Stream{Start: g.Clone(), Changes: []ChangeSet{
		{InsertOp(50, 1, 51, 2, 0)},
		{DeleteOp(50, 51)},
	}}
	var sb bytes.Buffer
	if err := WriteStream(&sb, s); err != nil {
		t.Fatal(err)
	}

	corpus := [][]byte{db.Bytes(), sb.Bytes()}
	mutate := func(in []byte) []byte {
		out := append([]byte(nil), in...)
		for k := 0; k < 1+r.Intn(8); k++ {
			if len(out) == 0 {
				break
			}
			switch r.Intn(4) {
			case 0: // flip a byte
				out[r.Intn(len(out))] = byte(r.Intn(256))
			case 1: // delete a span
				i := r.Intn(len(out))
				j := i + r.Intn(len(out)-i)
				out = append(out[:i], out[j:]...)
			case 2: // duplicate a span
				i := r.Intn(len(out))
				j := i + r.Intn(len(out)-i)
				out = append(out[:j], append(append([]byte(nil), out[i:j]...), out[j:]...)...)
			case 3: // insert junk
				i := r.Intn(len(out) + 1)
				junk := []byte{byte(r.Intn(256)), '\n', '-', '9'}
				out = append(out[:i], append(junk, out[i:]...)...)
			}
		}
		return out
	}

	for trial := 0; trial < 500; trial++ {
		in := mutate(corpus[trial%len(corpus)])
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: parser panicked: %v\ninput: %q", trial, p, in)
				}
			}()
			_, _ = ReadDatabase(bytes.NewReader(in))
			_, _ = ReadStream(bytes.NewReader(in))
		}()
	}
}

// TestStreamReplayRejectsCorruption: a stream whose ops conflict with its
// start graph surfaces an error through ChangeSet.Apply rather than
// corrupting state silently.
func TestStreamReplayRejectsCorruption(t *testing.T) {
	g := New()
	_ = g.AddVertex(0, 1)
	_ = g.AddVertex(1, 2)
	_ = g.AddEdge(0, 1, 0)
	// Op relabels vertex 0 via insert — must error.
	bad := ChangeSet{InsertOp(0, 9, 2, 0, 0)}
	if err := bad.Apply(g.Clone()); err == nil {
		t.Fatal("conflicting relabel should error")
	}
	// Edge relabel must error too.
	bad2 := ChangeSet{InsertOp(0, 1, 1, 2, 7)}
	if err := bad2.Apply(g.Clone()); err == nil {
		t.Fatal("conflicting edge relabel should error")
	}
}
