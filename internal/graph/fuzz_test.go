package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestParsersNeverPanic mutates valid serialized inputs and checks the
// parsers fail cleanly (error or success, never a panic) — the robustness a
// daemon reading workload files from disk needs.
func TestParsersNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	// Seed corpus: a database and a stream.
	g := randomGraph(r, 8, 3, 0.4)
	var db bytes.Buffer
	if err := WriteDatabase(&db, []*Graph{g, g}); err != nil {
		t.Fatal(err)
	}
	s := &Stream{Start: g.Clone(), Changes: []ChangeSet{
		{InsertOp(50, 1, 51, 2, 0)},
		{DeleteOp(50, 51)},
	}}
	var sb bytes.Buffer
	if err := WriteStream(&sb, s); err != nil {
		t.Fatal(err)
	}

	corpus := [][]byte{db.Bytes(), sb.Bytes()}
	mutate := func(in []byte) []byte {
		out := append([]byte(nil), in...)
		for k := 0; k < 1+r.Intn(8); k++ {
			if len(out) == 0 {
				break
			}
			switch r.Intn(4) {
			case 0: // flip a byte
				out[r.Intn(len(out))] = byte(r.Intn(256))
			case 1: // delete a span
				i := r.Intn(len(out))
				j := i + r.Intn(len(out)-i)
				out = append(out[:i], out[j:]...)
			case 2: // duplicate a span
				i := r.Intn(len(out))
				j := i + r.Intn(len(out)-i)
				out = append(out[:j], append(append([]byte(nil), out[i:j]...), out[j:]...)...)
			case 3: // insert junk
				i := r.Intn(len(out) + 1)
				junk := []byte{byte(r.Intn(256)), '\n', '-', '9'}
				out = append(out[:i], append(junk, out[i:]...)...)
			}
		}
		return out
	}

	for trial := 0; trial < 500; trial++ {
		in := mutate(corpus[trial%len(corpus)])
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: parser panicked: %v\ninput: %q", trial, p, in)
				}
			}()
			_, _ = ReadDatabase(bytes.NewReader(in))
			_, _ = ReadStream(bytes.NewReader(in))
		}()
	}
}

// FuzzDecodeGraph is the native-fuzzer counterpart of TestParsersNeverPanic:
// arbitrary input must produce an error — never a panic — and anything the
// parsers accept must survive a write/read round trip equal to the first
// parse (the CLI tools copy workload files through exactly this path).
func FuzzDecodeGraph(f *testing.F) {
	f.Add("t # 0\nv 1 10\nv 2 20\ne 1 2 5\n")
	f.Add("t # 0\nv 1 10\nt # 1\nv 1 11\n")
	f.Add("t # 0\nv 1 10\nv 2 20\ne 1 2 5\nts\n+ 3 1 30 10 6\n- 1 2\nts\n")
	f.Add("# comment\n\nt # 0\n")
	f.Add("e 1 2 3\n")
	f.Add("v -1 -2\n")
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, input string) {
		if graphs, err := ReadDatabase(strings.NewReader(input)); err == nil {
			var buf bytes.Buffer
			if err := WriteDatabase(&buf, graphs); err != nil {
				t.Fatalf("accepted database does not re-encode: %v", err)
			}
			again, err := ReadDatabase(&buf)
			if err != nil {
				t.Fatalf("round trip re-parse failed: %v\noriginal input: %q", err, input)
			}
			if len(again) != len(graphs) {
				t.Fatalf("round trip changed graph count: %d != %d", len(again), len(graphs))
			}
			for i := range graphs {
				if !graphs[i].Equal(again[i]) {
					t.Fatalf("round trip changed graph %d\ninput: %q", i, input)
				}
			}
		}
		if s, err := ReadStream(strings.NewReader(input)); err == nil {
			var buf bytes.Buffer
			if err := WriteStream(&buf, s); err != nil {
				t.Fatalf("accepted stream does not re-encode: %v", err)
			}
			again, err := ReadStream(&buf)
			if err != nil {
				t.Fatalf("stream round trip re-parse failed: %v\noriginal input: %q", err, input)
			}
			if !s.Start.Equal(again.Start) || len(s.Changes) != len(again.Changes) {
				t.Fatalf("stream round trip diverged\ninput: %q", input)
			}
		}
	})
}

// TestStreamReplayRejectsCorruption: a stream whose ops conflict with its
// start graph surfaces an error through ChangeSet.Apply rather than
// corrupting state silently.
func TestStreamReplayRejectsCorruption(t *testing.T) {
	g := New()
	_ = g.AddVertex(0, 1)
	_ = g.AddVertex(1, 2)
	_ = g.AddEdge(0, 1, 0)
	// Op relabels vertex 0 via insert — must error.
	bad := ChangeSet{InsertOp(0, 9, 2, 0, 0)}
	if err := bad.Apply(g.Clone()); err == nil {
		t.Fatal("conflicting relabel should error")
	}
	// Edge relabel must error too.
	bad2 := ChangeSet{InsertOp(0, 1, 1, 2, 7)}
	if err := bad2.Apply(g.Clone()); err == nil {
		t.Fatal("conflicting edge relabel should error")
	}
}
