// Package graph provides the labeled-graph substrate used throughout the
// repository: undirected vertex- and edge-labeled graphs, graph change
// operations, and graph streams as defined in Section II of Wang & Chen,
// "Continuous Subgraph Pattern Search over Graph Streams" (ICDE 2009).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// VertexID identifies a vertex within one graph. IDs are arbitrary and need
// not be contiguous; streams may introduce and retire IDs over time.
type VertexID int32

// Label is an interned vertex or edge label. The Alphabet type maps labels
// to and from human-readable names.
type Label uint16

// Graph is an undirected graph with labeled vertices and labeled edges.
// At most one edge may connect a pair of vertices and self-loops are not
// permitted. The zero value is not usable; call New.
//
// Adjacency is stored as slices rather than nested maps: vertex degrees in
// this domain are small, so linear scans beat hashing on every hot path
// (NNT expansion iterates neighborhoods constantly), and iteration order is
// deterministic (insertion order), which keeps downstream runs reproducible.
type Graph struct {
	labels map[VertexID]Label
	adj    map[VertexID][]halfEdge
	edges  int
}

// halfEdge is one direction of an undirected edge.
type halfEdge struct {
	to    VertexID
	label Label
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		labels: make(map[VertexID]Label),
		adj:    make(map[VertexID][]halfEdge),
	}
}

// VertexCount reports the number of vertices.
func (g *Graph) VertexCount() int { return len(g.labels) }

// EdgeCount reports the number of (undirected) edges.
func (g *Graph) EdgeCount() int { return g.edges }

// HasVertex reports whether v exists in the graph.
func (g *Graph) HasVertex(v VertexID) bool {
	_, ok := g.labels[v]
	return ok
}

// VertexLabel returns the label of v. The second result is false when v is
// not present.
func (g *Graph) VertexLabel(v VertexID) (Label, bool) {
	l, ok := g.labels[v]
	return l, ok
}

// MustVertexLabel returns the label of v and panics when v is absent. It is
// intended for internal invariant-checked paths.
func (g *Graph) MustVertexLabel(v VertexID) Label {
	l, ok := g.labels[v]
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not present", v))
	}
	return l
}

// AddVertex inserts an isolated vertex with the given label. Adding an
// existing vertex with the same label is a no-op; with a different label it
// returns an error, since relabeling is not a stream operation in the paper's
// model.
func (g *Graph) AddVertex(v VertexID, l Label) error {
	if cur, ok := g.labels[v]; ok {
		if cur != l {
			return fmt.Errorf("graph: vertex %d already present with label %d (got %d)", v, cur, l)
		}
		return nil
	}
	g.labels[v] = l
	return nil
}

// RemoveVertex deletes v and all incident edges. Removing an absent vertex
// is a no-op.
func (g *Graph) RemoveVertex(v VertexID) {
	if _, ok := g.labels[v]; !ok {
		return
	}
	for _, he := range g.adj[v] {
		g.removeHalf(he.to, v)
		g.edges--
	}
	delete(g.adj, v)
	delete(g.labels, v)
}

// half returns the half-edge index of u→v, or -1.
func (g *Graph) half(u, v VertexID) int {
	for i, he := range g.adj[u] {
		if he.to == v {
			return i
		}
	}
	return -1
}

// removeHalf drops u→v, preserving the order of the remaining neighbors.
func (g *Graph) removeHalf(u, v VertexID) {
	list := g.adj[u]
	if i := g.half(u, v); i >= 0 {
		list = append(list[:i], list[i+1:]...)
		if len(list) == 0 {
			delete(g.adj, u)
		} else {
			g.adj[u] = list
		}
	}
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	return g.half(u, v) >= 0
}

// EdgeLabel returns the label of edge {u,v}. The second result is false when
// the edge is absent.
func (g *Graph) EdgeLabel(u, v VertexID) (Label, bool) {
	if i := g.half(u, v); i >= 0 {
		return g.adj[u][i].label, true
	}
	return 0, false
}

// AddEdge inserts the undirected edge {u,v} with the given label. Both
// endpoints must already exist. Re-adding an existing edge with the same
// label is a no-op; with a different label it is an error.
func (g *Graph) AddEdge(u, v VertexID, l Label) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if !g.HasVertex(u) {
		return fmt.Errorf("graph: edge endpoint %d not present", u)
	}
	if !g.HasVertex(v) {
		return fmt.Errorf("graph: edge endpoint %d not present", v)
	}
	if i := g.half(u, v); i >= 0 {
		if cur := g.adj[u][i].label; cur != l {
			return fmt.Errorf("graph: edge {%d,%d} already present with label %d (got %d)", u, v, cur, l)
		}
		return nil
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, label: l})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, label: l})
	g.edges++
	return nil
}

// RemoveEdge deletes the undirected edge {u,v}. It reports whether an edge
// was actually removed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if g.half(u, v) < 0 {
		return false
	}
	g.removeHalf(u, v)
	g.removeHalf(v, u)
	g.edges--
	return true
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Neighbors calls fn for every neighbor of v with the connecting edge
// label, in insertion order. If fn returns false, iteration stops.
func (g *Graph) Neighbors(v VertexID, fn func(u VertexID, edgeLabel Label) bool) {
	for _, he := range g.adj[v] {
		if !fn(he.to, he.label) {
			return
		}
	}
}

// NeighborsSorted returns the neighbors of v with edge labels in ascending
// vertex-ID order. It allocates; use Neighbors on hot paths.
func (g *Graph) NeighborsSorted(v VertexID) []Edge {
	out := make([]Edge, 0, len(g.adj[v]))
	for _, he := range g.adj[v] {
		out = append(out, Edge{U: v, V: he.to, Label: he.label})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}

// Vertices calls fn for every vertex with its label. Iteration order is
// unspecified. If fn returns false, iteration stops.
func (g *Graph) Vertices(fn func(v VertexID, l Label) bool) {
	for v, l := range g.labels {
		if !fn(v, l) {
			return
		}
	}
}

// VertexIDs returns all vertex IDs in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	out := make([]VertexID, 0, len(g.labels))
	for v := range g.labels {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edge is an undirected labeled edge. U and V are interchangeable except
// where a direction is given by context (for example a parent→child tree
// edge).
type Edge struct {
	U, V  VertexID
	Label Label
}

// Canonical returns the edge with U ≤ V, for use as a map key.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Edges returns all edges, each reported once with U < V, in ascending
// (U, V) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, nbrs := range g.adj {
		for _, he := range nbrs {
			if u < he.to {
				out = append(out, Edge{U: u, V: he.to, Label: he.label})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	c.edges = g.edges
	for v, l := range g.labels {
		c.labels[v] = l
	}
	for v, nbrs := range g.adj {
		c.adj[v] = append([]halfEdge(nil), nbrs...)
	}
	return c
}

// Equal reports whether g and h have identical vertex sets, labels, and
// labeled edges. It tests identity of the labeled structure, not isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.VertexCount() != h.VertexCount() || g.EdgeCount() != h.EdgeCount() {
		return false
	}
	for v, l := range g.labels {
		if hl, ok := h.labels[v]; !ok || hl != l {
			return false
		}
	}
	for u, nbrs := range g.adj {
		for _, he := range nbrs {
			if hl, ok := h.EdgeLabel(u, he.to); !ok || hl != he.label {
				return false
			}
		}
	}
	return true
}

// LabelHistogram returns the number of vertices carrying each vertex label.
func (g *Graph) LabelHistogram() map[Label]int {
	h := make(map[Label]int)
	for _, l := range g.labels {
		h[l]++
	}
	return h
}

// String renders a compact, deterministic description, useful in tests and
// error messages.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{|V|=%d |E|=%d", g.VertexCount(), g.EdgeCount())
	for _, v := range g.VertexIDs() {
		fmt.Fprintf(&b, " %d:%d", v, g.labels[v])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, " (%d-%d:%d)", e.U, e.V, e.Label)
	}
	b.WriteString("}")
	return b.String()
}
