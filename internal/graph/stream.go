package graph

import "fmt"

// Stream is a graph stream (Definition 2.6): a starting graph G_0 plus the
// graph change operation stream ΔGC that produces G_1, G_2, … . A Stream is
// a recorded workload; live consumption goes through Cursor.
type Stream struct {
	// Start is G_0. It is not mutated by cursors, which work on a clone.
	Start *Graph
	// Changes[t] transforms G_t into G_{t+1}.
	Changes []ChangeSet
}

// Timestamps reports the number of graphs in the stream, |{G_0..G_T}|.
func (s *Stream) Timestamps() int { return len(s.Changes) + 1 }

// At materializes G_t by replaying the stream; it is O(t) and intended for
// tests and offline analysis, not the hot path.
func (s *Stream) At(t int) (*Graph, error) {
	if t < 0 || t >= s.Timestamps() {
		return nil, fmt.Errorf("graph: timestamp %d out of range [0,%d)", t, s.Timestamps())
	}
	g := s.Start.Clone()
	for i := 0; i < t; i++ {
		if err := s.Changes[i].Apply(g); err != nil {
			return nil, fmt.Errorf("graph: replay to t=%d: %w", t, err)
		}
	}
	return g, nil
}

// Cursor walks a stream one timestamp at a time, maintaining the current
// graph incrementally.
type Cursor struct {
	stream *Stream
	g      *Graph
	t      int
}

// NewCursor positions a cursor at t=0 of s.
func NewCursor(s *Stream) *Cursor {
	return &Cursor{stream: s, g: s.Start.Clone()}
}

// Graph returns the current graph G_t. Callers must not mutate it.
func (c *Cursor) Graph() *Graph { return c.g }

// Timestamp returns the current t.
func (c *Cursor) Timestamp() int { return c.t }

// Next advances to the next timestamp, returning the change set that was
// applied. It returns (nil, false) at the end of the stream.
func (c *Cursor) Next() (ChangeSet, bool) {
	if c.t >= len(c.stream.Changes) {
		return nil, false
	}
	cs := c.stream.Changes[c.t]
	if err := cs.Apply(c.g); err != nil {
		// A recorded stream that fails to replay is a corrupted workload;
		// surface loudly rather than silently diverging.
		panic(fmt.Sprintf("graph: stream replay failed at t=%d: %v", c.t, err))
	}
	c.t++
	return cs, true
}

// StreamFromSnapshots converts a sequence of graph snapshots into a Stream
// by diffing consecutive graphs. At least one snapshot is required.
func StreamFromSnapshots(snaps []*Graph) (*Stream, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("graph: no snapshots")
	}
	s := &Stream{Start: snaps[0].Clone()}
	for i := 1; i < len(snaps); i++ {
		cs, err := Diff(snaps[i-1], snaps[i])
		if err != nil {
			return nil, fmt.Errorf("graph: diff snapshot %d→%d: %w", i-1, i, err)
		}
		s.Changes = append(s.Changes, cs.Normalize())
	}
	return s, nil
}
