package graph

import "fmt"

// OpKind distinguishes edge insertions from edge deletions (Definition 2.4).
type OpKind uint8

const (
	// OpInsert inserts an edge (creating absent endpoints as needed).
	OpInsert OpKind = iota
	// OpDelete deletes an edge (retiring endpoints that become isolated).
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "ins"
	case OpDelete:
		return "del"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// ChangeOp is one edge insertion or deletion, the paper's triple ⟨op, u, v⟩.
// For insertions the labels of both endpoints and of the edge are carried so
// that a vertex not yet in the graph can be created; node insertion and
// deletion are expressed as sets of edge operations per Definition 2.4.
type ChangeOp struct {
	Kind      OpKind
	U, V      VertexID
	ULabel    Label // used by OpInsert when U is new
	VLabel    Label // used by OpInsert when V is new
	EdgeLabel Label // used by OpInsert
}

func (op ChangeOp) String() string {
	if op.Kind == OpInsert {
		return fmt.Sprintf("<ins,%d(%d),%d(%d),%d>", op.U, op.ULabel, op.V, op.VLabel, op.EdgeLabel)
	}
	return fmt.Sprintf("<del,%d,%d>", op.U, op.V)
}

// ChangeSet is one graph change operation GC_t: the edge operations applied
// between two consecutive timestamps.
type ChangeSet []ChangeOp

// Normalize returns the set reordered so that all deletions precede all
// insertions, the processing order Section III-B prescribes. The relative
// order within each class is preserved.
func (cs ChangeSet) Normalize() ChangeSet {
	out := make(ChangeSet, 0, len(cs))
	for _, op := range cs {
		if op.Kind == OpDelete {
			out = append(out, op)
		}
	}
	for _, op := range cs {
		if op.Kind == OpInsert {
			out = append(out, op)
		}
	}
	return out
}

// Apply mutates g by one change operation. Insertions create missing
// endpoint vertices; deletions remove endpoints that become isolated, which
// keeps the vertex set equal to the set of edge endpoints as in the paper's
// connected-graph model. Deleting an absent edge is a no-op (the stream may
// be ahead of a late subscriber).
func (op ChangeOp) Apply(g *Graph) error {
	switch op.Kind {
	case OpInsert:
		if err := g.AddVertex(op.U, op.ULabel); err != nil {
			return err
		}
		if err := g.AddVertex(op.V, op.VLabel); err != nil {
			return err
		}
		return g.AddEdge(op.U, op.V, op.EdgeLabel)
	case OpDelete:
		if !g.RemoveEdge(op.U, op.V) {
			return nil
		}
		if g.Degree(op.U) == 0 {
			g.RemoveVertex(op.U)
		}
		if g.Degree(op.V) == 0 {
			g.RemoveVertex(op.V)
		}
		return nil
	default:
		return fmt.Errorf("graph: unknown op kind %d", op.Kind)
	}
}

// Apply applies every operation in the set (in the given order) to g.
func (cs ChangeSet) Apply(g *Graph) error {
	for _, op := range cs {
		if err := op.Apply(g); err != nil {
			return err
		}
	}
	return nil
}

// InsertOp builds an insertion op, reading the endpoint and edge labels that
// an insertion must carry from the post-state described by the arguments.
func InsertOp(u VertexID, ul Label, v VertexID, vl Label, el Label) ChangeOp {
	return ChangeOp{Kind: OpInsert, U: u, V: v, ULabel: ul, VLabel: vl, EdgeLabel: el}
}

// DeleteOp builds a deletion op.
func DeleteOp(u, v VertexID) ChangeOp {
	return ChangeOp{Kind: OpDelete, U: u, V: v}
}

// Diff computes a ChangeSet transforming from into to: deletions for edges
// only in from, insertions for edges only in to. It assumes shared vertex
// IDs refer to the same entities (labels of shared vertices must agree).
func Diff(from, to *Graph) (ChangeSet, error) {
	var cs ChangeSet
	for _, e := range from.Edges() {
		if l, ok := to.EdgeLabel(e.U, e.V); !ok || l != e.Label {
			cs = append(cs, DeleteOp(e.U, e.V))
		}
	}
	for _, e := range to.Edges() {
		if l, ok := from.EdgeLabel(e.U, e.V); ok && l == e.Label {
			continue
		} else if ok && l != e.Label {
			// Relabeled edge: Diff emitted the deletion above; re-insert.
		}
		ul := to.MustVertexLabel(e.U)
		vl := to.MustVertexLabel(e.V)
		if fl, ok := from.VertexLabel(e.U); ok && fl != ul {
			return nil, fmt.Errorf("graph: Diff: vertex %d relabeled %d→%d", e.U, fl, ul)
		}
		if fl, ok := from.VertexLabel(e.V); ok && fl != vl {
			return nil, fmt.Errorf("graph: Diff: vertex %d relabeled %d→%d", e.V, fl, vl)
		}
		cs = append(cs, InsertOp(e.U, ul, e.V, vl, e.Label))
	}
	return cs, nil
}
