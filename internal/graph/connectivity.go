package graph

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if len(g.labels) == 0 {
		return true
	}
	var start VertexID
	for v := range g.labels {
		start = v
		break
	}
	seen := map[VertexID]bool{start: true}
	stack := []VertexID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.adj[v] {
			if !seen[he.to] {
				seen[he.to] = true
				stack = append(stack, he.to)
			}
		}
	}
	return len(seen) == len(g.labels)
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted by vertex ID, ordered by their smallest vertex ID.
func (g *Graph) ConnectedComponents() [][]VertexID {
	seen := make(map[VertexID]bool, len(g.labels))
	var comps [][]VertexID
	for _, start := range g.VertexIDs() {
		if seen[start] {
			continue
		}
		var comp []VertexID
		stack := []VertexID{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, he := range g.adj[v] {
				if !seen[he.to] {
					seen[he.to] = true
					stack = append(stack, he.to)
				}
			}
		}
		// comp was collected in DFS order; normalize.
		sortVertexIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortVertexIDs(vs []VertexID) {
	// Insertion sort: component slices are small and this avoids a
	// sort.Slice closure allocation on a utility path.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// InducedSubgraph returns the subgraph induced by the given vertices: those
// vertices with their labels and every edge of g joining two of them.
func (g *Graph) InducedSubgraph(vs []VertexID) *Graph {
	sub := New()
	for _, v := range vs {
		if l, ok := g.VertexLabel(v); ok {
			_ = sub.AddVertex(v, l)
		}
	}
	for _, v := range vs {
		for _, he := range g.adj[v] {
			if v < he.to && sub.HasVertex(he.to) {
				_ = sub.AddEdge(v, he.to, he.label)
			}
		}
	}
	return sub
}
