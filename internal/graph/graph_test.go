package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAddVertex(t *testing.T, g *Graph, v VertexID, l Label) {
	t.Helper()
	if err := g.AddVertex(v, l); err != nil {
		t.Fatalf("AddVertex(%d,%d): %v", v, l, err)
	}
}

func mustAddEdge(t *testing.T, g *Graph, u, v VertexID, l Label) {
	t.Helper()
	if err := g.AddEdge(u, v, l); err != nil {
		t.Fatalf("AddEdge(%d,%d,%d): %v", u, v, l, err)
	}
}

// triangle builds 0-1-2-0 with vertex labels 0,1,2 and edge label 9.
func triangle(t *testing.T) *Graph {
	g := New()
	for i := 0; i < 3; i++ {
		mustAddVertex(t, g, VertexID(i), Label(i))
	}
	mustAddEdge(t, g, 0, 1, 9)
	mustAddEdge(t, g, 1, 2, 9)
	mustAddEdge(t, g, 2, 0, 9)
	return g
}

func TestAddRemoveVertex(t *testing.T) {
	g := New()
	mustAddVertex(t, g, 7, 3)
	if !g.HasVertex(7) {
		t.Fatal("vertex 7 missing after add")
	}
	if l, ok := g.VertexLabel(7); !ok || l != 3 {
		t.Fatalf("VertexLabel(7) = %d,%v; want 3,true", l, ok)
	}
	// Idempotent re-add with same label.
	if err := g.AddVertex(7, 3); err != nil {
		t.Fatalf("re-add same label: %v", err)
	}
	// Relabel is rejected.
	if err := g.AddVertex(7, 4); err == nil {
		t.Fatal("re-add with different label should fail")
	}
	g.RemoveVertex(7)
	if g.HasVertex(7) {
		t.Fatal("vertex 7 present after remove")
	}
	g.RemoveVertex(7) // removing absent vertex is a no-op
}

func TestAddRemoveEdge(t *testing.T) {
	g := triangle(t)
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d; want 3", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} should be visible from both directions")
	}
	if l, ok := g.EdgeLabel(2, 0); !ok || l != 9 {
		t.Fatalf("EdgeLabel(2,0) = %d,%v; want 9,true", l, ok)
	}
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) reported no removal")
	}
	if g.HasEdge(2, 1) {
		t.Fatal("edge {1,2} present after removal")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("second removal should report false")
	}
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d; want 2", g.EdgeCount())
	}
}

func TestEdgeValidation(t *testing.T) {
	g := New()
	mustAddVertex(t, g, 0, 0)
	mustAddVertex(t, g, 1, 0)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop should be rejected")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("edge to absent vertex should be rejected")
	}
	mustAddEdge(t, g, 0, 1, 2)
	if err := g.AddEdge(0, 1, 2); err != nil {
		t.Fatalf("idempotent edge re-add: %v", err)
	}
	if err := g.AddEdge(1, 0, 3); err == nil {
		t.Fatal("edge relabel should be rejected")
	}
}

func TestRemoveVertexRemovesIncidentEdges(t *testing.T) {
	g := triangle(t)
	g.RemoveVertex(1)
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d; want 1", g.EdgeCount())
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("edges incident to removed vertex still present")
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("unrelated edge lost")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := triangle(t)
	if d := g.Degree(0); d != 2 {
		t.Fatalf("Degree(0) = %d; want 2", d)
	}
	if d := g.MaxDegree(); d != 2 {
		t.Fatalf("MaxDegree = %d; want 2", d)
	}
	got := map[VertexID]Label{}
	g.Neighbors(0, func(u VertexID, l Label) bool {
		got[u] = l
		return true
	})
	if len(got) != 2 || got[1] != 9 || got[2] != 9 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	ns := g.NeighborsSorted(0)
	if len(ns) != 2 || ns[0].V != 1 || ns[1].V != 2 {
		t.Fatalf("NeighborsSorted(0) = %v", ns)
	}
	// Early-stop iteration.
	count := 0
	g.Neighbors(0, func(VertexID, Label) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop visited %d neighbors; want 1", count)
	}
}

func TestEdgesSortedAndCanonical(t *testing.T) {
	g := triangle(t)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges() returned %d edges; want 3", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %v", i, e)
		}
		if i > 0 && (es[i-1].U > e.U || (es[i-1].U == e.U && es[i-1].V > e.V)) {
			t.Fatalf("edges not sorted: %v", es)
		}
	}
	e := Edge{U: 5, V: 2, Label: 1}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Canonical() = %v", e)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal to original")
	}
	c.RemoveEdge(0, 1)
	if g.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("mutating clone affected original")
	}
}

func TestEqualDetectsLabelDifferences(t *testing.T) {
	a := triangle(t)
	b := New()
	for i := 0; i < 3; i++ {
		mustAddVertex(t, b, VertexID(i), Label(i))
	}
	mustAddEdge(t, b, 0, 1, 9)
	mustAddEdge(t, b, 1, 2, 9)
	mustAddEdge(t, b, 2, 0, 8) // different edge label
	if a.Equal(b) {
		t.Fatal("Equal ignored edge label difference")
	}
}

func TestLabelHistogram(t *testing.T) {
	g := New()
	mustAddVertex(t, g, 0, 5)
	mustAddVertex(t, g, 1, 5)
	mustAddVertex(t, g, 2, 6)
	h := g.LabelHistogram()
	if h[5] != 2 || h[6] != 1 {
		t.Fatalf("LabelHistogram = %v", h)
	}
}

func TestConnectivity(t *testing.T) {
	g := New()
	if !g.IsConnected() {
		t.Fatal("empty graph should be connected")
	}
	mustAddVertex(t, g, 0, 0)
	mustAddVertex(t, g, 1, 0)
	if g.IsConnected() {
		t.Fatal("two isolated vertices are not connected")
	}
	mustAddEdge(t, g, 0, 1, 0)
	if !g.IsConnected() {
		t.Fatal("single edge graph should be connected")
	}
	mustAddVertex(t, g, 5, 1)
	mustAddVertex(t, g, 6, 1)
	mustAddEdge(t, g, 5, 6, 0)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("ConnectedComponents = %v; want 2 components", comps)
	}
	if comps[0][0] != 0 || comps[1][0] != 5 {
		t.Fatalf("components not ordered by smallest vertex: %v", comps)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangle(t)
	sub := g.InducedSubgraph([]VertexID{0, 1})
	if sub.VertexCount() != 2 || sub.EdgeCount() != 1 || !sub.HasEdge(0, 1) {
		t.Fatalf("InducedSubgraph = %v", sub)
	}
	// Absent vertices are skipped silently.
	sub2 := g.InducedSubgraph([]VertexID{0, 99})
	if sub2.VertexCount() != 1 || sub2.EdgeCount() != 0 {
		t.Fatalf("InducedSubgraph with absent vertex = %v", sub2)
	}
}

// randomGraph builds a random graph with n vertices for property tests.
func randomGraph(r *rand.Rand, n, labels int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(VertexID(i), Label(r.Intn(labels)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				_ = g.AddEdge(VertexID(i), VertexID(j), Label(r.Intn(labels)))
			}
		}
	}
	return g
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), 1+r.Intn(4), r.Float64())
		return g.Equal(g.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeCountMatchesEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), 1+r.Intn(4), r.Float64())
		return len(g.Edges()) == g.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComponentsPartitionVertices(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 1+r.Intn(25), 2, 0.08)
		total := 0
		seen := map[VertexID]bool{}
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			total += len(comp)
		}
		return total == g.VertexCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
