package graph

import (
	"math/rand"
	"testing"
)

func TestChangeOpApplyInsert(t *testing.T) {
	g := New()
	op := InsertOp(1, 10, 2, 20, 5)
	if err := op.Apply(g); err != nil {
		t.Fatalf("Apply insert: %v", err)
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("edge missing after insert op")
	}
	if l, _ := g.VertexLabel(1); l != 10 {
		t.Fatalf("vertex 1 label = %d; want 10", l)
	}
	// Inserting again with the same labels is a no-op.
	if err := op.Apply(g); err != nil {
		t.Fatalf("idempotent insert: %v", err)
	}
	// Conflicting vertex label is an error.
	bad := InsertOp(1, 99, 3, 0, 5)
	if err := bad.Apply(g); err == nil {
		t.Fatal("conflicting relabel should fail")
	}
}

func TestChangeOpApplyDeleteRetiresIsolated(t *testing.T) {
	g := New()
	if err := (ChangeSet{
		InsertOp(1, 0, 2, 0, 0),
		InsertOp(2, 0, 3, 0, 0),
	}).Apply(g); err != nil {
		t.Fatal(err)
	}
	if err := DeleteOp(1, 2).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.HasVertex(1) {
		t.Fatal("isolated vertex 1 should be retired")
	}
	if !g.HasVertex(2) || !g.HasVertex(3) {
		t.Fatal("vertices 2,3 should remain")
	}
	// Deleting an absent edge is a no-op.
	if err := DeleteOp(7, 8).Apply(g); err != nil {
		t.Fatalf("delete absent edge: %v", err)
	}
}

func TestNormalizeOrdersDeletionsFirst(t *testing.T) {
	cs := ChangeSet{
		InsertOp(1, 0, 2, 0, 0),
		DeleteOp(3, 4),
		InsertOp(5, 0, 6, 0, 0),
		DeleteOp(7, 8),
	}
	n := cs.Normalize()
	if len(n) != 4 {
		t.Fatalf("Normalize changed length: %d", len(n))
	}
	if n[0].Kind != OpDelete || n[1].Kind != OpDelete || n[2].Kind != OpInsert || n[3].Kind != OpInsert {
		t.Fatalf("Normalize order wrong: %v", n)
	}
	if n[0].U != 3 || n[1].U != 7 || n[2].U != 1 || n[3].U != 5 {
		t.Fatalf("Normalize not stable: %v", n)
	}
}

func TestDiffRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		a := randomGraph(r, 3+r.Intn(12), 3, 0.3)
		b := randomGraph(r, 3+r.Intn(12), 3, 0.3)
		// Shared IDs must agree on labels; rebuild b's labels from a where shared.
		b2 := New()
		b.Vertices(func(v VertexID, l Label) bool {
			if al, ok := a.VertexLabel(v); ok {
				l = al
			}
			_ = b2.AddVertex(v, l)
			return true
		})
		for _, e := range b.Edges() {
			_ = b2.AddEdge(e.U, e.V, e.Label)
		}
		cs, err := Diff(a, b2)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		got := a.Clone()
		if err := cs.Normalize().Apply(got); err != nil {
			t.Fatalf("apply diff: %v", err)
		}
		// got should have exactly b2's edges; vertex set may differ by
		// isolated vertices (the stream model retires them), so compare
		// edge structure and labels of edge endpoints.
		wantEdges := b2.Edges()
		gotEdges := got.Edges()
		if len(wantEdges) != len(gotEdges) {
			t.Fatalf("trial %d: edge count %d != %d", trial, len(gotEdges), len(wantEdges))
		}
		for i := range wantEdges {
			if wantEdges[i] != gotEdges[i] {
				t.Fatalf("trial %d: edge %d: %v != %v", trial, i, gotEdges[i], wantEdges[i])
			}
		}
	}
}

func TestDiffRejectsRelabel(t *testing.T) {
	a := New()
	_ = a.AddVertex(1, 0)
	_ = a.AddVertex(2, 0)
	_ = a.AddEdge(1, 2, 0)
	b := New()
	_ = b.AddVertex(1, 9) // relabeled
	_ = b.AddVertex(3, 0)
	_ = b.AddEdge(1, 3, 0)
	if _, err := Diff(a, b); err == nil {
		t.Fatal("Diff should reject relabeled shared vertex")
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "ins" || OpDelete.String() != "del" {
		t.Fatal("OpKind.String mismatch")
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown OpKind should still render")
	}
}
