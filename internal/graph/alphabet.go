package graph

import "fmt"

// Alphabet interns human-readable label names as compact Label values. It is
// a convenience for examples, dataset loaders, and CLI tools; the core
// algorithms work on Label values directly.
type Alphabet struct {
	names []string
	ids   map[string]Label
}

// NewAlphabet returns an empty alphabet.
func NewAlphabet() *Alphabet {
	return &Alphabet{ids: make(map[string]Label)}
}

// Intern returns the Label for name, assigning the next free value on first
// use.
func (a *Alphabet) Intern(name string) Label {
	if id, ok := a.ids[name]; ok {
		return id
	}
	id := Label(len(a.names))
	a.names = append(a.names, name)
	a.ids[name] = id
	return id
}

// Lookup returns the Label for name without interning. The second result is
// false when name has not been interned.
func (a *Alphabet) Lookup(name string) (Label, bool) {
	id, ok := a.ids[name]
	return id, ok
}

// Name returns the human-readable name of l, or a numeric placeholder when l
// was never interned through this alphabet.
func (a *Alphabet) Name(l Label) string {
	if int(l) < len(a.names) {
		return a.names[l]
	}
	return fmt.Sprintf("#%d", l)
}

// Size reports the number of interned labels.
func (a *Alphabet) Size() int { return len(a.names) }
