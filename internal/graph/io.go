package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk formats are line-oriented and human-editable.
//
// Graph database (one or more graphs), gSpan-style:
//
//	t # <graphIndex>
//	v <vertexID> <vertexLabel>
//	e <u> <v> <edgeLabel>
//
// Stream file: a graph section for G_0 followed by timestamp sections:
//
//	t # 0
//	v ... / e ... lines
//	ts
//	+ <u> <v> <uLabel> <vLabel> <edgeLabel>
//	- <u> <v>
//
// Each "ts" line starts the change set for the next timestamp.

// WriteGraph writes one graph section with the given index header.
func WriteGraph(w io.Writer, g *Graph, index int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "t # %d\n", index)
	for _, v := range g.VertexIDs() {
		fmt.Fprintf(bw, "v %d %d\n", v, g.MustVertexLabel(v))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.Label)
	}
	return bw.Flush()
}

// WriteDatabase writes a sequence of graphs as consecutive sections.
func WriteDatabase(w io.Writer, graphs []*Graph) error {
	for i, g := range graphs {
		if err := WriteGraph(w, g, i); err != nil {
			return err
		}
	}
	return nil
}

// ReadDatabase parses a sequence of graph sections.
func ReadDatabase(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var graphs []*Graph
	var cur *Graph
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "t":
			cur = New()
			graphs = append(graphs, cur)
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("graph: line %d: vertex before graph header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'v id label'", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			lab, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex line", line)
			}
			if err := cur.AddVertex(VertexID(id), Label(lab)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("graph: line %d: edge before graph header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'e u v label'", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			lab, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line", line)
			}
			if err := cur.AddEdge(VertexID(u), VertexID(v), Label(lab)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graphs, nil
}

// WriteStream writes G_0 followed by one "ts" section per change set.
func WriteStream(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if err := WriteGraph(bw, s.Start, 0); err != nil {
		return err
	}
	for _, cs := range s.Changes {
		fmt.Fprintln(bw, "ts")
		for _, op := range cs {
			switch op.Kind {
			case OpInsert:
				fmt.Fprintf(bw, "+ %d %d %d %d %d\n", op.U, op.V, op.ULabel, op.VLabel, op.EdgeLabel)
			case OpDelete:
				fmt.Fprintf(bw, "- %d %d\n", op.U, op.V)
			}
		}
	}
	return bw.Flush()
}

// ReadStream parses a stream file written by WriteStream.
func ReadStream(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	s := &Stream{Start: New()}
	line := 0
	inChanges := false
	atoi := func(f string) (int, error) { return strconv.Atoi(f) }
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "t":
			if inChanges {
				return nil, fmt.Errorf("graph: line %d: graph header inside stream changes", line)
			}
		case "v", "e":
			if inChanges {
				return nil, fmt.Errorf("graph: line %d: %s-line inside stream changes", line, fields[0])
			}
			if fields[0] == "v" {
				if len(fields) != 3 {
					return nil, fmt.Errorf("graph: line %d: want 'v id label'", line)
				}
				id, err1 := atoi(fields[1])
				lab, err2 := atoi(fields[2])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("graph: line %d: bad vertex line", line)
				}
				if err := s.Start.AddVertex(VertexID(id), Label(lab)); err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", line, err)
				}
			} else {
				if len(fields) != 4 {
					return nil, fmt.Errorf("graph: line %d: want 'e u v label'", line)
				}
				u, err1 := atoi(fields[1])
				v, err2 := atoi(fields[2])
				lab, err3 := atoi(fields[3])
				if err1 != nil || err2 != nil || err3 != nil {
					return nil, fmt.Errorf("graph: line %d: bad edge line", line)
				}
				if err := s.Start.AddEdge(VertexID(u), VertexID(v), Label(lab)); err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", line, err)
				}
			}
		case "ts":
			inChanges = true
			s.Changes = append(s.Changes, nil)
		case "+":
			if !inChanges || len(fields) != 6 {
				return nil, fmt.Errorf("graph: line %d: want '+ u v ulab vlab elab' after ts", line)
			}
			var n [5]int
			for i := 0; i < 5; i++ {
				x, err := atoi(fields[i+1])
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad insertion", line)
				}
				n[i] = x
			}
			t := len(s.Changes) - 1
			s.Changes[t] = append(s.Changes[t],
				InsertOp(VertexID(n[0]), Label(n[2]), VertexID(n[1]), Label(n[3]), Label(n[4])))
		case "-":
			if !inChanges || len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want '- u v' after ts", line)
			}
			u, err1 := atoi(fields[1])
			v, err2 := atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad deletion", line)
			}
			t := len(s.Changes) - 1
			s.Changes[t] = append(s.Changes[t], DeleteOp(VertexID(u), VertexID(v)))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
