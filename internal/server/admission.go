package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// IngestLimits configures the ingest path's admission control. Zero values
// disable the corresponding control, so the default Server accepts
// everything (tests, single-user tools) and cmd/serve opts into shedding.
type IngestLimits struct {
	// MaxInFlight bounds concurrently executing ingest requests; requests
	// beyond the budget are shed with 429 before their body is read.
	MaxInFlight int
	// TenantRate is the sustained per-tenant budget in edge ops per second,
	// refilled continuously (token bucket).
	TenantRate float64
	// TenantBurst is the bucket capacity — how many ops a tenant can spend
	// at once after idling. Defaults to TenantRate when zero.
	TenantBurst float64
	// ReadTimeout bounds reading one ingest request body, so a slow client
	// cannot hold an in-flight slot indefinitely. Zero leaves the server's
	// global read deadline in charge.
	ReadTimeout time.Duration
}

// maxQuotaTenants caps the quota table. Above it, the stalest bucket is
// evicted: an evicted tenant restarts with a full burst, which only ever
// errs in the tenant's favor, and the table stays bounded under tenant-id
// churn (hostile or accidental).
const maxQuotaTenants = 16384

// admission implements the two ingest shedding mechanisms: a global
// in-flight budget (atomic, contention-free) and per-tenant token buckets
// (mutex-guarded map, touched once per batch).
type admission struct {
	limits   IngestLimits
	inflight atomic.Int64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(limits IngestLimits) *admission {
	if limits.TenantBurst <= 0 {
		limits.TenantBurst = limits.TenantRate
	}
	return &admission{
		limits:  limits,
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// acquire claims an in-flight slot; the caller must release() iff it got
// one. A false return means the budget is exhausted — shed the request.
func (a *admission) acquire() bool {
	if a.limits.MaxInFlight <= 0 {
		a.inflight.Add(1)
		return true
	}
	for {
		cur := a.inflight.Load()
		if cur >= int64(a.limits.MaxInFlight) {
			return false
		}
		if a.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (a *admission) release() { a.inflight.Add(-1) }

// inFlight reports the currently executing ingest requests (for metrics).
func (a *admission) inFlight() int64 { return a.inflight.Load() }

// admitOps charges cost edge ops against tenant's token bucket. On denial it
// returns the duration after which the bucket will have refilled enough for
// this batch — the Retry-After hint.
func (a *admission) admitOps(tenant string, cost int) (ok bool, retryAfter time.Duration) {
	if a.limits.TenantRate <= 0 {
		return true, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b := a.buckets[tenant]
	if b == nil {
		if len(a.buckets) >= maxQuotaTenants {
			a.evictStalest()
		}
		b = &tokenBucket{tokens: a.limits.TenantBurst, last: now}
		a.buckets[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * a.limits.TenantRate
			if b.tokens > a.limits.TenantBurst {
				b.tokens = a.limits.TenantBurst
			}
		}
		b.last = now
	}
	c := float64(cost)
	if b.tokens >= c {
		b.tokens -= c
		return true, 0
	}
	deficit := c - b.tokens
	wait := time.Duration(deficit / a.limits.TenantRate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After granularity is whole seconds
	}
	return false, wait
}

// evictStalest drops the bucket with the oldest refill time. Called with mu
// held, and only on the rare fall-over past maxQuotaTenants, so the linear
// scan is fine.
func (a *admission) evictStalest() {
	var victim string
	var oldest time.Time
	first := true
	for tenant, b := range a.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = tenant, b.last, false
		}
	}
	delete(a.buckets, victim)
}
