package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/join"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(core.NewMonitor(join.NewDSC(3))).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, method, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]json.RawMessage{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func edgeGraph(ul, vl uint16) WireGraph {
	return WireGraph{
		Vertices: []WireVertex{{ID: 0, Label: ul}, {ID: 1, Label: vl}},
		Edges:    []WireEdge{{U: 0, V: 1, Label: 0}},
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv := testServer(t)

	// Health.
	resp, _ := do(t, http.MethodGet, srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Register a query (A-B) and a stream (A-C).
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/queries", graphRequest{Graph: edgeGraph(0, 1)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query = %d", resp.StatusCode)
	}
	var qid idResponse
	if err := json.Unmarshal(body["id"], &qid.ID); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, http.MethodPost, srv.URL+"/v1/streams", graphRequest{Graph: edgeGraph(0, 2)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add stream = %d", resp.StatusCode)
	}
	var sid int
	if err := json.Unmarshal(body["id"], &sid); err != nil {
		t.Fatal(err)
	}

	// No candidates yet.
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/candidates", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("candidates = %d", resp.StatusCode)
	}
	var pairs []WirePair
	_ = json.Unmarshal(body["pairs"], &pairs)
	if len(pairs) != 0 {
		t.Fatalf("pairs = %v; want none", pairs)
	}

	// Step: attach a B vertex; the query should match.
	step := stepRequest{Changes: map[string][]WireOp{
		fmt.Sprint(sid): {{Op: "ins", U: 0, V: 7, ULabel: 0, VLabel: 1, ELabel: 0}},
	}}
	resp, body = do(t, http.MethodPost, srv.URL+"/v1/step", step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step = %d", resp.StatusCode)
	}
	_ = json.Unmarshal(body["pairs"], &pairs)
	if len(pairs) != 1 || pairs[0].Query != qid.ID || pairs[0].Stream != sid {
		t.Fatalf("pairs = %v", pairs)
	}

	// Stats reflect one timestamp.
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var ts int
	_ = json.Unmarshal(body["timestamps"], &ts)
	if ts != 1 {
		t.Fatalf("timestamps = %d", ts)
	}

	// Dynamic removal (DSC supports it).
	resp, _ = do(t, http.MethodDelete, fmt.Sprintf("%s/v1/queries/%d", srv.URL, qid.ID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete query = %d", resp.StatusCode)
	}
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/candidates", nil)
	_ = json.Unmarshal(body["pairs"], &pairs)
	if len(pairs) != 0 {
		t.Fatalf("pairs after removal = %v", pairs)
	}
}

func TestServerValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodGet, "/v1/queries", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/candidates", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/step", "not json", http.StatusBadRequest},
		{http.MethodPost, "/v1/step", stepRequest{Changes: map[string][]WireOp{"x": nil}}, http.StatusBadRequest},
		{http.MethodPost, "/v1/step", stepRequest{Changes: map[string][]WireOp{"42": nil}}, http.StatusBadRequest}, // unknown stream
		{http.MethodDelete, "/v1/queries/zzz", nil, http.StatusBadRequest},
		{http.MethodDelete, "/v1/queries/99", nil, http.StatusNotFound},
		{http.MethodPost, "/v1/queries", graphRequest{Graph: WireGraph{
			Edges: []WireEdge{{U: 0, V: 1}},
		}}, http.StatusBadRequest}, // edge without vertices
		{http.MethodPost, "/v1/step", stepRequest{Changes: map[string][]WireOp{
			"0": {{Op: "frobnicate"}},
		}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, _ := do(t, c.method, srv.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Fatalf("case %d (%s %s): status %d; want %d", i, c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	wg := edgeGraph(3, 4)
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	back := FromGraph(g)
	if len(back.Vertices) != 2 || len(back.Edges) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Vertices[0].Label != 3 || back.Edges[0].U != 0 {
		t.Fatalf("round trip content = %+v", back)
	}
	if _, err := (WireOp{Op: "nope"}).ToChangeOp(); err == nil {
		t.Fatal("bad op accepted")
	}
}
