package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/join"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(core.NewMonitor(join.NewDSC(3))).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func do(t *testing.T, method, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]json.RawMessage{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func edgeGraph(ul, vl uint16) WireGraph {
	return WireGraph{
		Vertices: []WireVertex{{ID: 0, Label: ul}, {ID: 1, Label: vl}},
		Edges:    []WireEdge{{U: 0, V: 1, Label: 0}},
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv := testServer(t)

	// Health.
	resp, _ := do(t, http.MethodGet, srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Register a query (A-B) and a stream (A-C).
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/queries", graphRequest{Graph: edgeGraph(0, 1)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query = %d", resp.StatusCode)
	}
	var qid idResponse
	if err := json.Unmarshal(body["id"], &qid.ID); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, http.MethodPost, srv.URL+"/v1/streams", graphRequest{Graph: edgeGraph(0, 2)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add stream = %d", resp.StatusCode)
	}
	var sid int
	if err := json.Unmarshal(body["id"], &sid); err != nil {
		t.Fatal(err)
	}

	// No candidates yet.
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/candidates", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("candidates = %d", resp.StatusCode)
	}
	var pairs []WirePair
	_ = json.Unmarshal(body["pairs"], &pairs)
	if len(pairs) != 0 {
		t.Fatalf("pairs = %v; want none", pairs)
	}

	// Step: attach a B vertex; the query should match.
	step := stepRequest{Changes: map[string][]WireOp{
		fmt.Sprint(sid): {{Op: "ins", U: 0, V: 7, ULabel: 0, VLabel: 1, ELabel: 0}},
	}}
	resp, body = do(t, http.MethodPost, srv.URL+"/v1/step", step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step = %d", resp.StatusCode)
	}
	_ = json.Unmarshal(body["pairs"], &pairs)
	if len(pairs) != 1 || pairs[0].Query != qid.ID || pairs[0].Stream != sid {
		t.Fatalf("pairs = %v", pairs)
	}

	// Stats reflect one timestamp.
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var ts int
	_ = json.Unmarshal(body["timestamps"], &ts)
	if ts != 1 {
		t.Fatalf("timestamps = %d", ts)
	}

	// Dynamic removal (DSC supports it).
	resp, _ = do(t, http.MethodDelete, fmt.Sprintf("%s/v1/queries/%d", srv.URL, qid.ID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete query = %d", resp.StatusCode)
	}
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/candidates", nil)
	_ = json.Unmarshal(body["pairs"], &pairs)
	if len(pairs) != 0 {
		t.Fatalf("pairs after removal = %v", pairs)
	}
}

func TestServerValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodGet, "/v1/queries", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/candidates", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/step", "not json", http.StatusBadRequest},
		{http.MethodPost, "/v1/step", stepRequest{Changes: map[string][]WireOp{"x": nil}}, http.StatusBadRequest},
		{http.MethodPost, "/v1/step", stepRequest{Changes: map[string][]WireOp{"42": nil}}, http.StatusNotFound}, // unknown stream
		{http.MethodDelete, "/v1/queries/zzz", nil, http.StatusBadRequest},
		{http.MethodDelete, "/v1/queries/99", nil, http.StatusNotFound},
		{http.MethodPost, "/v1/queries", graphRequest{Graph: WireGraph{
			Edges: []WireEdge{{U: 0, V: 1}},
		}}, http.StatusBadRequest}, // edge without vertices
		{http.MethodPost, "/v1/step", stepRequest{Changes: map[string][]WireOp{
			"0": {{Op: "frobnicate"}},
		}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, _ := do(t, c.method, srv.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Fatalf("case %d (%s %s): status %d; want %d", i, c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

// staticFilter is a minimal non-dynamic core.Filter: AddQuery after the
// first stream trips the Monitor's seal, which must surface as 409.
type staticFilter struct{}

func (staticFilter) Name() string                                { return "static" }
func (staticFilter) AddQuery(core.QueryID, *graph.Graph) error   { return nil }
func (staticFilter) AddStream(core.StreamID, *graph.Graph) error { return nil }
func (staticFilter) Apply(core.StreamID, graph.ChangeSet) error  { return nil }
func (staticFilter) Candidates() []core.Pair                     { return nil }

// TestServerStatusMapping checks that engine sentinel errors surface as the
// right HTTP statuses: 404 for unknown IDs, 409 for seal violations, 501 for
// unsupported operations.
func TestServerStatusMapping(t *testing.T) {
	t.Run("sealed_409_and_unsupported_501", func(t *testing.T) {
		srv := httptest.NewServer(New(core.NewMonitor(staticFilter{})).Handler())
		defer srv.Close()
		resp, _ := do(t, http.MethodPost, srv.URL+"/v1/streams", graphRequest{Graph: edgeGraph(0, 1)})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add stream = %d", resp.StatusCode)
		}
		// Query after stream on a non-dynamic filter: workload sealed.
		resp, body := do(t, http.MethodPost, srv.URL+"/v1/queries", graphRequest{Graph: edgeGraph(0, 1)})
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("sealed add query = %d body %v; want 409", resp.StatusCode, body)
		}
		// Removal on a non-dynamic filter: unsupported.
		resp, _ = do(t, http.MethodDelete, srv.URL+"/v1/queries/0", nil)
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("unsupported removal = %d; want 501", resp.StatusCode)
		}
	})
	t.Run("unknown_ids_404", func(t *testing.T) {
		srv := testServer(t)
		resp, _ := do(t, http.MethodPost, srv.URL+"/v1/step",
			stepRequest{Changes: map[string][]WireOp{"7": nil}})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown stream step = %d; want 404", resp.StatusCode)
		}
		resp, _ = do(t, http.MethodDelete, srv.URL+"/v1/queries/99", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown query delete = %d; want 404", resp.StatusCode)
		}
	})
}

// TestServerMetrics drives one timestamp and checks /v1/metrics serves the
// engine latency histogram, the candidate-ratio gauge, and the filter's
// structure-size samples in Prometheus text format.
func TestServerMetrics(t *testing.T) {
	srv := testServer(t)
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/queries", graphRequest{Graph: edgeGraph(0, 1)}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query = %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/streams", graphRequest{Graph: edgeGraph(0, 2)}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("add stream = %d", resp.StatusCode)
	}
	step := stepRequest{Changes: map[string][]WireOp{
		"0": {{Op: "ins", U: 0, V: 7, ULabel: 0, VLabel: 1, ELabel: 0}},
	}}
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/step", step); resp.StatusCode != http.StatusOK {
		t.Fatalf("step = %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE nntstream_engine_apply_seconds histogram",
		"nntstream_engine_apply_seconds_bucket{le=\"+Inf\"} 1",
		"nntstream_engine_apply_seconds_count 1",
		"nntstream_engine_timestamps_total 1",
		"nntstream_engine_candidate_ratio 1",
		"nntstream_dsc_column_entries",
		"nntstream_filter_nnt_nodes",
		"nntstream_npv_dominance_tests_total",
		"nntstream_npv_sig_rejects_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// TestServerConcurrentStepAndReads overlaps POST /v1/step with GET
// /v1/candidates, /v1/stats, and /v1/metrics. Run under -race it validates
// the server's readers-writer locking and the engines' read-path contract.
func TestServerConcurrentStepAndReads(t *testing.T) {
	sharded := core.NewShardedMonitor(func() core.Filter { return join.NewDSC(3) }, 2)
	srv := httptest.NewServer(New(sharded).Handler())
	defer srv.Close()

	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/queries", graphRequest{Graph: edgeGraph(0, 1)}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query = %d", resp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/streams", graphRequest{Graph: edgeGraph(0, 2)}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("add stream = %d", resp.StatusCode)
		}
	}

	const rounds = 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/v1/candidates", "/v1/stats", "/v1/metrics", "/v1/candidates"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	for i := 0; i < rounds; i++ {
		v := 10 + i
		step := stepRequest{Changes: map[string][]WireOp{
			"0": {{Op: "ins", U: 0, V: int32(v), ULabel: 0, VLabel: 1, ELabel: 0}},
			"1": {{Op: "ins", U: 0, V: int32(v), ULabel: 0, VLabel: 1, ELabel: 0}},
		}}
		resp, _ := do(t, http.MethodPost, srv.URL+"/v1/step", step)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d = %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	resp, body := do(t, http.MethodGet, srv.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var ts int
	_ = json.Unmarshal(body["timestamps"], &ts)
	if ts != rounds {
		t.Fatalf("timestamps = %d; want %d", ts, rounds)
	}
}

func TestWireRoundTrip(t *testing.T) {
	wg := edgeGraph(3, 4)
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	back := FromGraph(g)
	if len(back.Vertices) != 2 || len(back.Edges) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Vertices[0].Label != 3 || back.Edges[0].U != 0 {
		t.Fatalf("round trip content = %+v", back)
	}
	if _, err := (WireOp{Op: "nope"}).ToChangeOp(); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestServerBodyLimit(t *testing.T) {
	s := New(core.NewMonitor(join.NewDSC(3)))
	s.SetMaxBodyBytes(1024)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// An oversized body is refused with 413 on every decoding endpoint. The
	// payload is syntactically valid JSON so the size cap, not the parser,
	// is what trips.
	big := `{"pad":"` + strings.Repeat("x", 4096) + `"}`
	for _, path := range []string{"/v1/queries", "/v1/streams", "/v1/step"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", path, resp.StatusCode)
		}
	}

	// A small valid request still works under the tightened cap.
	resp, _ := do(t, http.MethodPost, srv.URL+"/v1/queries", map[string]any{"graph": edgeGraph(0, 1)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small request rejected: %d", resp.StatusCode)
	}

	// SetMaxBodyBytes(0) restores the default.
	s.SetMaxBodyBytes(0)
	resp2, err := http.Post(srv.URL+"/v1/streams", "application/json",
		strings.NewReader(`{"graph":{"vertices":[{"id":0,"label":0},{"id":1,"label":1}],"edges":[{"u":0,"v":1,"label":0}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("stream add after cap reset: %d", resp2.StatusCode)
	}
}
