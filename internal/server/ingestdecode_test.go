package server

import (
	"strings"
	"testing"

	"nntstream/internal/graph"
)

func TestIngestDecodeValid(t *testing.T) {
	var d IngestDecoder
	line := []byte(`{"changes":[{"stream":3,"ops":[` +
		`{"op":"ins","u":1,"v":2,"ul":3,"vl":4,"el":5},` +
		`{"op":"del","u":-7,"v":8}]},` +
		`{"stream":0,"ops":[]}]}`)
	step, err := d.DecodeStep(line)
	if err != nil {
		t.Fatalf("DecodeStep: %v", err)
	}
	if len(step.Groups) != 2 {
		t.Fatalf("groups = %d; want 2", len(step.Groups))
	}
	g := step.Groups[0]
	if g.Stream != 3 || len(g.Ops) != 2 {
		t.Fatalf("group 0 = stream %d with %d ops; want stream 3 with 2", g.Stream, len(g.Ops))
	}
	want := graph.InsertOp(1, 3, 2, 4, 5)
	if g.Ops[0] != want {
		t.Fatalf("op 0 = %+v; want %+v", g.Ops[0], want)
	}
	if del := graph.DeleteOp(-7, 8); g.Ops[1] != del {
		t.Fatalf("op 1 = %+v; want %+v", g.Ops[1], del)
	}
	if g2 := step.Groups[1]; g2.Stream != 0 || len(g2.Ops) != 0 {
		t.Fatalf("group 1 = %+v; want empty stream 0", g2)
	}
	if step.OpCount() != 2 {
		t.Fatalf("OpCount = %d; want 2", step.OpCount())
	}

	// An empty changes array is a legal (if pointless) frame.
	step, err = d.DecodeStep([]byte(`{"changes":[]}`))
	if err != nil || len(step.Groups) != 0 {
		t.Fatalf("empty frame = (%v, %v)", step.Groups, err)
	}

	// Insignificant whitespace between tokens is tolerated.
	step, err = d.DecodeStep([]byte(`{"changes": [ {"stream": 1 , "ops": [ {"op":"del","u": 1 ,"v": 2 } ] } ] }`))
	if err != nil || len(step.Groups) != 1 || len(step.Groups[0].Ops) != 1 {
		t.Fatalf("whitespace frame = (%v, %v)", step.Groups, err)
	}
}

func TestIngestDecodeReuseAcrossCalls(t *testing.T) {
	var d IngestDecoder
	if _, err := d.DecodeStep([]byte(`{"changes":[{"stream":1,"ops":[{"op":"del","u":1,"v":2},{"op":"del","u":3,"v":4}]}]}`)); err != nil {
		t.Fatal(err)
	}
	// A smaller follow-up frame must not leak the previous frame's groups
	// or ops out of the recycled storage.
	step, err := d.DecodeStep([]byte(`{"changes":[{"stream":9,"ops":[{"op":"del","u":5,"v":6}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(step.Groups) != 1 || step.Groups[0].Stream != 9 || len(step.Groups[0].Ops) != 1 {
		t.Fatalf("recycled decode = %+v", step.Groups)
	}
	if want := graph.DeleteOp(5, 6); step.Groups[0].Ops[0] != want {
		t.Fatalf("op = %+v; want %+v", step.Groups[0].Ops[0], want)
	}
}

func TestIngestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, line, wantSub string
	}{
		{"empty", ``, `frame must open`},
		{"not json", `hello`, `frame must open`},
		{"reordered keys", `{"changes":[{"ops":[],"stream":0}]}`, `must open with {"stream":`},
		{"unknown op", `{"changes":[{"stream":0,"ops":[{"op":"upsert","u":1,"v":2}]}]}`, `"op" must be "ins" or "del"`},
		{"ins missing labels", `{"changes":[{"stream":0,"ops":[{"op":"ins","u":1,"v":2}]}]}`, `want integer "ul"`},
		{"del with labels", `{"changes":[{"stream":0,"ops":[{"op":"del","u":1,"v":2,"ul":3}]}]}`, `want "}" closing op`},
		{"float id", `{"changes":[{"stream":0,"ops":[{"op":"del","u":1.5,"v":2}]}]}`, `want integer "v"`},
		{"leading zero", `{"changes":[{"stream":01,"ops":[]}]}`, `"stream" must be an integer`},
		{"vertex overflow", `{"changes":[{"stream":0,"ops":[{"op":"del","u":2147483648,"v":2}]}]}`, `vertex id out of range`},
		{"label overflow", `{"changes":[{"stream":0,"ops":[{"op":"ins","u":1,"v":2,"ul":65536,"vl":0,"el":0}]}]}`, `label out of range`},
		{"negative label", `{"changes":[{"stream":0,"ops":[{"op":"ins","u":1,"v":2,"ul":-1,"vl":0,"el":0}]}]}`, `label out of range`},
		{"trailing bytes", `{"changes":[]}x`, `trailing bytes`},
		{"truncated", `{"changes":[{"stream":0,"ops":[`, `op must open`},
		{"huge int", `{"changes":[{"stream":99999999999999999999,"ops":[]}]}`, `"stream" must be an integer`},
	}
	var d IngestDecoder
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := d.DecodeStep([]byte(tc.line))
			if err == nil {
				t.Fatalf("DecodeStep(%q) accepted", tc.line)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "byte ") {
				t.Fatalf("error %q carries no offset", err)
			}
		})
	}
}

// TestIngestDecodeZeroAlloc is the steady-state allocation contract behind
// the //nnt:hotpath annotations: once the decoder's reused storage is warm,
// decoding allocates nothing. The same property is enforced in CI through
// the IngestDecode benchmark's -max-allocs 0 gate.
func TestIngestDecodeZeroAlloc(t *testing.T) {
	line := []byte(`{"changes":[{"stream":3,"ops":[` +
		`{"op":"ins","u":1,"v":2,"ul":3,"vl":4,"el":5},` +
		`{"op":"del","u":1,"v":2}]},` +
		`{"stream":4,"ops":[{"op":"ins","u":10,"v":11,"ul":0,"vl":1,"el":2}]}]}`)
	var d IngestDecoder
	if _, err := d.DecodeStep(line); err != nil { // warm the storage
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.DecodeStep(line); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm DecodeStep allocates %v per run; want 0", allocs)
	}
}
