package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/join"
	"nntstream/internal/obs"
	"nntstream/internal/wal"
)

// insFrame renders one canonical step frame inserting a single edge on one
// stream.
func insFrame(stream int, u, v int32, ul, vl, el uint16) string {
	return fmt.Sprintf(`{"changes":[{"stream":%d,"ops":[{"op":"ins","u":%d,"v":%d,"ul":%d,"vl":%d,"el":%d}]}]}`,
		stream, u, v, ul, vl, el)
}

func postNDJSON(t *testing.T, url, tenant, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/ingest", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(text)
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, text)
	}
	return string(text)
}

// durableTestServer builds an httptest server over a DurableEngine with WAL
// metrics exposed, so tests can count fsyncs per request.
func durableTestServer(t *testing.T) (*httptest.Server, *Server, *wal.Metrics) {
	t.Helper()
	reg := obs.NewRegistry()
	m := wal.NewMetrics(reg)
	eng, err := core.OpenDurableEngine(t.TempDir(),
		func() core.Filter { return join.NewDSC(3) },
		core.DurableOptions{Fsync: wal.SyncAlways, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	s := NewWithRegistry(eng, reg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, s, m
}

// registerPair registers one query (labels 0-1) and one stream (labels 0-2)
// and returns the stream id.
func registerPair(t *testing.T, url string) int {
	t.Helper()
	resp, _ := do(t, http.MethodPost, url+"/v1/queries", graphRequest{Graph: edgeGraph(0, 1)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add query = %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodPost, url+"/v1/streams", graphRequest{Graph: edgeGraph(0, 2)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add stream = %d", resp.StatusCode)
	}
	var sid int
	if err := json.Unmarshal(body["id"], &sid); err != nil {
		t.Fatal(err)
	}
	return sid
}

// TestIngestBatchMatchesSequentialSteps is the acceptance criterion: a
// batched ingest of N steps costs at most one fsync and leaves
// /v1/candidates bit-identical to N sequential /v1/step calls.
func TestIngestBatchMatchesSequentialSteps(t *testing.T) {
	const n = 5
	batchSrv, _, m := durableTestServer(t)
	seqSrv, _, _ := durableTestServer(t)

	sidB := registerPair(t, batchSrv.URL)
	sidS := registerPair(t, seqSrv.URL)
	if sidB != sidS {
		t.Fatalf("stream ids diverged: %d vs %d", sidB, sidS)
	}

	// N steps, each attaching one fresh vertex; step i uses label i%3 so
	// the candidate set changes over the batch.
	var frames []string
	for i := 0; i < n; i++ {
		frames = append(frames, insFrame(sidB, 0, int32(10+i), 0, uint16(i%3), 0))
	}

	fsyncsBefore := m.Fsyncs.Value()
	resp, text := postNDJSON(t, batchSrv.URL, "", strings.Join(frames, "\n")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, text)
	}
	if got := m.Fsyncs.Value() - fsyncsBefore; got > 1 {
		t.Fatalf("batch of %d steps cost %d fsyncs; want <= 1", n, got)
	}
	if !strings.Contains(text, `"steps":5`) || !strings.Contains(text, `"ops":5`) {
		t.Fatalf("ingest response = %s; want steps=5 ops=5", text)
	}

	for i := 0; i < n; i++ {
		step := stepRequest{Changes: map[string][]WireOp{
			fmt.Sprint(sidS): {{Op: "ins", U: 0, V: int32(10 + i), ULabel: 0, VLabel: uint16(i % 3), ELabel: 0}},
		}}
		if resp, _ := do(t, http.MethodPost, seqSrv.URL+"/v1/step", step); resp.StatusCode != http.StatusOK {
			t.Fatalf("sequential step %d = %d", i, resp.StatusCode)
		}
	}

	batchCand := getBody(t, batchSrv.URL+"/v1/candidates")
	seqCand := getBody(t, seqSrv.URL+"/v1/candidates")
	if batchCand != seqCand {
		t.Fatalf("candidates diverged:\n  batch: %s\n  seq:   %s", batchCand, seqCand)
	}
}

// TestIngestFallbackEngine: an engine without StepAllBatch (plain Monitor)
// still serves /v1/ingest through the per-step fallback.
func TestIngestFallbackEngine(t *testing.T) {
	srv := testServer(t)
	sid := registerPair(t, srv.URL)
	resp, text := postNDJSON(t, srv.URL, "",
		insFrame(sid, 0, 10, 0, 1, 0)+"\n"+insFrame(sid, 0, 11, 0, 2, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, text)
	}
	if !strings.Contains(text, `"steps":2`) {
		t.Fatalf("response = %s; want 2 steps", text)
	}
}

// TestIngestMalformedFrameRejectsWholeBatch: a defect on any line rejects
// the batch before the engine or the WAL sees anything.
func TestIngestMalformedFrameRejectsWholeBatch(t *testing.T) {
	srv, s, _ := durableTestServer(t)
	sid := registerPair(t, srv.URL)
	d := s.engine.(*core.DurableEngine)
	lsnBefore := d.LastLSN()

	body := insFrame(sid, 0, 10, 0, 1, 0) + "\n" +
		`{"changes":[{"stream":` + fmt.Sprint(sid) + `,"ops":[{"op":"zap"}]}]}` + "\n" +
		insFrame(sid, 0, 11, 0, 1, 0)
	resp, text := postNDJSON(t, srv.URL, "", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch = %d: %s", resp.StatusCode, text)
	}
	if !strings.Contains(text, "line 2") {
		t.Fatalf("error %q does not name the offending line", text)
	}
	if got := d.LastLSN(); got != lsnBefore {
		t.Fatalf("WAL advanced to LSN %d on a rejected batch (was %d)", got, lsnBefore)
	}
	if cand := getBody(t, srv.URL+"/v1/candidates"); !strings.Contains(cand, `"pairs":[]`) {
		t.Fatalf("engine state changed on a rejected batch: %s", cand)
	}

	// Duplicate stream within one frame is a decode-stage rejection too.
	dup := `{"changes":[{"stream":0,"ops":[]},{"stream":0,"ops":[]}]}`
	if resp, text := postNDJSON(t, srv.URL, "", dup); resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(text, "duplicate stream") {
		t.Fatalf("duplicate-stream frame = %d: %s", resp.StatusCode, text)
	}
}

// TestIngestMidBatchApplyFailure: decode-clean steps that the engine rejects
// (unknown stream) fail per step — earlier steps stay applied and the
// response reports how far the batch got.
func TestIngestMidBatchApplyFailure(t *testing.T) {
	srv, _, _ := durableTestServer(t)
	sid := registerPair(t, srv.URL)
	body := insFrame(sid, 0, 10, 0, 1, 0) + "\n" + insFrame(99, 0, 11, 0, 1, 0)
	resp, text := postNDJSON(t, srv.URL, "", body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-stream batch = %d: %s", resp.StatusCode, text)
	}
	if !strings.Contains(text, `"steps_applied":1`) {
		t.Fatalf("response %q does not report the applied prefix", text)
	}
}

func TestIngestRejectsBadRequests(t *testing.T) {
	srv := testServer(t)
	if resp, err := http.Get(srv.URL + "/v1/ingest"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest = %d", resp.StatusCode)
	}
	if resp, _ := postNDJSON(t, srv.URL, "", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body = %d", resp.StatusCode)
	}
	if resp, _ := postNDJSON(t, srv.URL, "", "\n\n  \n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("blank body = %d", resp.StatusCode)
	}
}

func TestIngestOversizedBody(t *testing.T) {
	srv := testServer(t)
	sid := registerPair(t, srv.URL)

	small := New(core.NewMonitor(join.NewDSC(3)))
	small.SetMaxBodyBytes(64)
	smallSrv := httptest.NewServer(small.Handler())
	t.Cleanup(smallSrv.Close)

	body := insFrame(sid, 0, 10, 0, 1, 0) + "\n" + insFrame(sid, 0, 11, 0, 1, 0)
	if int64(len(body)) <= 64 {
		t.Fatalf("test body too small (%d bytes) to trip the 64-byte cap", len(body))
	}
	resp, text := postNDJSON(t, smallSrv.URL, "", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d: %s", resp.StatusCode, text)
	}
	// The default cap accepts the same body.
	if resp, _ := postNDJSON(t, srv.URL, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("normal-cap ingest = %d", resp.StatusCode)
	}
}

// TestIngestSlowClientTimeout: a client that sends headers but stalls the
// body is cut off by the per-request read deadline with 408, freeing its
// in-flight slot.
func TestIngestSlowClientTimeout(t *testing.T) {
	s := New(core.NewMonitor(join.NewDSC(3)))
	s.SetIngestLimits(IngestLimits{ReadTimeout: 150 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Promise 4096 body bytes, deliver a fragment, then stall.
	fmt.Fprintf(conn, "POST /v1/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 4096\r\nContent-Type: application/x-ndjson\r\n\r\n")
	fmt.Fprintf(conn, `{"changes":`)

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("reading timeout response: %v", err)
	}
	if status := string(buf[:n]); !strings.Contains(status, "408") {
		t.Fatalf("slow-client response = %q; want 408", status)
	}
	if got := s.adm.inFlight(); got != 0 {
		t.Fatalf("in-flight after timeout = %d; want 0 (slot released)", got)
	}
}

// TestIngestInFlightBudget: requests past MaxInFlight are shed with 429 and
// a Retry-After hint before their body is read.
func TestIngestInFlightBudget(t *testing.T) {
	s := New(core.NewMonitor(join.NewDSC(3)))
	s.SetIngestLimits(IngestLimits{MaxInFlight: 1})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	sid := registerPair(t, srv.URL)

	// Occupy the only slot directly, then observe the shed.
	if !s.adm.acquire() {
		t.Fatal("acquire on idle admission failed")
	}
	resp, text := postNDJSON(t, srv.URL, "", insFrame(sid, 0, 10, 0, 1, 0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest = %d: %s", resp.StatusCode, text)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	s.adm.release()
	if resp, _ := postNDJSON(t, srv.URL, "", insFrame(sid, 0, 10, 0, 1, 0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after release = %d", resp.StatusCode)
	}
}

// TestIngestTenantQuota: an exhausted tenant is denied with 429 and a
// Retry-After hint while other tenants keep flowing.
func TestIngestTenantQuota(t *testing.T) {
	s := New(core.NewMonitor(join.NewDSC(3)))
	s.SetIngestLimits(IngestLimits{TenantRate: 0.5, TenantBurst: 2})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	sid := registerPair(t, srv.URL)

	// Two ops drain tenant A's burst.
	body := insFrame(sid, 0, 10, 0, 1, 0) + "\n" + insFrame(sid, 0, 11, 0, 1, 0)
	if resp, text := postNDJSON(t, srv.URL, "tenant-a", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first tenant-a batch = %d: %s", resp.StatusCode, text)
	}
	resp, text := postNDJSON(t, srv.URL, "tenant-a", insFrame(sid, 0, 12, 0, 1, 0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained tenant-a = %d: %s", resp.StatusCode, text)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q; want a positive hint", ra)
	}
	if !strings.Contains(text, "tenant-a") {
		t.Fatalf("quota denial %q does not name the tenant", text)
	}
	// Tenant B is unaffected.
	if resp, text := postNDJSON(t, srv.URL, "tenant-b", insFrame(sid, 0, 13, 0, 1, 0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-b batch = %d: %s", resp.StatusCode, text)
	}
}

// TestIngestMetricsExported checks the nntstream_ingest_* instruments move
// with traffic and reach the /v1/metrics exposition.
func TestIngestMetricsExported(t *testing.T) {
	srv, s, _ := durableTestServer(t)
	sid := registerPair(t, srv.URL)
	if resp, _ := postNDJSON(t, srv.URL, "", insFrame(sid, 0, 10, 0, 1, 0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	if resp, _ := postNDJSON(t, srv.URL, "", "not a frame"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("malformed ingest accepted")
	}
	if got := s.ingest.requests.Value(); got != 2 {
		t.Fatalf("requests counter = %d; want 2", got)
	}
	if got := s.ingest.steps.Value(); got != 1 {
		t.Fatalf("steps counter = %d; want 1", got)
	}
	if got := s.ingest.rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d; want 1", got)
	}
	// The in-flight gauge must drain once requests complete — a defer
	// ordered after the admission release would freeze it at 1 forever.
	if !strings.Contains(getBody(t, srv.URL+"/v1/metrics"), "nntstream_ingest_inflight 0") {
		t.Error("nntstream_ingest_inflight did not drain to 0 after requests completed")
	}
	text := getBody(t, srv.URL+"/v1/metrics")
	for _, name := range []string{
		"nntstream_ingest_requests_total", "nntstream_ingest_steps_total",
		"nntstream_ingest_ops_total", "nntstream_ingest_rejected_total",
		"nntstream_ingest_batch_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/v1/metrics missing %s", name)
		}
	}
}

// TestIngestConcurrentWithReads drives batched writes and read endpoints
// concurrently — the -race gate's coverage for the ingest path.
func TestIngestConcurrentWithReads(t *testing.T) {
	sharded := core.NewShardedMonitorWith(
		func() core.Filter { return join.NewDSC(3) }, core.ShardedOptions{Shards: 2})
	s := New(sharded)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	sid := registerPair(t, srv.URL)

	const writers, reads = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				v := int32(100 + w*reads + i)
				body := insFrame(sid, 0, v, 0, 1, 0) + "\n" + insFrame(sid, 0, v+1000, 0, 2, 0)
				resp, text := postNDJSON(t, srv.URL, fmt.Sprintf("w%d", w), body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d ingest = %d: %s", w, resp.StatusCode, text)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writers*reads; i++ {
			for _, path := range []string{"/v1/candidates", "/v1/stats"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
}
