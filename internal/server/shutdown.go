package server

import (
	"context"
	"errors"
	"net/http"
)

// Drain gracefully shuts down the given HTTP servers together: each stops
// accepting new connections immediately, in-flight requests run to completion,
// and Drain returns when every server has finished draining or ctx expires
// (whichever comes first — an expired ctx abandons the stragglers and returns
// their contexts' errors). Nil servers are permitted and skipped, so callers
// can pass optional listeners (pprof, cluster control planes) unconditionally.
func Drain(ctx context.Context, srvs ...*http.Server) error {
	errs := make([]error, len(srvs))
	done := make(chan int, len(srvs))
	n := 0
	for i, s := range srvs {
		if s == nil {
			continue
		}
		n++
		go func(i int, s *http.Server) {
			errs[i] = s.Shutdown(ctx)
			done <- i
		}(i, s)
	}
	for ; n > 0; n-- {
		<-done
	}
	return errors.Join(errs...)
}
