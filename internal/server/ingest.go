package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/obs"
	"nntstream/internal/wal"
)

// BatchStepper is the optional group-commit surface: engines that can apply
// a sequence of timestamps under one durability barrier (core.DurableEngine)
// implement it. Engines without it fall back to per-step StepAll, which is
// semantically identical — the batch path only changes how many fsyncs the
// WAL pays.
type BatchStepper interface {
	StepAllBatch(batch []map[core.StreamID]graph.ChangeSet) (applied, pairs int, err error)
}

// ingestMetrics are the nntstream_ingest_* instruments: admission-control
// visibility (shed and quota denials, in-flight level) plus the throughput
// counters the loadgen harness and dashboards read.
type ingestMetrics struct {
	requests     *obs.Counter
	steps        *obs.Counter
	ops          *obs.Counter
	pairs        *obs.Counter
	bytes        *obs.Counter
	rejected     *obs.Counter
	shedInflight *obs.Counter
	shedQuota    *obs.Counter
	inflight     *obs.Gauge
	batchSeconds *obs.Histogram
}

func newIngestMetrics(r *obs.Registry) *ingestMetrics {
	return &ingestMetrics{
		requests: r.Counter("nntstream_ingest_requests_total",
			"Ingest requests received (any outcome)."),
		steps: r.Counter("nntstream_ingest_steps_total",
			"Timestamps applied through the ingest path."),
		ops: r.Counter("nntstream_ingest_ops_total",
			"Edge operations applied through the ingest path."),
		pairs: r.Counter("nntstream_ingest_pairs_total",
			"Candidate pairs reported by ingest-applied timestamps."),
		bytes: r.Counter("nntstream_ingest_bytes_total",
			"Ingest request body bytes read."),
		rejected: r.Counter("nntstream_ingest_rejected_total",
			"Ingest batches rejected before apply (malformed, oversized, unknown stream)."),
		shedInflight: r.Counter("nntstream_ingest_shed_inflight_total",
			"Ingest requests shed by the in-flight budget (429)."),
		shedQuota: r.Counter("nntstream_ingest_shed_quota_total",
			"Ingest batches denied by a tenant quota (429)."),
		inflight: r.Gauge("nntstream_ingest_inflight",
			"Ingest requests currently executing."),
		batchSeconds: r.Histogram("nntstream_ingest_batch_seconds",
			"Latency of one ingest batch: read, decode, group-commit, apply.", nil),
	}
}

// SetIngestLimits replaces the ingest admission-control configuration.
// Call it before the handler starts serving (it swaps the whole admission
// state, forgetting tenant buckets). Requests already in flight are safe
// either way — each request captures the admission instance it acquired
// from and releases on that same instance — but a swap mid-serve silently
// resets in-flight accounting and tenant buckets for new requests.
func (s *Server) SetIngestLimits(limits IngestLimits) {
	s.adm = newAdmission(limits)
}

type ingestResponse struct {
	Steps int `json:"steps"`
	Ops   int `json:"ops"`
	Pairs int `json:"pairs"`
}

// handleIngest is the batched write path: an NDJSON body of step frames
// (see ingestdecode.go for the wire format), applied as one group-committed
// batch. The whole body is decoded and validated before the engine sees
// anything, so a malformed frame anywhere rejects the batch with the WAL
// untouched. Apply-side failures (an unknown stream, an invalid change set)
// are per step: earlier steps stay applied and durable, and the response
// reports how far the batch got. The exception is a failed group-commit
// fsync (wal.ErrSyncFailed): durability of the whole batch is then unknown,
// so the response reports steps_applied 0 rather than promise a durable
// prefix.
//
// Admission control runs in two stages: the in-flight budget sheds whole
// requests before their body is read, and the per-tenant token bucket
// (keyed by the X-Tenant header) charges one token per edge op after
// decode, when the batch's true cost is known. Both denials are 429 with a
// Retry-After hint.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.ingest.requests.Inc()
	// Pin the admission instance for the whole request: a SetIngestLimits
	// swap mid-request must not let acquire and release land on different
	// instances (that would drive the new counter negative and permanently
	// widen the in-flight budget).
	adm := s.adm
	if !adm.acquire() {
		s.ingest.shedInflight.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest in-flight budget exhausted")
		return
	}
	// LIFO order matters: release must run before the deferred gauge update,
	// or the gauge records the pre-release count and never drains to zero.
	defer func() { s.ingest.inflight.Set(float64(adm.inFlight())) }()
	defer adm.release()
	s.ingest.inflight.Set(float64(adm.inFlight()))
	start := time.Now()

	if t := adm.limits.ReadTimeout; t > 0 {
		// Bound the body read so a slow client cannot camp on an in-flight
		// slot. Failure to set the deadline (HTTP/2 on some configs) is not
		// fatal — the outer server's read timeout still applies.
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(t))
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			s.ingest.rejected.Inc()
			httpError(w, http.StatusRequestEntityTooLarge,
				"ingest body exceeds %d bytes", tooLarge.Limit)
		case errors.Is(err, os.ErrDeadlineExceeded):
			s.ingest.rejected.Inc()
			httpError(w, http.StatusRequestTimeout, "ingest body read timed out")
		default:
			s.ingest.rejected.Inc()
			httpError(w, http.StatusBadRequest, "reading ingest body: %v", err)
		}
		return
	}
	s.ingest.bytes.Add(int64(len(data)))

	batch, opCount, err := decodeIngestBatch(data)
	if err != nil {
		s.ingest.rejected.Inc()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(batch) == 0 {
		s.ingest.rejected.Inc()
		httpError(w, http.StatusBadRequest, "empty ingest batch")
		return
	}

	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if ok, retryAfter := adm.admitOps(tenant, opCount); !ok {
		s.ingest.shedQuota.Inc()
		w.Header().Set("Retry-After",
			strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests,
			"tenant %q over ingest quota (%d ops)", tenant, opCount)
		return
	}

	s.mu.Lock()
	applied, pairs, err := stepBatch(s.engine, batch)
	s.mu.Unlock()
	s.ingest.steps.Add(int64(applied))
	s.ingest.pairs.Add(int64(pairs))
	if applied == len(batch) {
		s.ingest.ops.Add(int64(opCount))
	} else {
		n := 0
		for _, changes := range batch[:applied] {
			for _, cs := range changes {
				n += len(cs)
			}
		}
		s.ingest.ops.Add(int64(n))
	}
	s.ingest.batchSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		if errors.Is(err, wal.ErrSyncFailed) {
			// The group commit's closing fsync did not succeed: the engine's
			// in-memory state may run ahead of the durable WAL, so no step of
			// this batch can be promised as durable. Report zero applied with
			// a distinct error instead of claiming a durable prefix.
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error":         fmt.Sprintf("batch durability unknown: %v", err),
				"steps_applied": 0,
			})
			return
		}
		writeJSON(w, statusFor(err), map[string]any{
			"error":         fmt.Sprintf("step %d: %v", applied, err),
			"steps_applied": applied,
		})
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Steps: applied, Ops: opCount, Pairs: pairs})
}

// stepBatch routes a decoded batch to the engine: group-committed when the
// engine supports it, otherwise step by step (identical semantics, one
// durability barrier per step).
func stepBatch(engine Engine, batch []map[core.StreamID]graph.ChangeSet) (applied, pairs int, err error) {
	if bs, ok := engine.(BatchStepper); ok {
		return bs.StepAllBatch(batch)
	}
	for _, changes := range batch {
		ps, err := engine.StepAll(changes)
		if err != nil {
			return applied, pairs, err
		}
		applied++
		pairs += len(ps)
	}
	return applied, pairs, nil
}

// decodeIngestBatch splits an NDJSON body into lines, decodes every frame,
// and materializes the engine-facing change-set maps. All-or-nothing: any
// defect on any line rejects the whole body before the engine is touched.
// Blank lines are skipped, so both newline-terminated and newline-separated
// bodies decode.
func decodeIngestBatch(data []byte) ([]map[core.StreamID]graph.ChangeSet, int, error) {
	var dec IngestDecoder
	var batch []map[core.StreamID]graph.ChangeSet
	opCount := 0
	lineNo := 0
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		lineNo++
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		step, err := dec.DecodeStep(line)
		if err != nil {
			return nil, 0, fmt.Errorf("ingest line %d: %w", lineNo, err)
		}
		changes := make(map[core.StreamID]graph.ChangeSet, len(step.Groups))
		for gi := range step.Groups {
			g := &step.Groups[gi]
			sid := core.StreamID(g.Stream)
			if _, dup := changes[sid]; dup {
				return nil, 0, fmt.Errorf("ingest line %d: duplicate stream %d", lineNo, g.Stream)
			}
			// Copy out of the decoder's reused backing storage: the engine
			// (and the WAL record built from this map) retains the slice.
			cs := make(graph.ChangeSet, len(g.Ops))
			copy(cs, g.Ops)
			changes[sid] = cs
			opCount += len(cs)
		}
		batch = append(batch, changes)
	}
	return batch, opCount, nil
}
