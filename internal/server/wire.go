// Package server exposes a continuous-monitoring engine over HTTP/JSON: a
// long-running service that accepts query patterns and graph streams,
// advances global timestamps from posted change sets, and reports the
// possibly-joinable pairs — the deployment shape of the paper's motivating
// application (a monitoring daemon fed by live traffic).
//
// The API is versioned under /v1:
//
//	POST   /v1/queries     {"graph": {...}}            → {"id": 0}
//	DELETE /v1/queries/0                               (dynamic filters)
//	POST   /v1/streams     {"graph": {...}}            → {"id": 0}
//	POST   /v1/step        {"changes": {"0": [{...}]}} → {"pairs": [...]}
//	POST   /v1/ingest      NDJSON step frames          → {"steps": n, ...}
//	GET    /v1/candidates                              → {"pairs": [...]}
//	GET    /v1/stats
//	GET    /v1/healthz
package server

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// WireGraph is the JSON form of a labeled graph.
type WireGraph struct {
	Vertices []WireVertex `json:"vertices"`
	Edges    []WireEdge   `json:"edges"`
}

// WireVertex is one labeled vertex.
type WireVertex struct {
	ID    int32  `json:"id"`
	Label uint16 `json:"label"`
}

// WireEdge is one labeled undirected edge.
type WireEdge struct {
	U     int32  `json:"u"`
	V     int32  `json:"v"`
	Label uint16 `json:"label"`
}

// WireOp is one graph change operation. Op is "ins" or "del"; labels are
// required for insertions only.
type WireOp struct {
	Op     string `json:"op"`
	U      int32  `json:"u"`
	V      int32  `json:"v"`
	ULabel uint16 `json:"ulabel,omitempty"`
	VLabel uint16 `json:"vlabel,omitempty"`
	ELabel uint16 `json:"elabel,omitempty"`
}

// WirePair is one reported (stream, query) pair.
type WirePair struct {
	Stream int `json:"stream"`
	Query  int `json:"query"`
}

// ToGraph validates and converts the wire form.
func (w WireGraph) ToGraph() (*graph.Graph, error) {
	g := graph.New()
	for _, v := range w.Vertices {
		if err := g.AddVertex(graph.VertexID(v.ID), graph.Label(v.Label)); err != nil {
			return nil, fmt.Errorf("vertex %d: %w", v.ID, err)
		}
	}
	for _, e := range w.Edges {
		if err := g.AddEdge(graph.VertexID(e.U), graph.VertexID(e.V), graph.Label(e.Label)); err != nil {
			return nil, fmt.Errorf("edge {%d,%d}: %w", e.U, e.V, err)
		}
	}
	return g, nil
}

// FromGraph converts a graph to wire form.
func FromGraph(g *graph.Graph) WireGraph {
	var w WireGraph
	for _, v := range g.VertexIDs() {
		w.Vertices = append(w.Vertices, WireVertex{ID: int32(v), Label: uint16(g.MustVertexLabel(v))})
	}
	for _, e := range g.Edges() {
		w.Edges = append(w.Edges, WireEdge{U: int32(e.U), V: int32(e.V), Label: uint16(e.Label)})
	}
	return w
}

// ToChangeOp validates and converts one wire op.
func (w WireOp) ToChangeOp() (graph.ChangeOp, error) {
	switch w.Op {
	case "ins":
		return graph.InsertOp(graph.VertexID(w.U), graph.Label(w.ULabel),
			graph.VertexID(w.V), graph.Label(w.VLabel), graph.Label(w.ELabel)), nil
	case "del":
		return graph.DeleteOp(graph.VertexID(w.U), graph.VertexID(w.V)), nil
	default:
		return graph.ChangeOp{}, fmt.Errorf("unknown op %q (want ins or del)", w.Op)
	}
}

func wirePairs(pairs []core.Pair) []WirePair {
	out := make([]WirePair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, WirePair{Stream: int(p.Stream), Query: int(p.Query)})
	}
	return out
}
