package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// Engine is the monitoring surface the server drives. Both core.Monitor and
// core.ShardedMonitor satisfy it.
type Engine interface {
	AddQuery(q *graph.Graph) (core.QueryID, error)
	AddStream(g0 *graph.Graph) (core.StreamID, error)
	StepAll(changes map[core.StreamID]graph.ChangeSet) ([]core.Pair, error)
	Candidates() []core.Pair
	Stats() core.Stats
}

// QueryRemover is the optional dynamic-query surface (DELETE /v1/queries).
type QueryRemover interface {
	RemoveQuery(id core.QueryID) error
}

// Server serializes access to an Engine behind an HTTP API. Engines are not
// safe for concurrent use; the server's mutex makes each request atomic.
type Server struct {
	mu     sync.Mutex
	engine Engine
}

// New wraps an engine.
func New(engine Engine) *Server { return &Server{engine: engine} }

// Handler returns the API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/queries", s.handleQueries)
	mux.HandleFunc("/v1/queries/", s.handleQueryByID)
	mux.HandleFunc("/v1/streams", s.handleStreams)
	mux.HandleFunc("/v1/step", s.handleStep)
	mux.HandleFunc("/v1/candidates", s.handleCandidates)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type graphRequest struct {
	Graph WireGraph `json:"graph"`
}

type idResponse struct {
	ID int `json:"id"`
}

type stepRequest struct {
	// Changes maps stream IDs (as JSON object keys, hence strings) to
	// operation lists.
	Changes map[string][]WireOp `json:"changes"`
}

type pairsResponse struct {
	Pairs []WirePair `json:"pairs"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req graphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	s.mu.Lock()
	id, err := s.engine.AddQuery(g)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, idResponse{ID: int(id)})
}

func (s *Server) handleQueryByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/queries/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query id %q", idStr)
		return
	}
	remover, ok := s.engine.(QueryRemover)
	if !ok {
		httpError(w, http.StatusNotImplemented, "engine does not support query removal")
		return
	}
	s.mu.Lock()
	err = remover.RemoveQuery(core.QueryID(id))
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req graphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	s.mu.Lock()
	id, err := s.engine.AddStream(g)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, idResponse{ID: int(id)})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req stepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	changes := make(map[core.StreamID]graph.ChangeSet, len(req.Changes))
	for key, ops := range req.Changes {
		sid, err := strconv.Atoi(key)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad stream id %q", key)
			return
		}
		var cs graph.ChangeSet
		for i, wop := range ops {
			op, err := wop.ToChangeOp()
			if err != nil {
				httpError(w, http.StatusBadRequest, "stream %s op %d: %v", key, i, err)
				return
			}
			cs = append(cs, op)
		}
		changes[core.StreamID(sid)] = cs
	}
	s.mu.Lock()
	pairs, err := s.engine.StepAll(changes)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, pairsResponse{Pairs: wirePairs(pairs)})
}

func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	pairs := s.engine.Candidates()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, pairsResponse{Pairs: wirePairs(pairs)})
}

type statsResponse struct {
	Timestamps     int     `json:"timestamps"`
	AvgFilterMs    float64 `json:"avg_filter_ms"`
	CandidateRatio float64 `json:"candidate_ratio"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	st := s.engine.Stats()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{
		Timestamps:     st.Timestamps,
		AvgFilterMs:    float64(st.AvgTimePerTimestamp()) / float64(time.Millisecond),
		CandidateRatio: st.CandidateRatio(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
