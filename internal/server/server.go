package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/factor"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
	"nntstream/internal/obs"
	"nntstream/internal/qindex"
)

// Engine is the monitoring surface the server drives. Both core.Monitor and
// core.ShardedMonitor satisfy it.
type Engine interface {
	AddQuery(q *graph.Graph) (core.QueryID, error)
	AddStream(g0 *graph.Graph) (core.StreamID, error)
	StepAll(changes map[core.StreamID]graph.ChangeSet) ([]core.Pair, error)
	Candidates() []core.Pair
	Stats() core.Stats
}

// QueryRemover is the optional dynamic-query surface (DELETE /v1/queries).
type QueryRemover interface {
	RemoveQuery(id core.QueryID) error
}

// metricsEngine is the optional instrumentation surface: engines that accept
// an EngineMetrics record per-timestamp latencies into the server's registry.
type metricsEngine interface {
	SetMetrics(em *core.EngineMetrics)
}

// Server guards an Engine behind an HTTP API with a readers-writer lock:
// mutating requests (registrations, steps) are exclusive, while read-only
// requests (/v1/candidates, /v1/stats, /v1/metrics) run concurrently. This
// relies on the core.Filter contract that Candidates is a safe read path.
type Server struct {
	mu           sync.RWMutex
	engine       Engine
	registry     *obs.Registry
	maxBodyBytes int64
	adm          *admission
	ingest       *ingestMetrics
}

// DefaultMaxBodyBytes caps request bodies: large enough for any realistic
// graph or change-set payload, small enough that a hostile request cannot
// balloon memory. Requests over the cap get 413.
const DefaultMaxBodyBytes = 8 << 20

// New wraps an engine. A metrics registry is created and, when the engine
// supports it, wired in so StepAll latencies land in /v1/metrics.
func New(engine Engine) *Server {
	return NewWithRegistry(engine, obs.NewRegistry())
}

// NewWithRegistry wraps an engine around an existing registry, so callers
// (cmd/serve) can register instruments — e.g. WAL durability metrics —
// alongside the engine's and have them all served from /v1/metrics.
func NewWithRegistry(engine Engine, reg *obs.Registry) *Server {
	s := &Server{
		engine:       engine,
		registry:     reg,
		maxBodyBytes: DefaultMaxBodyBytes,
		adm:          newAdmission(IngestLimits{}),
		ingest:       newIngestMetrics(reg),
	}
	if me, ok := engine.(metricsEngine); ok {
		me.SetMetrics(core.NewEngineMetrics(reg))
	}
	return s
}

// SetMaxBodyBytes overrides the request body cap; v <= 0 restores the
// default.
func (s *Server) SetMaxBodyBytes(v int64) {
	if v <= 0 {
		v = DefaultMaxBodyBytes
	}
	s.maxBodyBytes = v
}

// decodeJSON reads a request body, capped at maxBodyBytes, into dst. On
// failure it writes the error response (413 for an oversized body, 400
// otherwise) and returns false.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	defer body.Close()
	if err := json.NewDecoder(body).Decode(&dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

// Registry exposes the server's metrics registry so callers (cmd/serve) can
// register their own instruments alongside the engine's.
func (s *Server) Registry() *obs.Registry { return s.registry }

// Stats returns the engine's run statistics under the read lock.
func (s *Server) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Stats()
}

// statusFor maps engine errors onto HTTP statuses via the core sentinel
// errors: unknown IDs are 404, seal violations 409, unsupported operations
// 501, anything else 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownStream), errors.Is(err, core.ErrUnknownQuery):
		return http.StatusNotFound
	case errors.Is(err, core.ErrSealed):
		return http.StatusConflict
	case errors.Is(err, core.ErrUnsupported):
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

// Handler returns the API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/queries", s.handleQueries)
	mux.HandleFunc("/v1/queries/", s.handleQueryByID)
	mux.HandleFunc("/v1/streams", s.handleStreams)
	mux.HandleFunc("/v1/step", s.handleStep)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/candidates", s.handleCandidates)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type graphRequest struct {
	Graph WireGraph `json:"graph"`
}

type idResponse struct {
	ID int `json:"id"`
}

type stepRequest struct {
	// Changes maps stream IDs (as JSON object keys, hence strings) to
	// operation lists.
	Changes map[string][]WireOp `json:"changes"`
}

type pairsResponse struct {
	Pairs []WirePair `json:"pairs"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req graphRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	s.mu.Lock()
	id, err := s.engine.AddQuery(g)
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, idResponse{ID: int(id)})
}

func (s *Server) handleQueryByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/queries/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query id %q", idStr)
		return
	}
	remover, ok := s.engine.(QueryRemover)
	if !ok {
		httpError(w, http.StatusNotImplemented, "engine does not support query removal")
		return
	}
	s.mu.Lock()
	err = remover.RemoveQuery(core.QueryID(id))
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req graphRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	s.mu.Lock()
	id, err := s.engine.AddStream(g)
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, idResponse{ID: int(id)})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req stepRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	changes := make(map[core.StreamID]graph.ChangeSet, len(req.Changes))
	for key, ops := range req.Changes {
		sid, err := strconv.Atoi(key)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad stream id %q", key)
			return
		}
		var cs graph.ChangeSet
		for i, wop := range ops {
			op, err := wop.ToChangeOp()
			if err != nil {
				httpError(w, http.StatusBadRequest, "stream %s op %d: %v", key, i, err)
				return
			}
			cs = append(cs, op)
		}
		changes[core.StreamID(sid)] = cs
	}
	s.mu.Lock()
	pairs, err := s.engine.StepAll(changes)
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, pairsResponse{Pairs: wirePairs(pairs)})
}

func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	pairs := s.engine.Candidates()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, pairsResponse{Pairs: wirePairs(pairs)})
}

type statsResponse struct {
	Timestamps     int     `json:"timestamps"`
	AvgFilterMs    float64 `json:"avg_filter_ms"`
	CandidateRatio float64 `json:"candidate_ratio"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.RLock()
	st := s.engine.Stats()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, statsResponse{
		Timestamps:     st.Timestamps,
		AvgFilterMs:    float64(st.AvgTimePerTimestamp()) / float64(time.Millisecond),
		CandidateRatio: st.CandidateRatio(),
	})
}

// handleMetrics serves the Prometheus text exposition: the registry's typed
// instruments (engine latency histograms, counters, gauges) followed by the
// engine's structure-size samples gathered from its obs.Collector surface,
// and the process-wide NPV dominance-kernel, query-index, and shared-factor
// selectivity counters. The process-global counters are emitted here exactly
// once — not
// through the engine's per-filter collectors, which a sharded monitor sums
// per shard and would therefore multiply the values by the shard count.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.registry.WritePrometheus(w)
	if col, ok := s.engine.(obs.Collector); ok {
		s.mu.RLock()
		samples := obs.Gather(col)
		s.mu.RUnlock()
		_ = obs.WriteSamples(w, samples)
	}
	_ = obs.WriteSamples(w, obs.Gather(npv.KernelStats{}))
	_ = obs.WriteSamples(w, obs.Gather(qindex.Stats{}))
	_ = obs.WriteSamples(w, obs.Gather(factor.Stats{}))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
