package server

import (
	"context"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// blockingEngine stalls StepAll until released, so the test can hold a
// request in flight across a Drain call.
type blockingEngine struct {
	entered chan struct{} // closed when StepAll is running
	release chan struct{} // StepAll returns once this closes
	done    atomic.Bool   // set just before StepAll returns
}

func (e *blockingEngine) AddQuery(*graph.Graph) (core.QueryID, error)   { return 0, nil }
func (e *blockingEngine) AddStream(*graph.Graph) (core.StreamID, error) { return 0, nil }
func (e *blockingEngine) Candidates() []core.Pair                       { return nil }
func (e *blockingEngine) Stats() core.Stats                             { return core.Stats{} }

func (e *blockingEngine) StepAll(map[core.StreamID]graph.ChangeSet) ([]core.Pair, error) {
	close(e.entered)
	<-e.release
	e.done.Store(true)
	return nil, nil
}

// TestDrainWaitsForInFlightStep holds a StepAll mid-flight, drains, and
// verifies Drain returns only after the request completed with its response
// delivered — the graceful-shutdown contract cmd/serve relies on.
func TestDrainWaitsForInFlightStep(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}), release: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: New(eng).Handler()}
	go hs.Serve(ln)

	status := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/step", "application/json",
			strings.NewReader(`{"changes":{}}`))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-eng.entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- Drain(ctx, hs, nil) // nil exercises the optional-listener path
	}()

	// The drain must not finish while the step is still running.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) with a request in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New connections are refused during the drain.
	if _, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz"); err == nil {
		t.Fatal("request accepted while draining")
	}

	close(eng.release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the request completed")
	}
	if !eng.done.Load() {
		t.Fatal("Drain returned before StepAll completed")
	}
	if got := <-status; got != http.StatusOK {
		t.Fatalf("in-flight step status %d, want 200", got)
	}
}

// TestDrainDeadlineAbandonsStuckRequest: a request that never finishes cannot
// wedge shutdown past the drain deadline.
func TestDrainDeadlineAbandonsStuckRequest(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}), release: make(chan struct{})}
	defer close(eng.release)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: New(eng).Handler()}
	go hs.Serve(ln)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/step", "application/json",
			strings.NewReader(`{"changes":{}}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-eng.entered

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := Drain(ctx, hs); err == nil {
		t.Fatal("Drain with a stuck request returned nil, want deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Drain took %v past a 100ms deadline", elapsed)
	}
}
