package server

import (
	"fmt"
	"testing"
	"time"
)

func TestAdmissionInFlightBudget(t *testing.T) {
	a := newAdmission(IngestLimits{MaxInFlight: 2})
	if !a.acquire() || !a.acquire() {
		t.Fatal("budget of 2 rejected the first two acquires")
	}
	if a.acquire() {
		t.Fatal("third acquire succeeded past a budget of 2")
	}
	a.release()
	if !a.acquire() {
		t.Fatal("acquire after release rejected")
	}
	if got := a.inFlight(); got != 2 {
		t.Fatalf("inFlight = %d; want 2", got)
	}

	unlimited := newAdmission(IngestLimits{})
	for i := 0; i < 100; i++ {
		if !unlimited.acquire() {
			t.Fatalf("unlimited admission shed acquire %d", i)
		}
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	a := newAdmission(IngestLimits{TenantRate: 10, TenantBurst: 20})
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	// A new tenant starts with a full burst.
	if ok, _ := a.admitOps("t1", 20); !ok {
		t.Fatal("full-burst spend denied")
	}
	// Empty bucket: denied, with a refill hint proportional to the deficit.
	ok, retry := a.admitOps("t1", 15)
	if ok {
		t.Fatal("empty bucket admitted 15 ops")
	}
	if want := 1500 * time.Millisecond; retry != want {
		t.Fatalf("retryAfter = %v; want %v (15 ops at 10/s)", retry, want)
	}
	// One second of refill buys 10 ops.
	clock = clock.Add(time.Second)
	if ok, _ := a.admitOps("t1", 10); !ok {
		t.Fatal("refilled bucket denied 10 ops")
	}
	// Refill clamps at the burst: 100 idle seconds do not bank 1000 ops.
	clock = clock.Add(100 * time.Second)
	if ok, _ := a.admitOps("t1", 21); ok {
		t.Fatal("bucket admitted past its burst after idling")
	}
	if ok, _ := a.admitOps("t1", 20); !ok {
		t.Fatal("bucket denied its burst after idling")
	}
	// Tenants are independent.
	if ok, _ := a.admitOps("t2", 20); !ok {
		t.Fatal("fresh tenant t2 denied its burst")
	}
	// Sub-second retry hints round up to the 1s Retry-After granularity.
	if _, retry := a.admitOps("t2", 1); retry < time.Second {
		t.Fatalf("retryAfter = %v; want >= 1s", retry)
	}
}

func TestAdmissionBurstDefaultsToRate(t *testing.T) {
	a := newAdmission(IngestLimits{TenantRate: 50})
	if a.limits.TenantBurst != 50 {
		t.Fatalf("TenantBurst = %v; want rate (50)", a.limits.TenantBurst)
	}
}

func TestAdmissionTenantTableBounded(t *testing.T) {
	a := newAdmission(IngestLimits{TenantRate: 1, TenantBurst: 1})
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	for i := 0; i < maxQuotaTenants; i++ {
		clock = clock.Add(time.Millisecond)
		a.admitOps(fmt.Sprintf("t%d", i), 1)
	}
	if len(a.buckets) != maxQuotaTenants {
		t.Fatalf("buckets = %d; want %d", len(a.buckets), maxQuotaTenants)
	}
	// The next new tenant evicts the stalest bucket instead of growing.
	clock = clock.Add(time.Millisecond)
	a.admitOps("overflow", 1)
	if len(a.buckets) != maxQuotaTenants {
		t.Fatalf("buckets after overflow = %d; want %d (stalest evicted)", len(a.buckets), maxQuotaTenants)
	}
	if _, ok := a.buckets["t0"]; ok {
		t.Fatal("stalest tenant t0 survived the eviction")
	}
	if _, ok := a.buckets["overflow"]; !ok {
		t.Fatal("new tenant missing after eviction")
	}
}
