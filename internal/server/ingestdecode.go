package server

import (
	"fmt"

	"nntstream/internal/graph"
)

// The ingest wire format: NDJSON step frames, one line per timestamp,
// mirroring the wal.KindStepAll record (per-stream change sets). The frame
// is canonical JSON — fixed key order, no nulls, integers only — so the hot
// decode loop can be a single forward scan instead of a reflective decoder:
//
//	{"changes":[{"stream":0,"ops":[
//	    {"op":"ins","u":1,"v":2,"ul":3,"vl":4,"el":5},
//	    {"op":"del","u":1,"v":2}]}]}
//
// Insignificant ASCII whitespace is allowed between tokens; keys must appear
// exactly once, in the order above ("ul"/"vl"/"el" only on "ins"). Every
// frame is still valid JSON, so ordinary tooling can produce and inspect
// batches; the canonical-order restriction is what the zero-allocation
// guarantee is bought with, the same trade the WAL's binary encoding makes.
//
// IngestDecoder owns all backing storage and reuses it across DecodeStep
// calls: once warm, decoding a frame performs no allocations (gated by the
// IngestDecode benchmark's allocs_per_op == 0 threshold in benchgate).

// IngestStep is one decoded frame: the per-stream change sets of a single
// timestamp. Groups (and their Ops) alias decoder-owned storage, valid only
// until the next DecodeStep call.
type IngestStep struct {
	Groups []IngestGroup
}

// IngestGroup is one stream's change set within a step frame.
type IngestGroup struct {
	Stream int64
	Ops    graph.ChangeSet
}

// OpCount returns the total number of edge operations in the step.
func (s *IngestStep) OpCount() int {
	n := 0
	for i := range s.Groups {
		n += len(s.Groups[i].Ops)
	}
	return n
}

// IngestDecoder decodes canonical NDJSON step frames. The zero value is
// ready to use; it is not safe for concurrent use.
type IngestDecoder struct {
	step IngestStep
	buf  []byte
	pos  int
}

// ingestSyntaxError reports where in the line a frame stopped being
// canonical. Construction is the cold path: DecodeStep on a valid frame
// never builds one.
type ingestSyntaxError struct {
	off int
	msg string
}

func (e *ingestSyntaxError) Error() string {
	return fmt.Sprintf("byte %d: %s", e.off, e.msg)
}

// DecodeStep parses one frame (a single NDJSON line, without its trailing
// newline). The returned step is valid until the next call.
func (d *IngestDecoder) DecodeStep(line []byte) (*IngestStep, error) {
	d.buf = line
	d.pos = 0
	d.step.Groups = d.step.Groups[:0]

	if !d.lit(`{"changes":`) {
		return nil, d.syntaxErr(`frame must open with {"changes":`)
	}
	d.ws()
	if !d.byte('[') {
		return nil, d.syntaxErr(`"changes" must be an array`)
	}
	d.ws()
	if !d.byte(']') {
		for {
			if err := d.group(); err != nil {
				return nil, err
			}
			d.ws()
			if d.byte(',') {
				d.ws()
				continue
			}
			if d.byte(']') {
				break
			}
			return nil, d.syntaxErr(`want "," or "]" after change group`)
		}
	}
	d.ws()
	if !d.byte('}') {
		return nil, d.syntaxErr(`want "}" closing the frame`)
	}
	d.ws()
	if d.pos != len(d.buf) {
		return nil, d.syntaxErr("trailing bytes after frame")
	}
	return &d.step, nil
}

// group parses one {"stream":S,"ops":[...]} object into the next reused
// IngestGroup slot.
func (d *IngestDecoder) group() error {
	g := d.nextGroup()
	if !d.lit(`{"stream":`) {
		return d.syntaxErr(`change group must open with {"stream":`)
	}
	d.ws()
	s, ok := d.parseInt()
	if !ok {
		return d.syntaxErr(`"stream" must be an integer`)
	}
	g.Stream = s
	d.ws()
	if !d.byte(',') {
		return d.syntaxErr(`want "," after "stream"`)
	}
	d.ws()
	if !d.lit(`"ops":`) {
		return d.syntaxErr(`want "ops" after "stream"`)
	}
	d.ws()
	if !d.byte('[') {
		return d.syntaxErr(`"ops" must be an array`)
	}
	d.ws()
	if d.byte(']') {
		// An empty change set is legal: the stream participates in the
		// timestamp without changing.
	} else {
		for {
			if err := d.op(g); err != nil {
				return err
			}
			d.ws()
			if d.byte(',') {
				d.ws()
				continue
			}
			if d.byte(']') {
				break
			}
			return d.syntaxErr(`want "," or "]" after op`)
		}
	}
	d.ws()
	if !d.byte('}') {
		return d.syntaxErr(`want "}" closing change group`)
	}
	return nil
}

// op parses one edge operation object and appends it to g.Ops.
func (d *IngestDecoder) op(g *IngestGroup) error {
	if !d.lit(`{"op":"`) {
		return d.syntaxErr(`op must open with {"op":"`)
	}
	var kind graph.OpKind
	switch {
	case d.lit(`ins"`):
		kind = graph.OpInsert
	case d.lit(`del"`):
		kind = graph.OpDelete
	default:
		return d.syntaxErr(`"op" must be "ins" or "del"`)
	}
	op := nextOp(g)
	op.Kind = kind
	u, ok := d.field(`"u":`)
	if !ok {
		return d.syntaxErr(`want integer "u" after "op"`)
	}
	v, ok := d.field(`"v":`)
	if !ok {
		return d.syntaxErr(`want integer "v" after "u"`)
	}
	if u < minVertexID || u > maxVertexID || v < minVertexID || v > maxVertexID {
		return d.syntaxErr("vertex id out of range")
	}
	op.U = graph.VertexID(u)
	op.V = graph.VertexID(v)
	if kind == graph.OpInsert {
		ul, ok := d.field(`"ul":`)
		if !ok {
			return d.syntaxErr(`want integer "ul" after "v"`)
		}
		vl, ok := d.field(`"vl":`)
		if !ok {
			return d.syntaxErr(`want integer "vl" after "ul"`)
		}
		el, ok := d.field(`"el":`)
		if !ok {
			return d.syntaxErr(`want integer "el" after "vl"`)
		}
		if ul < 0 || ul > maxLabel || vl < 0 || vl > maxLabel || el < 0 || el > maxLabel {
			return d.syntaxErr("label out of range")
		}
		op.ULabel = graph.Label(ul)
		op.VLabel = graph.Label(vl)
		op.EdgeLabel = graph.Label(el)
	}
	d.ws()
	if !d.byte('}') {
		return d.syntaxErr(`want "}" closing op`)
	}
	return nil
}

const (
	minVertexID = -1 << 31
	maxVertexID = 1<<31 - 1
	maxLabel    = 1<<16 - 1
)

// field consumes `,` ws key ws int — the shape of every op field after the
// kind — and returns the integer.
//
//nnt:hotpath
func (d *IngestDecoder) field(key string) (int64, bool) {
	d.ws()
	if !d.byte(',') {
		return 0, false
	}
	d.ws()
	if !d.lit(key) {
		return 0, false
	}
	d.ws()
	return d.parseInt()
}

// nextGroup extends the reused Groups slice by one slot, recycling the
// slot's Ops capacity when the slice is re-growing over old storage.
func (d *IngestDecoder) nextGroup() *IngestGroup {
	n := len(d.step.Groups)
	if n < cap(d.step.Groups) {
		d.step.Groups = d.step.Groups[:n+1]
	} else {
		d.step.Groups = append(d.step.Groups, IngestGroup{})
	}
	g := &d.step.Groups[n]
	g.Stream = 0
	g.Ops = g.Ops[:0]
	return g
}

// nextOp extends g.Ops by one zeroed slot, recycling capacity. The append
// re-grows only until the decoder is warm, so the steady state allocates
// nothing (the IngestDecode benchmark pins it at 0 allocs/op).
func nextOp(g *IngestGroup) *graph.ChangeOp {
	n := len(g.Ops)
	if n < cap(g.Ops) {
		g.Ops = g.Ops[:n+1]
	} else {
		g.Ops = append(g.Ops, graph.ChangeOp{})
	}
	op := &g.Ops[n]
	*op = graph.ChangeOp{}
	return op
}

// ws skips insignificant JSON whitespace.
//
//nnt:hotpath
func (d *IngestDecoder) ws() {
	for d.pos < len(d.buf) {
		switch d.buf[d.pos] {
		case ' ', '\t', '\r':
			d.pos++
		default:
			return
		}
	}
}

// byte consumes c if it is next.
//
//nnt:hotpath
func (d *IngestDecoder) byte(c byte) bool {
	if d.pos < len(d.buf) && d.buf[d.pos] == c {
		d.pos++
		return true
	}
	return false
}

// lit consumes the exact literal s if it is next.
//
//nnt:hotpath
func (d *IngestDecoder) lit(s string) bool {
	if len(d.buf)-d.pos < len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if d.buf[d.pos+i] != s[i] {
			return false
		}
	}
	d.pos += len(s)
	return true
}

// parseInt consumes a JSON integer (optional leading minus, no exponent, no
// fraction, no leading zeros beyond a lone 0).
//
//nnt:hotpath
func (d *IngestDecoder) parseInt() (int64, bool) {
	neg := false
	if d.pos < len(d.buf) && d.buf[d.pos] == '-' {
		neg = true
		d.pos++
	}
	start := d.pos
	var v int64
	for d.pos < len(d.buf) {
		c := d.buf[d.pos]
		if c < '0' || c > '9' {
			break
		}
		if v > (1<<62)/10 {
			return 0, false // overflow: far beyond any id or label
		}
		v = v*10 + int64(c-'0')
		d.pos++
	}
	if d.pos == start {
		return 0, false
	}
	if d.buf[start] == '0' && d.pos-start > 1 {
		return 0, false // leading zero is not canonical JSON
	}
	if neg {
		v = -v
	}
	return v, true
}

// syntaxErr builds the cold-path error carrying the current offset.
func (d *IngestDecoder) syntaxErr(msg string) error {
	return &ingestSyntaxError{off: d.pos, msg: msg}
}
