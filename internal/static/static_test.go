package static

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nntstream/internal/datagen"
	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

func smallDB(seed int64, n int) []*graph.Graph {
	cfg := datagen.SyntheticConfig{
		NumGraphs: n, NumSeeds: 5, SeedSize: 4, GraphSize: 15,
		VertexLabels: 3, EdgeLabels: 2, OverlapProb: 0.3,
	}
	return datagen.Synthetic(cfg, rand.New(rand.NewSource(seed)))
}

func TestSearchMatchesExact(t *testing.T) {
	db := smallDB(1, 40)
	ix := NewIndex(db, 3)
	if ix.Len() != 40 || ix.Depth() != 3 {
		t.Fatal("index metadata wrong")
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 15; i++ {
		q := datagen.RandomConnectedSubgraph(db[r.Intn(len(db))], 2+r.Intn(6), r)
		want := iso.FilterDatabase(q, db)
		got := ix.Search(q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: Search = %v; exact = %v", i, got, want)
		}
	}
}

func TestCandidatesSupersetOfAnswers(t *testing.T) {
	db := smallDB(3, 40)
	ix := NewIndex(db, 2)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 15; i++ {
		q := datagen.RandomConnectedSubgraph(db[r.Intn(len(db))], 2+r.Intn(6), r)
		cands := map[int]bool{}
		for _, c := range ix.Candidates(q) {
			cands[c] = true
		}
		for _, a := range iso.FilterDatabase(q, db) {
			if !cands[a] {
				t.Fatalf("query %d: answer graph %d pruned by filter", i, a)
			}
		}
	}
}

func TestSearchWithStats(t *testing.T) {
	db := smallDB(5, 30)
	ix := NewIndex(db, 3)
	r := rand.New(rand.NewSource(6))
	q := datagen.RandomConnectedSubgraph(db[0], 3, r)
	answers, stats := ix.SearchWithStats(q)
	if stats.Database != 30 {
		t.Fatalf("stats.Database = %d", stats.Database)
	}
	if stats.Answers != len(answers) {
		t.Fatalf("stats.Answers = %d; got %d answers", stats.Answers, len(answers))
	}
	if stats.Candidates < stats.Answers {
		t.Fatalf("candidates %d < answers %d", stats.Candidates, stats.Answers)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
	if ix.Graph(0) != db[0] {
		t.Fatal("Graph accessor broken")
	}
}

// TestQuickNoFalseNegatives is the index-level soundness property across
// random databases and depths.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := smallDB(seed, 10)
		depth := 1 + r.Intn(3)
		ix := NewIndex(db, depth)
		src := db[r.Intn(len(db))]
		q := datagen.RandomConnectedSubgraph(src, 1+r.Intn(5), r)
		want := iso.FilterDatabase(q, db)
		got := ix.Search(q)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
