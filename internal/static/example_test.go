package static_test

import (
	"fmt"

	"nntstream/internal/graph"
	"nntstream/internal/static"
)

// ExampleIndex shows the filter-and-verify pipeline over a static database:
// the NPV index prunes, exact isomorphism confirms.
func ExampleIndex() {
	// A two-graph database: an A-B-C path and an A-B edge.
	path := graph.New()
	_ = path.AddVertex(0, 0)
	_ = path.AddVertex(1, 1)
	_ = path.AddVertex(2, 2)
	_ = path.AddEdge(0, 1, 0)
	_ = path.AddEdge(1, 2, 0)

	edge := graph.New()
	_ = edge.AddVertex(0, 0)
	_ = edge.AddVertex(1, 1)
	_ = edge.AddEdge(0, 1, 0)

	ix := static.NewIndex([]*graph.Graph{path, edge}, 3)

	// Query: B-C. Only the path contains it.
	q := graph.New()
	_ = q.AddVertex(0, 1)
	_ = q.AddVertex(1, 2)
	_ = q.AddEdge(0, 1, 0)

	answers, stats := ix.SearchWithStats(q)
	fmt.Println("answers:", answers)
	fmt.Println("candidates:", stats.Candidates)
	// Output:
	// answers: [0]
	// candidates: 1
}
