// Package static provides subgraph search over a static graph database
// using the paper's NPV feature structure — the setting of its Section V-A
// experiments, and the classic filter-and-verify pipeline of graph-database
// systems: the index prunes non-candidates by per-vertex dominance (Lemma
// 4.2), exact isomorphism verifies the survivors.
package static

import (
	"fmt"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
	"nntstream/internal/npv"
	"nntstream/internal/skyline"
)

// Index is an immutable NPV index over a graph database. Vectors are
// frozen into packed form at build time, so every query evaluation runs on
// the sorted-merge dominance kernel with signature pre-filtering.
type Index struct {
	depth int
	db    []*graph.Graph
	vecs  [][]npv.PackedVector
	// maxs[i][d] is graph i's maximum count in dimension d, the skyline
	// join's cheap refutation applied to the static case.
	maxs []map[npv.Dim]int32
}

// NewIndex projects every database graph at the given NNT depth. The
// database slice is retained; callers must not mutate the graphs.
func NewIndex(db []*graph.Graph, depth int) *Index {
	ix := &Index{
		depth: depth,
		db:    db,
		vecs:  make([][]npv.PackedVector, len(db)),
		maxs:  make([]map[npv.Dim]int32, len(db)),
	}
	for i, g := range db {
		m := make(map[npv.Dim]int32)
		ix.vecs[i] = npv.PackAll(npv.VectorsByVertex(npv.ProjectGraph(g, depth)))
		for _, v := range ix.vecs[i] {
			for j := 0; j < v.Len(); j++ {
				if d, c := v.Dim(j), v.Count(j); c > m[d] {
					m[d] = c
				}
			}
		}
		ix.maxs[i] = m
	}
	return ix
}

// Len reports the database size.
func (ix *Index) Len() int { return len(ix.db) }

// Depth reports the NNT depth bound.
func (ix *Index) Depth() int { return ix.depth }

// Graph returns database graph i.
func (ix *Index) Graph(i int) *graph.Graph { return ix.db[i] }

// Candidates returns the indexes of graphs that pass the NPV dominance
// filter for q, ascending. The result is a superset of the exact answer
// set (no false negatives).
func (ix *Index) Candidates(q *graph.Graph) []int {
	maximal := queryMaximal(q, ix.depth)
	var out []int
graphs:
	for i := range ix.db {
		for _, u := range maximal {
			if !ix.dominated(i, u) {
				continue graphs
			}
		}
		out = append(out, i)
	}
	return out
}

// Search runs the full filter-and-verify pipeline: NPV candidates, then
// exact subgraph isomorphism. The result is exactly the graphs containing
// q.
func (ix *Index) Search(q *graph.Graph) []int {
	m := iso.NewMatcher(q)
	var out []int
	for _, i := range ix.Candidates(q) {
		if m.Contains(ix.db[i]) {
			out = append(out, i)
		}
	}
	return out
}

// SearchStats reports the pruning achieved for one query: candidates after
// filtering, exact answers, and the counts behind the paper's
// candidate-ratio metric.
type SearchStats struct {
	Database   int
	Candidates int
	Answers    int
}

func (s SearchStats) String() string {
	return fmt.Sprintf("db=%d candidates=%d answers=%d (ratio %.2f%%)",
		s.Database, s.Candidates, s.Answers, 100*float64(s.Candidates)/float64(max(1, s.Database)))
}

// SearchWithStats is Search plus instrumentation.
func (ix *Index) SearchWithStats(q *graph.Graph) ([]int, SearchStats) {
	cands := ix.Candidates(q)
	m := iso.NewMatcher(q)
	var out []int
	for _, i := range cands {
		if m.Contains(ix.db[i]) {
			out = append(out, i)
		}
	}
	return out, SearchStats{Database: len(ix.db), Candidates: len(cands), Answers: len(out)}
}

func (ix *Index) dominated(i int, u npv.PackedVector) bool {
	if u.Len() == 0 {
		return len(ix.vecs[i]) > 0
	}
	for j := 0; j < u.Len(); j++ {
		if ix.maxs[i][u.Dim(j)] < u.Count(j) {
			return false
		}
	}
	for _, v := range ix.vecs[i] {
		if v.Dominates(u) {
			return true
		}
	}
	return false
}

func queryMaximal(q *graph.Graph, depth int) []npv.PackedVector {
	return skyline.MaximalPacked(npv.PackAll(npv.VectorsByVertex(npv.ProjectGraph(q, depth))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
