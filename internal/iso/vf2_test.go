package iso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/graph"
)

// bruteContains is an exhaustive reference: it tries every injective mapping
// of query vertices to data vertices. Only usable for tiny queries.
func bruteContains(q, g *graph.Graph) bool {
	qs := q.VertexIDs()
	gs := g.VertexIDs()
	if len(qs) > len(gs) {
		return false
	}
	used := make(map[graph.VertexID]bool)
	mapping := make(map[graph.VertexID]graph.VertexID)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(qs) {
			return true
		}
		qv := qs[i]
		ql := q.MustVertexLabel(qv)
		for _, gv := range gs {
			if used[gv] {
				continue
			}
			if g.MustVertexLabel(gv) != ql {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				pv := qs[j]
				if el, has := q.EdgeLabel(qv, pv); has {
					gl, ghas := g.EdgeLabel(gv, mapping[pv])
					if !ghas || gl != el {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			used[gv] = true
			mapping[qv] = gv
			if rec(i + 1) {
				return true
			}
			delete(used, gv)
			delete(mapping, qv)
		}
		return false
	}
	return rec(0)
}

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestContainsBasic(t *testing.T) {
	// Data: labeled path A-B-C with a pendant B.
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1, 3: 2, 4: 1},
		[][3]int{{1, 2, 0}, {2, 3, 0}, {3, 4, 0}})
	// Query: A-B edge.
	q1 := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1}, [][3]int{{10, 11, 0}})
	if !Contains(q1, g) {
		t.Fatal("A-B should be contained")
	}
	// Query: A-C edge (absent).
	q2 := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 2}, [][3]int{{10, 11, 0}})
	if Contains(q2, g) {
		t.Fatal("A-C should not be contained")
	}
	// Wrong edge label.
	q3 := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1}, [][3]int{{10, 11, 7}})
	if Contains(q3, g) {
		t.Fatal("edge label must match")
	}
}

func TestContainsNonInduced(t *testing.T) {
	// Data: triangle; query: path of 3. Non-induced matching must succeed
	// even though the data has an extra edge between the path's endpoints.
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 0, 3: 0},
		[][3]int{{1, 2, 0}, {2, 3, 0}, {1, 3, 0}})
	q := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 0, 3: 0},
		[][3]int{{1, 2, 0}, {2, 3, 0}})
	if !Contains(q, g) {
		t.Fatal("path-3 should embed into triangle (non-induced)")
	}
	// The converse fails: triangle does not embed into path-3.
	if Contains(g, q) {
		t.Fatal("triangle should not embed into path-3")
	}
}

func TestContainsInjective(t *testing.T) {
	// Query needs two distinct A vertices; data has only one.
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1},
		[][3]int{{1, 2, 0}})
	q := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1, 3: 0},
		[][3]int{{1, 2, 0}, {2, 3, 0}})
	if Contains(q, g) {
		t.Fatal("mapping must be injective")
	}
}

func TestEmptyQuery(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0}, nil)
	if !Contains(graph.New(), g) {
		t.Fatal("empty query is contained in everything")
	}
}

func TestDisconnectedQuery(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1, 3: 0, 4: 1},
		[][3]int{{1, 2, 0}, {3, 4, 0}})
	q := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1, 20: 0, 21: 1},
		[][3]int{{10, 11, 0}, {20, 21, 0}})
	if !Contains(q, g) {
		t.Fatal("disconnected query with two A-B edges should match")
	}
	// Remove one data edge: only one A-B edge left, injectivity fails.
	g.RemoveEdge(3, 4)
	if Contains(q, g) {
		t.Fatal("two disjoint A-B edges cannot embed into one")
	}
}

func TestFirstEmbeddingIsValid(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1, 3: 2, 4: 1},
		[][3]int{{1, 2, 0}, {2, 3, 1}, {3, 4, 0}})
	q := buildGraph(t, map[graph.VertexID]graph.Label{10: 1, 11: 2}, [][3]int{{10, 11, 1}})
	emb := NewMatcher(q).FirstEmbedding(g)
	if emb == nil {
		t.Fatal("embedding expected")
	}
	if len(emb) != 2 {
		t.Fatalf("embedding has %d entries; want 2", len(emb))
	}
	for qv, gv := range emb {
		if q.MustVertexLabel(qv) != g.MustVertexLabel(gv) {
			t.Fatal("embedding violates vertex labels")
		}
	}
	gl, ok := g.EdgeLabel(emb[10], emb[11])
	if !ok || gl != 1 {
		t.Fatal("embedding violates edge")
	}
	// No embedding case.
	q2 := buildGraph(t, map[graph.VertexID]graph.Label{10: 1, 11: 1}, [][3]int{{10, 11, 0}})
	if NewMatcher(q2).FirstEmbedding(g) != nil {
		t.Fatal("no embedding expected")
	}
}

func TestCountEmbeddings(t *testing.T) {
	// Star: center A with three B leaves; query A-B has 3 embeddings.
	g := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1, 3: 1, 4: 1},
		[][3]int{{1, 2, 0}, {1, 3, 0}, {1, 4, 0}})
	q := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1}, [][3]int{{10, 11, 0}})
	if n := NewMatcher(q).CountEmbeddings(g, 0); n != 3 {
		t.Fatalf("CountEmbeddings = %d; want 3", n)
	}
	if n := NewMatcher(q).CountEmbeddings(g, 2); n != 2 {
		t.Fatalf("CountEmbeddings capped = %d; want 2", n)
	}
}

func TestNodeLimitConservative(t *testing.T) {
	// A hard instance: large unlabeled clique-ish graph. With a tiny node
	// budget the matcher must report true (conservative), never false.
	r := rand.New(rand.NewSource(1))
	g := graph.New()
	for i := 0; i < 20; i++ {
		_ = g.AddVertex(graph.VertexID(i), 0)
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if r.Float64() < 0.5 {
				_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
			}
		}
	}
	// Query: 8-clique, almost surely absent, expensive to refute.
	q := graph.New()
	for i := 0; i < 8; i++ {
		_ = q.AddVertex(graph.VertexID(i), 0)
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			_ = q.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
		}
	}
	m := NewMatcher(q, WithNodeLimit(10))
	if !m.Contains(g) {
		t.Fatal("limited matcher must answer conservatively (true)")
	}
}

func TestFilterDatabase(t *testing.T) {
	q := buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1}, [][3]int{{1, 2, 0}})
	db := []*graph.Graph{
		buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 1}, [][3]int{{1, 2, 0}}),
		buildGraph(t, map[graph.VertexID]graph.Label{1: 0, 2: 2}, [][3]int{{1, 2, 0}}),
		buildGraph(t, map[graph.VertexID]graph.Label{1: 1, 2: 0, 3: 1}, [][3]int{{1, 2, 0}, {2, 3, 0}}),
	}
	got := FilterDatabase(q, db)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FilterDatabase = %v; want [0 2]", got)
	}
}

func randomLabeledGraph(r *rand.Rand, n, labels int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(labels)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
			}
		}
	}
	return g
}

// TestQuickAgainstBruteForce cross-checks VF2 with the exhaustive matcher on
// random small instances.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 4+r.Intn(6), 2, 0.45)
		q := randomLabeledGraph(r, 2+r.Intn(4), 2, 0.5)
		return Contains(q, g) == bruteContains(q, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubgraphAlwaysContained extracts an actual subgraph and verifies
// Contains never reports a false negative.
func TestQuickSubgraphAlwaysContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 6+r.Intn(10), 3, 0.35)
		// Random subgraph: pick a subset of vertices and a subset of the
		// induced edges.
		ids := g.VertexIDs()
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		keep := ids[:1+r.Intn(len(ids))]
		sub := g.InducedSubgraph(keep)
		for _, e := range sub.Edges() {
			if r.Float64() < 0.3 {
				sub.RemoveEdge(e.U, e.V)
			}
		}
		return Contains(sub, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
