// Package iso implements exact subgraph isomorphism checking (Definition 2.3
// of the paper): an injective mapping from query vertices to data vertices
// that preserves vertex labels and maps every query edge onto a data edge
// with the same label. Extra edges in the data graph are allowed (non-induced
// matching), which is the semantics of subgraph search in graph databases.
//
// The matcher is a VF2-style backtracking search with connectivity-driven
// candidate ordering, label-frequency pruning, and degree pruning. It serves
// as the ground truth against which the paper's approximate filters are
// evaluated, and as the containment test inside the gIndex baseline.
package iso

import (
	"sort"

	"nntstream/internal/graph"
)

// Matcher performs subgraph isomorphism checks of one query graph against
// many data graphs. It precomputes a matching order for the query once.
type Matcher struct {
	q       *graph.Graph
	order   []graph.VertexID // query vertices in matching order
	anchors []anchor         // for order[i]: previously-matched neighbors
	qdeg    map[graph.VertexID]int
	labels  map[graph.Label]int // query vertex label histogram
	// limit bounds the number of search-tree nodes explored before giving
	// up and reporting "contained" conservatively; 0 means unlimited.
	limit int
}

// anchor records, for a query vertex about to be matched, one or more
// already-matched neighbors with the connecting edge labels. Every candidate
// data vertex must be adjacent to the images of all anchors.
type anchor struct {
	neighbors []graph.VertexID
	edges     []graph.Label
}

// Option configures a Matcher.
type Option func(*Matcher)

// WithNodeLimit bounds the number of explored search nodes per Contains
// call. When the limit is hit the matcher reports true (a false positive is
// admissible for a filter; a false negative is not). The default is
// unlimited.
func WithNodeLimit(n int) Option {
	return func(m *Matcher) { m.limit = n }
}

// NewMatcher prepares a matcher for query q.
func NewMatcher(q *graph.Graph, opts ...Option) *Matcher {
	m := &Matcher{
		q:      q,
		qdeg:   make(map[graph.VertexID]int, q.VertexCount()),
		labels: q.LabelHistogram(),
	}
	for _, opt := range opts {
		opt(m)
	}
	q.Vertices(func(v graph.VertexID, _ graph.Label) bool {
		m.qdeg[v] = q.Degree(v)
		return true
	})
	m.buildOrder()
	return m
}

// buildOrder picks a connected matching order: start from the highest-degree
// vertex, then repeatedly take the unmatched vertex with the most matched
// neighbors (ties: higher degree). Disconnected queries continue with the
// next unvisited component.
func (m *Matcher) buildOrder() {
	n := m.q.VertexCount()
	m.order = make([]graph.VertexID, 0, n)
	m.anchors = make([]anchor, 0, n)
	inOrder := make(map[graph.VertexID]bool, n)
	ids := m.q.VertexIDs()

	for len(m.order) < n {
		// Seed: among vertices not yet ordered, highest degree.
		var seed graph.VertexID
		found := false
		for _, v := range ids {
			if inOrder[v] {
				continue
			}
			if !found || m.qdeg[v] > m.qdeg[seed] {
				seed, found = v, true
			}
		}
		frontier := []graph.VertexID{seed}
		for len(frontier) > 0 {
			// Pick the frontier vertex with most ordered neighbors.
			best := -1
			bestScore := -1
			for i, v := range frontier {
				score := 0
				m.q.Neighbors(v, func(u graph.VertexID, _ graph.Label) bool {
					if inOrder[u] {
						score++
					}
					return true
				})
				score = score*1000 + m.qdeg[v]
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			v := frontier[best]
			frontier = append(frontier[:best], frontier[best+1:]...)
			if inOrder[v] {
				continue
			}
			inOrder[v] = true
			var a anchor
			m.q.Neighbors(v, func(u graph.VertexID, el graph.Label) bool {
				if inOrder[u] && u != v {
					a.neighbors = append(a.neighbors, u)
					a.edges = append(a.edges, el)
				} else if !inOrder[u] {
					frontier = append(frontier, u)
				}
				return true
			})
			m.order = append(m.order, v)
			m.anchors = append(m.anchors, a)
		}
	}
}

// Contains reports whether the query is subgraph-isomorphic to g. When a
// node limit is configured and tripped, it reports true conservatively.
func (m *Matcher) Contains(g *graph.Graph) bool {
	found := false
	limited := m.search(g, func(map[graph.VertexID]graph.VertexID) bool {
		found = true
		return false // stop at first embedding
	})
	return found || limited
}

// FirstEmbedding returns one query→data vertex mapping, or nil when the
// query is not contained in g.
func (m *Matcher) FirstEmbedding(g *graph.Graph) map[graph.VertexID]graph.VertexID {
	var out map[graph.VertexID]graph.VertexID
	m.search(g, func(emb map[graph.VertexID]graph.VertexID) bool {
		out = make(map[graph.VertexID]graph.VertexID, len(emb))
		for k, v := range emb {
			out[k] = v
		}
		return false
	})
	return out
}

// CountEmbeddings returns the number of distinct embeddings, up to max
// (0 = unlimited). Distinct means distinct vertex mappings; automorphic
// images count separately.
func (m *Matcher) CountEmbeddings(g *graph.Graph, max int) int {
	count := 0
	m.search(g, func(map[graph.VertexID]graph.VertexID) bool {
		count++
		return max == 0 || count < max
	})
	return count
}

// search runs the backtracking match, invoking yield for every embedding.
// yield returning false stops the search. The return value reports whether
// the node limit tripped before the search space was exhausted.
func (m *Matcher) search(g *graph.Graph, yield func(map[graph.VertexID]graph.VertexID) bool) bool {
	if m.q.VertexCount() == 0 {
		yield(map[graph.VertexID]graph.VertexID{})
		return false
	}
	if m.q.VertexCount() > g.VertexCount() || m.q.EdgeCount() > g.EdgeCount() {
		return false
	}
	// Label-frequency pruning: g must carry at least as many vertices of
	// each label as q does.
	ghist := g.LabelHistogram()
	for l, c := range m.labels {
		if ghist[l] < c {
			return false
		}
	}

	st := &searchState{
		m:       m,
		g:       g,
		mapping: make(map[graph.VertexID]graph.VertexID, m.q.VertexCount()),
		used:    make(map[graph.VertexID]bool, m.q.VertexCount()),
		yield:   yield,
	}
	st.match(0)
	return st.limited
}

type searchState struct {
	m       *Matcher
	g       *graph.Graph
	mapping map[graph.VertexID]graph.VertexID
	used    map[graph.VertexID]bool
	yield   func(map[graph.VertexID]graph.VertexID) bool
	nodes   int
	stop    bool
	// limited is set when the node limit tripped; the caller treats the
	// result conservatively.
	limited bool
}

func (st *searchState) match(depth int) {
	if st.stop {
		return
	}
	if st.m.limit > 0 {
		st.nodes++
		if st.nodes > st.m.limit {
			// Bail out; the caller treats a tripped limit conservatively
			// (Contains reports true so no potential answer is dropped).
			st.limited = true
			st.stop = true
			return
		}
	}
	if depth == len(st.m.order) {
		if !st.yield(st.mapping) {
			st.stop = true
		}
		return
	}
	qv := st.m.order[depth]
	qlabel := st.m.q.MustVertexLabel(qv)
	a := st.m.anchors[depth]

	try := func(gv graph.VertexID) {
		if st.stop || st.used[gv] {
			return
		}
		if l, ok := st.g.VertexLabel(gv); !ok || l != qlabel {
			return
		}
		if st.g.Degree(gv) < st.m.qdeg[qv] {
			return
		}
		// All anchor edges must exist with matching labels.
		for i, qn := range a.neighbors {
			gl, ok := st.g.EdgeLabel(gv, st.mapping[qn])
			if !ok || gl != a.edges[i] {
				return
			}
		}
		st.mapping[qv] = gv
		st.used[gv] = true
		st.match(depth + 1)
		delete(st.mapping, qv)
		delete(st.used, gv)
	}

	if len(a.neighbors) > 0 {
		// Candidates are the neighbors of the image of the first anchor —
		// usually a tiny set.
		first := st.mapping[a.neighbors[0]]
		wantEdge := a.edges[0]
		// Iterate deterministically for reproducible embeddings.
		for _, e := range st.g.NeighborsSorted(first) {
			if e.Label != wantEdge {
				continue
			}
			try(e.V)
			if st.stop {
				return
			}
		}
		return
	}
	// No anchors (first vertex of a component): scan all data vertices.
	for _, gv := range st.g.VertexIDs() {
		try(gv)
		if st.stop {
			return
		}
	}
}

// Contains is a convenience wrapper for one-shot checks.
func Contains(q, g *graph.Graph) bool {
	return NewMatcher(q).Contains(g)
}

// FilterDatabase returns the indexes of graphs in db that contain q,
// ascending.
func FilterDatabase(q *graph.Graph, db []*graph.Graph) []int {
	m := NewMatcher(q)
	var out []int
	for i, g := range db {
		if m.Contains(g) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
