package gindex

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// Config selects a gIndex operating point for the continuous filter.
type Config struct {
	// Label names the setting in reports ("gIndex1", "gIndex2").
	Label string
	// MinSupFrac is the minimum support as a fraction of the database
	// size; ignored when MinSupAbs > 0.
	MinSupFrac float64
	// MinSupAbs is an absolute minimum support.
	MinSupAbs int
	// SizeIncreasing applies gIndex's size-increasing support: the
	// threshold ramps linearly with fragment size up to the full minimum
	// support at MaxEdges, keeping small fragments cheap while taming the
	// large-fragment explosion.
	SizeIncreasing bool
	// MaxEdges bounds fragment size.
	MaxEdges int
	// MaxFeatures, MaxEmbeddings, LevelCap, and Gamma bound and shape the
	// miner (see MineConfig).
	MaxFeatures   int
	MaxEmbeddings int
	LevelCap      int
	Gamma         float64
}

// Setting1 is the paper's "gIndex1": large discriminative fragments
// (maxL=10, Θ=0.1N, size-increasing support) — best effectiveness, highest
// (re-)mining cost.
func Setting1() Config {
	return Config{
		Label:          "gIndex1",
		MinSupFrac:     0.1,
		SizeIncreasing: true,
		MaxEdges:       10,
		MaxFeatures:    50000,
		MaxEmbeddings:  32,
		LevelCap:       800,
		Gamma:          1.25,
	}
}

// Setting2 is the paper's "gIndex2": all structures up to size 3 (support
// 1) — cheaper re-mining, weaker pruning.
func Setting2() Config {
	return Config{
		Label:         "gIndex2",
		MinSupAbs:     1,
		MaxEdges:      3,
		MaxFeatures:   50000,
		MaxEmbeddings: 64,
		LevelCap:      4000,
	}
}

// MineConfig derives the miner bounds for a database of the given size.
func (c Config) MineConfig(dbSize int) MineConfig {
	minSup := c.MinSupAbs
	if minSup <= 0 {
		minSup = int(math.Ceil(c.MinSupFrac * float64(dbSize)))
	}
	if minSup < 1 {
		minSup = 1
	}
	mc := MineConfig{
		MinSup:        minSup,
		MaxEdges:      c.MaxEdges,
		MaxFeatures:   c.MaxFeatures,
		MaxEmbeddings: c.MaxEmbeddings,
		LevelCap:      c.LevelCap,
		Gamma:         c.Gamma,
	}
	if c.SizeIncreasing {
		maxEdges, top := c.MaxEdges, minSup
		mc.SupportFunc = func(edges int) int {
			s := int(math.Ceil(float64(top) * float64(edges) / float64(maxEdges)))
			if s < 2 {
				s = 2
			}
			if s > top {
				s = top
			}
			return s
		}
	}
	return mc
}

// Filter adapts gIndex to the continuous setting the way the paper
// evaluates it: the feature set is re-mined over the current stream graphs
// at every timestamp (stream graphs change, and gIndex's features are
// defined by their frequency in the data). This re-mining is exactly the
// cost that makes gIndex1 orders of magnitude slower than the NPV methods
// in Figure 15.
type Filter struct {
	cfg     Config
	queries map[core.QueryID]*graph.Graph
	streams map[core.StreamID]*graph.Graph
	// mu guards dirty and verdict: Candidates rebuilds lazily (re-mining
	// once per timestamp instead of once per changed stream), so unlike the
	// other filters its read path mutates state and must synchronize
	// internally to satisfy the core.Filter contract that Candidates is
	// safe for concurrent readers.
	mu      sync.Mutex
	dirty   bool
	verdict map[core.StreamID]map[core.QueryID]bool
}

var _ core.DynamicFilter = (*Filter)(nil)

// New returns a continuous gIndex filter with the given configuration.
func New(cfg Config) *Filter {
	return &Filter{
		cfg:     cfg,
		queries: make(map[core.QueryID]*graph.Graph),
		streams: make(map[core.StreamID]*graph.Graph),
		verdict: make(map[core.StreamID]map[core.QueryID]bool),
	}
}

// Name implements core.Filter.
func (f *Filter) Name() string { return f.cfg.Label }

// AddQuery implements core.Filter.
func (f *Filter) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.queries[id]; ok {
		return fmt.Errorf("gindex: duplicate query %d", id)
	}
	f.queries[id] = q.Clone()
	f.markDirty()
	return nil
}

// RemoveQuery implements core.DynamicFilter.
func (f *Filter) RemoveQuery(id core.QueryID) error {
	if _, ok := f.queries[id]; !ok {
		return fmt.Errorf("gindex: unknown query %d", id)
	}
	delete(f.queries, id)
	f.markDirty()
	return nil
}

// AddStream implements core.Filter.
func (f *Filter) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("gindex: duplicate stream %d", id)
	}
	f.streams[id] = g0.Clone()
	f.markDirty()
	return nil
}

// Apply implements core.Filter.
func (f *Filter) Apply(id core.StreamID, cs graph.ChangeSet) error {
	g, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("gindex: unknown stream %d", id)
	}
	if err := cs.Apply(g); err != nil {
		return err
	}
	f.markDirty()
	return nil
}

func (f *Filter) markDirty() {
	f.mu.Lock()
	f.dirty = true
	f.mu.Unlock()
}

// rebuild re-mines the feature index over the current stream graphs and
// refreshes all verdicts.
func (f *Filter) rebuild() {
	sids := make([]core.StreamID, 0, len(f.streams))
	for sid := range f.streams {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	db := make([]*graph.Graph, len(sids))
	for i, sid := range sids {
		db[i] = f.streams[sid]
	}
	idx := Build(db, f.cfg.MineConfig(len(db)))

	f.verdict = make(map[core.StreamID]map[core.QueryID]bool, len(sids))
	for _, sid := range sids {
		f.verdict[sid] = make(map[core.QueryID]bool, len(f.queries))
	}
	for qid, q := range f.queries {
		cands := idx.Candidates(q, len(db))
		in := make(map[int]bool, len(cands))
		for _, gi := range cands {
			in[gi] = true
		}
		for i, sid := range sids {
			f.verdict[sid][qid] = in[i]
		}
	}
	f.dirty = false
}

// Candidates implements core.Filter. The first call after a change re-mines
// the index; f.mu serializes that rebuild so concurrent readers are safe.
func (f *Filter) Candidates() []core.Pair {
	f.mu.Lock()
	if f.dirty {
		f.rebuild()
	}
	verdict := f.verdict
	f.mu.Unlock()
	var out []core.Pair
	for sid, m := range verdict {
		for qid, ok := range m {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}
