package gindex

import (
	"testing"

	"nntstream/internal/graph"
)

// chain builds a path graph with the given vertex labels.
func chain(t *testing.T, labels ...graph.Label) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i, l := range labels {
		if err := g.AddVertex(graph.VertexID(i), l); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(labels); i++ {
		if err := g.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSizeIncreasingSupport(t *testing.T) {
	// DB: three copies of A-B-C and one A-B-C-D. With a support function
	// requiring 1 graph at size ≤2 but 4 graphs at size 3, the 3-edge
	// fragment A-B-C-D (support 1) is cut while 2-edge fragments survive.
	db := []*graph.Graph{
		chain(t, 0, 1, 2), chain(t, 0, 1, 2), chain(t, 0, 1, 2),
		chain(t, 0, 1, 2, 3),
	}
	feats := Mine(db, MineConfig{
		MaxEdges: 3,
		SupportFunc: func(edges int) int {
			if edges >= 3 {
				return 4
			}
			return 1
		},
	})
	for _, f := range feats {
		if f.Graph.EdgeCount() >= 3 {
			t.Fatalf("size-3 fragment %v survived a support-4 threshold with support %d",
				f.Code, len(f.Postings))
		}
	}
	// The 2-edge A-B-C fragment must be present (support 4).
	found := false
	for _, f := range feats {
		if f.Graph.EdgeCount() == 2 && len(f.Postings) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("frequent 2-edge fragment missing")
	}
}

func TestDiscriminativeGammaSkipsRedundantFragments(t *testing.T) {
	// Every graph that contains A-B also contains A-B-C (they are the same
	// chains), so the child fragment's postings equal its parent's and a
	// gamma > 1 must skip indexing the child while single edges stay.
	db := []*graph.Graph{
		chain(t, 0, 1, 2), chain(t, 0, 1, 2), chain(t, 0, 1, 2),
	}
	full := Mine(db, MineConfig{MinSup: 1, MaxEdges: 2})
	discriminative := Mine(db, MineConfig{MinSup: 1, MaxEdges: 2, Gamma: 1.25})
	if len(discriminative) >= len(full) {
		t.Fatalf("gamma did not reduce the index: %d vs %d", len(discriminative), len(full))
	}
	// All single-edge fragments are always indexed.
	singles := 0
	for _, f := range discriminative {
		if f.Graph.EdgeCount() == 1 {
			singles++
		}
	}
	if singles != 2 { // A-B and B-C
		t.Fatalf("single-edge fragments = %d; want 2", singles)
	}
}

func TestLevelCapKeepsMostFrequent(t *testing.T) {
	// Two 1-edge fragment classes with supports 3 and 1; a level cap of 1
	// must keep the more frequent one.
	db := []*graph.Graph{
		chain(t, 0, 1), chain(t, 0, 1), chain(t, 0, 1),
		chain(t, 2, 3),
	}
	feats := Mine(db, MineConfig{MinSup: 1, MaxEdges: 1, LevelCap: 1})
	if len(feats) != 1 {
		t.Fatalf("features = %d; want 1", len(feats))
	}
	if len(feats[0].Postings) != 3 {
		t.Fatalf("kept fragment has support %d; want the support-3 one", len(feats[0].Postings))
	}
}

func TestExtLessOrder(t *testing.T) {
	back := ecode{fi: 2, ti: 0, fl: 0, el: 0, tl: 0}
	fwdDeep := ecode{fi: 2, ti: 3, fl: 0, el: 0, tl: 0}
	fwdShallow := ecode{fi: 0, ti: 3, fl: 0, el: 0, tl: 0}
	if !extLess(back, fwdDeep) {
		t.Fatal("backward extensions precede forward ones")
	}
	if !extLess(fwdDeep, fwdShallow) {
		t.Fatal("forward from deeper rightmost-path vertex precedes shallower")
	}
	b2 := ecode{fi: 2, ti: 1, fl: 0, el: 0, tl: 0}
	if !extLess(back, b2) {
		t.Fatal("backward edges order by destination")
	}
	e2 := ecode{fi: 2, ti: 3, fl: 0, el: 1, tl: 0}
	if !extLess(fwdDeep, e2) {
		t.Fatal("forward edges tie-break on edge label")
	}
}

func TestCodeKeyDistinct(t *testing.T) {
	a := dfscode{{fi: 0, ti: 1, fl: 1, el: 2, tl: 3}}
	b := dfscode{{fi: 0, ti: 1, fl: 1, el: 2, tl: 4}}
	if a.key() == b.key() {
		t.Fatal("distinct codes share a key")
	}
	if a.String() == "" {
		t.Fatal("empty code rendering")
	}
}
