package gindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestPatternFromCodeRoundTrip(t *testing.T) {
	// Triangle code: (0,1) (1,2) (2,0).
	c := dfscode{
		{fi: 0, ti: 1, fl: 0, el: 5, tl: 1},
		{fi: 1, ti: 2, fl: 1, el: 5, tl: 2},
		{fi: 2, ti: 0, fl: 2, el: 5, tl: 0},
	}
	p := patternFromCode(c)
	if len(p.vlabels) != 3 || p.size() != 3 {
		t.Fatalf("pattern has %d vertices, %d edges", len(p.vlabels), p.size())
	}
	if !p.hasEdge(0, 2) || !p.hasEdge(2, 0) {
		t.Fatal("backward edge missing")
	}
	g := p.toGraph()
	if g.VertexCount() != 3 || g.EdgeCount() != 3 {
		t.Fatalf("toGraph = %v", g)
	}
	// Rightmost path of the triangle code is 0→1→2.
	if len(p.rmpath) != 3 || p.rmpath[0] != 0 || p.rmpath[2] != 2 {
		t.Fatalf("rmpath = %v", p.rmpath)
	}
}

func TestIsMinSingleEdge(t *testing.T) {
	if !isMin(dfscode{{fi: 0, ti: 1, fl: 0, el: 0, tl: 1}}) {
		t.Fatal("ordered single edge should be minimal")
	}
	if isMin(dfscode{{fi: 0, ti: 1, fl: 1, el: 0, tl: 0}}) {
		t.Fatal("reversed single edge should not be minimal")
	}
}

func TestIsMinPath(t *testing.T) {
	// Path with labels 0-1-2: minimal code starts at an end with the
	// smaller triple. Starting (0,1,0,0,1) then (1,2,1,0,2) is minimal.
	minimal := dfscode{
		{fi: 0, ti: 1, fl: 0, el: 0, tl: 1},
		{fi: 1, ti: 2, fl: 1, el: 0, tl: 2},
	}
	if !isMin(minimal) {
		t.Fatal("expected minimal path code")
	}
	// Starting from the middle vertex: (0,1,1,0,0) is not minimal.
	other := dfscode{
		{fi: 0, ti: 1, fl: 1, el: 0, tl: 0},
		{fi: 0, ti: 2, fl: 1, el: 0, tl: 2},
	}
	if isMin(other) {
		t.Fatal("middle-start code should not be minimal")
	}
}

// bruteCountDistinct enumerates all connected subgraphs of g with at most
// maxEdges edges and returns the count of isomorphism classes, using the
// miner's own canonical form computed independently per subgraph. Used to
// cross-check the miner's completeness at support 1 on a single graph.
func bruteDistinctSubgraphs(g *graph.Graph, maxEdges int) map[string]bool {
	edges := g.Edges()
	seen := make(map[string]bool)
	// Grow connected edge sets from every edge.
	var rec func(set []graph.Edge, adjacent map[graph.Edge]bool)
	key := func(set []graph.Edge) string {
		sub := graph.New()
		for _, e := range set {
			_ = sub.AddVertex(e.U, g.MustVertexLabel(e.U))
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
		}
		return minCodeOf(sub)
	}
	var all func(prefix []graph.Edge, startIdx int)
	_ = rec
	// Simple approach: enumerate all subsets of edges up to maxEdges that
	// form a connected subgraph (graphs in tests are tiny).
	var subsets func(i int, cur []graph.Edge)
	subsets = func(i int, cur []graph.Edge) {
		if len(cur) > 0 {
			sub := graph.New()
			for _, e := range cur {
				_ = sub.AddVertex(e.U, g.MustVertexLabel(e.U))
				_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
				_ = sub.AddEdge(e.U, e.V, e.Label)
			}
			if sub.IsConnected() {
				seen[key(cur)] = true
			}
		}
		if i == len(edges) || len(cur) == maxEdges {
			return
		}
		for j := i; j < len(edges); j++ {
			subsets(j+1, append(cur, edges[j]))
		}
	}
	subsets(0, nil)
	_ = all
	return seen
}

// minCodeOf computes the canonical minimum DFS code of a small graph by
// mining it at support 1 with exactly its own size and taking the code of
// the feature isomorphic to it. Implemented directly: enumerate all codes
// via the miner on the single graph; the feature whose size matches and
// whose graph contains g (and vice versa) is g's class.
func minCodeOf(g *graph.Graph) string {
	feats := Mine([]*graph.Graph{g}, MineConfig{MinSup: 1, MaxEdges: g.EdgeCount()})
	for _, f := range feats {
		if f.Graph.EdgeCount() == g.EdgeCount() && f.Graph.VertexCount() == g.VertexCount() {
			if iso.Contains(f.Graph, g) && iso.Contains(g, f.Graph) {
				return f.Code.key()
			}
		}
	}
	panic("gindex test: graph not found among its own features")
}

func TestMineEnumeratesAllSubgraphsOfOneGraph(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := graph.New()
		n := 4 + r.Intn(3)
		for i := 0; i < n; i++ {
			_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(2)))
		}
		for i := 1; i < n; i++ {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(r.Intn(i)), 0)
		}
		if r.Intn(2) == 0 && n > 2 {
			_ = g.AddEdge(0, graph.VertexID(n-1), 0)
		}
		maxE := 3
		feats := Mine([]*graph.Graph{g}, MineConfig{MinSup: 1, MaxEdges: maxE})
		got := make(map[string]bool)
		for _, f := range feats {
			got[f.Code.key()] = true
		}
		want := bruteDistinctSubgraphs(g, maxE)
		if len(got) != len(want) {
			t.Fatalf("trial %d: miner found %d classes; brute force %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: miner missed a subgraph class", trial)
			}
		}
		// Each mined feature is genuinely contained in g exactly once per
		// isomorphism class (codes are canonical, hence unique).
		for _, f := range feats {
			if !iso.Contains(f.Graph, g) {
				t.Fatalf("trial %d: feature not contained in its source graph", trial)
			}
		}
	}
}

func TestMineSupportCounting(t *testing.T) {
	// DB: two graphs with an A-B edge, one without.
	g1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	g2 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1}, [][3]int{{0, 1, 0}, {0, 2, 0}})
	g3 := buildGraph(t, map[graph.VertexID]graph.Label{0: 2, 1: 2}, [][3]int{{0, 1, 0}})
	feats := Mine([]*graph.Graph{g1, g2, g3}, MineConfig{MinSup: 2, MaxEdges: 2})
	// Only the A-B edge has support ≥ 2.
	if len(feats) != 1 {
		t.Fatalf("features = %d; want 1", len(feats))
	}
	f := feats[0]
	if len(f.Postings) != 2 || f.Postings[0] != 0 || f.Postings[1] != 1 {
		t.Fatalf("postings = %v; want [0 1]", f.Postings)
	}
}

func TestMineCaps(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 0, 2: 0, 3: 0},
		[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}})
	feats := Mine([]*graph.Graph{g}, MineConfig{MinSup: 1, MaxEdges: 4, MaxFeatures: 2})
	if len(feats) != 2 {
		t.Fatalf("MaxFeatures cap ignored: %d features", len(feats))
	}
}

func TestIndexCandidates(t *testing.T) {
	// DB of three labeled paths; query A-B-C should keep only graphs
	// containing that path.
	abc := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}})
	abd := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 3},
		[][3]int{{0, 1, 0}, {1, 2, 0}})
	cb := buildGraph(t, map[graph.VertexID]graph.Label{0: 2, 1: 1}, [][3]int{{0, 1, 0}})
	db := []*graph.Graph{abc, abd, cb}
	idx := Build(db, MineConfig{MinSup: 1, MaxEdges: 3})
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}})
	got := idx.Candidates(q, len(db))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Candidates = %v; want [0]", got)
	}
	// A query containing no indexed feature cannot be pruned at all:
	// gIndex's index only carries positive evidence (which graphs contain
	// a feature), so an alien query keeps every graph as a candidate.
	q2 := buildGraph(t, map[graph.VertexID]graph.Label{0: 9, 1: 9}, [][3]int{{0, 1, 0}})
	if got := idx.Candidates(q2, len(db)); len(got) != len(db) {
		t.Fatalf("Candidates for alien query = %v; want all %d graphs", got, len(db))
	}
}

func TestIndexNoMatchedFeaturesKeepsAll(t *testing.T) {
	// With minSup 2 nothing is frequent in two disjointly-labeled graphs,
	// so a query matches no features and all graphs stay candidates.
	g1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	g2 := buildGraph(t, map[graph.VertexID]graph.Label{0: 2, 1: 3}, [][3]int{{0, 1, 0}})
	idx := Build([]*graph.Graph{g1, g2}, MineConfig{MinSup: 2, MaxEdges: 3})
	if len(idx.Features) != 0 {
		t.Fatalf("unexpected features: %d", len(idx.Features))
	}
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	got := idx.Candidates(q, 2)
	if len(got) != 2 {
		t.Fatalf("Candidates = %v; want all", got)
	}
}

// TestQuickGIndexNoFalseNegatives: for random DBs and actual subgraph
// queries, the containing graph always survives the gIndex filter.
func TestQuickGIndexNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var db []*graph.Graph
		for i := 0; i < 4; i++ {
			db = append(db, randomConnected(r, 4+r.Intn(5), 3))
		}
		idx := Build(db, MineConfig{MinSup: 1 + r.Intn(3), MaxEdges: 3})
		target := r.Intn(len(db))
		q := randomSub(r, db[target])
		if q.VertexCount() == 0 {
			return true
		}
		for _, gi := range idx.Candidates(q, len(db)) {
			if gi == target {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterLifecycle(t *testing.T) {
	f := New(Setting2())
	if f.Name() != "gIndex2" {
		t.Fatalf("Name = %s", f.Name())
	}
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}
	if err := f.AddQuery(0, q); err == nil {
		t.Fatal("duplicate query accepted")
	}
	// Stream 0 contains the query edge A-B; stream 1 does not. The A-B
	// feature gets mined from stream 0, so gIndex prunes stream 1.
	g0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	g1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 2}, [][3]int{{0, 1, 0}})
	if err := f.AddStream(0, g0); err != nil {
		t.Fatal(err)
	}
	if err := f.AddStream(0, g0); err == nil {
		t.Fatal("duplicate stream accepted")
	}
	if err := f.AddStream(1, g1); err != nil {
		t.Fatal(err)
	}
	got := f.Candidates()
	if len(got) != 1 || got[0] != (core.Pair{Stream: 0, Query: 0}) {
		t.Fatalf("Candidates = %v; want only (G0,Q0)", got)
	}
	// Remove stream 0's A-B edge by deleting it (the vertices retire);
	// re-mining drops the feature, and with no matched features gIndex can
	// no longer prune either stream.
	if err := f.Apply(0, graph.ChangeSet{graph.DeleteOp(0, 1)}); err != nil {
		t.Fatal(err)
	}
	got = f.Candidates()
	if len(got) != 2 {
		t.Fatalf("Candidates after delete = %v; want both pairs (no pruning evidence left)", got)
	}
	if err := f.Apply(5, nil); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func randomConnected(r *rand.Rand, n, labels int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.VertexID(i), graph.VertexID(r.Intn(i)), graph.Label(r.Intn(2)))
	}
	for k := 0; k < n/2; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
		}
	}
	return g
}

func randomSub(r *rand.Rand, g *graph.Graph) *graph.Graph {
	ids := g.VertexIDs()
	start := ids[r.Intn(len(ids))]
	sub := graph.New()
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	want := 1 + r.Intn(g.EdgeCount())
	frontier := []graph.VertexID{start}
	for sub.EdgeCount() < want && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return sub
}
