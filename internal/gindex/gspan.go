package gindex

import (
	"sort"

	"nntstream/internal/graph"
)

// mgraph is the compact adjacency form the miner works on: vertices are
// dense indices, adjacency lists are sorted for determinism.
type mgraph struct {
	vlabels []graph.Label
	adj     [][]medge
}

type medge struct {
	to int
	el graph.Label
}

// toMGraph converts a graph.Graph, mapping vertex IDs to dense indices in
// ascending ID order.
func toMGraph(g *graph.Graph) *mgraph {
	ids := g.VertexIDs()
	idx := make(map[graph.VertexID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	m := &mgraph{
		vlabels: make([]graph.Label, len(ids)),
		adj:     make([][]medge, len(ids)),
	}
	for i, id := range ids {
		m.vlabels[i] = g.MustVertexLabel(id)
		for _, e := range g.NeighborsSorted(id) {
			m.adj[i] = append(m.adj[i], medge{to: idx[e.V], el: e.Label})
		}
	}
	return m
}

// embedding maps pattern DFS indices to graph vertex indices.
type embedding []int32

func (e embedding) has(gv int) bool {
	for _, x := range e {
		if int(x) == gv {
			return true
		}
	}
	return false
}

// extend returns a new embedding with gv appended.
func (e embedding) extend(gv int) embedding {
	out := make(embedding, len(e)+1)
	copy(out, e)
	out[len(e)] = int32(gv)
	return out
}

// extensions enumerates the gSpan rightmost-path extensions of pattern p
// realized by embedding emb in graph g: backward edges from the rightmost
// vertex to rightmost-path vertices, and forward edges from rightmost-path
// vertices to unmapped graph vertices. yield receives the code edge and,
// for forward extensions, the new graph vertex (-1 for backward).
func extensions(p *pattern, g *mgraph, emb embedding, yield func(e ecode, gv int)) {
	r := p.rightmost()
	gr := int(emb[r])
	// Backward: rightmost vertex to a rightmost-path vertex (not already a
	// pattern edge).
	for _, me := range g.adj[gr] {
		for _, x := range p.rmpath {
			if x == r || int(emb[x]) != me.to || p.hasEdge(r, x) {
				continue
			}
			yield(ecode{fi: r, ti: x, fl: p.vlabels[r], el: me.el, tl: p.vlabels[x]}, -1)
		}
	}
	// Forward: from any rightmost-path vertex to a new graph vertex.
	n := len(p.vlabels)
	for _, u := range p.rmpath {
		gu := int(emb[u])
		for _, me := range g.adj[gu] {
			if emb.has(me.to) {
				continue
			}
			yield(ecode{fi: u, ti: n, fl: p.vlabels[u], el: me.el, tl: g.vlabels[me.to]}, me.to)
		}
	}
}

// isMin reports whether c is the minimum DFS code of the pattern it
// describes. It rebuilds the minimal code of the pattern incrementally:
// at every step the lexicographically smallest extension over all
// embeddings of the minimal prefix (in the pattern itself) must equal the
// corresponding entry of c.
func isMin(c dfscode) bool {
	if len(c) == 0 {
		return true
	}
	p := patternFromCode(c)
	self := &mgraph{vlabels: p.vlabels, adj: make([][]medge, len(p.vlabels))}
	for e, l := range p.edges {
		self.adj[e[0]] = append(self.adj[e[0]], medge{to: e[1], el: l})
		self.adj[e[1]] = append(self.adj[e[1]], medge{to: e[0], el: l})
	}
	for i := range self.adj {
		sort.Slice(self.adj[i], func(a, b int) bool { return self.adj[i][a].to < self.adj[i][b].to })
	}

	// Minimal first edge: the smallest (fl, el, tl) triple with fl ≤ tl.
	first := c[0]
	if first.fl > first.tl {
		return false
	}
	var embs []embedding
	for u := range self.vlabels {
		for _, me := range self.adj[u] {
			fl, tl := self.vlabels[u], self.vlabels[me.to]
			if fl > tl {
				continue
			}
			switch lessTriple(fl, me.el, tl, first.fl, first.el, first.tl) {
			case -1:
				return false // a smaller starting edge exists
			case 0:
				embs = append(embs, embedding{int32(u), int32(me.to)})
			}
		}
	}

	minPrefix := dfscode{first}
	for step := 1; step < len(c); step++ {
		mp := patternFromCode(minPrefix)
		best := ecode{}
		haveBest := false
		var nextEmbs []embedding
		for _, emb := range embs {
			extensions(mp, self, emb, func(e ecode, gv int) {
				if !haveBest || extLess(e, best) {
					best, haveBest = e, true
					nextEmbs = nextEmbs[:0]
				}
				if e == best {
					if gv >= 0 {
						nextEmbs = append(nextEmbs, emb.extend(gv))
					} else {
						nextEmbs = append(nextEmbs, emb)
					}
				}
			})
		}
		if !haveBest || best != c[step] {
			// best < c[step] means c is not minimal; best cannot exceed
			// c[step] because c's own identity embedding realizes it.
			return false
		}
		minPrefix = append(minPrefix, best)
		embs = nextEmbs
	}
	return true
}

// lessTriple compares (fl,el,tl) triples lexicographically: -1, 0, or 1.
func lessTriple(af, ae, at, bf, be, bt graph.Label) int {
	switch {
	case af != bf:
		if af < bf {
			return -1
		}
		return 1
	case ae != be:
		if ae < be {
			return -1
		}
		return 1
	case at != bt:
		if at < bt {
			return -1
		}
		return 1
	}
	return 0
}

// Feature is one mined frequent fragment: its canonical code, the fragment
// graph, and the indices of the database graphs containing it.
type Feature struct {
	Code     dfscode
	Graph    *graph.Graph
	Postings []int
}

// MineConfig bounds the miner.
type MineConfig struct {
	// MinSup is the absolute minimum support (number of graphs).
	MinSup int
	// SupportFunc, when set, overrides MinSup with a per-size threshold —
	// gIndex's size-increasing support: generic large fragments must be
	// frequent in many graphs while small fragments are kept cheaply.
	SupportFunc func(edges int) int
	// MaxEdges bounds fragment size; the paper's settings are 10 (gIndex1)
	// and 3 (gIndex2).
	MaxEdges int
	// MaxFeatures stops indexing after this many fragments (0 =
	// unlimited). Because mining proceeds level-wise (all fragments of k
	// edges before any of k+1), a hit cap drops the largest fragments —
	// the right bias, since small fragments carry most of the pruning.
	// Any cap only removes features, which keeps filters sound.
	MaxFeatures int
	// MaxEmbeddings caps the embedding list per (fragment, graph)
	// (0 = unlimited); see the package comment.
	MaxEmbeddings int
	// LevelCap bounds the number of fragments carried from one size level
	// to the next (0 = unlimited); the most frequent survive. This bounds
	// the pattern-explosion inherent to few-label databases.
	LevelCap int
	// Gamma enables gIndex's discriminative selection: a fragment is
	// indexed only when its support is at least Gamma times smaller than
	// its generating parent's (single edges are always indexed). 0
	// indexes every frequent fragment.
	Gamma float64
}

func (c MineConfig) supportAt(edges int) int {
	s := c.MinSup
	if c.SupportFunc != nil {
		s = c.SupportFunc(edges)
	}
	if s < 1 {
		s = 1
	}
	return s
}

// projections maps a database graph index to the embeddings of the current
// pattern in that graph.
type projections map[int][]embedding

// pstate is one frequent pattern carried between size levels.
type pstate struct {
	code          dfscode
	pj            projections
	support       int
	parentSupport int
}

// Mine runs the gSpan pattern-growth miner over the database, level-wise:
// all frequent canonical fragments of size k are produced (and indexed)
// before any of size k+1. Every canonical DFS code is generated exactly
// once, from its unique minimal prefix (prefixes of minimum codes are
// minimum codes), so levels need no deduplication.
func Mine(db []*graph.Graph, cfg MineConfig) []*Feature {
	mdb := make([]*mgraph, len(db))
	for i, g := range db {
		mdb[i] = toMGraph(g)
	}

	// Level 1: all frequent single-edge codes with fl ≤ tl.
	seeds := make(map[ecode]projections)
	for gi, g := range mdb {
		for u := range g.vlabels {
			for _, me := range g.adj[u] {
				fl, tl := g.vlabels[u], g.vlabels[me.to]
				if fl > tl {
					continue
				}
				e := ecode{fi: 0, ti: 1, fl: fl, el: me.el, tl: tl}
				pj := seeds[e]
				if pj == nil {
					pj = make(projections)
					seeds[e] = pj
				}
				if cfg.MaxEmbeddings == 0 || len(pj[gi]) < cfg.MaxEmbeddings {
					pj[gi] = append(pj[gi], embedding{int32(u), int32(me.to)})
				}
			}
		}
	}
	var level []*pstate
	for e, pj := range seeds {
		if len(pj) >= cfg.supportAt(1) {
			level = append(level, &pstate{
				code: dfscode{e}, pj: pj, support: len(pj), parentSupport: len(mdb),
			})
		}
	}
	sortLevel(level)
	level = capLevel(level, cfg.LevelCap)

	var features []*Feature
	emit := func(p *pstate) bool {
		if cfg.MaxFeatures > 0 && len(features) >= cfg.MaxFeatures {
			return false
		}
		if cfg.Gamma > 0 && len(p.code) > 1 &&
			float64(p.parentSupport) < cfg.Gamma*float64(p.support) {
			return true // frequent but not discriminative: explore, don't index
		}
		postings := make([]int, 0, len(p.pj))
		for gi := range p.pj {
			postings = append(postings, gi)
		}
		sort.Ints(postings)
		features = append(features, &Feature{
			Code:     append(dfscode(nil), p.code...),
			Graph:    patternFromCode(p.code).toGraph(),
			Postings: postings,
		})
		return true
	}

	for _, p := range level {
		if !emit(p) {
			return features
		}
	}
	for k := 1; k < cfg.MaxEdges && len(level) > 0; k++ {
		minSup := cfg.supportAt(k + 1)
		var next []*pstate
		for _, p := range level {
			pat := patternFromCode(p.code)
			exts := make(map[ecode]projections)
			for gi, embs := range p.pj {
				g := mdb[gi]
				for _, emb := range embs {
					extensions(pat, g, emb, func(e ecode, gv int) {
						epj := exts[e]
						if epj == nil {
							epj = make(projections)
							exts[e] = epj
						}
						if cfg.MaxEmbeddings > 0 && len(epj[gi]) >= cfg.MaxEmbeddings {
							return
						}
						if gv >= 0 {
							epj[gi] = append(epj[gi], emb.extend(gv))
						} else {
							epj[gi] = append(epj[gi], emb)
						}
					})
				}
			}
			for e, epj := range exts {
				if len(epj) < minSup {
					continue
				}
				child := append(append(dfscode{}, p.code...), e)
				if !isMin(child) {
					continue
				}
				next = append(next, &pstate{
					code: child, pj: epj, support: len(epj), parentSupport: p.support,
				})
			}
		}
		sortLevel(next)
		next = capLevel(next, cfg.LevelCap)
		for _, p := range next {
			if !emit(p) {
				return features
			}
		}
		level = next
	}
	return features
}

// sortLevel orders patterns by support descending, then canonical code, so
// level caps keep the most frequent fragments and runs are deterministic.
func sortLevel(level []*pstate) {
	sort.Slice(level, func(i, j int) bool {
		if level[i].support != level[j].support {
			return level[i].support > level[j].support
		}
		return level[i].code.key() < level[j].code.key()
	})
}

func capLevel(level []*pstate, cap int) []*pstate {
	if cap > 0 && len(level) > cap {
		return level[:cap]
	}
	return level
}
