package gindex

import (
	"sort"

	"nntstream/internal/graph"
)

// Index is a built gIndex: the mined features, a DFS-code prefix trie over
// them for query fragment enumeration, and per-feature postings.
type Index struct {
	Features []*Feature
	root     *trieNode
}

type trieNode struct {
	children map[ecode]*trieNode
	// feature is the index into Features terminating here, or -1.
	feature int
}

func newTrieNode() *trieNode {
	return &trieNode{children: make(map[ecode]*trieNode), feature: -1}
}

// Build mines the database and assembles the index.
func Build(db []*graph.Graph, cfg MineConfig) *Index {
	idx := &Index{
		Features: Mine(db, cfg),
		root:     newTrieNode(),
	}
	for fi, f := range idx.Features {
		node := idx.root
		for _, e := range f.Code {
			child, ok := node.children[e]
			if !ok {
				child = newTrieNode()
				node.children[e] = child
			}
			node = child
		}
		node.feature = fi
	}
	return idx
}

// MatchQuery returns the indices of indexed features contained in q, in
// ascending order. Fragments of q are grown gSpan-style but only along
// paths of the feature trie: since every prefix of a minimum DFS code is
// itself a minimum code, every indexed feature contained in q is reached,
// and since a DFS code determines its pattern, every terminal reached is a
// feature contained in q.
func (idx *Index) MatchQuery(q *graph.Graph) []int {
	g := toMGraph(q)
	found := make(map[int]bool)

	var walk func(node *trieNode, code dfscode, embs []embedding)
	walk = func(node *trieNode, code dfscode, embs []embedding) {
		if node.feature >= 0 {
			found[node.feature] = true
		}
		if len(node.children) == 0 {
			return
		}
		p := patternFromCode(code)
		exts := make(map[ecode][]embedding)
		for _, emb := range embs {
			extensions(p, g, emb, func(e ecode, gv int) {
				if _, ok := node.children[e]; !ok {
					return
				}
				if gv >= 0 {
					exts[e] = append(exts[e], emb.extend(gv))
				} else {
					exts[e] = append(exts[e], emb)
				}
			})
		}
		for e, nextEmbs := range exts {
			walk(node.children[e], append(append(dfscode{}, code...), e), nextEmbs)
		}
	}

	// Seed with the trie's first edges realized in q.
	seeds := make(map[ecode][]embedding)
	for u := range g.vlabels {
		for _, me := range g.adj[u] {
			fl, tl := g.vlabels[u], g.vlabels[me.to]
			if fl > tl {
				continue
			}
			e := ecode{fi: 0, ti: 1, fl: fl, el: me.el, tl: tl}
			if _, ok := idx.root.children[e]; ok {
				seeds[e] = append(seeds[e], embedding{int32(u), int32(me.to)})
			}
		}
	}
	for e, embs := range seeds {
		walk(idx.root.children[e], dfscode{e}, embs)
	}

	out := make([]int, 0, len(found))
	for fi := range found {
		out = append(out, fi)
	}
	sort.Ints(out)
	return out
}

// Candidates returns the database graph indices that contain every indexed
// feature contained in q — gIndex's filtering step. total is the database
// size; with no matched features, every graph is a candidate.
func (idx *Index) Candidates(q *graph.Graph, total int) []int {
	matched := idx.MatchQuery(q)
	return idx.CandidatesFromFeatures(matched, total)
}

// CandidatesFromFeatures intersects the postings of the given features over
// the universe [0, total).
func (idx *Index) CandidatesFromFeatures(featureIDs []int, total int) []int {
	if len(featureIDs) == 0 {
		all := make([]int, total)
		for i := range all {
			all[i] = i
		}
		return all
	}
	counts := make(map[int]int)
	for _, fi := range featureIDs {
		for _, gi := range idx.Features[fi].Postings {
			counts[gi]++
		}
	}
	var out []int
	for gi, c := range counts {
		if c == len(featureIDs) {
			out = append(out, gi)
		}
	}
	sort.Ints(out)
	return out
}
