// Package gindex implements the gIndex baseline [24]: frequent subgraphs
// are mined from the data graphs with a gSpan-style pattern-growth miner
// (DFS codes, rightmost-path extension, minimum-code canonical pruning) and
// indexed; a query can only be contained in data graphs that contain every
// indexed feature the query contains. In the stream setting the paper
// re-mines the features at each timestamp, which is what makes gIndex
// prohibitively slow there (Figure 15) despite its excellent pruning power
// — this implementation reproduces exactly that behavior.
//
// Two deviations from the original, both documented in DESIGN.md: all
// frequent fragments up to the size bound are indexed (the original's
// discriminative-fragment selection shrinks the index at essentially equal
// pruning power, so our filter is at least as effective), and embedding
// lists per (pattern, graph) are capped to bound pathological blowups on
// dense unlabeled regions (a cap can only lose features, which keeps the
// filter sound).
package gindex

import (
	"encoding/binary"
	"fmt"
	"strings"

	"nntstream/internal/graph"
)

// ecode is one DFS-code entry: an edge between DFS discovery indices fi and
// ti, with the endpoint vertex labels and the edge label. Forward edges
// have ti == fi's subtree growth index (ti > fi); backward edges have
// ti < fi.
type ecode struct {
	fi, ti int
	fl     graph.Label // label of vertex fi
	el     graph.Label // edge label
	tl     graph.Label // label of vertex ti
}

func (e ecode) forward() bool { return e.ti > e.fi }

func (e ecode) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%d)", e.fi, e.ti, e.fl, e.el, e.tl)
}

// dfscode is a sequence of ecode entries describing a pattern graph.
type dfscode []ecode

func (c dfscode) String() string {
	var b strings.Builder
	for _, e := range c {
		b.WriteString(e.String())
	}
	return b.String()
}

// key serializes the code for use as a map key.
func (c dfscode) key() string {
	buf := make([]byte, 0, len(c)*10)
	var tmp [10]byte
	for _, e := range c {
		binary.BigEndian.PutUint16(tmp[0:], uint16(e.fi))
		binary.BigEndian.PutUint16(tmp[2:], uint16(e.ti))
		binary.BigEndian.PutUint16(tmp[4:], uint16(e.fl))
		binary.BigEndian.PutUint16(tmp[6:], uint16(e.el))
		binary.BigEndian.PutUint16(tmp[8:], uint16(e.tl))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// extLess orders two candidate extensions of the same partial code, per
// gSpan's DFS lexicographic order: backward before forward; backward edges
// by smaller destination then edge label; forward edges by deeper source on
// the rightmost path, then edge label, then target vertex label.
func extLess(a, b ecode) bool {
	af, bf := a.forward(), b.forward()
	if af != bf {
		return bf // a backward, b forward → a first
	}
	if !af {
		if a.ti != b.ti {
			return a.ti < b.ti
		}
		return a.el < b.el
	}
	if a.fi != b.fi {
		return a.fi > b.fi
	}
	if a.el != b.el {
		return a.el < b.el
	}
	return a.tl < b.tl
}

// pattern is the graph a DFS code describes, kept in the compact form the
// miner works on: vertices are DFS indices 0..n-1.
type pattern struct {
	vlabels []graph.Label
	// edges maps an index pair (lo,hi) to the edge label.
	edges map[[2]int]graph.Label
	// rightmost path from root (index 0) to the rightmost vertex,
	// inclusive.
	rmpath []int
	code   dfscode
}

// patternFromCode replays a DFS code into its pattern graph. It validates
// structural well-formedness and panics on malformed codes (codes are
// produced internally; a malformed one is a bug).
func patternFromCode(c dfscode) *pattern {
	p := &pattern{edges: make(map[[2]int]graph.Label, len(c))}
	for i, e := range c {
		if i == 0 {
			if e.fi != 0 || e.ti != 1 {
				panic(fmt.Sprintf("gindex: first code edge must be (0,1): %v", e))
			}
			p.vlabels = append(p.vlabels, e.fl, e.tl)
		} else if e.forward() {
			if e.ti != len(p.vlabels) || e.fi >= len(p.vlabels) {
				panic(fmt.Sprintf("gindex: bad forward edge %v at %d", e, i))
			}
			if p.vlabels[e.fi] != e.fl {
				panic(fmt.Sprintf("gindex: label mismatch in %v", e))
			}
			p.vlabels = append(p.vlabels, e.tl)
		} else {
			if e.fi >= len(p.vlabels) || e.ti >= len(p.vlabels) {
				panic(fmt.Sprintf("gindex: bad backward edge %v at %d", e, i))
			}
		}
		lo, hi := e.fi, e.ti
		if lo > hi {
			lo, hi = hi, lo
		}
		if _, dup := p.edges[[2]int{lo, hi}]; dup {
			panic(fmt.Sprintf("gindex: duplicate edge in code at %d: %v", i, e))
		}
		p.edges[[2]int{lo, hi}] = e.el
	}
	p.code = append(dfscode(nil), c...)
	p.computeRMPath()
	return p
}

// computeRMPath derives the rightmost path: follow the chain of forward
// edges ending at the rightmost (highest-index) vertex.
func (p *pattern) computeRMPath() {
	p.rmpath = p.rmpath[:0]
	if len(p.vlabels) == 0 {
		return
	}
	// parent[v] for forward edges.
	parent := make([]int, len(p.vlabels))
	for i := range parent {
		parent[i] = -1
	}
	for _, e := range p.code {
		if e.forward() {
			parent[e.ti] = e.fi
		}
	}
	v := len(p.vlabels) - 1
	for v != -1 {
		p.rmpath = append(p.rmpath, v)
		v = parent[v]
	}
	// Reverse to root-first order.
	for i, j := 0, len(p.rmpath)-1; i < j; i, j = i+1, j-1 {
		p.rmpath[i], p.rmpath[j] = p.rmpath[j], p.rmpath[i]
	}
}

// hasEdge reports whether the pattern has an edge between indices a and b.
func (p *pattern) hasEdge(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	_, ok := p.edges[[2]int{a, b}]
	return ok
}

// size returns the number of pattern edges.
func (p *pattern) size() int { return len(p.code) }

// rightmost returns the rightmost vertex index.
func (p *pattern) rightmost() int { return len(p.vlabels) - 1 }

// toGraph converts the pattern to a graph.Graph with vertex IDs equal to
// DFS indices.
func (p *pattern) toGraph() *graph.Graph {
	g := graph.New()
	for i, l := range p.vlabels {
		_ = g.AddVertex(graph.VertexID(i), l)
	}
	for e, l := range p.edges {
		_ = g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), l)
	}
	return g
}
