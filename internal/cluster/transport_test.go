package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nntstream/internal/obs"
	"nntstream/internal/retry"
)

// scriptedTransport fails a fixed number of times before succeeding.
type scriptedTransport struct {
	failures int // remaining failures to serve
	calls    int
	err      error
}

func (s *scriptedTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	s.calls++
	if s.failures > 0 {
		s.failures--
		if s.err != nil {
			return nil, s.err
		}
		return nil, fmt.Errorf("scripted transport failure")
	}
	return http.Header{}, nil
}

func TestRetryTransportRetriesTransientFailures(t *testing.T) {
	inner := &scriptedTransport{failures: 2}
	metrics := NewMetrics(obs.NewRegistry())
	rt := &RetryTransport{Next: inner, Policy: instantPolicy(), Metrics: metrics}
	if _, err := rt.Do(context.Background(), "a:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("retryable failure not retried to success: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("calls = %d, want 3", inner.calls)
	}
	if metrics.RPCRetries.Value() != 2 {
		t.Fatalf("retries counted = %d, want 2", metrics.RPCRetries.Value())
	}
}

func TestRetryTransportDeliberateResponseIsPermanent(t *testing.T) {
	inner := &scriptedTransport{failures: 10, err: &StatusError{Code: http.StatusConflict, Msg: "no"}}
	rt := &RetryTransport{Next: inner, Policy: instantPolicy()}
	_, err := rt.Do(context.Background(), "a:1", http.MethodGet, "/x", nil, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("err = %v, want the 409 back", err)
	}
	if inner.calls != 1 {
		t.Fatalf("a deliberate response was retried: %d calls", inner.calls)
	}
	// Deliberate responses are a live target: the breaker must stay closed.
	inner.failures = 0
	if _, err := rt.Do(context.Background(), "a:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("breaker tripped on deliberate responses: %v", err)
	}
}

func TestRetryTransportGatewayStatusIsRetryable(t *testing.T) {
	inner := &scriptedTransport{failures: 1, err: &StatusError{Code: http.StatusServiceUnavailable, Msg: "warming up"}}
	rt := &RetryTransport{Next: inner, Policy: instantPolicy()}
	if _, err := rt.Do(context.Background(), "a:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("503 not retried: %v", err)
	}
	if inner.calls != 2 {
		t.Fatalf("calls = %d, want 2", inner.calls)
	}
}

// partialDecodeTransport pollutes `out` before failing its first attempt —
// the behavior of a real HTTP exchange that dies mid-body after json.Decode
// already populated some fields.
type partialDecodeTransport struct{ calls int }

func (p *partialDecodeTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	p.calls++
	st := out.(*WireStatus)
	if p.calls == 1 {
		st.ID = "stale-worker"
		st.Groups = []WireGroupStatus{{Group: 7, AppliedLSN: 99}}
		return nil, fmt.Errorf("connection reset mid-body")
	}
	st.ID = "fresh-worker"
	return http.Header{}, nil
}

// TestRetryTransportFreshDecodePerAttempt: fields a failed attempt decoded
// must not survive into the attempt that succeeds.
func TestRetryTransportFreshDecodePerAttempt(t *testing.T) {
	rt := &RetryTransport{Next: &partialDecodeTransport{}, Policy: instantPolicy()}
	var st WireStatus
	if _, err := rt.Do(context.Background(), "a:1", http.MethodGet, "/cluster/status", nil, &st); err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if st.ID != "fresh-worker" || len(st.Groups) != 0 {
		t.Fatalf("stale fields from a failed attempt leaked into the result: %+v", st)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	inner := &scriptedTransport{failures: 1 << 30}
	metrics := NewMetrics(obs.NewRegistry())
	rt := &RetryTransport{
		Next:    inner,
		Policy:  retry.Policy{MaxAttempts: 1, Sleep: func(ctx context.Context, d time.Duration) error { return nil }},
		Now:     func() time.Time { return now },
		Metrics: metrics,
	}
	ctx := context.Background()

	for i := 0; i < DefaultBreakerThreshold; i++ {
		if _, err := rt.Do(ctx, "a:1", http.MethodGet, "/x", nil, nil); err == nil {
			t.Fatal("scripted failure returned nil")
		}
	}
	if metrics.BreakerOpens.Value() != 1 {
		t.Fatalf("breaker opens = %d, want 1", metrics.BreakerOpens.Value())
	}
	calls := inner.calls
	if _, err := rt.Do(ctx, "a:1", http.MethodGet, "/x", nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit admitted a call: %v", err)
	}
	if inner.calls != calls {
		t.Fatal("fast-fail still reached the inner transport")
	}
	// Another address is unaffected.
	inner2 := inner.calls
	rt.Do(ctx, "b:1", http.MethodGet, "/x", nil, nil)
	if inner.calls != inner2+1 {
		t.Fatal("breaker state leaked across addresses")
	}

	// After the cooldown, one probe goes through; when it succeeds the
	// circuit closes again.
	now = now.Add(DefaultBreakerCooldown + time.Second)
	inner.failures = 0
	if _, err := rt.Do(ctx, "a:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := rt.Do(ctx, "a:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("circuit did not close after successful probe: %v", err)
	}
}

func TestFaultTransportPartitionAndDrop(t *testing.T) {
	inner := &scriptedTransport{}
	ft := NewFaultTransport(inner, 7)
	ctx := context.Background()

	ft.Partition("a:1")
	if !ft.Partitioned("a:1") {
		t.Fatal("partition not recorded")
	}
	if _, err := ft.Do(ctx, "a:1", http.MethodGet, "/x", nil, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned call err = %v, want ErrInjected", err)
	}
	if _, err := ft.Do(ctx, "b:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("unpartitioned address failed: %v", err)
	}
	ft.Heal()
	if _, err := ft.Do(ctx, "a:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("healed address failed: %v", err)
	}

	ft.SetDrop(1)
	if _, err := ft.Do(ctx, "b:1", http.MethodGet, "/x", nil, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("p=1 drop err = %v, want ErrInjected", err)
	}
	ft.SetDrop(0)

	var slept time.Duration
	ft.SetSleep(func(d time.Duration) { slept = d })
	ft.SetDelay(25 * time.Millisecond)
	if _, err := ft.Do(ctx, "b:1", http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("delayed call failed: %v", err)
	}
	if slept != 25*time.Millisecond {
		t.Fatalf("slept %v, want 25ms", slept)
	}
}

// TestHTTPTransportRoundTrip drives the real HTTP transport against a real
// listener hosting a worker handler — the only cluster test that touches
// sockets, covering the encode/decode and error-body paths memNet mirrors.
func TestHTTPTransportRoundTrip(t *testing.T) {
	w := NewWorker("w0", t.TempDir(), WorkerOptions{
		Factory: filterCases[0].factory,
	})
	defer w.Close()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	ht := &HTTPTransport{}
	ctx := context.Background()

	if _, err := ht.Do(ctx, addr, http.MethodPost, "/cluster/groups/0/role",
		WireRole{Role: RolePrimary}, nil); err != nil {
		t.Fatalf("role assignment over HTTP: %v", err)
	}
	var st WireStatus
	hdr, err := ht.Do(ctx, addr, http.MethodGet, "/cluster/status", nil, &st)
	if err != nil {
		t.Fatalf("status over HTTP: %v", err)
	}
	_ = hdr
	if st.ID != "w0" || len(st.Groups) != 1 || st.Groups[0].Role != RolePrimary {
		t.Fatalf("status = %+v", st)
	}

	// A deliberate error decodes into a StatusError with the server's text.
	_, err = ht.Do(ctx, addr, http.MethodPost, "/cluster/groups/0/replicate", WireReplicate{}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("replicate to a primary: %v, want 409 StatusError", err)
	}
	if !strings.Contains(se.Msg, "not a replica") {
		t.Fatalf("error body not decoded: %q", se.Msg)
	}

	// Unreachable addresses surface as transport errors, not statuses.
	srv.Close()
	if _, err := ht.Do(ctx, addr, http.MethodGet, "/cluster/status", nil, &st); err == nil {
		t.Fatal("closed listener answered")
	} else if errors.As(err, &se) {
		t.Fatalf("transport failure mistaken for a deliberate response: %v", err)
	}
}

func TestRingPlacement(t *testing.T) {
	ids := []string{"w0", "w1", "w2", "w3", "w4"}
	r := newRing(ids, defaultVnodes)
	for g := 0; g < 50; g++ {
		key := fmt.Sprintf("group-%d", g)
		placed := r.place(key, 3)
		if len(placed) != 3 {
			t.Fatalf("group %d placed on %d workers, want 3", g, len(placed))
		}
		seen := make(map[string]bool)
		for _, id := range placed {
			if seen[id] {
				t.Fatalf("group %d placed twice on %s", g, id)
			}
			seen[id] = true
		}
		again := r.place(key, 3)
		for i := range placed {
			if placed[i] != again[i] {
				t.Fatalf("placement not deterministic for %s: %v vs %v", key, placed, again)
			}
		}
	}

	// Consistent hashing: dropping one worker must not reshuffle groups that
	// never touched it.
	smaller := newRing([]string{"w0", "w1", "w2", "w3"}, defaultVnodes)
	moved := 0
	for g := 0; g < 50; g++ {
		key := fmt.Sprintf("group-%d", g)
		before := r.place(key, 1)[0]
		after := smaller.place(key, 1)[0]
		if before != "w4" && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d groups moved off surviving workers when w4 left", moved)
	}

	// RF above the worker count returns everyone.
	if got := newRing([]string{"a", "b"}, 8).place("k", 5); len(got) != 2 {
		t.Fatalf("overprovisioned RF placed %d workers, want 2", len(got))
	}
}
