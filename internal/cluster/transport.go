package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"time"

	"nntstream/internal/retry"
)

// Transport is the single RPC primitive every inter-node call goes through:
// a JSON request/response exchange with one worker. Keeping the surface to
// one method lets the retry, circuit-breaking, and fault-injection layers
// stack as plain wrappers, each ignorant of the RPC vocabulary above it.
type Transport interface {
	// Do sends `in` (nil for no body) as JSON via `method` to
	// http://addr/path and decodes the response into `out` (nil to discard).
	// Non-2xx responses decode the server's error body into a *StatusError.
	Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error)
}

// StatusError is a response the target produced deliberately (as opposed to
// a transport failure reaching it). Retry layers treat most of them as
// permanent: re-sending a request the server rejected cannot help, except
// for the gateway statuses that signal transient unavailability.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: remote status %d: %s", e.Code, e.Msg)
}

// retryableStatus reports whether a status code signals a transient
// condition worth re-attempting.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// DefaultRPCTimeout bounds one transport attempt; nothing in the cluster
// waits longer than this on a single unresponsive peer.
const DefaultRPCTimeout = 5 * time.Second

// HTTPTransport is the real network transport.
type HTTPTransport struct {
	// Client is the underlying HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Timeout bounds each call when the caller's context carries no earlier
	// deadline (default DefaultRPCTimeout).
	Timeout time.Duration
}

func (t *HTTPTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = DefaultRPCTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("cluster: encoding %s %s request: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+addr+path, body)
	if err != nil {
		return nil, fmt.Errorf("cluster: building %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s %s on %s: %w", method, path, addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var remote struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&remote) == nil && remote.Error != "" {
			msg = remote.Error
		}
		return resp.Header, &StatusError{Code: resp.StatusCode, Msg: msg}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.Header, fmt.Errorf("cluster: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.Header, nil
}

// ErrCircuitOpen reports a call refused locally because the target's breaker
// is open — the fast-fail that keeps a dead worker from stalling every
// caller for a full timeout+retry cycle.
var ErrCircuitOpen = errors.New("cluster: circuit open")

// Breaker defaults.
const (
	// DefaultBreakerThreshold is how many consecutive failed calls open a
	// target's circuit.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open circuit refuses calls
	// before letting a probe through.
	DefaultBreakerCooldown = 2 * time.Second
)

// breaker is one target's circuit state.
type breaker struct {
	failures  int
	openUntil time.Time
	probing   bool // half-open: one probe is in flight
}

// RetryTransport wraps a Transport with capped-exponential retries and a
// per-target circuit breaker. Only transport-level failures and gateway
// statuses are retried; anything the target decided on purpose is returned
// as-is. All deadlines come from the inner transport and the caller's
// context, so a call through RetryTransport is bounded by
// attempts × per-attempt timeout plus backoff sleeps.
type RetryTransport struct {
	// Next is the wrapped transport.
	Next Transport
	// Policy shapes attempts and backoff (zero value = retry defaults).
	Policy retry.Policy
	// Threshold and Cooldown tune the breaker (zero = package defaults).
	Threshold int
	Cooldown  time.Duration
	// Now is injectable time for tests (time.Now when nil).
	Now func() time.Time
	// Metrics counts retries and breaker trips (may be nil).
	Metrics *Metrics

	mu       sync.Mutex
	breakers map[string]*breaker
}

func (t *RetryTransport) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// admit consults addr's breaker: proceed, or fail fast with ErrCircuitOpen.
func (t *RetryTransport) admit(addr string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.breakers == nil {
		t.breakers = make(map[string]*breaker)
	}
	b := t.breakers[addr]
	if b == nil {
		b = &breaker{}
		t.breakers[addr] = b
	}
	threshold := t.Threshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if b.failures < threshold {
		return nil
	}
	if t.now().Before(b.openUntil) {
		return fmt.Errorf("%w: %s until %s", ErrCircuitOpen, addr, b.openUntil.Format(time.RFC3339))
	}
	// Half-open: admit a single probe; concurrent callers keep failing fast
	// until the probe settles the circuit one way or the other.
	if b.probing {
		return fmt.Errorf("%w: %s (probe in flight)", ErrCircuitOpen, addr)
	}
	b.probing = true
	return nil
}

// settle records the outcome of a call admitted through the breaker.
func (t *RetryTransport) settle(addr string, failed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.breakers[addr]
	if b == nil {
		return
	}
	b.probing = false
	if !failed {
		b.failures = 0
		return
	}
	b.failures++
	threshold := t.Threshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if b.failures >= threshold {
		cooldown := t.Cooldown
		if cooldown <= 0 {
			cooldown = DefaultBreakerCooldown
		}
		b.openUntil = t.now().Add(cooldown)
		if t.Metrics != nil {
			t.Metrics.BreakerOpens.Inc()
		}
	}
}

func (t *RetryTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	if err := t.admit(addr); err != nil {
		return nil, err
	}
	var hdr http.Header
	attempt := 0
	err := t.Policy.Do(ctx, func(ctx context.Context) error {
		attempt++
		if attempt > 1 && t.Metrics != nil {
			t.Metrics.RPCRetries.Inc()
		}
		// Decode each attempt into a fresh value: a failed attempt can decode
		// part of a response before erroring, and stale fields must not leak
		// into the attempt that finally succeeds.
		attemptOut := out
		if out != nil {
			attemptOut = reflect.New(reflect.TypeOf(out).Elem()).Interface()
		}
		h, err := t.Next.Do(ctx, addr, method, path, in, attemptOut)
		if err == nil {
			hdr = h
			if out != nil {
				reflect.ValueOf(out).Elem().Set(reflect.ValueOf(attemptOut).Elem())
			}
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) && !retryableStatus(se.Code) {
			// The target answered and meant it; retrying cannot change it.
			return retry.Permanent(err)
		}
		return err
	})
	// A deliberate non-gateway response is a live target: it does not count
	// against the breaker.
	var se *StatusError
	deliberate := errors.As(err, &se) && !retryableStatus(se.Code)
	t.settle(addr, err != nil && !deliberate)
	return hdr, err
}
