package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/join"
	"nntstream/internal/server"
)

// filterCases are the paper's NPV filters the cluster must not perturb.
var filterCases = []struct {
	name      string
	factory   core.FilterFactory
	canRemove bool
}{
	{"NL", func() core.Filter { return join.NewNL(join.DefaultDepth) }, false},
	{"DSC", func() core.Filter { return join.NewDSC(join.DefaultDepth) }, true},
	{"Skyline", func() core.Filter { return join.NewSkyline(join.DefaultDepth) }, true},
}

func TestConfigValidate(t *testing.T) {
	cfg := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "b:1"}}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if cfg.Groups != 2 || cfg.ReplicationFactor != DefaultReplicationFactor {
		t.Fatalf("defaults not applied: groups=%d rf=%d", cfg.Groups, cfg.ReplicationFactor)
	}
	dup := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}, {ID: "a", Addr: "a:2"}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate worker id accepted")
	}
	over := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}}, ReplicationFactor: 5}
	if err := over.Validate(); err != nil || over.ReplicationFactor != 1 {
		t.Fatalf("RF not capped at worker count: rf=%d err=%v", over.ReplicationFactor, err)
	}
}

func TestStreamIDMapping(t *testing.T) {
	cfg := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "b:1"}, {ID: "c", Addr: "c:1"}}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for global := int64(0); global < 20; global++ {
		g := cfg.GroupOf(global)
		local := cfg.LocalOf(global)
		if back := cfg.GlobalOf(g, local); back != global {
			t.Fatalf("roundtrip: global %d → (g=%d, local=%d) → %d", global, g, local, back)
		}
	}
	// Sequential global IDs fill each group's local sequence without holes —
	// the property that makes cluster IDs line up with a single-node run.
	next := make(map[int]int64)
	for global := int64(0); global < 30; global++ {
		g := cfg.GroupOf(global)
		if cfg.LocalOf(global) != next[g] {
			t.Fatalf("global %d lands at local %d in group %d, want %d",
				global, cfg.LocalOf(global), g, next[g])
		}
		next[g]++
	}
}

// TestClusterMatchesSingleNode is the no-fault baseline: a 3-worker cluster
// answers exactly like one engine fed the same operations.
func TestClusterMatchesSingleNode(t *testing.T) {
	for _, fc := range filterCases {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", fc.name, shards), func(t *testing.T) {
				tc := newTestCluster(t, fc.factory, shards, 3, 2, 2)
				ref := newRefEngine(t, fc.factory, shards)
				for i, op := range standardWorkload(fc.canRemove) {
					if status := tc.applyOp(op); status < 200 || status > 299 {
						t.Fatalf("op %d (%s): status %d", i, op.kind, status)
					}
					ref.apply(op)
				}
				got, hdr := tc.clusterCandidates()
				if hdr.Get(HeaderStale) != "" {
					t.Fatal("healthy cluster served a stale read")
				}
				if want := ref.candidates(); !wirePairsEqual(got, want) {
					t.Fatalf("cluster diverged from single node:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

// TestKillPrimaryAtEveryBoundary is the tentpole harness: for every
// WAL-record boundary in the workload (each client write appends exactly one
// record per group), kill the worker currently leading group 0 right after
// that write commits, let the failure detector promote, finish the workload,
// and require the final answers bit-identical to the single-node reference.
// RF=2 means the promoted replica's WAL is the only surviving copy of the
// group history — any lost or reordered record shows up as a divergence.
func TestKillPrimaryAtEveryBoundary(t *testing.T) {
	for _, fc := range filterCases {
		for _, shards := range []int{1, 3} {
			ops := standardWorkload(fc.canRemove)
			for kill := 1; kill <= len(ops); kill++ {
				t.Run(fmt.Sprintf("%s/shards=%d/kill=%d", fc.name, shards, kill), func(t *testing.T) {
					tc := newTestCluster(t, fc.factory, shards, 3, 2, 2)
					ref := newRefEngine(t, fc.factory, shards)
					for i, op := range ops {
						if status := tc.applyOp(op); status < 200 || status > 299 {
							t.Fatalf("op %d (%s): status %d", i, op.kind, status)
						}
						ref.apply(op)
						if i+1 == kill {
							victim := tc.primaryOf(0)
							tc.kill(victim)
							tc.pollUntilDead(victim)
						}
					}
					if fails := tc.coord.Metrics().Failovers.Value(); fails == 0 {
						t.Fatal("no failover recorded after killing a primary")
					}
					got, _ := tc.clusterCandidates()
					if want := ref.candidates(); !wirePairsEqual(got, want) {
						t.Fatalf("post-failover answers diverged:\n got %v\nwant %v", got, want)
					}
				})
			}
		}
	}
}

// TestKilledPrimaryRejoins kills a primary mid-workload, finishes it, then
// restarts the dead worker from its surviving directory: the coordinator
// must re-bootstrap it (its WAL is stale history now) and resume replicating
// to it, ending with every worker converged.
func TestKilledPrimaryRejoins(t *testing.T) {
	factory := filterCases[0].factory
	tc := newTestCluster(t, factory, 1, 3, 3, 2)
	ref := newRefEngine(t, factory, 1)
	ops := standardWorkload(false)
	half := len(ops) / 2
	for i, op := range ops[:half] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %d: status %d", i, status)
		}
		ref.apply(op)
	}
	victim := tc.primaryOf(0)
	tc.kill(victim)
	tc.pollUntilDead(victim)
	for i, op := range ops[half:] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %d after failover: status %d", half+i, status)
		}
		ref.apply(op)
	}

	tc.startWorker(victim)
	tc.coord.PollOnce(context.Background()) // sees it alive again, rejoins + syncs
	tc.coord.SyncAll(context.Background())

	got, _ := tc.clusterCandidates()
	if want := ref.candidates(); !wirePairsEqual(got, want) {
		t.Fatalf("post-rejoin answers diverged:\n got %v\nwant %v", got, want)
	}
	if installs := tc.coord.Metrics().SnapshotInstalls.Value(); installs == 0 {
		t.Fatal("rejoin did not re-bootstrap the returned worker")
	}
	// Every replica of every group must sit at the same applied LSN as its
	// primary once the dust settles.
	assertReplicasConverged(t, tc)
}

// assertReplicasConverged checks that all live holders of each group report
// the same applied LSN.
func assertReplicasConverged(t *testing.T, tc *testCluster) {
	t.Helper()
	lsn := make(map[int]map[uint64]bool)
	for id, w := range tc.workers {
		var st WireStatus
		if _, err := tc.net.Do(context.Background(), id, http.MethodGet, "/cluster/status", nil, &st); err != nil {
			continue // dead worker
		}
		_ = w
		for _, gs := range st.Groups {
			if lsn[gs.Group] == nil {
				lsn[gs.Group] = make(map[uint64]bool)
			}
			lsn[gs.Group][gs.AppliedLSN] = true
		}
	}
	for g, set := range lsn {
		if len(set) != 1 {
			t.Fatalf("group %d holders disagree on applied LSN: %v", g, set)
		}
	}
}

// TestRandomizedPartitionHeal runs a seeded schedule of writes interleaved
// with partitioning and healing workers; after the final heal the cluster
// must answer exactly like the single-node reference and all replicas must
// converge. Writes that fail during a disruption are retried until the
// idempotent broadcast lands — the client-visible contract.
func TestRandomizedPartitionHeal(t *testing.T) {
	for _, fc := range filterCases {
		t.Run(fc.name, func(t *testing.T) {
			tc := newTestCluster(t, fc.factory, 1, 3, 3, 2)
			ref := newRefEngine(t, fc.factory, 1)
			rng := rand.New(rand.NewSource(42))
			ctx := context.Background()

			heal := func() {
				tc.fault.Heal()
				for i := 0; i < 4; i++ {
					tc.coord.PollOnce(ctx)
				}
				tc.coord.SyncAll(ctx)
			}
			mustApply := func(op clusterOp) {
				for attempt := 0; attempt < 10; attempt++ {
					if status := tc.applyOp(op); status/100 == 2 {
						ref.apply(op)
						return
					}
					// Writes bounce while a partition is being detected;
					// detection + promotion unblocks them.
					tc.coord.PollOnce(ctx)
					if attempt == 6 {
						heal()
					}
				}
				t.Fatalf("op %s never succeeded", op.kind)
			}

			for _, op := range standardWorkload(false)[:6] { // queries + streams
				mustApply(op)
			}
			streams := 3
			for round := 0; round < 30; round++ {
				switch r := rng.Intn(10); {
				case r < 2: // partition a random worker
					id := fmt.Sprintf("w%d", rng.Intn(3))
					tc.fault.Partition(id)
					for i := 0; i < 3; i++ {
						tc.coord.PollOnce(ctx)
					}
				case r < 4:
					heal()
				default: // a step touching a random stream
					sid := rng.Intn(streams)
					u := 100 + round
					mustApply(clusterOp{kind: "step", changes: map[string][]server.WireOp{
						fmt.Sprintf("%d", sid): {ins(u, u%3+1, u+1, (u+1)%3+1, 2)},
					}})
				}
			}
			heal()

			got, hdr := tc.clusterCandidates()
			if hdr.Get(HeaderStale) != "" {
				t.Fatal("healed cluster still serving stale reads")
			}
			if want := ref.candidates(); !wirePairsEqual(got, want) {
				t.Fatalf("post-heal answers diverged:\n got %v\nwant %v", got, want)
			}
			assertReplicasConverged(t, tc)
		})
	}
}

// TestDegradedMode drives a group into the no-safe-replica corner: the
// replica is partitioned (falls behind the acknowledged watermark), then the
// primary dies. The coordinator must refuse writes with 503 + Retry-After,
// serve reads stale with explicit headers, and recover cleanly when the old
// primary returns.
func TestDegradedMode(t *testing.T) {
	factory := filterCases[0].factory
	tc := newTestCluster(t, factory, 1, 2, 1, 2) // one group on two workers
	ref := newRefEngine(t, factory, 1)
	ctx := context.Background()

	setup := standardWorkload(false)[:4] // 3 queries + 1 stream
	for _, op := range setup {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("setup op %s: status %d", op.kind, status)
		}
		ref.apply(op)
	}

	primary := tc.primaryOf(0)
	replica := "w0"
	if primary == "w0" {
		replica = "w1"
	}

	// Cut the replica off and commit more writes: the acknowledged watermark
	// moves past anything the replica holds.
	tc.fault.Partition(replica)
	behindOp := clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"0": {ins(50, 2, 51, 3, 5)},
	}}
	if status := tc.applyOp(behindOp); status/100 != 2 {
		t.Fatalf("write with partitioned replica: status %d", status)
	}
	ref.apply(behindOp)
	if tc.coord.Metrics().RecordsShipped.Value() == 0 {
		t.Fatal("no records were ever shipped to the replica")
	}

	// Primary dies; the lagging replica is not promotable.
	tc.fault.Heal(replica)
	tc.kill(primary)
	tc.pollUntilDead(primary)

	if tc.coord.Metrics().Failovers.Value() != 0 {
		t.Fatal("coordinator promoted a replica that misses acknowledged writes")
	}
	status, hdr := tc.do(http.MethodPost, "/v1/step", stepRequest{}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded write rejection missing Retry-After")
	}
	if tc.coord.Metrics().RejectedWrites.Value() == 0 {
		t.Fatal("rejected write not counted")
	}

	pairs, hdr := tc.clusterCandidates()
	if hdr.Get(HeaderStale) != "true" {
		t.Fatal("degraded read not marked stale")
	}
	if hdr.Get(HeaderStaleLag) == "" {
		t.Fatal("stale read missing lag header")
	}
	if tc.coord.Metrics().StaleReads.Value() == 0 {
		t.Fatal("stale read not counted")
	}
	if tc.coord.Metrics().ReplicationLag.Value() == 0 {
		t.Fatal("lagging replica not reflected in the replication-lag gauge")
	}
	_ = pairs // stale contents are the replica's last consistent view

	// The old primary returns with its WAL intact: the group heals, writes
	// resume, and the answers line up with the reference again.
	tc.startWorker(primary)
	for i := 0; i < 3; i++ {
		tc.coord.PollOnce(ctx)
	}
	tc.coord.SyncAll(ctx)
	finalOp := clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"0": {ins(51, 3, 52, 1, 4)},
	}}
	if status := tc.applyOp(finalOp); status/100 != 2 {
		t.Fatalf("write after primary returned: status %d", status)
	}
	ref.apply(finalOp)
	got, hdr := tc.clusterCandidates()
	if hdr.Get(HeaderStale) != "" {
		t.Fatal("recovered cluster still stale")
	}
	if want := ref.candidates(); !wirePairsEqual(got, want) {
		t.Fatalf("post-recovery answers diverged:\n got %v\nwant %v", got, want)
	}
	// With every replica caught up, the next poll zeroes the lag gauge.
	tc.coord.PollOnce(ctx)
	if lag := tc.coord.Metrics().ReplicationLag.Value(); lag != 0 {
		t.Fatalf("replication lag %v after full recovery, want 0", lag)
	}
}

// TestClusterMetricsExposition checks the coordinator's /v1/metrics surface
// carries the cluster instruments after a failover exercised them.
func TestClusterMetricsExposition(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 2, 2)
	for _, op := range standardWorkload(false)[:6] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %s: status %d", op.kind, status)
		}
	}
	victim := tc.primaryOf(0)
	tc.kill(victim)
	tc.pollUntilDead(victim)

	req := httptest.NewRequest(http.MethodGet, "http://c/v1/metrics", nil)
	rec := httptest.NewRecorder()
	tc.coord.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, name := range []string{
		"nntstream_cluster_workers_alive",
		"nntstream_cluster_failovers_total",
		"nntstream_cluster_heartbeat_misses_total",
		"nntstream_cluster_records_shipped_total",
		"nntstream_cluster_replication_lag_records",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("metrics exposition missing %s:\n%s", name, body)
		}
	}
	m := tc.coord.Metrics()
	if m.Failovers.Value() == 0 || m.HeartbeatMisses.Value() == 0 || m.RecordsShipped.Value() == 0 {
		t.Fatalf("cluster counters not exercised: failovers=%d misses=%d shipped=%d",
			m.Failovers.Value(), m.HeartbeatMisses.Value(), m.RecordsShipped.Value())
	}
}

// TestCoordinatorRestartRecoversCounters restarts the coordinator (workers
// keep running) mid-workload: the replacement must rebuild its idempotency
// counters from worker state instead of starting at zero, where every
// subsequent write would look like an already-applied retry and be acked
// without being applied. The workload includes a removal so the test also
// pins recovery to the engines' ID allocators rather than live counts.
func TestCoordinatorRestartRecoversCounters(t *testing.T) {
	factory := filterCases[1].factory // DSC: supports removal and late registration
	tc := newTestCluster(t, factory, 1, 3, 2, 2)
	ref := newRefEngine(t, factory, 1)
	ops := standardWorkload(true)
	split := len(ops) - 1 // everything but the final step: 3 queries, 3 streams, 3 steps, 1 removal
	for i, op := range ops[:split] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %d (%s): status %d", i, op.kind, status)
		}
		ref.apply(op)
	}

	tc.coord.Stop()
	coord, err := NewCoordinator(tc.cfg, CoordinatorOptions{
		Transport:     &RetryTransport{Next: tc.fault, Policy: instantPolicy(), Cooldown: time.Nanosecond},
		MissThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(context.Background()); err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	defer coord.Stop()
	tc.coord = coord

	coord.mu.Lock()
	queries, streams, steps := coord.queries, coord.streams, coord.steps
	coord.mu.Unlock()
	if queries != 3 || streams != 3 || steps != 3 {
		t.Fatalf("recovered counters queries=%d streams=%d steps=%d, want 3/3/3",
			queries, streams, steps)
	}

	for i, op := range ops[split:] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %d (%s) after restart: status %d", split+i, op.kind, status)
		}
		ref.apply(op)
	}

	// Fresh registrations must get the same IDs the single-node engine hands
	// out — the observable proof the counters were not reset.
	var qid WireID
	if status, _ := tc.do(http.MethodPost, "/v1/queries", graphRequest{Graph: lineGraph(1, 3)}, &qid); status/100 != 2 {
		t.Fatalf("query after restart: status %d", status)
	}
	refQ, err := ref.eng.AddQuery(mustGraph(t, lineGraph(1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if qid.ID != int(refQ) {
		t.Fatalf("post-restart query id %d, reference %d", qid.ID, refQ)
	}
	var sid WireID
	if status, _ := tc.do(http.MethodPost, "/v1/streams", graphRequest{Graph: lineGraph(2, 1)}, &sid); status/100 != 2 {
		t.Fatalf("stream after restart: status %d", status)
	}
	refS, err := ref.eng.AddStream(mustGraph(t, lineGraph(2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if sid.ID != int(refS) {
		t.Fatalf("post-restart stream id %d, reference %d", sid.ID, refS)
	}

	got, _ := tc.clusterCandidates()
	if want := ref.candidates(); !wirePairsEqual(got, want) {
		t.Fatalf("post-restart answers diverged:\n got %v\nwant %v", got, want)
	}
}

func mustGraph(t *testing.T, wg server.WireGraph) *graph.Graph {
	t.Helper()
	g, err := wg.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pathFailTransport fails the next N calls to an exact path — the surgical
// tool for manufacturing a partial broadcast (one group applied, the next
// delivery lost).
type pathFailTransport struct {
	next Transport
	mu   sync.Mutex
	fail map[string]int
}

func (p *pathFailTransport) failNext(path string, n int) {
	p.mu.Lock()
	p.fail[path] = n
	p.mu.Unlock()
}

func (p *pathFailTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	p.mu.Lock()
	if p.fail[path] > 0 {
		p.fail[path]--
		p.mu.Unlock()
		return nil, fmt.Errorf("injected failure for %s", path)
	}
	p.mu.Unlock()
	return p.next.Do(ctx, addr, method, path, in, out)
}

// TestPartialBroadcastConflictSurfaces drives the half-applied-broadcast
// corner through the coordinator: after a broadcast that only group 0
// applied, a *different* write reusing the idempotency key must surface 409
// (group 0 applied another payload there), while a retry of the original
// payload completes the broadcast.
func TestPartialBroadcastConflictSurfaces(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 2, 2)
	tc.coord.Stop()
	pf := &pathFailTransport{next: tc.net, fail: make(map[string]int)}
	coord, err := NewCoordinator(tc.cfg, CoordinatorOptions{Transport: pf, MissThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	tc.coord = coord

	pf.failNext("/cluster/groups/1/queries", 1)
	a, b := lineGraph(1, 2), lineGraph(2, 3)
	if status, _ := tc.do(http.MethodPost, "/v1/queries", graphRequest{Graph: a}, nil); status/100 == 2 {
		t.Fatalf("partial broadcast reported success: %d", status)
	}

	if status, _ := tc.do(http.MethodPost, "/v1/queries", graphRequest{Graph: b}, nil); status != http.StatusConflict {
		t.Fatalf("different payload reusing the key: status %d, want 409", status)
	}

	var resp WireID
	if status, _ := tc.do(http.MethodPost, "/v1/queries", graphRequest{Graph: a}, &resp); status/100 != 2 || resp.ID != 0 {
		t.Fatalf("retry of the original payload: status %d id %d, want 2xx id 0", status, resp.ID)
	}
}

// TestWorkerFingerprintConflict pins the per-kind fingerprint checks at the
// worker surface: for queries, streams, and steps, a reused idempotency key
// carrying a different payload is 409, and a genuine retry is acked.
func TestWorkerFingerprintConflict(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 1, 1)
	ctx := context.Background()
	addr := tc.primaryOf(0)
	post := func(path string, in, out any) error {
		_, err := tc.net.Do(ctx, addr, http.MethodPost, path, in, out)
		return err
	}
	wantConflict := func(what string, err error) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusConflict {
			t.Fatalf("%s under a reused key: %v, want 409", what, err)
		}
	}

	qa, qb := lineGraph(1, 2), lineGraph(2, 3)
	var id WireID
	if err := post("/cluster/groups/0/queries", WireAddQuery{Graph: qa, Expect: 0, Fingerprint: fingerprintOf(qa)}, &id); err != nil {
		t.Fatalf("query apply: %v", err)
	}
	wantConflict("different query", post("/cluster/groups/0/queries",
		WireAddQuery{Graph: qb, Expect: 0, Fingerprint: fingerprintOf(qb)}, nil))
	if err := post("/cluster/groups/0/queries", WireAddQuery{Graph: qa, Expect: 0, Fingerprint: fingerprintOf(qa)}, &id); err != nil || id.ID != 0 {
		t.Fatalf("genuine query retry: id=%d err=%v", id.ID, err)
	}

	sa, sb := lineGraph(1, 2, 3), lineGraph(3, 2, 1)
	if err := post("/cluster/groups/0/streams", WireAddStream{Graph: sa, Expect: 0, Fingerprint: fingerprintOf(sa)}, &id); err != nil {
		t.Fatalf("stream apply: %v", err)
	}
	wantConflict("different stream", post("/cluster/groups/0/streams",
		WireAddStream{Graph: sb, Expect: 0, Fingerprint: fingerprintOf(sb)}, nil))
	if err := post("/cluster/groups/0/streams", WireAddStream{Graph: sa, Expect: 0, Fingerprint: fingerprintOf(sa)}, &id); err != nil || id.ID != 0 {
		t.Fatalf("genuine stream retry: id=%d err=%v", id.ID, err)
	}

	ca := map[string][]server.WireOp{"0": {ins(10, 1, 11, 2, 3)}}
	cb := map[string][]server.WireOp{"0": {ins(20, 2, 21, 3, 5)}}
	var pairs WirePairs
	if err := post("/cluster/groups/0/step", WireStep{Seq: 0, Changes: ca, Fingerprint: fingerprintOf(ca)}, &pairs); err != nil {
		t.Fatalf("step apply: %v", err)
	}
	wantConflict("different change set", post("/cluster/groups/0/step",
		WireStep{Seq: 0, Changes: cb, Fingerprint: fingerprintOf(cb)}, nil))
	if err := post("/cluster/groups/0/step", WireStep{Seq: 0, Changes: ca, Fingerprint: fingerprintOf(ca)}, &pairs); err != nil {
		t.Fatalf("genuine step retry: %v", err)
	}
}

// gatedTransport blocks status probes to one address until released —
// a worker that accepted the TCP connection and then went silent.
type gatedTransport struct {
	next    Transport
	entered chan struct{}
	release chan struct{}

	mu   sync.Mutex
	addr string
}

func (g *gatedTransport) gateOn(addr string) {
	g.mu.Lock()
	g.addr = addr
	g.mu.Unlock()
}

func (g *gatedTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	g.mu.Lock()
	gated := g.addr == addr && path == "/cluster/status"
	g.mu.Unlock()
	if gated {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.release
	}
	return g.next.Do(ctx, addr, method, path, in, out)
}

// TestPollOnceDoesNotBlockDataPlane wedges a heartbeat probe mid-flight and
// requires client reads to keep completing: failure detection must wait on
// slow workers outside the coordinator's mutex.
func TestPollOnceDoesNotBlockDataPlane(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 2, 2)
	for _, op := range standardWorkload(false)[:4] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("setup op %s: status %d", op.kind, status)
		}
	}

	tc.coord.Stop()
	gate := &gatedTransport{next: tc.net, entered: make(chan struct{}, 1), release: make(chan struct{})}
	coord, err := NewCoordinator(tc.cfg, CoordinatorOptions{Transport: gate, MissThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	tc.coord = coord

	gate.gateOn("w0")
	done := make(chan struct{})
	go func() {
		coord.PollOnce(context.Background())
		close(done)
	}()
	<-gate.entered // the w0 probe is in flight and hung

	read := make(chan int, 1)
	go func() {
		status, _ := tc.do(http.MethodGet, "/v1/candidates", nil, &WirePairs{})
		read <- status
	}()
	select {
	case status := <-read:
		if status != http.StatusOK {
			t.Fatalf("read during hung heartbeat: status %d", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("data plane blocked behind a hung heartbeat probe")
	}
	close(gate.release)
	<-done
}

// hangingTransport wedges replicate deliveries (once armed) until the
// caller's context expires — a replica that stopped reading mid-connection.
type hangingTransport struct {
	next Transport
	mu   sync.Mutex
	hang bool
}

func (h *hangingTransport) setHang(v bool) {
	h.mu.Lock()
	h.hang = v
	h.mu.Unlock()
}

func (h *hangingTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	h.mu.Lock()
	hang := h.hang
	h.mu.Unlock()
	if hang && strings.HasSuffix(path, "/replicate") {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return h.next.Do(ctx, addr, method, path, in, out)
}

// TestShipTimeoutBoundsCommit hangs a replica after it was synced into the
// in-band shipping set: the next commit must return within the ship timeout
// with the replica marked lagging, not wedge the primary's commit lock.
func TestShipTimeoutBoundsCommit(t *testing.T) {
	net := newMemNet()
	hang := &hangingTransport{next: net}
	metrics := NewMetrics(newDetachedRegistry())
	dir := t.TempDir()
	primary := NewWorker("w0", filepath.Join(dir, "w0"), WorkerOptions{
		Factory:     filterCases[0].factory,
		Transport:   hang,
		ShipTimeout: 50 * time.Millisecond,
		Metrics:     metrics,
	})
	defer primary.Crash()
	net.attach("w0", primary.Handler())
	replica := NewWorker("w1", filepath.Join(dir, "w1"), WorkerOptions{
		Factory:   filterCases[0].factory,
		Transport: net,
	})
	defer replica.Crash()
	net.attach("w1", replica.Handler())

	ctx := context.Background()
	if _, err := net.Do(ctx, "w1", http.MethodPost, "/cluster/groups/0/role", WireRole{Role: RoleReplica}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Do(ctx, "w0", http.MethodPost, "/cluster/groups/0/role",
		WireRole{Role: RolePrimary, Replicas: []string{"w1"}}, nil); err != nil {
		t.Fatal(err)
	}
	// The sync round probes the replica's watermark and admits it to in-band
	// shipping; only then does a commit touch the transport at all.
	if _, err := net.Do(ctx, "w0", http.MethodPost, "/cluster/groups/0/sync", nil, nil); err != nil {
		t.Fatal(err)
	}

	hang.setHang(true)
	q := lineGraph(1, 2)
	start := time.Now()
	if _, err := net.Do(ctx, "w0", http.MethodPost, "/cluster/groups/0/queries",
		WireAddQuery{Graph: q, Expect: 0, Fingerprint: fingerprintOf(q)}, nil); err != nil {
		t.Fatalf("commit with hung replica: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("commit took %v with a hung replica, want ~ship timeout", elapsed)
	}
	if metrics.ShipFailures.Value() == 0 {
		t.Fatal("hung delivery not recorded as a ship failure")
	}
}

// TestHeartbeatLoop covers the background detection path end to end with a
// real ticker: kill a primary, wait for the loop to promote, write again.
func TestHeartbeatLoop(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 2, 2)
	// Re-arm the coordinator with a fast loop (the harness default is manual).
	tc.coord.Stop()
	coord, err := NewCoordinator(tc.cfg, CoordinatorOptions{
		Transport:         &RetryTransport{Next: tc.fault, Policy: instantPolicy(), Cooldown: time.Nanosecond},
		MissThreshold:     2,
		HeartbeatInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	tc.coord = coord

	for _, op := range standardWorkload(false)[:4] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %s: status %d", op.kind, status)
		}
	}
	victim := tc.primaryOf(0)
	tc.kill(victim)
	deadline := time.Now().Add(10 * time.Second)
	for coord.Metrics().Failovers.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never promoted a replica")
		}
		time.Sleep(time.Millisecond)
	}
	if status := tc.applyOp(clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"0": {ins(60, 1, 61, 2, 3)},
	}}); status/100 != 2 {
		t.Fatalf("write after loop-driven failover: status %d", status)
	}
}
