package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/join"
	"nntstream/internal/server"
)

// filterCases are the paper's NPV filters the cluster must not perturb.
var filterCases = []struct {
	name      string
	factory   core.FilterFactory
	canRemove bool
}{
	{"NL", func() core.Filter { return join.NewNL(join.DefaultDepth) }, false},
	{"DSC", func() core.Filter { return join.NewDSC(join.DefaultDepth) }, true},
	{"Skyline", func() core.Filter { return join.NewSkyline(join.DefaultDepth) }, true},
}

func TestConfigValidate(t *testing.T) {
	cfg := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "b:1"}}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if cfg.Groups != 2 || cfg.ReplicationFactor != DefaultReplicationFactor {
		t.Fatalf("defaults not applied: groups=%d rf=%d", cfg.Groups, cfg.ReplicationFactor)
	}
	dup := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}, {ID: "a", Addr: "a:2"}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate worker id accepted")
	}
	over := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}}, ReplicationFactor: 5}
	if err := over.Validate(); err != nil || over.ReplicationFactor != 1 {
		t.Fatalf("RF not capped at worker count: rf=%d err=%v", over.ReplicationFactor, err)
	}
}

func TestStreamIDMapping(t *testing.T) {
	cfg := Config{Workers: []WorkerSpec{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "b:1"}, {ID: "c", Addr: "c:1"}}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for global := int64(0); global < 20; global++ {
		g := cfg.GroupOf(global)
		local := cfg.LocalOf(global)
		if back := cfg.GlobalOf(g, local); back != global {
			t.Fatalf("roundtrip: global %d → (g=%d, local=%d) → %d", global, g, local, back)
		}
	}
	// Sequential global IDs fill each group's local sequence without holes —
	// the property that makes cluster IDs line up with a single-node run.
	next := make(map[int]int64)
	for global := int64(0); global < 30; global++ {
		g := cfg.GroupOf(global)
		if cfg.LocalOf(global) != next[g] {
			t.Fatalf("global %d lands at local %d in group %d, want %d",
				global, cfg.LocalOf(global), g, next[g])
		}
		next[g]++
	}
}

// TestClusterMatchesSingleNode is the no-fault baseline: a 3-worker cluster
// answers exactly like one engine fed the same operations.
func TestClusterMatchesSingleNode(t *testing.T) {
	for _, fc := range filterCases {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", fc.name, shards), func(t *testing.T) {
				tc := newTestCluster(t, fc.factory, shards, 3, 2, 2)
				ref := newRefEngine(t, fc.factory, shards)
				for i, op := range standardWorkload(fc.canRemove) {
					if status := tc.applyOp(op); status < 200 || status > 299 {
						t.Fatalf("op %d (%s): status %d", i, op.kind, status)
					}
					ref.apply(op)
				}
				got, hdr := tc.clusterCandidates()
				if hdr.Get(HeaderStale) != "" {
					t.Fatal("healthy cluster served a stale read")
				}
				if want := ref.candidates(); !wirePairsEqual(got, want) {
					t.Fatalf("cluster diverged from single node:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

// TestKillPrimaryAtEveryBoundary is the tentpole harness: for every
// WAL-record boundary in the workload (each client write appends exactly one
// record per group), kill the worker currently leading group 0 right after
// that write commits, let the failure detector promote, finish the workload,
// and require the final answers bit-identical to the single-node reference.
// RF=2 means the promoted replica's WAL is the only surviving copy of the
// group history — any lost or reordered record shows up as a divergence.
func TestKillPrimaryAtEveryBoundary(t *testing.T) {
	for _, fc := range filterCases {
		for _, shards := range []int{1, 3} {
			ops := standardWorkload(fc.canRemove)
			for kill := 1; kill <= len(ops); kill++ {
				t.Run(fmt.Sprintf("%s/shards=%d/kill=%d", fc.name, shards, kill), func(t *testing.T) {
					tc := newTestCluster(t, fc.factory, shards, 3, 2, 2)
					ref := newRefEngine(t, fc.factory, shards)
					for i, op := range ops {
						if status := tc.applyOp(op); status < 200 || status > 299 {
							t.Fatalf("op %d (%s): status %d", i, op.kind, status)
						}
						ref.apply(op)
						if i+1 == kill {
							victim := tc.primaryOf(0)
							tc.kill(victim)
							tc.pollUntilDead(victim)
						}
					}
					if fails := tc.coord.Metrics().Failovers.Value(); fails == 0 {
						t.Fatal("no failover recorded after killing a primary")
					}
					got, _ := tc.clusterCandidates()
					if want := ref.candidates(); !wirePairsEqual(got, want) {
						t.Fatalf("post-failover answers diverged:\n got %v\nwant %v", got, want)
					}
				})
			}
		}
	}
}

// TestKilledPrimaryRejoins kills a primary mid-workload, finishes it, then
// restarts the dead worker from its surviving directory: the coordinator
// must re-bootstrap it (its WAL is stale history now) and resume replicating
// to it, ending with every worker converged.
func TestKilledPrimaryRejoins(t *testing.T) {
	factory := filterCases[0].factory
	tc := newTestCluster(t, factory, 1, 3, 3, 2)
	ref := newRefEngine(t, factory, 1)
	ops := standardWorkload(false)
	half := len(ops) / 2
	for i, op := range ops[:half] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %d: status %d", i, status)
		}
		ref.apply(op)
	}
	victim := tc.primaryOf(0)
	tc.kill(victim)
	tc.pollUntilDead(victim)
	for i, op := range ops[half:] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %d after failover: status %d", half+i, status)
		}
		ref.apply(op)
	}

	tc.startWorker(victim)
	tc.coord.PollOnce(context.Background()) // sees it alive again, rejoins + syncs
	tc.coord.SyncAll(context.Background())

	got, _ := tc.clusterCandidates()
	if want := ref.candidates(); !wirePairsEqual(got, want) {
		t.Fatalf("post-rejoin answers diverged:\n got %v\nwant %v", got, want)
	}
	if installs := tc.coord.Metrics().SnapshotInstalls.Value(); installs == 0 {
		t.Fatal("rejoin did not re-bootstrap the returned worker")
	}
	// Every replica of every group must sit at the same applied LSN as its
	// primary once the dust settles.
	assertReplicasConverged(t, tc)
}

// assertReplicasConverged checks that all live holders of each group report
// the same applied LSN.
func assertReplicasConverged(t *testing.T, tc *testCluster) {
	t.Helper()
	lsn := make(map[int]map[uint64]bool)
	for id, w := range tc.workers {
		var st WireStatus
		if _, err := tc.net.Do(context.Background(), id, http.MethodGet, "/cluster/status", nil, &st); err != nil {
			continue // dead worker
		}
		_ = w
		for _, gs := range st.Groups {
			if lsn[gs.Group] == nil {
				lsn[gs.Group] = make(map[uint64]bool)
			}
			lsn[gs.Group][gs.AppliedLSN] = true
		}
	}
	for g, set := range lsn {
		if len(set) != 1 {
			t.Fatalf("group %d holders disagree on applied LSN: %v", g, set)
		}
	}
}

// TestRandomizedPartitionHeal runs a seeded schedule of writes interleaved
// with partitioning and healing workers; after the final heal the cluster
// must answer exactly like the single-node reference and all replicas must
// converge. Writes that fail during a disruption are retried until the
// idempotent broadcast lands — the client-visible contract.
func TestRandomizedPartitionHeal(t *testing.T) {
	for _, fc := range filterCases {
		t.Run(fc.name, func(t *testing.T) {
			tc := newTestCluster(t, fc.factory, 1, 3, 3, 2)
			ref := newRefEngine(t, fc.factory, 1)
			rng := rand.New(rand.NewSource(42))
			ctx := context.Background()

			heal := func() {
				tc.fault.Heal()
				for i := 0; i < 4; i++ {
					tc.coord.PollOnce(ctx)
				}
				tc.coord.SyncAll(ctx)
			}
			mustApply := func(op clusterOp) {
				for attempt := 0; attempt < 10; attempt++ {
					if status := tc.applyOp(op); status/100 == 2 {
						ref.apply(op)
						return
					}
					// Writes bounce while a partition is being detected;
					// detection + promotion unblocks them.
					tc.coord.PollOnce(ctx)
					if attempt == 6 {
						heal()
					}
				}
				t.Fatalf("op %s never succeeded", op.kind)
			}

			for _, op := range standardWorkload(false)[:6] { // queries + streams
				mustApply(op)
			}
			streams := 3
			for round := 0; round < 30; round++ {
				switch r := rng.Intn(10); {
				case r < 2: // partition a random worker
					id := fmt.Sprintf("w%d", rng.Intn(3))
					tc.fault.Partition(id)
					for i := 0; i < 3; i++ {
						tc.coord.PollOnce(ctx)
					}
				case r < 4:
					heal()
				default: // a step touching a random stream
					sid := rng.Intn(streams)
					u := 100 + round
					mustApply(clusterOp{kind: "step", changes: map[string][]server.WireOp{
						fmt.Sprintf("%d", sid): {ins(u, u%3+1, u+1, (u+1)%3+1, 2)},
					}})
				}
			}
			heal()

			got, hdr := tc.clusterCandidates()
			if hdr.Get(HeaderStale) != "" {
				t.Fatal("healed cluster still serving stale reads")
			}
			if want := ref.candidates(); !wirePairsEqual(got, want) {
				t.Fatalf("post-heal answers diverged:\n got %v\nwant %v", got, want)
			}
			assertReplicasConverged(t, tc)
		})
	}
}

// TestDegradedMode drives a group into the no-safe-replica corner: the
// replica is partitioned (falls behind the acknowledged watermark), then the
// primary dies. The coordinator must refuse writes with 503 + Retry-After,
// serve reads stale with explicit headers, and recover cleanly when the old
// primary returns.
func TestDegradedMode(t *testing.T) {
	factory := filterCases[0].factory
	tc := newTestCluster(t, factory, 1, 2, 1, 2) // one group on two workers
	ref := newRefEngine(t, factory, 1)
	ctx := context.Background()

	setup := standardWorkload(false)[:4] // 3 queries + 1 stream
	for _, op := range setup {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("setup op %s: status %d", op.kind, status)
		}
		ref.apply(op)
	}

	primary := tc.primaryOf(0)
	replica := "w0"
	if primary == "w0" {
		replica = "w1"
	}

	// Cut the replica off and commit more writes: the acknowledged watermark
	// moves past anything the replica holds.
	tc.fault.Partition(replica)
	behindOp := clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"0": {ins(50, 2, 51, 3, 5)},
	}}
	if status := tc.applyOp(behindOp); status/100 != 2 {
		t.Fatalf("write with partitioned replica: status %d", status)
	}
	ref.apply(behindOp)
	if tc.coord.Metrics().RecordsShipped.Value() == 0 {
		t.Fatal("no records were ever shipped to the replica")
	}

	// Primary dies; the lagging replica is not promotable.
	tc.fault.Heal(replica)
	tc.kill(primary)
	tc.pollUntilDead(primary)

	if tc.coord.Metrics().Failovers.Value() != 0 {
		t.Fatal("coordinator promoted a replica that misses acknowledged writes")
	}
	status, hdr := tc.do(http.MethodPost, "/v1/step", stepRequest{}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded write rejection missing Retry-After")
	}
	if tc.coord.Metrics().RejectedWrites.Value() == 0 {
		t.Fatal("rejected write not counted")
	}

	pairs, hdr := tc.clusterCandidates()
	if hdr.Get(HeaderStale) != "true" {
		t.Fatal("degraded read not marked stale")
	}
	if hdr.Get(HeaderStaleLag) == "" {
		t.Fatal("stale read missing lag header")
	}
	if tc.coord.Metrics().StaleReads.Value() == 0 {
		t.Fatal("stale read not counted")
	}
	if tc.coord.Metrics().ReplicationLag.Value() == 0 {
		t.Fatal("lagging replica not reflected in the replication-lag gauge")
	}
	_ = pairs // stale contents are the replica's last consistent view

	// The old primary returns with its WAL intact: the group heals, writes
	// resume, and the answers line up with the reference again.
	tc.startWorker(primary)
	for i := 0; i < 3; i++ {
		tc.coord.PollOnce(ctx)
	}
	tc.coord.SyncAll(ctx)
	finalOp := clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"0": {ins(51, 3, 52, 1, 4)},
	}}
	if status := tc.applyOp(finalOp); status/100 != 2 {
		t.Fatalf("write after primary returned: status %d", status)
	}
	ref.apply(finalOp)
	got, hdr := tc.clusterCandidates()
	if hdr.Get(HeaderStale) != "" {
		t.Fatal("recovered cluster still stale")
	}
	if want := ref.candidates(); !wirePairsEqual(got, want) {
		t.Fatalf("post-recovery answers diverged:\n got %v\nwant %v", got, want)
	}
	// With every replica caught up, the next poll zeroes the lag gauge.
	tc.coord.PollOnce(ctx)
	if lag := tc.coord.Metrics().ReplicationLag.Value(); lag != 0 {
		t.Fatalf("replication lag %v after full recovery, want 0", lag)
	}
}

// TestClusterMetricsExposition checks the coordinator's /v1/metrics surface
// carries the cluster instruments after a failover exercised them.
func TestClusterMetricsExposition(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 2, 2)
	for _, op := range standardWorkload(false)[:6] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %s: status %d", op.kind, status)
		}
	}
	victim := tc.primaryOf(0)
	tc.kill(victim)
	tc.pollUntilDead(victim)

	req := httptest.NewRequest(http.MethodGet, "http://c/v1/metrics", nil)
	rec := httptest.NewRecorder()
	tc.coord.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, name := range []string{
		"nntstream_cluster_workers_alive",
		"nntstream_cluster_failovers_total",
		"nntstream_cluster_heartbeat_misses_total",
		"nntstream_cluster_records_shipped_total",
		"nntstream_cluster_replication_lag_records",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("metrics exposition missing %s:\n%s", name, body)
		}
	}
	m := tc.coord.Metrics()
	if m.Failovers.Value() == 0 || m.HeartbeatMisses.Value() == 0 || m.RecordsShipped.Value() == 0 {
		t.Fatalf("cluster counters not exercised: failovers=%d misses=%d shipped=%d",
			m.Failovers.Value(), m.HeartbeatMisses.Value(), m.RecordsShipped.Value())
	}
}

// TestHeartbeatLoop covers the background detection path end to end with a
// real ticker: kill a primary, wait for the loop to promote, write again.
func TestHeartbeatLoop(t *testing.T) {
	tc := newTestCluster(t, filterCases[0].factory, 1, 3, 2, 2)
	// Re-arm the coordinator with a fast loop (the harness default is manual).
	tc.coord.Stop()
	coord, err := NewCoordinator(tc.cfg, CoordinatorOptions{
		Transport:         &RetryTransport{Next: tc.fault, Policy: instantPolicy(), Cooldown: time.Nanosecond},
		MissThreshold:     2,
		HeartbeatInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	tc.coord = coord

	for _, op := range standardWorkload(false)[:4] {
		if status := tc.applyOp(op); status/100 != 2 {
			t.Fatalf("op %s: status %d", op.kind, status)
		}
	}
	victim := tc.primaryOf(0)
	tc.kill(victim)
	deadline := time.Now().Add(10 * time.Second)
	for coord.Metrics().Failovers.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never promoted a replica")
		}
		time.Sleep(time.Millisecond)
	}
	if status := tc.applyOp(clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"0": {ins(60, 1, 61, 2, 3)},
	}}); status/100 != 2 {
		t.Fatalf("write after loop-driven failover: status %d", status)
	}
}
