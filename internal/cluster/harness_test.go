package cluster

// The in-process cluster harness: workers and the coordinator talk over a
// memory "network" (memNet) that dispatches real *http.Request traffic to
// real handlers through httptest recorders — the full HTTP surface is
// exercised (routing, status codes, headers, JSON bodies) with none of the
// socket nondeterminism. A FaultTransport in front of the net gives tests
// partitions and drops; killing a worker is Crash() + detach, exactly the
// visibility a dead process has.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/obs"
	"nntstream/internal/retry"
	"nntstream/internal/server"
	"nntstream/internal/wal"
)

// errUnreachable is what memNet returns for detached (dead) addresses — the
// moral equivalent of connection refused.
var errUnreachable = errors.New("memnet: connection refused")

// memNet routes transport calls to in-process handlers by address.
type memNet struct {
	mu       chan struct{} // 1-buffered semaphore; avoids copying sync.Mutex rules into a test helper
	handlers map[string]http.Handler
}

func newMemNet() *memNet {
	n := &memNet{mu: make(chan struct{}, 1), handlers: make(map[string]http.Handler)}
	return n
}

func (n *memNet) attach(addr string, h http.Handler) {
	n.mu <- struct{}{}
	n.handlers[addr] = h
	<-n.mu
}

func (n *memNet) detach(addr string) {
	n.mu <- struct{}{}
	delete(n.handlers, addr)
	<-n.mu
}

func (n *memNet) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	n.mu <- struct{}{}
	h := n.handlers[addr]
	<-n.mu
	if h == nil {
		return nil, fmt.Errorf("%w: %s", errUnreachable, addr)
	}
	var body io.Reader = http.NoBody
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, "http://"+addr+path, body).WithContext(ctx)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	defer res.Body.Close()
	if res.StatusCode < 200 || res.StatusCode > 299 {
		var remote struct {
			Error string `json:"error"`
		}
		msg := res.Status
		if json.NewDecoder(res.Body).Decode(&remote) == nil && remote.Error != "" {
			msg = remote.Error
		}
		return res.Header, &StatusError{Code: res.StatusCode, Msg: msg}
	}
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			return res.Header, err
		}
	}
	return res.Header, nil
}

// instantPolicy retries without real sleeping.
func instantPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: 3,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

// testCluster wires N workers and a coordinator over one faulty memNet. One
// registry backs every node's metrics, so tests see cluster-wide totals
// (each real process would scrape its own).
type testCluster struct {
	t       *testing.T
	dir     string
	cfg     Config
	factory core.FilterFactory
	shards  int
	net     *memNet
	fault   *FaultTransport
	metrics *Metrics
	workers map[string]*Worker
	coord   *Coordinator
}

func newTestCluster(t *testing.T, factory core.FilterFactory, shards, workers, groups, rf int) *testCluster {
	t.Helper()
	registry := obs.NewRegistry()
	tc := &testCluster{
		t:       t,
		dir:     t.TempDir(),
		factory: factory,
		shards:  shards,
		net:     newMemNet(),
		metrics: NewMetrics(registry),
		workers: make(map[string]*Worker),
	}
	tc.fault = NewFaultTransport(tc.net, 1)
	var specs []WorkerSpec
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("w%d", i)
		specs = append(specs, WorkerSpec{ID: id, Addr: id})
		tc.startWorker(id)
	}
	tc.cfg = Config{Workers: specs, Groups: groups, ReplicationFactor: rf}
	coord, err := NewCoordinator(tc.cfg, CoordinatorOptions{
		Transport: &RetryTransport{
			Next:     tc.fault,
			Policy:   instantPolicy(),
			Cooldown: time.Nanosecond, // circuits re-probe immediately so revivals are seen
			Metrics:  tc.metrics,
		},
		MissThreshold: 2,
		Registry:      registry,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord.Start(context.Background()); err != nil {
		t.Fatalf("coordinator start: %v", err)
	}
	tc.coord = coord
	t.Cleanup(func() {
		coord.Stop()
		for _, w := range tc.workers {
			w.Crash()
		}
	})
	return tc
}

// startWorker opens (or re-opens, after kill) the worker and plugs it into
// the net. Engines recover from the worker's on-disk state.
func (tc *testCluster) startWorker(id string) *Worker {
	tc.t.Helper()
	w := NewWorker(id, filepath.Join(tc.dir, id), WorkerOptions{
		Factory:   tc.factory,
		Shards:    tc.shards,
		Fsync:     wal.SyncNever,
		Transport: tc.fault,
		Metrics:   tc.metrics,
	})
	tc.workers[id] = w
	tc.net.attach(id, w.Handler())
	return w
}

// kill hard-crashes a worker: engines abandoned, address unreachable.
func (tc *testCluster) kill(id string) {
	tc.t.Helper()
	if err := tc.workers[id].Crash(); err != nil {
		tc.t.Fatalf("crashing %s: %v", id, err)
	}
	tc.net.detach(id)
}

// pollUntilDead runs detection rounds until the coordinator declares the
// worker dead and has had a promotion pass.
func (tc *testCluster) pollUntilDead(id string) {
	tc.t.Helper()
	for i := 0; i < 5; i++ {
		tc.coord.PollOnce(context.Background())
		tc.coord.mu.Lock()
		dead := !tc.coord.workers[id].alive
		tc.coord.mu.Unlock()
		if dead {
			return
		}
	}
	tc.t.Fatalf("worker %s never declared dead", id)
}

// primaryOf reads the coordinator's current leader for a group.
func (tc *testCluster) primaryOf(g int) string {
	tc.coord.mu.Lock()
	defer tc.coord.mu.Unlock()
	return tc.coord.groups[g].primary
}

// do sends one request through the coordinator's public handler.
func (tc *testCluster) do(method, path string, in, out any) (int, http.Header) {
	tc.t.Helper()
	var body io.Reader = http.NoBody
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			tc.t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, "http://coordinator"+path, body)
	rec := httptest.NewRecorder()
	tc.coord.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	defer res.Body.Close()
	if out != nil && res.StatusCode >= 200 && res.StatusCode <= 299 {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			tc.t.Fatalf("decode %s %s: %v", method, path, err)
		}
	}
	return res.StatusCode, res.Header
}

// --- workload scripting ---------------------------------------------------

type clusterOp struct {
	kind    string // "query", "stream", "step", "rmquery"
	graph   server.WireGraph
	changes map[string][]server.WireOp
	query   int
}

// lineGraph builds a path v0-v1-...-vn with the given vertex labels; edge
// i-(i+1) carries label (labels[i]+labels[i+1]).
func lineGraph(labels ...int) server.WireGraph {
	var g server.WireGraph
	for i, l := range labels {
		g.Vertices = append(g.Vertices, server.WireVertex{ID: int32(i), Label: uint16(l)})
	}
	for i := 0; i+1 < len(labels); i++ {
		g.Edges = append(g.Edges, server.WireEdge{
			U: int32(i), V: int32(i + 1), Label: uint16(labels[i] + labels[i+1]),
		})
	}
	return g
}

// ins/del build step operations.
func ins(u, ul, v, vl, el int) server.WireOp {
	return server.WireOp{Op: "ins", U: int32(u), V: int32(v),
		ULabel: uint16(ul), VLabel: uint16(vl), ELabel: uint16(el)}
}

func del(u, v int) server.WireOp {
	return server.WireOp{Op: "del", U: int32(u), V: int32(v)}
}

// standardWorkload is the shared script: queries first (registration seals at
// the first stream), then streams, then steps that grow and shrink them.
// withRemove appends a query removal (dynamic filters only).
func standardWorkload(withRemove bool) []clusterOp {
	ops := []clusterOp{
		{kind: "query", graph: lineGraph(1, 2)},
		{kind: "query", graph: lineGraph(2, 3, 1)},
		{kind: "query", graph: lineGraph(3, 1)},
		{kind: "stream", graph: lineGraph(1, 2, 3)},
		{kind: "stream", graph: lineGraph(2, 3)},
		{kind: "stream", graph: lineGraph(3, 1, 2)},
		{kind: "step", changes: map[string][]server.WireOp{
			"0": {ins(10, 1, 11, 2, 3)},
			"1": {ins(20, 2, 21, 3, 5)},
		}},
		{kind: "step", changes: map[string][]server.WireOp{
			"2": {ins(30, 3, 31, 1, 4), ins(31, 1, 32, 2, 3)},
		}},
		{kind: "step", changes: map[string][]server.WireOp{
			"0": {del(0, 1)},
			"1": {ins(21, 3, 22, 1, 4)},
		}},
	}
	if withRemove {
		ops = append(ops, clusterOp{kind: "rmquery", query: 1})
	}
	ops = append(ops, clusterOp{kind: "step", changes: map[string][]server.WireOp{
		"2": {del(30, 31)},
		"0": {ins(11, 2, 12, 3, 5)},
	}})
	return ops
}

// applyOp drives one op through the coordinator; returns the HTTP status.
func (tc *testCluster) applyOp(op clusterOp) int {
	tc.t.Helper()
	switch op.kind {
	case "query":
		status, _ := tc.do(http.MethodPost, "/v1/queries", graphRequest{Graph: op.graph}, nil)
		return status
	case "stream":
		status, _ := tc.do(http.MethodPost, "/v1/streams", graphRequest{Graph: op.graph}, nil)
		return status
	case "step":
		status, _ := tc.do(http.MethodPost, "/v1/step", stepRequest{Changes: op.changes}, nil)
		return status
	case "rmquery":
		status, _ := tc.do(http.MethodDelete, "/v1/queries/"+strconv.Itoa(op.query), nil, nil)
		return status
	default:
		tc.t.Fatalf("unknown op kind %q", op.kind)
		return 0
	}
}

// refEngine is the single-node oracle the cluster must match bit for bit.
type refEngine struct {
	t   *testing.T
	eng *core.ShardedMonitor
}

func newRefEngine(t *testing.T, factory core.FilterFactory, shards int) *refEngine {
	return &refEngine{t: t, eng: core.NewShardedMonitorWith(factory, core.ShardedOptions{Shards: shards})}
}

func (r *refEngine) apply(op clusterOp) {
	r.t.Helper()
	switch op.kind {
	case "query":
		g, err := op.graph.ToGraph()
		if err == nil {
			_, err = r.eng.AddQuery(g)
		}
		if err != nil {
			r.t.Fatalf("reference AddQuery: %v", err)
		}
	case "stream":
		g, err := op.graph.ToGraph()
		if err == nil {
			_, err = r.eng.AddStream(g)
		}
		if err != nil {
			r.t.Fatalf("reference AddStream: %v", err)
		}
	case "step":
		changes := make(map[core.StreamID]graph.ChangeSet, len(op.changes))
		for key, ops := range op.changes {
			sid, _ := strconv.Atoi(key)
			var cs graph.ChangeSet
			for _, wop := range ops {
				cop, err := wop.ToChangeOp()
				if err != nil {
					r.t.Fatalf("reference op: %v", err)
				}
				cs = append(cs, cop)
			}
			changes[core.StreamID(sid)] = cs
		}
		if _, err := r.eng.StepAll(changes); err != nil {
			r.t.Fatalf("reference StepAll: %v", err)
		}
	case "rmquery":
		if err := r.eng.RemoveQuery(core.QueryID(op.query)); err != nil {
			r.t.Fatalf("reference RemoveQuery: %v", err)
		}
	}
}

// candidates reads the reference candidate set in wire form, sorted.
func (r *refEngine) candidates() []server.WirePair {
	pairs := r.eng.Candidates()
	out := make([]server.WirePair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, server.WirePair{Stream: int(p.Stream), Query: int(p.Query)})
	}
	sortWirePairs(out)
	return out
}

// clusterCandidates reads the cluster's merged candidate set.
func (tc *testCluster) clusterCandidates() ([]server.WirePair, http.Header) {
	tc.t.Helper()
	var resp WirePairs
	status, hdr := tc.do(http.MethodGet, "/v1/candidates", nil, &resp)
	if status != http.StatusOK {
		tc.t.Fatalf("candidates: status %d", status)
	}
	return resp.Pairs, hdr
}

func wirePairsEqual(a, b []server.WirePair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
