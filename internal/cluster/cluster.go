// Package cluster distributes the continuous-monitoring engine across
// processes: a coordinator fronts the single-node HTTP API (/v1/...) and fans
// work out to workers, each of which runs replicated durable engines.
//
// The unit of replication is the group: the workload is split into G groups,
// each a complete DurableEngine replicated on RF workers (one primary, RF-1
// replicas) placed by consistent hashing over the worker set. Query patterns
// are broadcast to every group (so per-group query IDs align with the
// single-node numbering); streams are distributed round-robin, giving global
// stream IDs identical to a single-node engine fed in the same order
// (global = local·G + group); StepAll ticks every group each timestamp.
//
// Replication is WAL shipping: the primary's engine fires OnCommit for every
// committed record, and the worker forwards it synchronously to each replica,
// which persists it at the same LSN and folds it in (core.ApplyRecord). A
// replica that missed records reports a gap and is caught up from the
// primary's log (core.RecordsSince), or — when a checkpoint compacted the gap
// away — re-bootstrapped from a snapshot (core.SnapshotBytes /
// core.InstallSnapshot).
//
// The coordinator heartbeats workers; a primary missing enough beats in a row
// is declared dead and the most caught-up replica (applied LSN at or beyond
// every write the coordinator acknowledged) is promoted, making failover
// invisible to clients: the promoted engine's WAL holds the exact committed
// history. When no replica is caught up the group degrades instead of
// diverging — reads are served stale (marked with X-NNTStream-Stale) from the
// best surviving replica, writes fail fast with 503 and Retry-After.
package cluster

import (
	"fmt"
	"sort"
)

// MaxGroups caps Config.Groups — a sanity bound, far above any deployment
// this engine targets, that keeps global stream IDs comfortably in range.
const MaxGroups = 1024

// DefaultReplicationFactor keeps one replica per group.
const DefaultReplicationFactor = 2

// WorkerSpec names one worker process and where to reach it.
type WorkerSpec struct {
	// ID is the stable worker identity (ring placement hashes it, so it must
	// not change across restarts).
	ID string `json:"id"`
	// Addr is the host:port of the worker's HTTP listener.
	Addr string `json:"addr"`
}

// Config is the shared cluster topology: both the coordinator and the
// kill-point harness derive placement from it, so they always agree.
type Config struct {
	// Workers is the full worker set.
	Workers []WorkerSpec `json:"workers"`
	// Groups is the number of replication groups (0 defaults to the worker
	// count).
	Groups int `json:"groups"`
	// ReplicationFactor is how many workers hold each group, primary
	// included (0 defaults to DefaultReplicationFactor; capped at the worker
	// count).
	ReplicationFactor int `json:"replication_factor"`
}

// Validate normalizes defaults and rejects impossible topologies.
func (c *Config) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("cluster: no workers configured")
	}
	seen := make(map[string]bool, len(c.Workers))
	for _, w := range c.Workers {
		if w.ID == "" || w.Addr == "" {
			return fmt.Errorf("cluster: worker needs both id and addr (got id=%q addr=%q)", w.ID, w.Addr)
		}
		if seen[w.ID] {
			return fmt.Errorf("cluster: duplicate worker id %q", w.ID)
		}
		seen[w.ID] = true
	}
	if c.Groups == 0 {
		c.Groups = len(c.Workers)
	}
	if c.Groups < 1 || c.Groups > MaxGroups {
		return fmt.Errorf("cluster: groups must be in [1, %d], got %d", MaxGroups, c.Groups)
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = DefaultReplicationFactor
	}
	if c.ReplicationFactor < 1 {
		return fmt.Errorf("cluster: replication factor must be >= 1, got %d", c.ReplicationFactor)
	}
	if c.ReplicationFactor > len(c.Workers) {
		c.ReplicationFactor = len(c.Workers)
	}
	return nil
}

// Addr resolves a worker ID to its address ("" when unknown).
func (c *Config) Addr(id string) string {
	for _, w := range c.Workers {
		if w.ID == id {
			return w.Addr
		}
	}
	return ""
}

// Placement returns the RF worker IDs holding group g — the first is the
// initial primary — computed from the consistent-hash ring over worker IDs.
func (c *Config) Placement(g int) []string {
	ids := make([]string, 0, len(c.Workers))
	for _, w := range c.Workers {
		ids = append(ids, w.ID)
	}
	sort.Strings(ids)
	return newRing(ids, defaultVnodes).place(fmt.Sprintf("group-%d", g), c.ReplicationFactor)
}

// GroupOf maps a global stream ID to its replication group.
func (c *Config) GroupOf(global int64) int { return int(global % int64(c.Groups)) }

// LocalOf maps a global stream ID to the group-local stream ID.
func (c *Config) LocalOf(global int64) int64 { return global / int64(c.Groups) }

// GlobalOf maps a (group, local stream ID) pair back to the global ID.
func (c *Config) GlobalOf(group int, local int64) int64 {
	return local*int64(c.Groups) + int64(group)
}
