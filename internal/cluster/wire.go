package cluster

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"nntstream/internal/server"
	"nntstream/internal/wal"
)

// fingerprintOf hashes a broadcast payload into its idempotency fingerprint:
// SHA-256 over the canonical JSON encoding (encoding/json sorts map keys, so
// equal payloads always hash equal). Empty string means "no fingerprint" and
// disables verification.
func fingerprintOf(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HeaderLSN is the response header every worker data-plane and replication
// response carries: the group engine's applied LSN after the operation. The
// coordinator folds it into the group's acknowledged watermark, which is what
// makes promotion safe (only replicas at or beyond it are candidates).
const HeaderLSN = "X-NNTStream-LSN"

// HeaderStale marks a read served from a lagging replica of a degraded group.
const HeaderStale = "X-NNTStream-Stale"

// HeaderStaleLag carries the number of acknowledged records the stale reader
// is known to be missing (summed across degraded groups).
const HeaderStaleLag = "X-NNTStream-Stale-Lag"

// Worker roles.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// WireGroupStatus is one group's state in a worker status report. NextQuery
// and NextStream are the engine's ID allocators (monotonic, unlike the live
// Queries/Streams counts, which shrink on removal) — the values a restarted
// coordinator recovers its idempotency counters from.
type WireGroupStatus struct {
	Group      int    `json:"group"`
	Role       string `json:"role"`
	AppliedLSN uint64 `json:"applied_lsn"`
	Queries    int    `json:"queries"`
	Streams    int    `json:"streams"`
	NextQuery  int    `json:"next_query"`
	NextStream int    `json:"next_stream"`
	Timestamps int    `json:"timestamps"`
}

// WireStatus is a worker heartbeat response.
type WireStatus struct {
	ID     string            `json:"id"`
	Groups []WireGroupStatus `json:"groups"`
}

// WireRole assigns a group role to a worker. Replicas (primary role only)
// are the addresses the primary ships committed records to.
type WireRole struct {
	Role     string   `json:"role"`
	Replicas []string `json:"replicas,omitempty"`
}

// WireReplicate ships WAL records (EncodeRecord payloads, base64) from a
// primary to a replica. An empty record list is a watermark probe: the
// response reports the replica's applied LSN without applying anything.
type WireReplicate struct {
	Records []string `json:"records"`
}

// WireReplicateResponse reports the replica's applied LSN after the batch.
// Gap means the first unapplied record was beyond applied+1: the replica
// needs a catch-up (records or snapshot) before it can accept more.
type WireReplicateResponse struct {
	Applied uint64 `json:"applied"`
	Gap     bool   `json:"gap,omitempty"`
}

// WireRecords is a catch-up feed: the records beyond the requested LSN, or
// Compacted when the primary's log no longer holds them (snapshot required).
type WireRecords struct {
	Records   []string `json:"records,omitempty"`
	Compacted bool     `json:"compacted,omitempty"`
}

// WireSnapshot transfers a serialized engine snapshot (JSON base64-encodes
// the byte slice).
type WireSnapshot struct {
	Data []byte `json:"data"`
}

// WireAddQuery broadcasts a query registration to a group. Expect is the
// query ID the coordinator is assigning; a group whose engine has already
// moved past it treats the request as a retry of an applied broadcast and
// answers idempotently — but only when Fingerprint (a hash of the payload)
// matches what it applied at that ID. A matching key with a different
// fingerprint is a diverging write and is rejected with 409 rather than
// silently dropped.
type WireAddQuery struct {
	Graph       server.WireGraph `json:"graph"`
	Expect      int              `json:"expect"`
	Fingerprint string           `json:"fingerprint,omitempty"`
}

// WireAddStream registers a stream on a group; Expect is the group-local
// stream ID the coordinator's round-robin placement implies. Fingerprint
// binds the idempotency key to the payload exactly as in WireAddQuery.
type WireAddStream struct {
	Graph       server.WireGraph `json:"graph"`
	Expect      int              `json:"expect"`
	Fingerprint string           `json:"fingerprint,omitempty"`
}

// WireStep advances one global timestamp on a group. Seq is the global step
// count before this step — the idempotency key — and Changes is keyed by
// group-local stream ID. Fingerprint binds Seq to this group's change
// payload exactly as in WireAddQuery.
type WireStep struct {
	Seq         int                        `json:"seq"`
	Changes     map[string][]server.WireOp `json:"changes"`
	Fingerprint string                     `json:"fingerprint,omitempty"`
}

// WirePairs carries group-local candidate pairs.
type WirePairs struct {
	Pairs []server.WirePair `json:"pairs"`
}

// WireID is a registration response.
type WireID struct {
	ID int `json:"id"`
}

// WireRemoved reports whether a query removal found the query; a retried
// broadcast sees removed=false on groups that already applied it.
type WireRemoved struct {
	Removed bool `json:"removed"`
}

// WireStats is one group's stats contribution.
type WireStats struct {
	Timestamps     int     `json:"timestamps"`
	AvgFilterMs    float64 `json:"avg_filter_ms"`
	CandidateRatio float64 `json:"candidate_ratio"`
}

// encodeRecords converts WAL records to their base64 wire form.
func encodeRecords(recs []wal.Record) ([]string, error) {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		data, err := wal.EncodeRecord(r)
		if err != nil {
			return nil, fmt.Errorf("cluster: encoding record %d: %w", r.LSN, err)
		}
		out = append(out, base64.StdEncoding.EncodeToString(data))
	}
	return out, nil
}

// decodeRecords parses the base64 wire form back into WAL records.
func decodeRecords(enc []string) ([]wal.Record, error) {
	out := make([]wal.Record, 0, len(enc))
	for i, s := range enc {
		data, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("cluster: record %d: bad base64: %w", i, err)
		}
		r, err := wal.DecodeRecord(data)
		if err != nil {
			return nil, fmt.Errorf("cluster: record %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
