package cluster

import "nntstream/internal/obs"

// Metrics are the cluster-layer instruments, registered under the
// nntstream_cluster_* namespace. The coordinator and worker each own one
// (the counters they never touch simply stay zero).
type Metrics struct {
	// WorkersAlive is the coordinator's current count of heartbeating workers.
	WorkersAlive *obs.Gauge
	// DegradedGroups counts groups currently serving stale reads only.
	DegradedGroups *obs.Gauge
	// ReplicationLag is the fleet-wide backlog in WAL records: for every live
	// replica, its group's acknowledged LSN minus the applied LSN it last
	// reported, summed. Zero when every replica is current.
	ReplicationLag *obs.Gauge
	// HeartbeatMisses counts failed worker status polls.
	HeartbeatMisses *obs.Counter
	// Failovers counts replica promotions.
	Failovers *obs.Counter
	// StaleReads counts read responses served from a lagging replica.
	StaleReads *obs.Counter
	// RejectedWrites counts writes refused because a group was unwritable.
	RejectedWrites *obs.Counter
	// RecordsShipped counts WAL records delivered to replicas.
	RecordsShipped *obs.Counter
	// ShipFailures counts replica deliveries that failed (the replica is then
	// marked lagging until a sync round catches it up).
	ShipFailures *obs.Counter
	// CatchupRecords counts records replayed to lagging replicas by sync
	// rounds (distinct from the in-band RecordsShipped deliveries).
	CatchupRecords *obs.Counter
	// SnapshotInstalls counts replica bootstraps via snapshot transfer.
	SnapshotInstalls *obs.Counter
	// RPCRetries counts re-attempted transport calls.
	RPCRetries *obs.Counter
	// BreakerOpens counts circuit-breaker trips (a target refused fast).
	BreakerOpens *obs.Counter
}

// newDetachedRegistry backs a Metrics nobody scrapes (workers and tests that
// don't wire one up still get live counters).
func newDetachedRegistry() *obs.Registry {
	return obs.NewRegistry()
}

// NewMetrics registers the cluster instruments on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		WorkersAlive: r.Gauge("nntstream_cluster_workers_alive",
			"Workers currently passing heartbeats."),
		DegradedGroups: r.Gauge("nntstream_cluster_degraded_groups",
			"Groups with no writable primary (stale reads only)."),
		ReplicationLag: r.Gauge("nntstream_cluster_replication_lag_records",
			"Acknowledged-minus-applied WAL records summed over live replicas."),
		HeartbeatMisses: r.Counter("nntstream_cluster_heartbeat_misses_total",
			"Failed worker status polls."),
		Failovers: r.Counter("nntstream_cluster_failovers_total",
			"Replica promotions after primary failure."),
		StaleReads: r.Counter("nntstream_cluster_stale_reads_total",
			"Reads served from a lagging replica of a degraded group."),
		RejectedWrites: r.Counter("nntstream_cluster_rejected_writes_total",
			"Writes rejected with 503 because a group was unwritable."),
		RecordsShipped: r.Counter("nntstream_cluster_records_shipped_total",
			"WAL records delivered to replicas in-band."),
		ShipFailures: r.Counter("nntstream_cluster_ship_failures_total",
			"Failed in-band replica deliveries."),
		CatchupRecords: r.Counter("nntstream_cluster_catchup_records_total",
			"WAL records replayed to lagging replicas by sync rounds."),
		SnapshotInstalls: r.Counter("nntstream_cluster_snapshot_installs_total",
			"Replica bootstraps via snapshot transfer."),
		RPCRetries: r.Counter("nntstream_cluster_rpc_retries_total",
			"Re-attempted cluster RPCs."),
		BreakerOpens: r.Counter("nntstream_cluster_breaker_opens_total",
			"Circuit-breaker trips on an unreachable target."),
	}
}
