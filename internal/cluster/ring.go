package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is how many ring points each worker contributes. More vnodes
// smooth the load split; 64 keeps the spread within a few percent for small
// clusters while the ring stays tiny.
const defaultVnodes = 64

// ring is a consistent-hash ring over worker IDs. Placement walks clockwise
// from the key's hash collecting distinct workers, so adding or removing one
// worker only moves the groups adjacent to its points — the usual reason to
// hash rather than take key mod N.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the ring from worker IDs (callers pass them sorted so the
// ring is identical regardless of configuration order).
func newRing(workers []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*vnodes)}
	for _, w := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", w, v)),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.worker < b.worker // deterministic on (vanishingly rare) collisions
	})
	return r
}

// place returns the first n distinct workers clockwise from key's hash.
func (r *ring) place(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hash64(key)
	})
	var out []string
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		out = append(out, p.worker)
	}
	return out
}
