package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"nntstream/internal/obs"
	"nntstream/internal/server"
)

// CoordinatorOptions tunes failure detection and client-facing behavior.
type CoordinatorOptions struct {
	// Transport carries coordinator→worker RPCs (&HTTPTransport{} when nil).
	// Wrap it in a RetryTransport for production use; tests swap in fault
	// injectors.
	Transport Transport
	// MissThreshold is how many consecutive failed heartbeats declare a
	// worker dead (default 3).
	MissThreshold int
	// HeartbeatInterval drives the background poll loop; zero disables it so
	// tests call PollOnce deterministically.
	HeartbeatInterval time.Duration
	// RetryAfter is the Retry-After hint on degraded-mode write rejections
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Registry receives the cluster metrics (a detached registry when nil).
	Registry *obs.Registry
}

// groupPlacement is the coordinator's live view of one group: who currently
// leads it (which diverges from ring placement after failovers), the highest
// LSN any client write was acknowledged at, and whether the group has fallen
// back to stale reads.
type groupPlacement struct {
	primary  string
	replicas []string // worker IDs, current primary excluded
	acked    uint64
	degraded bool
}

// workerState is the failure detector's per-worker record.
type workerState struct {
	spec   WorkerSpec
	alive  bool
	misses int
	status WireStatus
}

// Coordinator fronts the cluster with the single-node /v1 API: it broadcasts
// queries and steps to every group, round-robins streams, merges candidate
// sets, and runs the failure detector that promotes replicas when primaries
// die. One mutex serializes the control plane and the data plane — the
// coordinator is a thin router, and a totally ordered write stream is exactly
// what makes group engines bit-identical to a single-node run.
type Coordinator struct {
	cfg       Config
	opts      CoordinatorOptions
	transport Transport
	metrics   *Metrics
	registry  *obs.Registry

	mu      sync.Mutex
	groups  []*groupPlacement
	workers map[string]*workerState
	queries int // next query ID (== queries ever added)
	streams int // next global stream ID
	steps   int // global timestamps advanced

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator validates cfg and builds the coordinator (no RPCs yet; call
// Start).
func NewCoordinator(cfg Config, opts CoordinatorOptions) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Transport == nil {
		opts.Transport = &HTTPTransport{}
	}
	if opts.MissThreshold <= 0 {
		opts.MissThreshold = 3
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	registry := opts.Registry
	if registry == nil {
		registry = newDetachedRegistry()
	}
	c := &Coordinator{
		cfg:       cfg,
		opts:      opts,
		transport: opts.Transport,
		metrics:   NewMetrics(registry),
		registry:  registry,
		workers:   make(map[string]*workerState),
		stop:      make(chan struct{}),
	}
	for _, w := range cfg.Workers {
		c.workers[w.ID] = &workerState{spec: w, alive: true}
	}
	for g := 0; g < cfg.Groups; g++ {
		placed := cfg.Placement(g)
		c.groups = append(c.groups, &groupPlacement{
			primary:  placed[0],
			replicas: append([]string(nil), placed[1:]...),
		})
	}
	c.metrics.WorkersAlive.Set(float64(len(cfg.Workers)))
	return c, nil
}

// Metrics exposes the coordinator's instruments (tests assert on them).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Registry exposes the metrics registry backing /v1/metrics.
func (c *Coordinator) Registry() *obs.Registry { return c.registry }

// Start pushes the initial role assignments to every worker, recovers the
// idempotency counters from worker state, and, when a heartbeat interval is
// configured, launches the failure-detection loop. Start refuses to serve
// (returns an error) until every worker has answered: counters guessed at
// zero against a cluster with existing state would make every broadcast look
// like an already-applied retry, and workers would ack writes without
// applying them.
func (c *Coordinator) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for g, gp := range c.groups {
		//lint:ignore blockhold Start is pre-serving: nothing contends for c.mu until it returns, and serving must not begin before roles are pushed
		if err := c.assignRolesLocked(ctx, g, gp); err != nil {
			return err
		}
	}
	// Role assignment opened (and WAL-recovered) every group engine, so the
	// statuses the counters are rebuilt from reflect durable state — a
	// lazily-opened engine polled earlier would report nothing.
	//lint:ignore blockhold Start is pre-serving: counter recovery must finish before any handler can take c.mu
	if err := c.recoverCountersLocked(ctx); err != nil {
		return err
	}
	for g, gp := range c.groups {
		//lint:ignore blockhold Start is pre-serving: replica catch-up runs before any handler can take c.mu
		c.syncGroupLocked(ctx, g, gp)
	}
	if c.opts.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	return nil
}

// recoverCountersLocked rebuilds the queries/streams/steps counters from
// worker status reports. Per group the highest value any host reports wins
// (replicas trail their primary); across groups the broadcast counters
// (queries, steps) take the minimum, so a broadcast a previous coordinator
// left half-applied can still be completed by a client retry — the groups
// that already applied it answer idempotently, fingerprint-checked. Stream
// placement is round-robin over groups, so the global stream counter is the
// sum of the groups' local allocators.
func (c *Coordinator) recoverCountersLocked(ctx context.Context) error {
	statuses := make(map[string]WireStatus, len(c.workers))
	for id, ws := range c.workers {
		var st WireStatus
		if _, err := c.transport.Do(ctx, ws.spec.Addr, http.MethodGet, "/cluster/status", nil, &st); err != nil {
			return fmt.Errorf("cluster: recovering counters from %s: %w", id, err)
		}
		statuses[id] = st
		ws.status = st
	}
	var queries, steps, streams int
	for g, gp := range c.groups {
		var gq, gs, gt int
		for _, id := range append([]string{gp.primary}, gp.replicas...) {
			for _, grp := range statuses[id].Groups {
				if grp.Group != g {
					continue
				}
				gq = max(gq, grp.NextQuery)
				gs = max(gs, grp.NextStream)
				gt = max(gt, grp.Timestamps)
			}
		}
		if g == 0 || gq < queries {
			queries = gq
		}
		if g == 0 || gt < steps {
			steps = gt
		}
		streams += gs
		// The primary's applied LSN bounds every write a client ever saw
		// acknowledged; folding it in keeps promotion safe from the start.
		if lsn, ok := groupApplied(statuses[gp.primary], g); ok && lsn > gp.acked {
			gp.acked = lsn
		}
	}
	c.queries, c.steps, c.streams = queries, steps, streams
	return nil
}

// Stop terminates the heartbeat loop (idempotent).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.PollOnce(context.Background())
		}
	}
}

// assignRolesLocked pushes the group's current roles: replicas first (so the
// primary never ships to a worker that still believes it is primary), then
// the primary with its replica address list.
func (c *Coordinator) assignRolesLocked(ctx context.Context, g int, gp *groupPlacement) error {
	replicaAddrs := make([]string, 0, len(gp.replicas))
	for _, id := range gp.replicas {
		if !c.workers[id].alive {
			continue
		}
		addr := c.cfg.Addr(id)
		replicaAddrs = append(replicaAddrs, addr)
		if _, err := c.transport.Do(ctx, addr, http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/role", g), WireRole{Role: RoleReplica}, nil); err != nil {
			return fmt.Errorf("cluster: assigning replica role for group %d to %s: %w", g, id, err)
		}
	}
	if _, err := c.transport.Do(ctx, c.cfg.Addr(gp.primary), http.MethodPost,
		fmt.Sprintf("/cluster/groups/%d/role", g),
		WireRole{Role: RolePrimary, Replicas: replicaAddrs}, nil); err != nil {
		return fmt.Errorf("cluster: assigning primary role for group %d to %s: %w", g, gp.primary, err)
	}
	return nil
}

// syncGroupLocked asks the group's primary to run an anti-entropy round —
// issued after every role push, because a freshly assigned replica set has
// unknown watermarks and in-band shipping stays paused until a sync probes
// them.
func (c *Coordinator) syncGroupLocked(ctx context.Context, g int, gp *groupPlacement) {
	_, _ = c.transport.Do(ctx, c.cfg.Addr(gp.primary), http.MethodPost,
		fmt.Sprintf("/cluster/groups/%d/sync", g), nil, nil)
}

// PollOnce runs one failure-detection round: heartbeat every worker, fold
// reported watermarks into the acknowledged LSNs, re-integrate returned
// workers, and promote or degrade groups whose primary is dead. It is the
// heartbeat loop's body, exported so tests drive detection deterministically.
//
// Heartbeats run concurrently and outside the coordinator mutex: the
// transport may spend a retry-and-timeout cycle on an unreachable worker,
// and failure detection must never stall the data plane behind that wait.
func (c *Coordinator) PollOnce(ctx context.Context) {
	type probe struct {
		id   string
		addr string
		st   WireStatus
		err  error
	}
	c.mu.Lock()
	probes := make([]probe, 0, len(c.workers))
	for id, ws := range c.workers {
		probes = append(probes, probe{id: id, addr: ws.spec.Addr})
	}
	c.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].id < probes[j].id })

	var probeWG sync.WaitGroup
	for i := range probes {
		probeWG.Add(1)
		go func(p *probe) {
			defer probeWG.Done()
			_, p.err = c.transport.Do(ctx, p.addr, http.MethodGet, "/cluster/status", nil, &p.st)
		}(&probes[i])
	}
	probeWG.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()

	var revived []string
	alive := 0
	for _, p := range probes {
		ws := c.workers[p.id]
		if p.err != nil {
			ws.misses++
			c.metrics.HeartbeatMisses.Inc()
			if ws.misses >= c.opts.MissThreshold {
				ws.alive = false
			}
		} else {
			if !ws.alive {
				revived = append(revived, p.id)
			}
			ws.alive = true
			ws.misses = 0
			ws.status = p.st
		}
		if ws.alive {
			alive++
		}
	}
	c.metrics.WorkersAlive.Set(float64(alive))

	// A primary's reported applied LSN bounds what any client saw
	// acknowledged, so folding it in only tightens the promotion bar.
	for g, gp := range c.groups {
		if ws := c.workers[gp.primary]; ws.alive && !gp.degraded {
			if lsn, ok := groupApplied(ws.status, g); ok && lsn > gp.acked {
				gp.acked = lsn
			}
		}
	}

	for _, id := range revived {
		//lint:ignore blockhold rejoin must push roles atomically with the placement bookkeeping; the control plane is serialized under c.mu by design
		c.rejoinLocked(ctx, id)
	}

	degraded := 0
	for g, gp := range c.groups {
		if !c.workers[gp.primary].alive || gp.degraded {
			//lint:ignore blockhold failover must promote and push roles atomically with the placement bookkeeping; the control plane is serialized under c.mu by design
			c.failoverLocked(ctx, g, gp)
		}
		if gp.degraded {
			degraded++
		}
	}
	c.metrics.DegradedGroups.Set(float64(degraded))

	// Fleet-wide replication lag: how far each live replica trails its
	// group's acknowledged watermark (in WAL records), summed.
	var lag uint64
	for g, gp := range c.groups {
		for _, id := range gp.replicas {
			ws := c.workers[id]
			if !ws.alive {
				continue
			}
			if lsn, ok := groupApplied(ws.status, g); ok && lsn < gp.acked {
				lag += gp.acked - lsn
			}
		}
	}
	c.metrics.ReplicationLag.Set(float64(lag))
}

// groupApplied extracts a group's applied LSN from a worker status report.
func groupApplied(st WireStatus, g int) (uint64, bool) {
	for _, gs := range st.Groups {
		if gs.Group == g {
			return gs.AppliedLSN, true
		}
	}
	return 0, false
}

// failoverLocked restores a leader for a group whose primary is unreachable
// (or which is already degraded and waiting for one). Promotion is gated on
// the acknowledged watermark: a replica that hasn't applied every
// acknowledged write must not lead, or committed history would be rewritten.
// With no safe candidate the group degrades — stale reads, fast-failing
// writes — until a caught-up replica or the old primary returns.
func (c *Coordinator) failoverLocked(ctx context.Context, g int, gp *groupPlacement) {
	// The old primary coming back is always safe: it holds every
	// acknowledged write by definition.
	if ws := c.workers[gp.primary]; ws.alive {
		if gp.degraded {
			if err := c.assignRolesLocked(ctx, g, gp); err == nil {
				gp.degraded = false
				c.syncGroupLocked(ctx, g, gp)
			}
		}
		return
	}

	best := ""
	var bestLSN uint64
	for _, id := range gp.replicas {
		ws := c.workers[id]
		if !ws.alive {
			continue
		}
		lsn, ok := groupApplied(ws.status, g)
		if !ok || lsn < gp.acked {
			continue
		}
		if best == "" || lsn > bestLSN || (lsn == bestLSN && id < best) {
			best, bestLSN = id, lsn
		}
	}
	if best == "" {
		gp.degraded = true
		return
	}

	// Promote: the dead primary joins the replica list so its eventual
	// return re-integrates it as a follower.
	replicas := []string{gp.primary}
	for _, id := range gp.replicas {
		if id != best {
			replicas = append(replicas, id)
		}
	}
	old := gp.primary
	gp.primary = best
	gp.replicas = replicas
	if err := c.assignRolesLocked(ctx, g, gp); err != nil {
		// Roll back the bookkeeping; the next poll retries.
		gp.primary = old
		gp.replicas = append(gp.replicas[:0], gp.replicas[1:]...)
		gp.replicas = append(gp.replicas, best)
		gp.degraded = true
		return
	}
	gp.degraded = false
	c.metrics.Failovers.Inc()
	c.syncGroupLocked(ctx, g, gp)
}

// rejoinLocked re-integrates a worker that came back from the dead. For every
// group it hosts as a replica it is re-bootstrapped from the current
// primary's snapshot — its WAL may hold records a promotion superseded, and
// wiping to the primary's state is the only way to guarantee convergence.
// Groups it still leads are left alone (failoverLocked handles degraded
// recovery).
func (c *Coordinator) rejoinLocked(ctx context.Context, id string) {
	addr := c.cfg.Addr(id)
	for g, gp := range c.groups {
		if gp.primary == id {
			continue
		}
		hosts := false
		for _, rid := range gp.replicas {
			if rid == id {
				hosts = true
				break
			}
		}
		if !hosts {
			continue
		}
		pws := c.workers[gp.primary]
		if !pws.alive {
			continue
		}
		var snap WireSnapshot
		if _, err := c.transport.Do(ctx, pws.spec.Addr, http.MethodGet,
			fmt.Sprintf("/cluster/groups/%d/snapshot", g), nil, &snap); err != nil {
			continue
		}
		if _, err := c.transport.Do(ctx, addr, http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/snapshot", g), snap, nil); err != nil {
			continue
		}
		c.metrics.SnapshotInstalls.Inc()
		// Refresh the primary's replica list and let a sync round replay
		// whatever committed between snapshot and role push.
		if err := c.assignRolesLocked(ctx, g, gp); err != nil {
			continue
		}
		_, _ = c.transport.Do(ctx, pws.spec.Addr, http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/sync", g), nil, nil)
	}
}

// SyncAll asks every healthy primary to run an anti-entropy round — the
// harness calls it to bound replica lag at interesting moments; production
// relies on in-band shipping plus rejoin-triggered syncs.
func (c *Coordinator) SyncAll(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for g, gp := range c.groups {
		if !c.workers[gp.primary].alive {
			continue
		}
		//lint:ignore blockhold sync fan-out must not interleave with a broadcast advancing the counters; serialized under c.mu by design
		_, _ = c.transport.Do(ctx, c.cfg.Addr(gp.primary), http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/sync", g), nil, nil)
	}
}

// writableLocked reports whether every group has a live, non-degraded
// primary — the precondition for accepting writes, since queries and steps
// broadcast to all groups.
func (c *Coordinator) writableLocked() bool {
	for _, gp := range c.groups {
		if gp.degraded || !c.workers[gp.primary].alive {
			return false
		}
	}
	return true
}

// rejectWrite answers a write during degraded operation: fail fast with a
// bounded, explicit 503 rather than hang or half-apply.
func (c *Coordinator) rejectWrite(rw http.ResponseWriter) {
	c.metrics.RejectedWrites.Inc()
	secs := int(c.opts.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	rw.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(rw, http.StatusServiceUnavailable, "cluster degraded: writes are paused")
}

// noteAck folds a data-plane response watermark into the group's
// acknowledged LSN.
func (gp *groupPlacement) noteAck(hdr http.Header) {
	if hdr == nil {
		return
	}
	if lsn, err := strconv.ParseUint(hdr.Get(HeaderLSN), 10, 64); err == nil && lsn > gp.acked {
		gp.acked = lsn
	}
}

// Handler returns the client-facing API — the same /v1 surface as the
// single-node server, so streamwatch and every existing client work
// unchanged against a cluster.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queries", c.handleAddQuery)
	mux.HandleFunc("DELETE /v1/queries/{id}", c.handleRemoveQuery)
	mux.HandleFunc("POST /v1/streams", c.handleAddStream)
	mux.HandleFunc("POST /v1/step", c.handleStep)
	mux.HandleFunc("GET /v1/candidates", c.handleCandidates)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type graphRequest struct {
	Graph server.WireGraph `json:"graph"`
}

type stepRequest struct {
	Changes map[string][]server.WireOp `json:"changes"`
}

func (c *Coordinator) handleAddQuery(rw http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decodeJSON(rw, r, &req) {
		return
	}
	if _, err := req.Graph.ToGraph(); err != nil {
		httpError(rw, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.writableLocked() {
		c.rejectWrite(rw)
		return
	}
	id := c.queries
	fp := fingerprintOf(req.Graph)
	for g, gp := range c.groups {
		var resp WireID
		//lint:ignore blockhold idempotent-broadcast protocol: the Expect counter is read and advanced atomically with the fan-out, which requires holding c.mu across the RPCs
		hdr, err := c.transport.Do(r.Context(), c.cfg.Addr(gp.primary), http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/queries", g),
			WireAddQuery{Graph: req.Graph, Expect: id, Fingerprint: fp}, &resp)
		gp.noteAck(hdr)
		if err != nil {
			// A partial broadcast is safe to retry: groups that applied it
			// answer idempotently off the Expect key, fingerprint-checked so
			// a different payload under a reused key is rejected, not acked.
			httpError(rw, proxyStatus(err), "group %d: %v", g, err)
			return
		}
	}
	c.queries++
	writeJSON(rw, http.StatusCreated, WireID{ID: id})
}

func (c *Coordinator) handleRemoveQuery(rw http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(rw, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.writableLocked() {
		c.rejectWrite(rw)
		return
	}
	anyRemoved := false
	for g, gp := range c.groups {
		var resp WireRemoved
		//lint:ignore blockhold idempotent-broadcast protocol: removals must not interleave with another broadcast advancing the counters; serialized under c.mu
		hdr, err := c.transport.Do(r.Context(), c.cfg.Addr(gp.primary), http.MethodDelete,
			fmt.Sprintf("/cluster/groups/%d/queries/%d", g, id), nil, &resp)
		gp.noteAck(hdr)
		if err != nil {
			httpError(rw, proxyStatus(err), "group %d: %v", g, err)
			return
		}
		anyRemoved = anyRemoved || resp.Removed
	}
	if !anyRemoved {
		httpError(rw, http.StatusNotFound, "unknown query %d", id)
		return
	}
	writeJSON(rw, http.StatusOK, map[string]string{"status": "removed"})
}

func (c *Coordinator) handleAddStream(rw http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !decodeJSON(rw, r, &req) {
		return
	}
	if _, err := req.Graph.ToGraph(); err != nil {
		httpError(rw, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.writableLocked() {
		c.rejectWrite(rw)
		return
	}
	global := int64(c.streams)
	g := c.cfg.GroupOf(global)
	gp := c.groups[g]
	var resp WireID
	//lint:ignore blockhold idempotent-broadcast protocol: the stream counter is read and advanced atomically with the RPC, which requires holding c.mu across it
	hdr, err := c.transport.Do(r.Context(), c.cfg.Addr(gp.primary), http.MethodPost,
		fmt.Sprintf("/cluster/groups/%d/streams", g),
		WireAddStream{Graph: req.Graph, Expect: int(c.cfg.LocalOf(global)),
			Fingerprint: fingerprintOf(req.Graph)}, &resp)
	gp.noteAck(hdr)
	if err != nil {
		httpError(rw, proxyStatus(err), "group %d: %v", g, err)
		return
	}
	c.streams++
	writeJSON(rw, http.StatusCreated, WireID{ID: int(global)})
}

func (c *Coordinator) handleStep(rw http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if !decodeJSON(rw, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.writableLocked() {
		c.rejectWrite(rw)
		return
	}
	// Partition global-stream changes into per-group, group-local maps.
	perGroup := make([]map[string][]server.WireOp, c.cfg.Groups)
	for key, ops := range req.Changes {
		sid, err := strconv.Atoi(key)
		if err != nil {
			httpError(rw, http.StatusBadRequest, "bad stream id %q", key)
			return
		}
		if sid < 0 || sid >= c.streams {
			httpError(rw, http.StatusNotFound, "unknown stream %d", sid)
			return
		}
		g := c.cfg.GroupOf(int64(sid))
		if perGroup[g] == nil {
			perGroup[g] = make(map[string][]server.WireOp)
		}
		perGroup[g][strconv.FormatInt(c.cfg.LocalOf(int64(sid)), 10)] = ops
	}
	seq := c.steps
	var all []server.WirePair
	for g, gp := range c.groups {
		var resp WirePairs
		//lint:ignore blockhold idempotent-broadcast protocol: the step sequence is read and advanced atomically with the fan-out, which requires holding c.mu across the RPCs
		hdr, err := c.transport.Do(r.Context(), c.cfg.Addr(gp.primary), http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/step", g),
			WireStep{Seq: seq, Changes: perGroup[g], Fingerprint: fingerprintOf(perGroup[g])}, &resp)
		gp.noteAck(hdr)
		if err != nil {
			httpError(rw, proxyStatus(err), "group %d: %v", g, err)
			return
		}
		for _, p := range resp.Pairs {
			all = append(all, server.WirePair{
				Stream: int(c.cfg.GlobalOf(g, int64(p.Stream))),
				Query:  p.Query,
			})
		}
	}
	c.steps++
	sortWirePairs(all)
	writeJSON(rw, http.StatusOK, WirePairs{Pairs: all})
}

func (c *Coordinator) handleCandidates(rw http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []server.WirePair
	stale := false
	var lag uint64
	for g, gp := range c.groups {
		addr, fromReplica, replicaLSN, ok := c.readTargetLocked(g, gp)
		if !ok {
			httpError(rw, http.StatusServiceUnavailable, "group %d has no reachable replica", g)
			return
		}
		var resp WirePairs
		//lint:ignore blockhold proxied reads must not interleave with a broadcast, or groups would answer from different steps; serialized under c.mu
		hdr, err := c.transport.Do(r.Context(), addr, http.MethodGet,
			fmt.Sprintf("/cluster/groups/%d/candidates", g), nil, &resp)
		if err != nil {
			httpError(rw, proxyStatus(err), "group %d: %v", g, err)
			return
		}
		if fromReplica {
			stale = true
			c.metrics.StaleReads.Inc()
			if replicaLSN < gp.acked {
				lag += gp.acked - replicaLSN
			}
		} else {
			gp.noteAck(hdr)
		}
		for _, p := range resp.Pairs {
			all = append(all, server.WirePair{
				Stream: int(c.cfg.GlobalOf(g, int64(p.Stream))),
				Query:  p.Query,
			})
		}
	}
	sortWirePairs(all)
	if stale {
		rw.Header().Set(HeaderStale, "true")
		rw.Header().Set(HeaderStaleLag, strconv.FormatUint(lag, 10))
	}
	writeJSON(rw, http.StatusOK, WirePairs{Pairs: all})
}

// readTargetLocked picks where to read a group from: its live primary, or —
// degraded — the most caught-up live replica (reported LSN returned so the
// caller can label the staleness).
func (c *Coordinator) readTargetLocked(g int, gp *groupPlacement) (addr string, fromReplica bool, lsn uint64, ok bool) {
	if ws := c.workers[gp.primary]; ws.alive && !gp.degraded {
		return ws.spec.Addr, false, 0, true
	}
	best := ""
	var bestLSN uint64
	for _, id := range gp.replicas {
		ws := c.workers[id]
		if !ws.alive {
			continue
		}
		l, okl := groupApplied(ws.status, g)
		if !okl {
			continue
		}
		if best == "" || l > bestLSN || (l == bestLSN && id < best) {
			best, bestLSN = id, l
		}
	}
	if best == "" {
		return "", false, 0, false
	}
	return c.workers[best].spec.Addr, true, bestLSN, true
}

func (c *Coordinator) handleStats(rw http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := WireStats{}
	n := 0
	for g, gp := range c.groups {
		addr, _, _, ok := c.readTargetLocked(g, gp)
		if !ok {
			continue
		}
		var st WireStats
		//lint:ignore blockhold proxied reads must not interleave with a broadcast, or groups would answer from different steps; serialized under c.mu
		if _, err := c.transport.Do(r.Context(), addr, http.MethodGet,
			fmt.Sprintf("/cluster/groups/%d/stats", g), nil, &st); err != nil {
			continue
		}
		if st.Timestamps > agg.Timestamps {
			agg.Timestamps = st.Timestamps
		}
		agg.AvgFilterMs += st.AvgFilterMs
		agg.CandidateRatio += st.CandidateRatio
		n++
	}
	if n > 0 {
		agg.AvgFilterMs /= float64(n)
		agg.CandidateRatio /= float64(n)
	}
	writeJSON(rw, http.StatusOK, agg)
}

func (c *Coordinator) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rw.WriteHeader(http.StatusOK)
	_ = c.registry.WritePrometheus(rw)
}

// proxyStatus maps a worker-call failure onto the status the coordinator
// reports: deliberate worker responses pass through, transport failures
// surface as 502.
func proxyStatus(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	return http.StatusBadGateway
}

func sortWirePairs(pairs []server.WirePair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Stream != pairs[j].Stream {
			return pairs[i].Stream < pairs[j].Stream
		}
		return pairs[i].Query < pairs[j].Query
	})
}
