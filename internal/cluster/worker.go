package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/server"
	"nntstream/internal/wal"
)

// WorkerOptions configures a worker runtime.
type WorkerOptions struct {
	// Factory builds the filter for each group engine (must be the same
	// across the whole cluster, or replicas would diverge).
	Factory core.FilterFactory
	// Shards and EvalWorkers configure each group's engine like
	// core.DurableOptions.Shards/Workers.
	Shards      int
	EvalWorkers int
	// Fsync/FsyncInterval/CheckpointInterval are the per-group WAL knobs.
	Fsync              wal.SyncPolicy
	FsyncInterval      time.Duration
	CheckpointInterval time.Duration
	// Transport carries replication traffic to peer workers
	// (&HTTPTransport{} when nil). It must not retry on the ship path: ship
	// runs under the engine's commit lock and every delivery is bounded by
	// ShipTimeout, so a retrying transport only burns that budget re-sending
	// to a replica the next sync round will repair anyway.
	Transport Transport
	// ShipTimeout bounds each in-band record delivery to one replica
	// (default DefaultShipTimeout). Ship runs under the primary engine's
	// commit lock, so this is a direct bound on how long a freshly failed
	// replica can stall a commit before it is marked lagging.
	ShipTimeout time.Duration
	// Metrics receives replication observations (a detached set when nil).
	Metrics *Metrics
	// WALMetrics is forwarded to each group engine (may be nil).
	WALMetrics *wal.Metrics
}

// Worker hosts the group engines one process is responsible for. Roles are
// pushed by the coordinator: a primary serves the group's data plane and
// ships every committed WAL record to its replicas; a replica only accepts
// shipped records (and stale reads). Engines are opened lazily on first role
// assignment and recover from their own WAL, so a restarted worker rejoins
// with its pre-crash state intact.
type Worker struct {
	id        string
	dir       string
	opts      WorkerOptions
	transport Transport
	metrics   *Metrics

	mu     sync.Mutex
	groups map[int]*workerGroup
	closed bool
}

// appliedFP remembers the payload fingerprint of the most recently applied
// broadcast of one kind, keyed by its idempotency slot. The coordinator's
// counters advance only on full-broadcast success, so a group can be at most
// one slot ahead of the key a retry carries — remembering the latest apply is
// enough to tell a genuine retry from a diverging write.
type appliedFP struct {
	slot int
	fp   string
	ok   bool
}

// conflicts reports whether a retried broadcast at slot carries a payload
// other than the one applied there. Unknown fingerprints (either side) give
// the retry the benefit of the doubt — fingerprints are in-memory, so a
// promoted or restarted worker cannot verify and keeps the pre-fingerprint
// idempotent behavior.
func (a appliedFP) conflicts(slot int, fp string) bool {
	return a.ok && a.slot == slot && a.fp != "" && fp != "" && a.fp != fp
}

// workerGroup is one group replica hosted by this worker. Its mutex guards
// only the role/replica bookkeeping and the engine pointer — it is never
// held across an engine call or an RPC, which keeps it deadlock-free against
// the engine's own lock (the ship path runs under the engine lock and takes
// this one briefly).
type workerGroup struct {
	id int
	w  *Worker

	mu       sync.Mutex
	engine   *core.DurableEngine
	role     string
	replicas []string
	acked    map[string]uint64 // per-replica last acknowledged LSN
	lagging  map[string]bool   // replicas awaiting a sync round

	// Last applied broadcast fingerprints, one per idempotency-key kind.
	lastQuery  appliedFP
	lastStream appliedFP
	lastStep   appliedFP
}

// noteApplied records the fingerprint a broadcast was applied with.
func (g *workerGroup) noteApplied(kind *appliedFP, slot int, fp string) {
	g.mu.Lock()
	*kind = appliedFP{slot: slot, fp: fp, ok: true}
	g.mu.Unlock()
}

// retryConflicts checks a retried broadcast's fingerprint against the record
// of what was applied at its slot.
func (g *workerGroup) retryConflicts(kind *appliedFP, slot int, fp string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return kind.conflicts(slot, fp)
}

// NewWorker creates a worker storing group data under dir/group-<g>.
func NewWorker(id, dir string, opts WorkerOptions) *Worker {
	if opts.Transport == nil {
		opts.Transport = &HTTPTransport{}
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics(newDetachedRegistry())
	}
	return &Worker{
		id:        id,
		dir:       dir,
		opts:      opts,
		transport: opts.Transport,
		metrics:   opts.Metrics,
		groups:    make(map[int]*workerGroup),
	}
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.id }

// Close shuts every group engine down cleanly (final checkpoint included).
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	groups := make([]*workerGroup, 0, len(w.groups))
	for _, g := range w.groups {
		groups = append(groups, g)
	}
	w.mu.Unlock()
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	var firstErr error
	for _, g := range groups {
		if e := g.eng(); e != nil {
			if err := e.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Crash abandons every engine without flushing — the harness's hard kill.
func (w *Worker) Crash() error {
	w.mu.Lock()
	w.closed = true
	groups := make([]*workerGroup, 0, len(w.groups))
	for _, g := range w.groups {
		groups = append(groups, g)
	}
	w.mu.Unlock()
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	var firstErr error
	for _, g := range groups {
		if e := g.eng(); e != nil {
			if err := e.Crash(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// lookupGroup finds or registers the group entry under the worker lock.
func (w *Worker) lookupGroup(id int, create bool) (*workerGroup, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("cluster: worker %s is closed", w.id)
	}
	g := w.groups[id]
	if g == nil {
		if !create {
			return nil, fmt.Errorf("cluster: worker %s has no group %d", w.id, id)
		}
		g = &workerGroup{
			id:      id,
			w:       w,
			role:    RoleReplica,
			acked:   make(map[string]uint64),
			lagging: make(map[string]bool),
		}
		w.groups[id] = g
	}
	return g, nil
}

// group returns the group state, creating it (and opening its engine) when
// create is set.
func (w *Worker) group(id int, create bool) (*workerGroup, error) {
	g, err := w.lookupGroup(id, create)
	if err != nil {
		return nil, err
	}

	g.mu.Lock()
	needOpen := g.engine == nil
	g.mu.Unlock()
	if needOpen {
		eng, err := w.openEngine(g)
		if err != nil {
			return nil, err
		}
		g.mu.Lock()
		if g.engine == nil {
			g.engine = eng
			eng = nil
		}
		g.mu.Unlock()
		if eng != nil { // lost the race; discard the extra engine
			eng.Close()
		}
	}
	return g, nil
}

func (w *Worker) openEngine(g *workerGroup) (*core.DurableEngine, error) {
	return core.OpenDurableEngine(
		filepath.Join(w.dir, fmt.Sprintf("group-%d", g.id)),
		w.opts.Factory,
		core.DurableOptions{
			Shards:             w.opts.Shards,
			Workers:            w.opts.EvalWorkers,
			Fsync:              w.opts.Fsync,
			FsyncInterval:      w.opts.FsyncInterval,
			CheckpointInterval: w.opts.CheckpointInterval,
			Metrics:            w.opts.WALMetrics,
			OnCommit:           func(r wal.Record) { g.ship(r) },
		},
	)
}

// eng returns the group's engine (nil while a snapshot install is swapping
// it).
func (g *workerGroup) eng() *core.DurableEngine {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.engine
}

// DefaultShipTimeout bounds one in-band record delivery to one replica —
// deliberately shorter than DefaultRPCTimeout, because the ship path runs
// under the primary engine's commit lock and a sync round repairs whatever a
// timed-out delivery missed.
const DefaultShipTimeout = time.Second

// ship forwards one committed record to every healthy replica. It runs
// under the primary engine's write lock (OnCommit), which is what serializes
// shipped records into the same order on every replica. Every delivery runs
// under its own ShipTimeout deadline, and replicas that fail or report a gap
// are marked lagging and skipped until a sync round repairs them — the
// primary never blocks on a broken replica more than ShipTimeout per commit,
// even through a retrying transport (the deadline caps the whole attempt
// chain).
func (g *workerGroup) ship(r wal.Record) {
	targets := g.shipTargets()
	if len(targets) == 0 {
		return
	}
	enc, err := encodeRecords([]wal.Record{r})
	if err != nil {
		// An unencodable record cannot reach any replica; they will all need
		// a catch-up. (Unreachable in practice: the record was just encoded
		// into the local WAL.)
		g.mu.Lock()
		for _, a := range targets {
			g.lagging[a] = true
		}
		g.mu.Unlock()
		return
	}
	timeout := g.w.opts.ShipTimeout
	if timeout <= 0 {
		timeout = DefaultShipTimeout
	}
	for _, addr := range targets {
		var resp WireReplicateResponse
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		_, err := g.w.transport.Do(ctx, addr, http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/replicate", g.id), WireReplicate{Records: enc}, &resp)
		cancel()
		g.mu.Lock()
		if err != nil || resp.Gap {
			g.lagging[addr] = true
			g.w.metrics.ShipFailures.Inc()
		} else {
			g.acked[addr] = resp.Applied
			g.w.metrics.RecordsShipped.Inc()
		}
		g.mu.Unlock()
	}
}

// shipTargets snapshots the healthy replica list (nil unless primary).
func (g *workerGroup) shipTargets() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != RolePrimary || len(g.replicas) == 0 {
		return nil
	}
	targets := make([]string, 0, len(g.replicas))
	for _, a := range g.replicas {
		if !g.lagging[a] {
			targets = append(targets, a)
		}
	}
	return targets
}

// replicaList snapshots the full replica list (primary role only).
func (g *workerGroup) replicaList() ([]string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != RolePrimary {
		return nil, false
	}
	return append([]string(nil), g.replicas...), true
}

// syncReplicas is the anti-entropy pass: probe each replica's watermark and
// replay it the records it is missing, falling back to a snapshot transfer
// when the local log was compacted past its position.
func (g *workerGroup) syncReplicas(ctx context.Context) error {
	replicas, ok := g.replicaList()
	if !ok {
		return &StatusError{Code: http.StatusConflict, Msg: "not the primary"}
	}
	var firstErr error
	for _, addr := range replicas {
		if err := g.syncOne(ctx, addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (g *workerGroup) syncOne(ctx context.Context, addr string) error {
	eng := g.eng()
	if eng == nil {
		return fmt.Errorf("cluster: group %d engine unavailable", g.id)
	}
	probe := func() (uint64, error) {
		var resp WireReplicateResponse
		_, err := g.w.transport.Do(ctx, addr, http.MethodPost,
			fmt.Sprintf("/cluster/groups/%d/replicate", g.id), WireReplicate{}, &resp)
		return resp.Applied, err
	}
	applied, err := probe()
	if err != nil {
		return err
	}
	target := eng.AppliedLSN()
	if applied < target {
		recs, err := eng.RecordsSince(applied)
		if errors.Is(err, wal.ErrCompacted) {
			// The replica's position predates the log: re-bootstrap it.
			snap, serr := eng.SnapshotBytes()
			if serr != nil {
				return serr
			}
			if _, serr := g.w.transport.Do(ctx, addr, http.MethodPost,
				fmt.Sprintf("/cluster/groups/%d/snapshot", g.id), WireSnapshot{Data: snap}, nil); serr != nil {
				return serr
			}
			g.w.metrics.SnapshotInstalls.Inc()
			if applied, err = probe(); err != nil {
				return err
			}
			if recs, err = eng.RecordsSince(applied); errors.Is(err, wal.ErrCompacted) {
				// A checkpoint raced the transfer; the next sync round
				// restarts from the fresher snapshot.
				return fmt.Errorf("cluster: group %d compacted during sync of %s", g.id, addr)
			}
		}
		if err != nil {
			return err
		}
		if len(recs) > 0 {
			enc, err := encodeRecords(recs)
			if err != nil {
				return err
			}
			var resp WireReplicateResponse
			if _, err := g.w.transport.Do(ctx, addr, http.MethodPost,
				fmt.Sprintf("/cluster/groups/%d/replicate", g.id), WireReplicate{Records: enc}, &resp); err != nil {
				return err
			}
			if resp.Gap {
				return fmt.Errorf("cluster: group %d replica %s still gapped after catch-up", g.id, addr)
			}
			g.w.metrics.CatchupRecords.Add(int64(len(recs)))
			applied = resp.Applied
		}
	}
	g.mu.Lock()
	g.acked[addr] = applied
	if applied >= target {
		delete(g.lagging, addr)
	}
	g.mu.Unlock()
	return nil
}

// Handler returns the worker's HTTP surface: the /cluster control and
// replication plane plus the per-group data plane the coordinator forwards
// to.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/status", w.handleStatus)
	mux.HandleFunc("POST /cluster/groups/{g}/role", w.handleRole)
	mux.HandleFunc("POST /cluster/groups/{g}/replicate", w.handleReplicate)
	mux.HandleFunc("GET /cluster/groups/{g}/records", w.handleRecords)
	mux.HandleFunc("GET /cluster/groups/{g}/snapshot", w.handleSnapshotGet)
	mux.HandleFunc("POST /cluster/groups/{g}/snapshot", w.handleSnapshotInstall)
	mux.HandleFunc("POST /cluster/groups/{g}/sync", w.handleSync)
	mux.HandleFunc("POST /cluster/groups/{g}/queries", w.handleAddQuery)
	mux.HandleFunc("DELETE /cluster/groups/{g}/queries/{id}", w.handleRemoveQuery)
	mux.HandleFunc("POST /cluster/groups/{g}/streams", w.handleAddStream)
	mux.HandleFunc("POST /cluster/groups/{g}/step", w.handleStep)
	mux.HandleFunc("GET /cluster/groups/{g}/candidates", w.handleCandidates)
	mux.HandleFunc("GET /cluster/groups/{g}/stats", w.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok", "worker": w.id})
	})
	return mux
}

// pathGroup parses the {g} path segment and resolves the group. Handlers
// that only make sense on an assigned group pass create=false and let a
// missing group 404.
func (w *Worker) pathGroup(rw http.ResponseWriter, r *http.Request, create bool) (*workerGroup, bool) {
	gid, err := strconv.Atoi(r.PathValue("g"))
	if err != nil || gid < 0 || gid >= MaxGroups {
		httpError(rw, http.StatusBadRequest, "bad group %q", r.PathValue("g"))
		return nil, false
	}
	g, err := w.group(gid, create)
	if err != nil {
		status := http.StatusNotFound
		if create {
			status = http.StatusInternalServerError
		}
		httpError(rw, status, "%v", err)
		return nil, false
	}
	return g, true
}

// groupEngine fetches the group's engine or answers 503 (an install is
// swapping it — momentary, so retryable).
func groupEngine(rw http.ResponseWriter, g *workerGroup) (*core.DurableEngine, bool) {
	eng := g.eng()
	if eng == nil {
		httpError(rw, http.StatusServiceUnavailable, "group %d engine is being replaced", g.id)
		return nil, false
	}
	return eng, true
}

func (w *Worker) handleStatus(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	ids := make([]int, 0, len(w.groups))
	for id := range w.groups {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	sort.Ints(ids)
	st := WireStatus{ID: w.id}
	for _, id := range ids {
		g, err := w.group(id, false)
		if err != nil {
			continue
		}
		eng := g.eng()
		if eng == nil {
			continue
		}
		g.mu.Lock()
		role := g.role
		g.mu.Unlock()
		stats := eng.Stats()
		nextQ, nextS := eng.NextIDs()
		st.Groups = append(st.Groups, WireGroupStatus{
			Group:      id,
			Role:       role,
			AppliedLSN: eng.AppliedLSN(),
			Queries:    eng.QueryCount(),
			Streams:    eng.StreamCount(),
			NextQuery:  int(nextQ),
			NextStream: int(nextS),
			Timestamps: stats.Timestamps,
		})
	}
	writeJSON(rw, http.StatusOK, st)
}

func (w *Worker) handleRole(rw http.ResponseWriter, r *http.Request) {
	var req WireRole
	if !decodeJSON(rw, r, &req) {
		return
	}
	if req.Role != RolePrimary && req.Role != RoleReplica {
		httpError(rw, http.StatusBadRequest, "unknown role %q", req.Role)
		return
	}
	g, ok := w.pathGroup(rw, r, true)
	if !ok {
		return
	}
	g.mu.Lock()
	g.role = req.Role
	g.replicas = append([]string(nil), req.Replicas...)
	keep := make(map[string]bool, len(req.Replicas))
	for _, a := range req.Replicas {
		keep[a] = true
	}
	for a := range g.acked {
		if !keep[a] {
			delete(g.acked, a)
		}
	}
	for a := range g.lagging {
		if !keep[a] {
			delete(g.lagging, a)
		}
	}
	// A freshly assigned replica set has unknown watermarks: mark every new
	// replica lagging so the first sync round probes it before in-band
	// shipping resumes (shipping to a replica of unknown position would
	// just bounce off a gap).
	if req.Role == RolePrimary {
		for _, a := range req.Replicas {
			if _, known := g.acked[a]; !known {
				g.lagging[a] = true
			}
		}
	}
	g.mu.Unlock()
	writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

func (w *Worker) handleReplicate(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, true)
	if !ok {
		return
	}
	g.mu.Lock()
	role := g.role
	g.mu.Unlock()
	if role != RoleReplica {
		// A primary refusing shipped records is the split-brain guard: two
		// primaries never silently merge histories.
		httpError(rw, http.StatusConflict, "group %d on %s is %s, not a replica", g.id, w.id, role)
		return
	}
	var req WireReplicate
	if !decodeJSON(rw, r, &req) {
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	recs, err := decodeRecords(req.Records)
	if err != nil {
		httpError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	resp := WireReplicateResponse{}
	for _, rec := range recs {
		if err := eng.ApplyRecord(rec); err != nil {
			if errors.Is(err, core.ErrReplicaGap) {
				resp.Gap = true
				break
			}
			httpError(rw, http.StatusInternalServerError, "applying record %d: %v", rec.LSN, err)
			return
		}
	}
	resp.Applied = eng.AppliedLSN()
	rw.Header().Set(HeaderLSN, strconv.FormatUint(resp.Applied, 10))
	writeJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleRecords(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		httpError(rw, http.StatusBadRequest, "bad from %q", r.URL.Query().Get("from"))
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	recs, err := eng.RecordsSince(from)
	if errors.Is(err, wal.ErrCompacted) {
		writeJSON(rw, http.StatusOK, WireRecords{Compacted: true})
		return
	}
	if err != nil {
		httpError(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	enc, err := encodeRecords(recs)
	if err != nil {
		httpError(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(rw, http.StatusOK, WireRecords{Records: enc})
}

func (w *Worker) handleSnapshotGet(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	data, err := eng.SnapshotBytes()
	if err != nil {
		httpError(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(rw, http.StatusOK, WireSnapshot{Data: data})
}

func (w *Worker) handleSnapshotInstall(rw http.ResponseWriter, r *http.Request) {
	var req WireSnapshot
	if !decodeJSON(rw, r, &req) {
		return
	}
	g, ok := w.pathGroup(rw, r, true)
	if !ok {
		return
	}
	// Demote first so no ship runs concurrently, then swap the engine
	// outside the group lock (Crash must not deadlock against an in-flight
	// commit's ship, which briefly takes the group lock).
	g.mu.Lock()
	g.role = RoleReplica
	old := g.engine
	g.engine = nil
	g.mu.Unlock()
	if old != nil {
		if err := old.Crash(); err != nil {
			httpError(rw, http.StatusInternalServerError, "retiring old engine: %v", err)
			return
		}
	}
	dir := filepath.Join(w.dir, fmt.Sprintf("group-%d", g.id))
	if err := core.InstallSnapshot(dir, req.Data); err != nil {
		httpError(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	eng, err := w.openEngine(g)
	if err != nil {
		httpError(rw, http.StatusInternalServerError, "reopening after install: %v", err)
		return
	}
	g.mu.Lock()
	g.engine = eng
	g.mu.Unlock()
	rw.Header().Set(HeaderLSN, strconv.FormatUint(eng.AppliedLSN(), 10))
	writeJSON(rw, http.StatusOK, map[string]string{"status": "installed"})
}

func (w *Worker) handleSync(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	if err := g.syncReplicas(r.Context()); err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			httpError(rw, se.Code, "%s", se.Msg)
			return
		}
		httpError(rw, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

// requirePrimary rejects data-plane writes on non-primaries — the backstop
// under a coordinator with a stale placement view.
func requirePrimary(rw http.ResponseWriter, w *Worker, g *workerGroup) bool {
	g.mu.Lock()
	role := g.role
	g.mu.Unlock()
	if role != RolePrimary {
		httpError(rw, http.StatusConflict, "group %d on %s is not the primary", g.id, w.id)
		return false
	}
	return true
}

// writeDataJSON answers a data-plane request, stamping the group's applied
// LSN so the coordinator can advance its acknowledged watermark.
func writeDataJSON(rw http.ResponseWriter, eng *core.DurableEngine, status int, v any) {
	rw.Header().Set(HeaderLSN, strconv.FormatUint(eng.AppliedLSN(), 10))
	writeJSON(rw, status, v)
}

func (w *Worker) handleAddQuery(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	if !requirePrimary(rw, w, g) {
		return
	}
	var req WireAddQuery
	if !decodeJSON(rw, r, &req) {
		return
	}
	qg, err := req.Graph.ToGraph()
	if err != nil {
		httpError(rw, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	nextQ, _ := eng.NextIDs()
	switch {
	case int(nextQ) > req.Expect:
		// A retried broadcast this group already applied: answer as before —
		// unless the payload differs from what was applied at that ID, which
		// is a diverging write the coordinator must hear about, not an ack.
		if g.retryConflicts(&g.lastQuery, req.Expect, req.Fingerprint) {
			httpError(rw, http.StatusConflict,
				"group %d already applied a different payload for query id %d", g.id, req.Expect)
			return
		}
		writeDataJSON(rw, eng, http.StatusOK, WireID{ID: req.Expect})
	case int(nextQ) < req.Expect:
		httpError(rw, http.StatusConflict,
			"group %d expects query id %d, coordinator sent %d", g.id, nextQ, req.Expect)
	default:
		id, err := eng.AddQuery(qg)
		if err != nil {
			httpError(rw, statusFor(err), "%v", err)
			return
		}
		g.noteApplied(&g.lastQuery, int(id), req.Fingerprint)
		writeDataJSON(rw, eng, http.StatusOK, WireID{ID: int(id)})
	}
}

func (w *Worker) handleRemoveQuery(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	if !requirePrimary(rw, w, g) {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(rw, http.StatusBadRequest, "bad query id %q", r.PathValue("id"))
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	removed := true
	if err := eng.RemoveQuery(core.QueryID(id)); err != nil {
		if !errors.Is(err, core.ErrUnknownQuery) {
			httpError(rw, statusFor(err), "%v", err)
			return
		}
		// Unknown here but possibly removed by an earlier attempt of the
		// same broadcast: report idempotently and let the coordinator decide.
		removed = false
	}
	writeDataJSON(rw, eng, http.StatusOK, WireRemoved{Removed: removed})
}

func (w *Worker) handleAddStream(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	if !requirePrimary(rw, w, g) {
		return
	}
	var req WireAddStream
	if !decodeJSON(rw, r, &req) {
		return
	}
	sg, err := req.Graph.ToGraph()
	if err != nil {
		httpError(rw, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	_, nextS := eng.NextIDs()
	switch {
	case int(nextS) > req.Expect:
		if g.retryConflicts(&g.lastStream, req.Expect, req.Fingerprint) {
			httpError(rw, http.StatusConflict,
				"group %d already applied a different payload for stream id %d", g.id, req.Expect)
			return
		}
		writeDataJSON(rw, eng, http.StatusOK, WireID{ID: req.Expect})
	case int(nextS) < req.Expect:
		httpError(rw, http.StatusConflict,
			"group %d expects stream id %d, coordinator sent %d", g.id, nextS, req.Expect)
	default:
		id, err := eng.AddStream(sg)
		if err != nil {
			httpError(rw, statusFor(err), "%v", err)
			return
		}
		g.noteApplied(&g.lastStream, int(id), req.Fingerprint)
		writeDataJSON(rw, eng, http.StatusOK, WireID{ID: int(id)})
	}
}

func (w *Worker) handleStep(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	if !requirePrimary(rw, w, g) {
		return
	}
	var req WireStep
	if !decodeJSON(rw, r, &req) {
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	ts := eng.Stats().Timestamps
	if ts > req.Seq {
		// Already stepped by an earlier attempt of this broadcast; the
		// candidate set is the post-step state either way. A different
		// payload under the same sequence number is not a retry, though —
		// that change set was never applied anywhere and must not be acked.
		if g.retryConflicts(&g.lastStep, req.Seq, req.Fingerprint) {
			httpError(rw, http.StatusConflict,
				"group %d already applied a different change set at step %d", g.id, req.Seq)
			return
		}
		writeDataJSON(rw, eng, http.StatusOK, WirePairs{Pairs: toWirePairs(eng.Candidates())})
		return
	}
	if ts < req.Seq {
		httpError(rw, http.StatusConflict, "group %d is at step %d, coordinator sent %d", g.id, ts, req.Seq)
		return
	}
	changes := make(map[core.StreamID]graph.ChangeSet, len(req.Changes))
	for key, ops := range req.Changes {
		sid, err := strconv.Atoi(key)
		if err != nil {
			httpError(rw, http.StatusBadRequest, "bad stream id %q", key)
			return
		}
		var cs graph.ChangeSet
		for i, wop := range ops {
			op, err := wop.ToChangeOp()
			if err != nil {
				httpError(rw, http.StatusBadRequest, "stream %s op %d: %v", key, i, err)
				return
			}
			cs = append(cs, op)
		}
		changes[core.StreamID(sid)] = cs
	}
	pairs, err := eng.StepAll(changes)
	if err != nil {
		httpError(rw, statusFor(err), "%v", err)
		return
	}
	g.noteApplied(&g.lastStep, req.Seq, req.Fingerprint)
	writeDataJSON(rw, eng, http.StatusOK, WirePairs{Pairs: toWirePairs(pairs)})
}

func (w *Worker) handleCandidates(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	// Reads are served in any role: the coordinator reads replicas directly
	// when a group is degraded (and labels the response stale itself).
	writeDataJSON(rw, eng, http.StatusOK, WirePairs{Pairs: toWirePairs(eng.Candidates())})
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	g, ok := w.pathGroup(rw, r, false)
	if !ok {
		return
	}
	eng, ok := groupEngine(rw, g)
	if !ok {
		return
	}
	st := eng.Stats()
	writeDataJSON(rw, eng, http.StatusOK, WireStats{
		Timestamps:     st.Timestamps,
		AvgFilterMs:    float64(st.AvgTimePerTimestamp()) / float64(time.Millisecond),
		CandidateRatio: st.CandidateRatio(),
	})
}

func toWirePairs(pairs []core.Pair) []server.WirePair {
	out := make([]server.WirePair, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, server.WirePair{Stream: int(p.Stream), Query: int(p.Query)})
	}
	return out
}

// statusFor mirrors the single-node server's error mapping.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownStream), errors.Is(err, core.ErrUnknownQuery):
		return http.StatusNotFound
	case errors.Is(err, core.ErrSealed):
		return http.StatusConflict
	case errors.Is(err, core.ErrUnsupported):
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes caps cluster RPC bodies; snapshots dominate, and even those
// stay far below this for the workloads the engine targets.
const maxBodyBytes = 64 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}
