package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjected marks a failure the fault transport manufactured. It behaves
// like any transport failure (retryable, counts against breakers), so the
// layers above exercise their real error paths — the network analogue of
// wal.FaultFile.
var ErrInjected = errors.New("cluster: injected network fault")

// FaultTransport wraps a Transport with deterministic (seeded) network
// misbehavior: whole-address partitions, probabilistic message drops, and
// added latency. It injects on the way in — a dropped call never reaches the
// inner transport, exactly as a lost packet never reaches the peer.
type FaultTransport struct {
	next  Transport
	sleep func(time.Duration) // injectable for tests; time.Sleep by default

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[string]bool
	dropProb    float64
	delay       time.Duration
}

// NewFaultTransport wraps next with a fault layer seeded for reproducibility.
func NewFaultTransport(next Transport, seed int64) *FaultTransport {
	return &FaultTransport{
		next:        next,
		sleep:       time.Sleep,
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: make(map[string]bool),
	}
}

// Partition makes the given addresses unreachable until healed.
func (f *FaultTransport) Partition(addrs ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range addrs {
		f.partitioned[a] = true
	}
}

// Heal reconnects the given addresses (all of them when none are named).
func (f *FaultTransport) Heal(addrs ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(addrs) == 0 {
		f.partitioned = make(map[string]bool)
		return
	}
	for _, a := range addrs {
		delete(f.partitioned, a)
	}
}

// Partitioned reports whether addr is currently cut off.
func (f *FaultTransport) Partitioned(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned[addr]
}

// SetDrop makes each call fail with probability p (0 disables).
func (f *FaultTransport) SetDrop(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropProb = p
}

// SetDelay adds fixed latency to every delivered call (0 disables).
func (f *FaultTransport) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// SetSleep overrides how delays are waited out (tests pass a stub).
func (f *FaultTransport) SetSleep(sleep func(time.Duration)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sleep = sleep
}

func (f *FaultTransport) Do(ctx context.Context, addr, method, path string, in, out any) (http.Header, error) {
	f.mu.Lock()
	cut := f.partitioned[addr]
	drop := f.dropProb > 0 && f.rng.Float64() < f.dropProb
	delay := f.delay
	sleep := f.sleep
	f.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("%w: %s is partitioned", ErrInjected, addr)
	}
	if drop {
		return nil, fmt.Errorf("%w: dropped %s %s to %s", ErrInjected, method, path, addr)
	}
	if delay > 0 {
		sleep(delay)
	}
	return f.next.Do(ctx, addr, method, path, in, out)
}
