// Package nnt implements the paper's Node-Neighbor Tree feature structure
// (Section III): for every vertex u of a graph and a depth bound l, NNT(u)
// is the tree of all simple paths (paths without repeated edges) of length
// at most l starting at u. The Forest maintains the NNTs of all vertices of
// one graph incrementally under edge insertions and deletions, following the
// paper's Insert-Edge and Delete-Edge procedures, with the node-tree and
// edge-tree appearance indexes they rely on.
package nnt

import (
	"fmt"
	"sort"
	"strings"

	"nntstream/internal/graph"
)

// Node is one node of a node-neighbor tree. A tree node represents an
// occurrence of a graph vertex at the end of one simple path from the tree's
// root; the same graph vertex may occur many times in one tree.
type Node struct {
	// Vertex is the graph vertex this tree node represents.
	Vertex graph.VertexID
	// VLabel is Vertex's label, denormalized so deletions never need the
	// (possibly already mutated) graph.
	VLabel graph.Label
	// EdgeLabel is the label of the graph edge (Parent.Vertex, Vertex);
	// meaningless for roots.
	EdgeLabel graph.Label
	// Depth is the distance from the root; roots have depth 0.
	Depth int
	// Parent is nil for roots.
	Parent *Node
	// Children, one per incident graph edge that extends this simple path.
	// Children have pairwise distinct Vertex values because at most one
	// edge joins a vertex pair.
	Children []*Node
	// Root is the graph vertex owning the tree this node belongs to.
	Root graph.VertexID

	// Intrusive links for the forest's appearance indexes: nodePrev/
	// nodeNext chain all appearances of the same graph vertex (the
	// node-tree index I_n); edgePrev/edgeNext chain all appearances of
	// the same graph edge, each represented by the child endpoint (the
	// edge-tree index I_e). Linked lists keep index maintenance free of
	// per-node map hashing, which profiles as the dominant maintenance
	// cost otherwise.
	nodePrev, nodeNext *Node
	edgePrev, edgeNext *Node
}

// IsRoot reports whether n is the root of its tree.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// PathUsesEdge reports whether the root→n path traverses the undirected
// graph edge {u,v}. Paths are at most l long, so the walk is O(l).
func (n *Node) PathUsesEdge(u, v graph.VertexID) bool {
	e := graph.Edge{U: u, V: v}.Canonical()
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		pe := graph.Edge{U: cur.Parent.Vertex, V: cur.Vertex}.Canonical()
		if pe.U == e.U && pe.V == e.V {
			return true
		}
	}
	return false
}

// Size returns the number of nodes in the subtree rooted at n, including n.
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// canonicalString renders the subtree deterministically: children are
// ordered by graph vertex. Two NNTs over the same graph are equal iff their
// canonical strings agree, which is how tests compare incremental
// maintenance against from-scratch construction.
func (n *Node) canonicalString(b *strings.Builder) {
	fmt.Fprintf(b, "%d:%d", n.Vertex, n.VLabel)
	if n.Parent != nil {
		fmt.Fprintf(b, "/%d", n.EdgeLabel)
	}
	if len(n.Children) == 0 {
		return
	}
	kids := make([]*Node, len(n.Children))
	copy(kids, n.Children)
	sort.Slice(kids, func(i, j int) bool { return kids[i].Vertex < kids[j].Vertex })
	b.WriteByte('(')
	for i, c := range kids {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.canonicalString(b)
	}
	b.WriteByte(')')
}

// CanonicalString returns the deterministic rendering of the subtree.
func (n *Node) CanonicalString() string {
	var b strings.Builder
	n.canonicalString(&b)
	return b.String()
}
