package nnt_test

import (
	"fmt"

	"nntstream/internal/graph"
	"nntstream/internal/nnt"
)

// ExampleForest builds the NNTs of a triangle and evolves them with one
// edge deletion, showing the incremental maintenance of Section III.
func ExampleForest() {
	g := graph.New()
	_ = g.AddVertex(0, 0) // A
	_ = g.AddVertex(1, 1) // B
	_ = g.AddVertex(2, 2) // C
	_ = g.AddEdge(0, 1, 0)
	_ = g.AddEdge(1, 2, 0)
	_ = g.AddEdge(2, 0, 0)

	f := nnt.NewForest(g, 3)
	// With depth 3, NNT(A) contains both triangle traversals: A→B→C→A and
	// A→C→B→A (simple paths repeat vertices, never edges).
	fmt.Println("triangle NNT(A) size:", f.Tree(0).Size())

	_ = f.Apply(graph.DeleteOp(1, 2))
	// Without the B—C edge only the two single steps remain.
	fmt.Println("after delete NNT(A) size:", f.Tree(0).Size())
	fmt.Println("canonical:", f.Tree(0).CanonicalString())
	// Output:
	// triangle NNT(A) size: 7
	// after delete NNT(A) size: 3
	// canonical: 0:0(1:1/0 2:2/0)
}
