package nnt

import (
	"math/rand"
	"testing"

	"nntstream/internal/graph"
)

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// pathGraph builds 0-1-2-...-n-1 with vertex labels = id and edge label 0.
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		if err := g.AddVertex(graph.VertexID(i), graph.Label(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestForestBuildPath(t *testing.T) {
	g := pathGraph(t, 4) // 0-1-2-3
	f := NewForest(g, 2)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// NNT(0) with l=2: 0 → 1 → 2.
	root := f.Tree(0)
	if root == nil || root.Size() != 3 {
		t.Fatalf("NNT(0) size = %d; want 3", root.Size())
	}
	// NNT(1) with l=2: 1 → {0, 2 → 3}.
	if got := f.Tree(1).Size(); got != 4 {
		t.Fatalf("NNT(1) size = %d; want 4", got)
	}
	if f.Depth() != 2 {
		t.Fatalf("Depth = %d; want 2", f.Depth())
	}
}

func TestForestTriangleSimplePaths(t *testing.T) {
	// Triangle 0-1-2. With l=3 the path 0→1→2→0 is simple (no repeated
	// EDGE) even though vertex 0 repeats, so NNT(0) must contain it.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
	f := NewForest(g, 3)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// NNT(0): root 0, children 1 and 2; under 1: 2, under that: 0 (closing
	// the triangle); symmetric on the other side. Sizes: 1 + 3 + 3 = 7.
	if got := f.Tree(0).Size(); got != 7 {
		t.Fatalf("NNT(0) size = %d; want 7", got)
	}
	// With l=2 the closing step is cut: 1 + 2 + 2 = 5.
	f2 := NewForest(g, 2)
	if got := f2.Tree(0).Size(); got != 5 {
		t.Fatalf("NNT(0) size at l=2 = %d; want 5", got)
	}
}

func TestForestDepthBound(t *testing.T) {
	g := pathGraph(t, 10)
	f := NewForest(g, 3)
	var maxDepth int
	f.Roots(func(_ graph.VertexID, root *Node) bool {
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.Depth > maxDepth {
				maxDepth = n.Depth
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(root)
		return true
	})
	if maxDepth != 3 {
		t.Fatalf("max depth = %d; want 3", maxDepth)
	}
}

func TestForestRejectsBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewForest with depth 0 should panic")
		}
	}()
	NewForest(graph.New(), 0)
}

func TestApplyInsertMatchesRebuild(t *testing.T) {
	g := pathGraph(t, 4)
	f := NewForest(g, 3)
	// Insert edge (0,3), closing a cycle.
	op := graph.InsertOp(0, 0, 3, 3, 5)
	if err := f.Apply(op); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	assertForestMatchesRebuild(t, f)
}

func TestApplyDeleteMatchesRebuild(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2, 3: 3},
		[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {2, 3, 0}})
	f := NewForest(g, 3)
	if err := f.Apply(graph.DeleteOp(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	assertForestMatchesRebuild(t, f)
}

func TestApplyDeleteRetiresIsolatedVertex(t *testing.T) {
	g := pathGraph(t, 3) // 0-1-2
	f := NewForest(g, 2)
	if err := f.Apply(graph.DeleteOp(0, 1)); err != nil {
		t.Fatal(err)
	}
	if f.Tree(0) != nil {
		t.Fatal("tree for retired vertex 0 still present")
	}
	if f.Graph().HasVertex(0) {
		t.Fatal("vertex 0 still in forest graph")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyInsertCreatesNewVertices(t *testing.T) {
	f := NewForest(graph.New(), 2)
	if err := f.Apply(graph.InsertOp(10, 1, 11, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if f.Tree(10) == nil || f.Tree(11) == nil {
		t.Fatal("trees for new vertices missing")
	}
	if f.Tree(10).Size() != 2 {
		t.Fatalf("NNT(10) size = %d; want 2", f.Tree(10).Size())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyIdempotentAndNoops(t *testing.T) {
	g := pathGraph(t, 3)
	f := NewForest(g, 2)
	before := forestCanonical(f)
	// Re-inserting an existing edge is a no-op.
	if err := f.Apply(graph.InsertOp(0, 0, 1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Deleting an absent edge is a no-op.
	if err := f.Apply(graph.DeleteOp(7, 8)); err != nil {
		t.Fatal(err)
	}
	if got := forestCanonical(f); got != before {
		t.Fatalf("no-op ops changed the forest:\n%s\nvs\n%s", got, before)
	}
}

func TestApplyRejectsRelabel(t *testing.T) {
	g := pathGraph(t, 2)
	f := NewForest(g, 2)
	if err := f.Apply(graph.InsertOp(0, 9, 5, 0, 0)); err == nil {
		t.Fatal("relabel through insert should fail")
	}
}

func TestApplySetDeletionsFirst(t *testing.T) {
	g := pathGraph(t, 3)
	f := NewForest(g, 3)
	// Mixed set: delete (1,2) and insert (0,2). If insertions ran first,
	// the intermediate graph would differ but the final result must match
	// a rebuild either way; this exercises the normalize path.
	cs := graph.ChangeSet{
		graph.InsertOp(0, 0, 2, 2, 0),
		graph.DeleteOp(1, 2),
	}
	if err := f.ApplySet(cs); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	assertForestMatchesRebuild(t, f)
}

// forestCanonical renders all trees deterministically.
func forestCanonical(f *Forest) string {
	out := ""
	for _, v := range f.Graph().VertexIDs() {
		out += f.Tree(v).CanonicalString() + "\n"
	}
	return out
}

// assertForestMatchesRebuild compares an incrementally maintained forest
// against a from-scratch construction over the same graph.
func assertForestMatchesRebuild(t *testing.T, f *Forest) {
	t.Helper()
	fresh := NewForest(f.Graph(), f.Depth())
	got, want := forestCanonical(f), forestCanonical(fresh)
	if got != want {
		t.Fatalf("incremental forest diverges from rebuild:\nincremental:\n%s\nrebuild:\n%s", got, want)
	}
}

// TestIncrementalMatchesRebuildRandomized is the central correctness test:
// long random op sequences, checking after every op that the incremental
// forest is identical to a from-scratch build and internally consistent.
func TestIncrementalMatchesRebuildRandomized(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		for seed := int64(0); seed < 6; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 8
			g := graph.New()
			for i := 0; i < n; i++ {
				_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(3)))
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if r.Float64() < 0.3 {
						_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
					}
				}
			}
			f := NewForest(g, depth)
			labels := make(map[graph.VertexID]graph.Label)
			for i := 0; i < n; i++ {
				labels[graph.VertexID(i)] = g.MustVertexLabel(graph.VertexID(i))
			}
			steps := 40
			for s := 0; s < steps; s++ {
				u := graph.VertexID(r.Intn(n))
				v := graph.VertexID(r.Intn(n))
				if u == v {
					continue
				}
				var op graph.ChangeOp
				if f.Graph().HasEdge(u, v) {
					op = graph.DeleteOp(u, v)
				} else {
					op = graph.InsertOp(u, labels[u], v, labels[v], graph.Label(r.Intn(2)))
				}
				if err := f.Apply(op); err != nil {
					t.Fatalf("depth=%d seed=%d step=%d op=%v: %v", depth, seed, s, op, err)
				}
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("depth=%d seed=%d step=%d op=%v: %v", depth, seed, s, op, err)
				}
				fresh := NewForest(f.Graph(), depth)
				if got, want := forestCanonical(f), forestCanonical(fresh); got != want {
					t.Fatalf("depth=%d seed=%d step=%d op=%v: incremental diverges\n%s\nvs\n%s",
						depth, seed, s, op, got, want)
				}
			}
		}
	}
}

func TestTotalNodes(t *testing.T) {
	g := pathGraph(t, 4)
	f := NewForest(g, 1)
	// Each NNT at l=1 is the closed neighborhood: sizes 2,3,3,2 = 10.
	if got := f.TotalNodes(); got != 10 {
		t.Fatalf("TotalNodes = %d; want 10", got)
	}
}

func TestPathUsesEdge(t *testing.T) {
	g := pathGraph(t, 3)
	f := NewForest(g, 2)
	root := f.Tree(0)
	child := root.Children[0]  // vertex 1
	grand := child.Children[0] // vertex 2
	if !grand.PathUsesEdge(0, 1) || !grand.PathUsesEdge(1, 0) {
		t.Fatal("path 0→1→2 should use edge {0,1} in both orientations")
	}
	if grand.PathUsesEdge(0, 2) {
		t.Fatal("path 0→1→2 does not use edge {0,2}")
	}
	if root.PathUsesEdge(0, 1) {
		t.Fatal("empty root path uses no edges")
	}
}
