package nnt

import "nntstream/internal/graph"

// This file implements the branch-compatibility relation of Lemma 4.1: if a
// query graph Q is subgraph-isomorphic to a data graph G, then for every
// vertex u of Q some vertex v of G exists whose NNT contains every branch
// (root-path label sequence) of NNT(u). Branch compatibility is a strictly
// stronger filter than NPV dominance — the projection of Section IV-A
// deliberately trades some of its pruning power for constant-time vector
// comparisons — so it is kept here both as a reference filter and for the
// ablation experiment quantifying that trade-off.

// branchKey identifies a labeled tree-edge step: the edge label followed by
// the child vertex label.
type branchKey struct {
	Edge  graph.Label
	Child graph.Label
}

// Trie is the label-trie of an NNT: children of one tree node that carry the
// same (edge label, vertex label) step are merged, so a root-path label
// sequence exists in the tree iff it exists in the trie.
type Trie struct {
	RootLabel graph.Label
	children  map[branchKey]*Trie
}

// BuildTrie collapses the subtree rooted at n into its label trie.
func BuildTrie(n *Node) *Trie {
	t := &Trie{RootLabel: n.VLabel}
	t.merge(n)
	return t
}

func (t *Trie) merge(n *Node) {
	for _, c := range n.Children {
		key := branchKey{Edge: c.EdgeLabel, Child: c.VLabel}
		child, ok := t.children[key]
		if !ok {
			if t.children == nil {
				t.children = make(map[branchKey]*Trie, len(n.Children))
			}
			child = &Trie{RootLabel: c.VLabel}
			t.children[key] = child
		}
		child.merge(c)
	}
}

// ContainsBranches reports whether every branch of the tree rooted at n is a
// path of the trie. Root labels must agree.
func (t *Trie) ContainsBranches(n *Node) bool {
	if t.RootLabel != n.VLabel {
		return false
	}
	return t.containsRec(n)
}

func (t *Trie) containsRec(n *Node) bool {
	for _, c := range n.Children {
		sub, ok := t.children[branchKey{Edge: c.EdgeLabel, Child: c.VLabel}]
		if !ok {
			return false
		}
		if !sub.containsRec(c) {
			return false
		}
	}
	return true
}

// BranchCompatible reports whether NNT q is branch-compatible with NNT g:
// the roots carry the same label and every branch of q occurs in g. This is
// the one-shot form; filters that test one data tree against many query
// trees should BuildTrie once and reuse it.
func BranchCompatible(q, g *Node) bool {
	return BuildTrie(g).ContainsBranches(q)
}
