package nnt

import (
	"sort"

	"nntstream/internal/graph"
)

// This file implements the branch-compatibility relation of Lemma 4.1: if a
// query graph Q is subgraph-isomorphic to a data graph G, then for every
// vertex u of Q some vertex v of G exists whose NNT contains every branch
// (root-path label sequence) of NNT(u). Branch compatibility is a strictly
// stronger filter than NPV dominance — the projection of Section IV-A
// deliberately trades some of its pruning power for constant-time vector
// comparisons — so it is kept here both as a reference filter and for the
// ablation experiment quantifying that trade-off.

// branchKey identifies a labeled tree-edge step: the edge label followed by
// the child vertex label.
type branchKey struct {
	Edge  graph.Label
	Child graph.Label
}

// Trie is the label-trie of an NNT: children of one tree node that carry the
// same (edge label, vertex label) step are merged, so a root-path label
// sequence exists in the tree iff it exists in the trie.
type Trie struct {
	RootLabel graph.Label
	children  map[branchKey]*Trie
}

// BuildTrie collapses the subtree rooted at n into its label trie.
func BuildTrie(n *Node) *Trie {
	t := &Trie{RootLabel: n.VLabel}
	t.merge(n)
	return t
}

func (t *Trie) merge(n *Node) {
	for _, c := range n.Children {
		key := branchKey{Edge: c.EdgeLabel, Child: c.VLabel}
		child, ok := t.children[key]
		if !ok {
			if t.children == nil {
				t.children = make(map[branchKey]*Trie, len(n.Children))
			}
			child = &Trie{RootLabel: c.VLabel}
			t.children[key] = child
		}
		child.merge(c)
	}
}

// ContainsBranches reports whether every branch of the tree rooted at n is a
// path of the trie. Root labels must agree.
func (t *Trie) ContainsBranches(n *Node) bool {
	if t.RootLabel != n.VLabel {
		return false
	}
	return t.containsRec(n)
}

func (t *Trie) containsRec(n *Node) bool {
	for _, c := range n.Children {
		sub, ok := t.children[branchKey{Edge: c.EdgeLabel, Child: c.VLabel}]
		if !ok {
			return false
		}
		if !sub.containsRec(c) {
			return false
		}
	}
	return true
}

// BranchCompatible reports whether NNT q is branch-compatible with NNT g:
// the roots carry the same label and every branch of q occurs in g. This is
// the one-shot form; filters that test one data tree against many query
// trees should BuildTrie once and reuse it.
func BranchCompatible(q, g *Node) bool {
	return BuildTrie(g).ContainsBranches(q)
}

// Canonical returns a deterministic encoding of the trie: two tries have
// equal encodings iff they admit exactly the same branch sets, which makes
// the encoding an interning key — query NNTs with equal canonical tries
// have identical ContainsBranches verdicts against every data tree, so a
// filter serving many template-derived queries can compute each distinct
// trie's verdict once and share it. Children are emitted in sorted key
// order, so map iteration never leaks into the encoding.
func (t *Trie) Canonical() string {
	var b []byte
	b = t.appendCanonical(b)
	return string(b)
}

func (t *Trie) appendCanonical(b []byte) []byte {
	b = appendUvarint(b, uint64(t.RootLabel))
	keys := make([]branchKey, 0, len(t.children))
	for k := range t.children {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Edge != keys[j].Edge {
			return keys[i].Edge < keys[j].Edge
		}
		return keys[i].Child < keys[j].Child
	})
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendUvarint(b, uint64(k.Edge))
		b = t.children[k].appendCanonical(b)
	}
	return b
}

// appendUvarint is binary.AppendUvarint without the import.
func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}
