package nnt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

func TestBranchCompatibleBasic(t *testing.T) {
	// Query: star A(B,C). Data: A(B,C,D). Every branch of the query star
	// occurs in the data star.
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {0, 2, 0}})
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2, 3: 3},
		[][3]int{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}})
	fq := NewForest(q, 2)
	fg := NewForest(g, 2)
	if !BranchCompatible(fq.Tree(0), fg.Tree(0)) {
		t.Fatal("query star should be branch-compatible with data star")
	}
	// Reverse direction fails: data has a branch to label 3 the query lacks
	// — wait, compatibility only requires q's branches in g, so the reverse
	// asks whether A(B,C,D)'s branches all occur in A(B,C): the D branch
	// does not.
	if BranchCompatible(fg.Tree(0), fq.Tree(0)) {
		t.Fatal("data star must not be branch-compatible with smaller query star")
	}
}

func TestBranchCompatibleRootLabel(t *testing.T) {
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 5}, nil)
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 6}, nil)
	fq := NewForest(q, 2)
	fg := NewForest(g, 2)
	if BranchCompatible(fq.Tree(0), fg.Tree(0)) {
		t.Fatal("different root labels cannot be branch-compatible")
	}
	if !BranchCompatible(fq.Tree(0), fq.Tree(0)) {
		t.Fatal("tree is branch-compatible with itself")
	}
}

func TestBranchCompatibleEdgeLabels(t *testing.T) {
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1},
		[][3]int{{0, 1, 7}})
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1},
		[][3]int{{0, 1, 8}})
	fq := NewForest(q, 2)
	fg := NewForest(g, 2)
	if BranchCompatible(fq.Tree(0), fg.Tree(0)) {
		t.Fatal("edge labels must participate in branch compatibility")
	}
}

func TestTrieMergesParallelBranches(t *testing.T) {
	// Data: center A with two B leaves, one of which continues to C.
	// Query: A→B→C. The trie must merge the two A→B steps so the query
	// branch A→B→C is found through the continuing leaf.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1, 3: 2},
		[][3]int{{0, 1, 0}, {0, 2, 0}, {2, 3, 0}})
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}})
	fg := NewForest(g, 2)
	fq := NewForest(q, 2)
	if !BranchCompatible(fq.Tree(0), fg.Tree(0)) {
		t.Fatal("trie must merge equal-label branches")
	}
}

// TestQuickLemma41NoFalseNegatives is the paper's Lemma 4.1 as a property:
// whenever Q is subgraph-isomorphic to G, every query vertex has a
// branch-compatible data vertex.
func TestQuickLemma41NoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(r, 5+r.Intn(7), 3)
		q := randomSubgraph(r, g)
		if q.VertexCount() == 0 {
			return true
		}
		if !iso.Contains(q, g) {
			// Should not happen (q is an actual subgraph), but if the
			// sampling produced something odd, skip.
			return true
		}
		fq := NewForest(q, 3)
		fg := NewForest(g, 3)
		ok := true
		fq.Roots(func(_ graph.VertexID, qroot *Node) bool {
			found := false
			fg.Roots(func(_ graph.VertexID, groot *Node) bool {
				if BranchCompatible(qroot, groot) {
					found = true
					return false
				}
				return true
			})
			if !found {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// randomConnectedGraph generates a connected random graph: a random spanning
// tree plus extra edges.
func randomConnectedGraph(r *rand.Rand, n, labels int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		j := r.Intn(i)
		_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
	}
	extra := r.Intn(n)
	for k := 0; k < extra; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
		}
	}
	return g
}

// randomSubgraph extracts a random connected subgraph of g by growing an
// edge set from a random start vertex.
func randomSubgraph(r *rand.Rand, g *graph.Graph) *graph.Graph {
	ids := g.VertexIDs()
	if len(ids) == 0 {
		return graph.New()
	}
	start := ids[r.Intn(len(ids))]
	sub := graph.New()
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	wantEdges := 1 + r.Intn(g.EdgeCount()+1)
	frontier := []graph.VertexID{start}
	for sub.EdgeCount() < wantEdges && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			// v is exhausted; drop it from the frontier.
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return sub
}
