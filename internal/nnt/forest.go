package nnt

import (
	"fmt"

	"nntstream/internal/graph"
)

// Observer receives structural notifications as the forest changes. The NPV
// projection layer subscribes to maintain node-projected vectors
// incrementally; level, parent label, edge label, and child label are
// exactly the components of a projection dimension (Definition 4.1).
type Observer interface {
	// TreeAdded fires when a new vertex, and hence a new (initially
	// single-node) NNT, enters the graph.
	TreeAdded(root graph.VertexID, rootLabel graph.Label)
	// TreeRemoved fires when a vertex is retired along with its NNT. All
	// TreeEdgeRemoved events for the tree fire before this.
	TreeRemoved(root graph.VertexID)
	// TreeEdgeAdded fires for every tree edge appended to the NNT of root.
	// level is the depth of the child endpoint (≥ 1).
	TreeEdgeAdded(root graph.VertexID, level int, parentLabel, edgeLabel, childLabel graph.Label)
	// TreeEdgeRemoved mirrors TreeEdgeAdded for deletions.
	TreeEdgeRemoved(root graph.VertexID, level int, parentLabel, edgeLabel, childLabel graph.Label)
}

// Forest maintains the node-neighbor trees of every vertex of one evolving
// graph. It owns its graph copy; drive it exclusively through Apply (or
// ApplySet) so that trees and graph stay synchronized.
type Forest struct {
	g     *graph.Graph
	depth int
	roots map[graph.VertexID]*Node
	// nodeIdx is the node-tree index I_n: the head of the intrusive list
	// of all appearances of a graph vertex as tree nodes (roots included)
	// across all trees.
	nodeIdx map[graph.VertexID]*Node
	// edgeIdx is the edge-tree index I_e: the head of the intrusive list
	// of all appearances of a graph edge as tree edges, each identified by
	// the child endpoint.
	edgeIdx map[graph.Edge]*Node
	obs     []Observer
}

// NewForest builds the forest for an initial graph. The graph is cloned;
// subsequent evolution goes through Apply. depth is the paper's l; the
// evaluation (Fig. 12) finds l=3 sufficient, which callers typically use.
func NewForest(g *graph.Graph, depth int, obs ...Observer) *Forest {
	if depth < 1 {
		panic(fmt.Sprintf("nnt: depth must be ≥ 1, got %d", depth))
	}
	f := &Forest{
		g:       g.Clone(),
		depth:   depth,
		roots:   make(map[graph.VertexID]*Node, g.VertexCount()),
		nodeIdx: make(map[graph.VertexID]*Node, g.VertexCount()),
		edgeIdx: make(map[graph.Edge]*Node, g.EdgeCount()),
		obs:     obs,
	}
	f.g.Vertices(func(v graph.VertexID, l graph.Label) bool {
		f.addRoot(v, l)
		return true
	})
	for v, root := range f.roots {
		_ = v
		f.expand(root)
	}
	return f
}

// Depth returns the depth bound l.
func (f *Forest) Depth() int { return f.depth }

// Graph returns the forest's current graph. Callers must not mutate it.
func (f *Forest) Graph() *graph.Graph { return f.g }

// Tree returns the NNT root for vertex v, or nil when v is absent.
func (f *Forest) Tree(v graph.VertexID) *Node { return f.roots[v] }

// Roots calls fn for every tree root. Iteration order is unspecified.
func (f *Forest) Roots(fn func(v graph.VertexID, root *Node) bool) {
	for v, r := range f.roots {
		if !fn(v, r) {
			return
		}
	}
}

// TotalNodes returns the number of tree nodes across all NNTs, a direct
// measure of the feature structure's memory footprint.
func (f *Forest) TotalNodes() int {
	total := 0
	for _, r := range f.roots {
		total += r.Size()
	}
	return total
}

func (f *Forest) addRoot(v graph.VertexID, l graph.Label) *Node {
	root := &Node{Vertex: v, VLabel: l, Root: v}
	f.roots[v] = root
	f.indexNode(root)
	for _, o := range f.obs {
		o.TreeAdded(v, l)
	}
	return root
}

func (f *Forest) indexNode(n *Node) {
	// Push-front onto the vertex appearance list.
	if head := f.nodeIdx[n.Vertex]; head != nil {
		n.nodeNext = head
		head.nodePrev = n
	}
	f.nodeIdx[n.Vertex] = n
	if n.Parent != nil {
		e := graph.Edge{U: n.Parent.Vertex, V: n.Vertex}.Canonical()
		if head := f.edgeIdx[e]; head != nil {
			n.edgeNext = head
			head.edgePrev = n
		}
		f.edgeIdx[e] = n
	}
}

func (f *Forest) unindexNode(n *Node) {
	// Unlink from the vertex appearance list.
	if n.nodePrev != nil {
		n.nodePrev.nodeNext = n.nodeNext
	} else if f.nodeIdx[n.Vertex] == n {
		if n.nodeNext != nil {
			f.nodeIdx[n.Vertex] = n.nodeNext
		} else {
			delete(f.nodeIdx, n.Vertex)
		}
	}
	if n.nodeNext != nil {
		n.nodeNext.nodePrev = n.nodePrev
	}
	n.nodePrev, n.nodeNext = nil, nil

	if n.Parent != nil {
		e := graph.Edge{U: n.Parent.Vertex, V: n.Vertex}.Canonical()
		if n.edgePrev != nil {
			n.edgePrev.edgeNext = n.edgeNext
		} else if f.edgeIdx[e] == n {
			if n.edgeNext != nil {
				f.edgeIdx[e] = n.edgeNext
			} else {
				delete(f.edgeIdx, e)
			}
		}
		if n.edgeNext != nil {
			n.edgeNext.edgePrev = n.edgePrev
		}
		n.edgePrev, n.edgeNext = nil, nil
	}
}

// addChild appends a tree edge parent→(vertex) and returns the new child.
func (f *Forest) addChild(parent *Node, v graph.VertexID, vl, el graph.Label) *Node {
	child := &Node{
		Vertex:    v,
		VLabel:    vl,
		EdgeLabel: el,
		Depth:     parent.Depth + 1,
		Parent:    parent,
		Root:      parent.Root,
	}
	parent.Children = append(parent.Children, child)
	f.indexNode(child)
	for _, o := range f.obs {
		o.TreeEdgeAdded(child.Root, child.Depth, parent.VLabel, el, vl)
	}
	return child
}

// expand grows the subtree under n with every simple-path extension allowed
// by the current graph and the depth bound.
func (f *Forest) expand(n *Node) {
	if n.Depth >= f.depth {
		return
	}
	f.g.Neighbors(n.Vertex, func(u graph.VertexID, el graph.Label) bool {
		if n.PathUsesEdge(n.Vertex, u) {
			return true
		}
		child := f.addChild(n, u, f.g.MustVertexLabel(u), el)
		f.expand(child)
		return true
	})
}

// removeSubtree detaches and unindexes the subtree rooted at n (which must
// not be a tree root), firing TreeEdgeRemoved bottom-up for each tree edge.
func (f *Forest) removeSubtree(n *Node) {
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	f.destroy(n, p)
}

// destroy unindexes n and its descendants. The caller has already detached n
// from parent.Children; descendants are dropped wholesale, so they are never
// individually detached (doing so would mutate a slice the recursion is
// iterating).
func (f *Forest) destroy(n *Node, parent *Node) {
	for _, c := range n.Children {
		f.destroy(c, n)
	}
	n.Children = nil
	f.unindexNode(n) // uses n.Parent for the edge key; clear it after
	n.Parent = nil
	for _, o := range f.obs {
		o.TreeEdgeRemoved(n.Root, n.Depth, parent.VLabel, n.EdgeLabel, n.VLabel)
	}
}

// deleteEdgeTrees implements the paper's Delete-Edge procedure: every
// appearance of graph edge {u,v} as a tree edge is located through the
// edge-tree index and its subtree is removed. The list is snapshotted
// first because subtree removal unlinks deeper appearances of the same
// edge; snapshotted nodes already detached by an earlier removal are
// recognized by their nil Parent and skipped.
func (f *Forest) deleteEdgeTrees(u, v graph.VertexID) {
	key := graph.Edge{U: u, V: v}.Canonical()
	var snap []*Node
	for n := f.edgeIdx[key]; n != nil; n = n.edgeNext {
		snap = append(snap, n)
	}
	for _, child := range snap {
		if child.Parent == nil {
			continue // already removed as part of an earlier subtree
		}
		f.removeSubtree(child)
	}
}

// insertEdgeTrees implements the paper's Insert-Edge procedure. The graph
// must already contain the edge. Appearance lists of both endpoints are
// snapshotted first: every new simple path crosses the new edge exactly
// once, and its prefix up to the crossing is a pre-existing path, i.e. a
// snapshotted appearance of a or b.
func (f *Forest) insertEdgeTrees(a, b graph.VertexID, el graph.Label) {
	al := f.g.MustVertexLabel(a)
	bl := f.g.MustVertexLabel(b)
	appA := snapshot(f.nodeIdx[a])
	appB := snapshot(f.nodeIdx[b])
	for _, n := range appA {
		if n.Depth < f.depth {
			child := f.addChild(n, b, bl, el)
			f.expand(child)
		}
	}
	for _, n := range appB {
		if n.Depth < f.depth {
			child := f.addChild(n, a, al, el)
			f.expand(child)
		}
	}
}

func snapshot(head *Node) []*Node {
	var out []*Node
	for n := head; n != nil; n = n.nodeNext {
		out = append(out, n)
	}
	return out
}

// Apply advances the forest by one change operation, mutating its graph and
// trees in lock-step.
func (f *Forest) Apply(op graph.ChangeOp) error {
	switch op.Kind {
	case graph.OpInsert:
		if l, ok := f.g.VertexLabel(op.U); ok && l != op.ULabel {
			return fmt.Errorf("nnt: vertex %d relabel %d→%d not supported", op.U, l, op.ULabel)
		}
		if l, ok := f.g.VertexLabel(op.V); ok && l != op.VLabel {
			return fmt.Errorf("nnt: vertex %d relabel %d→%d not supported", op.V, l, op.VLabel)
		}
		if !f.g.HasVertex(op.U) {
			if err := f.g.AddVertex(op.U, op.ULabel); err != nil {
				return err
			}
			f.addRoot(op.U, op.ULabel)
		}
		if !f.g.HasVertex(op.V) {
			if err := f.g.AddVertex(op.V, op.VLabel); err != nil {
				return err
			}
			f.addRoot(op.V, op.VLabel)
		}
		if f.g.HasEdge(op.U, op.V) {
			return nil // idempotent re-insert
		}
		if err := f.g.AddEdge(op.U, op.V, op.EdgeLabel); err != nil {
			return err
		}
		f.insertEdgeTrees(op.U, op.V, op.EdgeLabel)
		return nil
	case graph.OpDelete:
		if !f.g.HasEdge(op.U, op.V) {
			return nil
		}
		f.deleteEdgeTrees(op.U, op.V)
		f.g.RemoveEdge(op.U, op.V)
		for _, v := range [2]graph.VertexID{op.U, op.V} {
			if f.g.HasVertex(v) && f.g.Degree(v) == 0 {
				f.removeRoot(v)
				f.g.RemoveVertex(v)
			}
		}
		return nil
	default:
		return fmt.Errorf("nnt: unknown op kind %d", op.Kind)
	}
}

func (f *Forest) removeRoot(v graph.VertexID) {
	root := f.roots[v]
	if root == nil {
		return
	}
	if len(root.Children) != 0 {
		// An isolated vertex cannot have tree children; if it does, the
		// forest diverged from the graph — fail loudly.
		panic(fmt.Sprintf("nnt: removing root %d with %d children", v, len(root.Children)))
	}
	f.unindexNode(root)
	delete(f.roots, v)
	for _, o := range f.obs {
		o.TreeRemoved(v)
	}
}

// ApplySet applies a full change set, deletions before insertions per the
// paper's processing order.
func (f *Forest) ApplySet(cs graph.ChangeSet) error {
	for _, op := range cs.Normalize() {
		if err := f.Apply(op); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants validates internal consistency: tree structure, depth
// bounds, simple-path property, index completeness, and agreement with the
// graph. It is O(forest size) and meant for tests and debugging.
func (f *Forest) CheckInvariants() error {
	// Every graph vertex has a tree and vice versa.
	if len(f.roots) != f.g.VertexCount() {
		return fmt.Errorf("nnt: %d roots for %d vertices", len(f.roots), f.g.VertexCount())
	}
	nodeSeen := make(map[*Node]bool)
	edgeSeen := make(map[*Node]bool)
	for v, root := range f.roots {
		if root.Vertex != v || root.Root != v || root.Depth != 0 || root.Parent != nil {
			return fmt.Errorf("nnt: malformed root for %d", v)
		}
		if l, ok := f.g.VertexLabel(v); !ok || l != root.VLabel {
			return fmt.Errorf("nnt: root %d label mismatch", v)
		}
		var walk func(n *Node) error
		walk = func(n *Node) error {
			nodeSeen[n] = true
			if n.Parent != nil {
				edgeSeen[n] = true
				if n.Depth != n.Parent.Depth+1 {
					return fmt.Errorf("nnt: bad depth at %v", n.Vertex)
				}
				if n.Depth > f.depth {
					return fmt.Errorf("nnt: depth %d exceeds bound %d", n.Depth, f.depth)
				}
				el, ok := f.g.EdgeLabel(n.Parent.Vertex, n.Vertex)
				if !ok || el != n.EdgeLabel {
					return fmt.Errorf("nnt: tree edge (%d,%d) not in graph or label mismatch", n.Parent.Vertex, n.Vertex)
				}
				if n.Parent.PathUsesEdge(n.Parent.Vertex, n.Vertex) {
					return fmt.Errorf("nnt: repeated edge on path to %d in tree %d", n.Vertex, n.Root)
				}
			}
			if n.Root != v {
				return fmt.Errorf("nnt: node in tree %d claims root %d", v, n.Root)
			}
			if !listContains(f.nodeIdx[n.Vertex], n, false) {
				return fmt.Errorf("nnt: appearance of %d missing from node index", n.Vertex)
			}
			if n.Parent != nil {
				e := graph.Edge{U: n.Parent.Vertex, V: n.Vertex}.Canonical()
				if !listContains(f.edgeIdx[e], n, true) {
					return fmt.Errorf("nnt: appearance of edge %v missing from edge index", e)
				}
			}
			for _, c := range n.Children {
				if c.Parent != n {
					return fmt.Errorf("nnt: child of %d has wrong parent", n.Vertex)
				}
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(root); err != nil {
			return err
		}
	}
	// Indexes contain no stale entries and the lists are well-linked.
	for v, head := range f.nodeIdx {
		var prev *Node
		for n := head; n != nil; n = n.nodeNext {
			if !nodeSeen[n] {
				return fmt.Errorf("nnt: stale node-index entry for vertex %d", v)
			}
			if n.nodePrev != prev {
				return fmt.Errorf("nnt: broken node list for vertex %d", v)
			}
			prev = n
		}
	}
	for e, head := range f.edgeIdx {
		var prev *Node
		for n := head; n != nil; n = n.edgeNext {
			if !edgeSeen[n] {
				return fmt.Errorf("nnt: stale edge-index entry for %v", e)
			}
			if n.edgePrev != prev {
				return fmt.Errorf("nnt: broken edge list for %v", e)
			}
			prev = n
		}
	}
	return nil
}

// listContains walks an intrusive appearance list looking for n.
func listContains(head, n *Node, edgeList bool) bool {
	for cur := head; cur != nil; {
		if cur == n {
			return true
		}
		if edgeList {
			cur = cur.edgeNext
		} else {
			cur = cur.nodeNext
		}
	}
	return false
}
