package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name. pkgPath may be a full import path or a module-relative
// suffix such as "internal/wal".
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// pkgIdentOf returns the package name when e is a plain package-qualifier
// ident (e.g. "os" in os.ReadFile), or "".
func pkgIdentOf(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// rootIdent peels selectors, parens, and indexing down to the leftmost
// identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// exprKey renders an expression as a stable string key (e.g. "m.mu").
func exprKey(e ast.Expr) string { return types.ExprString(e) }

// stmtLists invokes fn for every statement list in the function body:
// blocks, case clauses, and select communication clauses.
func stmtLists(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}

// walkShallow walks n without descending into nested function literals —
// the traversal for per-function analyses.
func walkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// containsReturn reports whether any statement in n (outside nested
// function literals) can exit the enclosing function or jump out of the
// region: a return, a goto, or a labeled break/continue. Unlabeled breaks
// stay within their innermost loop/switch, which is inside the region.
func containsReturn(n ast.Node) bool {
	found := false
	walkShallow(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if s.Tok == token.GOTO || s.Label != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// eachFuncBody invokes fn for every function body in the file: declarations
// and function literals, each exactly once.
func eachFuncBody(file *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(nil, d.Body)
		}
		return true
	})
}
