package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc is the allocation gate for the per-timestamp evaluation path:
// functions annotated
//
//	//nnt:hotpath
//
// in their doc comment must not contain allocating constructs, and must not
// call unannotated module functions that do — the check is transitive over
// the static call graph. Calls from one annotated function into another are
// not re-traversed (the callee is verified on its own), so the annotation
// set forms a closed zero-alloc region whose verdicts line up with
// benchgate's allocs_per_op gates.
//
// Flagged constructs: make, new, append, slice and map literals, &composite
// (heap-escaping pointer literals), string concatenation, string<->[]byte
// conversions, `go` statements, closures that escape (stored or returned;
// closures passed directly as call arguments are stack-allocated by Go's
// escape analysis and are scanned rather than flagged), and calls into
// known-allocating stdlib helpers (fmt, errors.New, strings/strconv
// builders, sort.Slice). Value struct literals and map writes are not
// flagged. Conservative sites are silenced with
// //lint:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//nnt:hotpath functions must not allocate, transitively",
	Run:  runHotAlloc,
}

// allocOp is one direct allocating construct inside a function.
type allocOp struct {
	desc string
	pos  token.Pos
}

// allocInfo caches one function's direct allocations and the memo of its
// transitive result.
type allocInfo struct {
	ops       []allocOp
	reach     *reachResult
	reachDone bool
}

func (m *Module) allocInfoOf(node *FuncNode) *allocInfo {
	if m.allocMemo == nil {
		m.allocMemo = make(map[*types.Func]*allocInfo)
	}
	if ai, ok := m.allocMemo[node.Fn]; ok {
		return ai
	}
	ai := &allocInfo{}
	info := node.Pkg.Info

	// Calls into known-allocating foreign helpers.
	for _, cs := range node.Calls {
		if m.Graph().Node(cs.Callee) != nil {
			continue
		}
		if allocatingCallee(cs.Callee) {
			ai.ops = append(ai.ops, allocOp{desc: "call to " + shortFunc(cs.Callee) + " allocates", pos: cs.Call.Pos()})
		}
	}

	argLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			ai.ops = append(ai.ops, allocOp{desc: "go statement allocates a goroutine", pos: s.Pos()})
		case *ast.CallExpr:
			for _, arg := range s.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					argLits[fl] = true
				}
			}
			switch fun := ast.Unparen(s.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						ai.ops = append(ai.ops, allocOp{desc: b.Name() + " allocates", pos: s.Pos()})
					}
				}
			}
			if tv, ok := info.Types[s.Fun]; ok && tv.IsType() && len(s.Args) == 1 {
				to := tv.Type.Underlying()
				from := info.TypeOf(s.Args[0])
				if from != nil && isStringByteConv(to, from.Underlying()) {
					ai.ops = append(ai.ops, allocOp{desc: "string/[]byte conversion allocates", pos: s.Pos()})
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(s).Underlying().(type) {
			case *types.Slice:
				ai.ops = append(ai.ops, allocOp{desc: "slice literal allocates", pos: s.Pos()})
			case *types.Map:
				ai.ops = append(ai.ops, allocOp{desc: "map literal allocates", pos: s.Pos()})
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
					ai.ops = append(ai.ops, allocOp{desc: "&composite literal escapes to the heap", pos: s.Pos()})
				}
			}
		case *ast.BinaryExpr:
			if s.Op == token.ADD && isStringType(info.TypeOf(s.X)) {
				ai.ops = append(ai.ops, allocOp{desc: "string concatenation allocates", pos: s.Pos()})
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isStringType(info.TypeOf(s.Lhs[0])) {
				ai.ops = append(ai.ops, allocOp{desc: "string concatenation allocates", pos: s.Pos()})
			}
		case *ast.FuncLit:
			if !argLits[s] {
				ai.ops = append(ai.ops, allocOp{desc: "escaping closure allocates", pos: s.Pos()})
			}
		}
		return true
	})
	sortAllocOps(ai.ops)
	m.allocMemo[node.Fn] = ai
	return ai
}

func sortAllocOps(ops []allocOp) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].pos < ops[j-1].pos; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConv reports whether a conversion between to and from crosses
// the string/byte-slice (or rune-slice) boundary, which copies.
func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteish(from)) || (isByteish(to) && isStr(from))
}

// allocatingCallee classifies a foreign callee as known-allocating.
func allocatingCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "fmt":
		return true
	case "errors":
		return fn.Name() == "New"
	case "strings":
		switch fn.Name() {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "SplitN",
			"Fields", "ToUpper", "ToLower", "Map", "Title":
			return true
		}
	case "strconv":
		switch fn.Name() {
		case "Itoa", "Quote", "FormatInt", "FormatUint", "FormatFloat", "FormatBool":
			return true
		}
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	}
	return false
}

// allocReaches resolves whether node can reach an allocating construct
// through non-concurrent module calls, cutting at //nnt:hotpath callees
// (verified on their own).
func (m *Module) allocReaches(node *FuncNode, visiting map[*types.Func]bool) *reachResult {
	ai := m.allocInfoOf(node)
	if ai.reachDone {
		return ai.reach
	}
	if visiting[node.Fn] {
		return nil
	}
	visiting[node.Fn] = true
	defer delete(visiting, node.Fn)

	if len(ai.ops) > 0 {
		ai.reach = &reachResult{desc: ai.ops[0].desc}
		ai.reachDone = true
		return ai.reach
	}
	for _, cs := range node.Calls {
		if cs.Concurrent {
			continue
		}
		callee := m.Graph().Node(cs.Callee)
		if callee == nil || callee.Hotpath {
			continue
		}
		if r := m.allocReaches(callee, visiting); r != nil {
			ai.reach = &reachResult{
				desc: r.desc,
				path: append([]string{shortFunc(cs.Callee)}, r.path...),
			}
			ai.reachDone = true
			return ai.reach
		}
	}
	ai.reachDone = true
	return nil
}

func runHotAlloc(p *Pass) {
	m := p.Module
	for _, node := range m.Graph().Ordered() {
		if node.Pkg != p.Pkg || !node.Hotpath {
			continue
		}
		ai := m.allocInfoOf(node)
		for _, op := range ai.ops {
			p.Reportf(op.pos, "%s in //nnt:hotpath function %s", op.desc, shortFunc(node.Fn))
		}
		reported := make(map[token.Pos]bool)
		for _, cs := range node.Calls {
			pos := cs.Call.Pos()
			if cs.Concurrent || reported[pos] {
				continue
			}
			callee := m.Graph().Node(cs.Callee)
			if callee == nil || callee.Hotpath {
				continue
			}
			if r := m.allocReaches(callee, map[*types.Func]bool{node.Fn: true}); r != nil {
				chain := append([]string{shortFunc(cs.Callee)}, r.path...)
				p.Reportf(pos, "//nnt:hotpath function %s calls %s which allocates: %s (%s)",
					shortFunc(node.Fn), shortFunc(cs.Callee), strings.Join(chain, " -> "), r.desc)
				reported[pos] = true
			}
		}
	}
}
