package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// quotedRe extracts the backtick-quoted regexes of a "// want" expectation
// comment. Backticks keep regex metacharacters and quoted message fragments
// readable in the fixtures.
var quotedRe = regexp.MustCompile("`([^`]*)`")

// testFixture runs one analyzer over its testdata/src/<name> package and
// checks the findings against the fixture's `// want "regex"` comments: every
// finding must match a want on its line, and every want must be consumed.
func testFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", a.Name))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[int][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				ms := quotedRe.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", a.Name, line, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", a.Name, line, m[1], err)
					}
					wants[line] = append(wants[line], &want{re: re})
				}
			}
		}
	}

	for _, f := range RunAnalyzers([]*Package{pkg}, []*Analyzer{a}) {
		matched := false
		for _, w := range wants[f.Pos.Line] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding on line %d matching %q", a.Name, line, w.re)
			}
		}
	}
}

func TestLockSafeFixture(t *testing.T)    { testFixture(t, LockSafe) }
func TestSentinelErrFixture(t *testing.T) { testFixture(t, SentinelErr) }
func TestMapDetermFixture(t *testing.T)   { testFixture(t, MapDeterm) }
func TestWALOrderFixture(t *testing.T)    { testFixture(t, WALOrder) }
func TestMetricNameFixture(t *testing.T)  { testFixture(t, MetricName) }
func TestBlockHoldFixture(t *testing.T)   { testFixture(t, BlockHold) }
func TestLockOrderFixture(t *testing.T)   { testFixture(t, LockOrder) }
func TestCtxFlowFixture(t *testing.T)     { testFixture(t, CtxFlow) }
func TestHotAllocFixture(t *testing.T)    { testFixture(t, HotAlloc) }

// TestFixturesHaveFlaggedAndCleanCases guards the fixtures themselves: each
// one must exercise both sides of its analyzer.
func TestFixturesHaveFlaggedAndCleanCases(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, a := range Analyzers() {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", a.Name, err)
		}
		findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
		if len(findings) == 0 {
			t.Errorf("%s fixture has no flagged cases", a.Name)
		}
		clean := 0
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "good") {
					clean++
				}
			}
		}
		if clean == 0 {
			t.Errorf("%s fixture has no good* (clean) cases", a.Name)
		}
	}
}
