package analysis

import (
	"go/token"
	"go/types"
)

// CtxFlow enforces that contexts thread end-to-end through request and RPC
// paths instead of being re-rooted midway:
//
//  1. a function that receives a context.Context must not call
//     context.Background() or context.TODO() — it already has the caller's
//     context (detached work spawned with `go` is exempt);
//  2. an HTTP handler holding an *http.Request must derive from r.Context()
//     rather than context.Background();
//  3. a function that receives a context must not drop it at a call
//     boundary: statically calling a module function that takes no context
//     but transitively re-roots one (rule 3 follows the call graph, cutting
//     at ctx-aware callees — their own re-rooting is their own rule-1
//     finding).
//
// Functions with no context parameter (main, daemon loops, constructors)
// may freely create root contexts; that is what Background is for.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions that receive a context must thread it, not re-root with context.Background",
	Run:  runCtxFlow,
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n := namedType(p.Elem())
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
}

// paramKinds classifies a function's parameters (receiver excluded).
func paramKinds(fn *types.Func) (hasCtx, hasReq bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isCtxType(t) {
			hasCtx = true
		}
		if isHTTPRequestPtr(t) {
			hasReq = true
		}
	}
	return hasCtx, hasReq
}

// isCtxRoot reports whether fn is context.Background or context.TODO.
func isCtxRoot(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// rootSites returns the positions of direct, non-concurrent
// context.Background()/TODO() calls in node.
func rootSites(node *FuncNode) []token.Pos {
	var out []token.Pos
	for _, cs := range node.Calls {
		if !cs.Concurrent && isCtxRoot(cs.Callee) {
			out = append(out, cs.Call.Pos())
		}
	}
	return out
}

// rerootsContext reports whether node (which takes no context) reaches a
// context.Background/TODO call through non-concurrent static calls into
// other ctx-less module functions. Traversal cuts at ctx-aware callees and
// at interface dispatch (too coarse to pin on one implementation).
func (m *Module) rerootsContext(node *FuncNode, visiting map[*types.Func]bool) bool {
	if m.rerootMemo == nil {
		m.rerootMemo = make(map[*types.Func]int) // 0 unknown, 1 yes, 2 no
	}
	switch m.rerootMemo[node.Fn] {
	case 1:
		return true
	case 2:
		return false
	}
	if visiting[node.Fn] {
		return false
	}
	visiting[node.Fn] = true
	defer delete(visiting, node.Fn)

	if len(rootSites(node)) > 0 {
		m.rerootMemo[node.Fn] = 1
		return true
	}
	for _, cs := range node.Calls {
		if cs.Concurrent || cs.Interface {
			continue
		}
		callee := m.Graph().Node(cs.Callee)
		if callee == nil {
			continue
		}
		if ctx, _ := paramKinds(callee.Fn); ctx {
			continue
		}
		if m.rerootsContext(callee, visiting) {
			m.rerootMemo[node.Fn] = 1
			return true
		}
	}
	m.rerootMemo[node.Fn] = 2
	return false
}

func runCtxFlow(p *Pass) {
	m := p.Module
	for _, node := range m.Graph().Ordered() {
		if node.Pkg != p.Pkg {
			continue
		}
		hasCtx, hasReq := paramKinds(node.Fn)
		if hasCtx {
			for _, pos := range rootSites(node) {
				p.Reportf(pos, "%s receives a context.Context; thread it instead of re-rooting with context.Background/TODO", shortFunc(node.Fn))
			}
			for _, cs := range node.Calls {
				if cs.Concurrent || cs.Interface {
					continue
				}
				callee := m.Graph().Node(cs.Callee)
				if callee == nil {
					continue
				}
				if ctx, _ := paramKinds(callee.Fn); ctx {
					continue
				}
				if m.rerootsContext(callee, map[*types.Func]bool{node.Fn: true}) {
					p.Reportf(cs.Call.Pos(), "context dropped at call to %s: the callee takes no context and re-roots one with context.Background/TODO", shortFunc(cs.Callee))
				}
			}
			continue
		}
		if hasReq {
			for _, pos := range rootSites(node) {
				p.Reportf(pos, "%s holds an *http.Request; derive from r.Context() instead of context.Background/TODO", shortFunc(node.Fn))
			}
		}
	}
}
