package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WALOrder enforces append-before-apply inside WAL-owning engine types
// (core.DurableEngine): in any method of a struct that holds a *wal.Log,
// a call that mutates engine state must be dominated by a wal.Append — its
// own, lexically earlier, or inherited by running inside the apply closure
// of a helper (like DurableEngine.logged) that appends before invoking it.
// Durability is exactly this ordering: an acknowledged mutation that was
// applied before it was logged is lost by a crash, silently.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc:  "engine mutations inside WAL-owning types are preceded by a wal.Append (append-before-apply)",
	Run:  runWALOrder,
}

// engineMutators are the inner-engine methods that change logical state and
// therefore need a WAL record.
var engineMutators = map[string]bool{
	"AddQuery": true, "RemoveQuery": true, "AddStream": true, "StepAll": true,
	"replayAddQuery": true, "replayAddStream": true,
}

func runWALOrder(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: find append-dominating helpers — functions that take a
	// closure and call wal.Append before invoking it (the logged() shape).
	helpers := make(map[types.Object]bool)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fnObj := info.Defs[fd.Name]; fnObj != nil && isAppendDominatingHelper(info, fd) {
				helpers[fnObj] = true
			}
		}
	}

	// Pass 2: audit methods of WAL-owning structs.
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recvType := info.TypeOf(fd.Recv.List[0].Type)
			if !structHoldsWALLog(recvType) {
				continue
			}
			var recvName string
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				recvName = names[0].Name
			}
			checkWALMethod(p, fd, recvName, helpers)
		}
	}
}

// structHoldsWALLog reports whether t (behind pointers) is a struct with a
// *wal.Log field — the signature of a durability-owning engine type.
func structHoldsWALLog(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isWALLog(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isWALLog(t types.Type) bool { return isNamed(t, "internal/wal", "Log") }

// isAppendDominatingHelper reports whether fd appends to a *wal.Log before
// calling one of its own function-typed parameters.
func isAppendDominatingHelper(info *types.Info, fd *ast.FuncDecl) bool {
	var paramObjs []types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.FuncType); !ok {
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					paramObjs = append(paramObjs, obj)
				}
			}
		}
	}
	if len(paramObjs) == 0 {
		return false
	}
	appendPos, callPos := token.NoPos, token.NoPos
	walkShallow(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Append" && isWALLog(info.TypeOf(sel.X)) {
			if !appendPos.IsValid() || call.Pos() < appendPos {
				appendPos = call.Pos()
			}
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			for _, obj := range paramObjs {
				if info.Uses[id] == obj {
					if !callPos.IsValid() || call.Pos() < callPos {
						callPos = call.Pos()
					}
				}
			}
		}
		return true
	})
	return appendPos.IsValid() && callPos.IsValid() && appendPos < callPos
}

// checkWALMethod flags engine-mutator calls not dominated by an append.
func checkWALMethod(p *Pass, fd *ast.FuncDecl, recvName string, helpers map[types.Object]bool) {
	info := p.Pkg.Info

	// Direct wal.Append positions in this method.
	var appendPositions []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Append" && isWALLog(info.TypeOf(sel.X)) {
				appendPositions = append(appendPositions, call)
			}
		}
		return true
	})

	// Function literals passed to append-dominating helpers: mutator calls
	// inside them inherit the helper's append.
	coveredLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var calleeObj types.Object
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			calleeObj = info.Uses[fn]
		case *ast.SelectorExpr:
			calleeObj = info.Uses[fn.Sel]
		}
		if calleeObj == nil || !helpers[calleeObj] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				coveredLits[lit] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !engineMutators[sel.Sel.Name] {
			return true
		}
		if isWALLog(info.TypeOf(sel.X)) {
			return true // the log itself, not the engine
		}
		root := rootIdent(sel.X)
		if root == nil || root.Name != recvName || exprKey(sel.X) == recvName {
			return true // not a state mutation through the receiver's fields
		}
		// Dominated by a direct append earlier in the method?
		for _, ap := range appendPositions {
			if ap.Pos() < call.Pos() {
				return true
			}
		}
		// Inside a closure passed to an append-dominating helper?
		for lit := range coveredLits {
			if lit.Pos() <= call.Pos() && call.End() <= lit.End() {
				return true
			}
		}
		p.Reportf(call.Pos(), "%s mutates engine state without a preceding wal.Append: append-before-apply is the durability invariant", exprKey(sel))
		return true
	})
}
