// Package analysis is nntlint's dependency-free static analysis framework:
// a module loader built on go/parser and go/types, a small analyzer API,
// and the project-specific analyzers that machine-check the engine's
// concurrency, durability, and determinism invariants (see cmd/nntlint and
// the "Enforced invariants" section of DESIGN.md).
//
// A finding can be suppressed where the code is right and the analyzer is
// conservative, with a reviewed comment on the flagged line or the line
// above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare suppression is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the identifier used in findings and suppression comments.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run reports the analyzer's findings on one package through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) run. Module is shared across every
// pass of one RunAnalyzers invocation: interprocedural analyzers read the
// whole-module call graph from it but report only the findings whose
// position lies in Pkg, so each finding surfaces exactly once.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module
	report   func(Finding)
}

// ownsPos reports whether the pass's package contains pos — the filter the
// whole-module analyzers apply before reporting.
func (p *Pass) ownsPos(pos token.Pos) bool {
	fname := p.Pkg.Fset.Position(pos).Filename
	for _, f := range p.Pkg.Files {
		if p.Pkg.Fset.Position(f.Pos()).Filename == fname {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the full suite in stable order: the five per-package
// analyzers first, then the four interprocedural ones built on the module
// call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockSafe, SentinelErr, MapDeterm, WALOrder, MetricName,
		BlockHold, LockOrder, CtxFlow, HotAlloc,
	}
}

// suppressRe parses "//lint:ignore <analyzer> <reason>". The analyzer field
// is a comma-separated list of analyzer names.
var suppressRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(\s+(.*))?$`)

// suppression marks one //lint:ignore comment.
type suppression struct {
	line      int
	analyzers []string
	reason    string
	pos       token.Pos
}

// fileSuppressions extracts every suppression comment of a file.
func fileSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := suppressRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, suppression{
				line:      fset.Position(c.Pos()).Line,
				analyzers: strings.Split(m[1], ","),
				reason:    strings.TrimSpace(m[3]),
				pos:       c.Pos(),
			})
		}
	}
	return out
}

// RunAnalyzers runs each analyzer over each package, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position. A
// suppression covers findings of the named analyzers on its own line and on
// the line directly below it (the usual comment-above placement); a
// suppression without a reason is itself a finding.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	mod := newModule(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Module:   mod,
				report:   func(f Finding) { raw = append(raw, f) },
			}
			a.Run(pass)
		}
	}

	// Index suppressions by file and line.
	type key struct {
		file string
		line int
		name string
	}
	allowed := make(map[key]bool)
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fname := pkg.Fset.Position(f.Pos()).Filename
			for _, s := range fileSuppressions(pkg.Fset, f) {
				if s.reason == "" {
					findings = append(findings, Finding{
						Pos:      pkg.Fset.Position(s.pos),
						Analyzer: "suppress",
						Message:  "lint:ignore needs a reason: //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				for _, name := range s.analyzers {
					allowed[key{fname, s.line, name}] = true
					allowed[key{fname, s.line + 1, name}] = true
				}
			}
		}
	}
	for _, f := range raw {
		if allowed[key{f.Pos.Filename, f.Pos.Line, f.Analyzer}] {
			continue
		}
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
