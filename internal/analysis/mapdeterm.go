package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDeterm enforces deterministic handling of map iteration. Go randomizes
// map order, so a `for range` over a map that accumulates into a slice or
// feeds an encoder produces a different result every run — which breaks the
// property the durability layer rests on: checkpoints and WAL payloads must
// byte-identically reproduce, or kill-point recovery tests prove nothing.
// The required idiom (collect keys, sort, then emit — see
// internal/core/snapshot.go) is what this analyzer checks for: an
// order-sensitive accumulation must be followed by a sort of the
// accumulated slice in the same block.
var MapDeterm = &Analyzer{
	Name: "mapdeterm",
	Doc:  "map iteration that feeds slices, encoders, or the WAL is sorted before use",
	Run:  runMapDeterm,
}

// encoderMethods are serialization calls whose output order is observable.
var encoderMethods = map[string]bool{
	"Encode": true, "EncodeToken": true, "Marshal": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapDeterm(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		eachFuncBody(file, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			walkShallow(body, func(n ast.Node) bool {
				if rs, ok := n.(*ast.RangeStmt); ok && isMapRange(info, rs) {
					checkMapRange(p, rs, body)
				}
				return true
			})
		})
	}
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order-sensitive sinks and,
// for slice accumulations, demands a sort later in the enclosing function.
// Nested map ranges are not descended into: the walk that found this range
// checks them on their own, so each accumulation is reported exactly once,
// at its innermost order-dependent loop.
func checkMapRange(p *Pass, rs *ast.RangeStmt, body *ast.BlockStmt) {
	info := p.Pkg.Info
	// appends maps the rendered slice expression to the append position.
	appends := make(map[string]ast.Expr)
	walkShallow(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(info, inner) {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for k, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					continue
				}
				if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
					continue
				}
				lhs := x.Lhs[k]
				key := sliceKey(lhs)
				if key != sliceKey(call.Args[0]) {
					continue // s = append(t, ...): not an accumulation of s
				}
				if declaredWithin(info, lhs, rs) {
					continue // per-iteration slice; order resets every pass
				}
				if _, seen := appends[key]; !seen {
					appends[key] = lhs
				}
			}
		case *ast.CallExpr:
			if desc := serializationSink(info, x); desc != "" {
				p.Reportf(x.Pos(), "map iteration feeds %s: serialization must not depend on map order; collect and sort keys first (see internal/core/snapshot.go)", desc)
			}
		}
		return true
	})
	for key, lhs := range appends {
		if !sortedIn(info, body, key, rs.End()) {
			p.Reportf(lhs.Pos(), "%s accumulates entries in map-iteration order with no following sort; sort it before use (see internal/core/snapshot.go)", key)
		}
	}
}

// declaredWithin reports whether e is an identifier whose declaration lies
// inside the range statement itself.
func declaredWithin(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// serializationSink classifies calls inside a map-range body whose ordering
// is durably observable: encoder/writer methods, fmt.Fprint*, and WAL
// appends.
func serializationSink(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if pkg := pkgIdentOf(info, sel.X); pkg == "fmt" && strings.HasPrefix(name, "Fprint") {
		return "fmt." + name
	}
	if isNamed(info.TypeOf(sel.X), "internal/wal", "Log") && name == "Append" {
		return "(*wal.Log).Append"
	}
	if encoderMethods[name] {
		return exprKey(sel)
	}
	return ""
}

// sortedIn reports whether the function body sorts the slice named by key
// anywhere after pos: a sort/slices package call, or any call whose name
// mentions sorting (e.g. core.SortPairs), taking the slice as an argument.
// The sort may sit outside the range's own statement list — the canonical
// nested-loop accumulation sorts once after the outermost loop.
func sortedIn(info *types.Info, body *ast.BlockStmt, key string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if call.Pos() <= pos {
			return true
		}
		sorter := false
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkg := pkgIdentOf(info, fn.X)
			sorter = pkg == "sort" || pkg == "slices" ||
				strings.Contains(strings.ToLower(fn.Sel.Name), "sort")
		case *ast.Ident:
			sorter = strings.Contains(strings.ToLower(fn.Name), "sort")
		}
		if !sorter {
			return true
		}
		for _, arg := range call.Args {
			if sliceKey(arg) == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// sliceKey renders a slice expression as a matching key, collapsing index
// expressions to their base: per-bucket accumulations like
// adj[e[0]] = append(adj[e[0]], ...) are satisfied by a later per-bucket
// sort such as sort.Slice(adj[i], ...).
func sliceKey(e ast.Expr) string {
	if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		return exprKey(ix.X) + "[*]"
	}
	return exprKey(e)
}
