package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the module's packages using only the
// standard library (go/parser + go/types), keeping the module at zero
// external dependencies. Module-internal imports resolve recursively from
// source; standard-library imports come from compiled export data, with a
// from-source fallback for toolchains that ship none.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Fset positions every parsed file; findings render through it.
	Fset *token.FileSet

	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // import-cycle guard
	std     types.Importer
	stdSrc  types.Importer
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; Dir the directory it was loaded from.
	Path string
	Dir  string
	// ModulePath identifies the enclosing module, so analyzers can tell
	// module-internal types and sentinels from foreign ones.
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// NewLoader finds the enclosing module of startDir and returns a loader
// rooted there.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	for {
		modFile := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(modFile); err == nil {
			modPath := modulePathOf(string(data))
			if modPath == "" {
				return nil, fmt.Errorf("analysis: no module directive in %s", modFile)
			}
			return &Loader{
				ModuleRoot: dir,
				ModulePath: modPath,
				Fset:       token.NewFileSet(),
				pkgs:       make(map[string]*Package),
				loading:    make(map[string]bool),
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", startDir)
		}
		dir = parent
	}
}

// modulePathOf extracts the module path from go.mod content.
func modulePathOf(mod string) string {
	for _, line := range strings.Split(mod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// LoadAll loads every package in the module (the "./..." pattern), skipping
// testdata, hidden directories, and directories without non-test Go files.
// Packages are returned in import-path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// LoadDir loads the single package in dir (which must live inside the
// module). Test files are excluded: the analyzers guard shipped invariants,
// and fixtures with deliberate violations live under testdata.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	importPath := l.ModulePath
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}
	return l.load(importPath, abs)
}

// load parses and type-checks one package directory, caching by import path.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, typeErrs[0])
	}
	pkg := &Package{
		Path:       importPath,
		Dir:        dir,
		ModulePath: l.ModulePath,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts Loader to types.Importer, routing module-internal
// paths through the source loader and everything else to the standard
// importers.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.std == nil {
		l.std = importer.Default()
	}
	tpkg, err := l.std.Import(path)
	if err == nil {
		return tpkg, nil
	}
	// Toolchains without compiled export data: fall back to type-checking
	// the standard library from source.
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l.stdSrc.Import(path)
}
