package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-module view the interprocedural analyzers share: the
// loaded packages plus a lazily built static call graph. RunAnalyzers builds
// one Module per invocation and hands it to every pass, so the graph (and
// the per-function summaries the analyzers memoize on it) is computed once
// no matter how many packages or analyzers run.
type Module struct {
	Pkgs []*Package

	cg *CallGraph

	// Memoized per-module facts, built lazily by the analyzers that own
	// them and shared across packages within one RunAnalyzers invocation.
	regionsBuilt bool
	critRegions  []critRegion                         // blockhold/lockorder: critical sections
	blockMemo    map[*types.Func]*blockInfo           // blockhold: per-function blocking facts
	acqMemo      map[*types.Func]map[lockID]token.Pos // lockorder: transitive acquire sets
	edgesBuilt   bool
	orderEdges   []lockEdge                 // lockorder: acquisition-order edges
	allocMemo    map[*types.Func]*allocInfo // hotalloc: per-function allocation facts
	rerootMemo   map[*types.Func]int        // ctxflow: transitive Background/TODO reach
}

func newModule(pkgs []*Package) *Module { return &Module{Pkgs: pkgs} }

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m.Pkgs)
	}
	return m.cg
}

// CallSite is one resolved outgoing call of a function.
type CallSite struct {
	// Callee is the canonical callee object. For module functions it keys
	// into CallGraph.Funcs; for foreign (stdlib) functions it only
	// classifies.
	Callee *types.Func
	// Call is the call expression at the site.
	Call *ast.CallExpr
	// Concurrent marks sites inside a `go` statement subtree: the spawning
	// goroutine does not block on them (blockhold skips them), and they do
	// not run under the spawner's locks in program order.
	Concurrent bool
	// Interface marks callees resolved by the interface over-approximation
	// (every in-module implementation of the called interface method).
	Interface bool
}

// FuncNode is one module function (or method) with a body.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls holds the resolved outgoing call sites in source order. Calls
	// inside nested function literals are attributed to the enclosing
	// declared function (closures are flattened), which over-approximates
	// when a stored closure never runs but keeps callback-heavy code honest.
	Calls []CallSite

	// Annotations parsed from the doc comment (see hasAnnotation).
	Hotpath     bool
	Nonblocking bool
	// NonblockingReason is the text after //nnt:nonblocking; blockhold
	// reports annotations with an empty reason.
	NonblockingPos    token.Pos
	NonblockingReason string
}

// CallGraph resolves static calls, concrete-receiver method calls, and a
// conservative over-approximation of interface method calls (restricted to
// in-module implementations) across the whole module. Calls through plain
// function values (fields, parameters, variables of func type) are not
// resolved — a deliberate unsoundness documented in DESIGN.md.
type CallGraph struct {
	Funcs map[*types.Func]*FuncNode

	ordered []*FuncNode // deterministic iteration order (by position)
}

// Ordered returns every module function sorted by source position.
func (cg *CallGraph) Ordered() []*FuncNode { return cg.ordered }

// Node returns the module function node for fn, or nil for foreign callees.
func (cg *CallGraph) Node(fn *types.Func) *FuncNode { return cg.Funcs[fn] }

// hasAnnotation reports whether the declaration's doc comment carries the
// given //nnt:<name> marker, and returns the marker's position and the text
// after it.
func hasAnnotation(fd *ast.FuncDecl, name string) (bool, token.Pos, string) {
	if fd == nil || fd.Doc == nil {
		return false, token.NoPos, ""
	}
	marker := "//nnt:" + name
	for _, c := range fd.Doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			reason := strings.TrimPrefix(c.Text, marker)
			// A nested "//" starts a trailing comment, not reason text.
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			return true, c.Pos(), strings.TrimSpace(reason)
		}
	}
	return false, token.NoPos, ""
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{Funcs: make(map[*types.Func]*FuncNode)}

	// Pass 1: register every declared function/method with a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				if ok, _, _ := hasAnnotation(fd, "hotpath"); ok {
					node.Hotpath = true
				}
				if ok, pos, reason := hasAnnotation(fd, "nonblocking"); ok {
					node.Nonblocking = true
					node.NonblockingPos = pos
					node.NonblockingReason = reason
				}
				cg.Funcs[fn] = node
				cg.ordered = append(cg.ordered, node)
			}
		}
	}
	sort.Slice(cg.ordered, func(i, j int) bool {
		return cg.ordered[i].Decl.Pos() < cg.ordered[j].Decl.Pos()
	})

	// The implementation universe for interface dispatch: every in-module
	// named non-interface type, in deterministic order.
	var impls []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			impls = append(impls, named)
		}
	}

	// Pass 2: resolve each function's outgoing calls.
	for _, node := range cg.ordered {
		node.Calls = resolveCalls(node.Pkg, node.Decl.Body, impls)
	}
	return cg
}

// resolveCalls walks one function body collecting resolved call sites in
// source order. Nested function literals are flattened into the enclosing
// function; subtrees under `go` statements are marked Concurrent.
func resolveCalls(pkg *Package, body *ast.BlockStmt, impls []*types.Named) []CallSite {
	var out []CallSite
	var walk func(n ast.Node, conc bool)
	walk = func(n ast.Node, conc bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.GoStmt:
				if !conc {
					walk(s.Call, true)
					return false
				}
			case *ast.CallExpr:
				out = append(out, resolveOne(pkg, s, impls, conc)...)
			}
			return true
		})
	}
	walk(body, false)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Call.Pos() < out[j].Call.Pos() })
	return out
}

// resolveOne resolves a single call expression to zero or more callees.
func resolveOne(pkg *Package, call *ast.CallExpr, impls []*types.Named, conc bool) []CallSite {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []CallSite{{Callee: fn, Call: call, Concurrent: conc}}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj().(*types.Func)
			recv := m.Type().(*types.Signature).Recv()
			if recv != nil && types.IsInterface(recv.Type()) {
				// Fan out only for module-declared interfaces. Dispatch
				// through stdlib interfaces (io.Closer, sort.Interface, ...)
				// would drag in every module type sharing the method name —
				// wal.Open closing an io.Closer is not a call into the
				// cluster — so those record just the interface method.
				if m.Pkg() != nil && strings.HasPrefix(m.Pkg().Path(), pkg.ModulePath) {
					return interfaceTargets(m, call, impls, conc)
				}
				return []CallSite{{Callee: m, Call: call, Concurrent: conc, Interface: true}}
			}
			return []CallSite{{Callee: m, Call: call, Concurrent: conc}}
		}
		// Package-qualified function: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []CallSite{{Callee: fn, Call: call, Concurrent: conc}}
		}
	}
	// Builtins, conversions, and calls through plain function values are
	// not resolved (the latter is the documented unsoundness).
	return nil
}

// interfaceTargets over-approximates a dynamic dispatch of interface method
// m: every in-module named type implementing the interface contributes its
// own method. The interface method itself is also kept as a callee so
// foreign implementations (none in practice) at least record the site.
func interfaceTargets(m *types.Func, call *ast.CallExpr, impls []*types.Named, conc bool) []CallSite {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return []CallSite{{Callee: m, Call: call, Concurrent: conc, Interface: true}}
	}
	out := []CallSite{{Callee: m, Call: call, Concurrent: conc, Interface: true}}
	for _, named := range impls {
		var target types.Type = named
		if !types.Implements(target, iface) {
			target = types.NewPointer(named)
			if !types.Implements(target, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(target, true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok {
			out = append(out, CallSite{Callee: impl, Call: call, Concurrent: conc, Interface: true})
		}
	}
	return out
}

// shortFunc renders a function for findings: pkg.Name, (pkg.Recv).Name, or
// (*pkg.Recv).Name, with pkg shortened to its base name.
func shortFunc(fn *types.Func) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		star := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			star = "*"
		}
		recvName := types.TypeString(recv, func(p *types.Package) string { return "" })
		recvName = strings.TrimPrefix(recvName, ".")
		if pkgName != "" {
			return fmt.Sprintf("(%s%s.%s).%s", star, pkgName, recvName, name)
		}
		return fmt.Sprintf("(%s%s).%s", star, recvName, name)
	}
	if pkgName != "" {
		return pkgName + "." + name
	}
	return name
}

// posBrief renders a position as base-filename:line for inclusion inside
// finding messages (the full position already prefixes the finding).
func posBrief(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
