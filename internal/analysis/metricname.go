package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"

	"nntstream/internal/obs"
)

// MetricName enforces that every metric name handed to the obs layer is a
// compile-time string constant satisfying the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*). The registry panics at runtime on bad names
// and Gather silently drops them; this analyzer moves both failure modes to
// build time. It checks (*obs.Registry).Counter/Gauge/Histogram and calls
// through emit-style func(name string, value float64) values (the
// obs.Collector surface). The validity check is obs.ValidMetricName itself,
// so the analyzer and the runtime can never disagree.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric names are compile-time constants matching the Prometheus grammar",
	Run:  runMetricName,
}

var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runMetricName(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if where := metricNameSite(info, call); where != "" {
				checkMetricNameArg(p, where, call.Args[0])
			}
			return true
		})
	}
}

// metricNameSite reports how call consumes a metric name in its first
// argument: an obs.Registry registration method, or an emit-style
// func(string, float64) value. Returns "" for unrelated calls.
func metricNameSite(info *types.Info, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && registryMethods[sel.Sel.Name] {
		if isNamed(info.TypeOf(sel.X), "internal/obs", "Registry") {
			return "(*obs.Registry)." + sel.Sel.Name
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Variadic() {
		return ""
	}
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return ""
	}
	if !isBasic(sig.Params().At(0).Type(), types.String) || !isBasic(sig.Params().At(1).Type(), types.Float64) {
		return ""
	}
	return "metric emit " + exprKey(call.Fun)
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// checkMetricNameArg requires arg to be a string constant that
// obs.ValidMetricName accepts.
func checkMetricNameArg(p *Pass, where string, arg ast.Expr) {
	tv, ok := p.Pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(arg.Pos(), "metric name passed to %s is not a compile-time string constant; dynamic names defeat the build-time grammar check", where)
		return
	}
	name := constant.StringVal(tv.Value)
	if !obs.ValidMetricName(name) {
		p.Reportf(arg.Pos(), "metric name %q passed to %s violates the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*", name, where)
	}
}
