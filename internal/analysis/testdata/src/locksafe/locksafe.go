// Package locksafe is the fixture for the locksafe analyzer: release on all
// paths, no lock copies, no blocking I/O under a hot-path RWMutex.
package locksafe

import (
	"os"
	"sync"
	"time"

	"nntstream/internal/wal"
)

type engine struct {
	mu sync.Mutex
	n  int
}

type store struct {
	mu  sync.RWMutex
	log *wal.Log
	m   map[string]int
}

func (e *engine) goodDefer() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
}

func (e *engine) goodStraightLine() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

func (e *engine) missingUnlock() {
	e.mu.Lock() // want `e.mu.Lock\(\) has no matching release`
	e.n++
}

func (e *engine) earlyReturn(cond bool) {
	e.mu.Lock() // want `e.mu.Lock\(\) is not released on every path`
	if cond {
		return
	}
	e.n++
	e.mu.Unlock()
}

func (e *engine) goodLoopBreak(limit int) {
	e.mu.Lock()
	for i := 0; i < limit; i++ {
		if i > 10 {
			break // unlabeled: stays inside the critical section
		}
		e.n++
	}
	e.mu.Unlock()
}

func copiesEngine(e engine) int { // want `value parameter of copiesEngine copies a lock`
	return e.n
}

func (e engine) valueReceiver() int { // want `value receiver of valueReceiver copies a lock`
	return e.n
}

func (s *store) goodRead(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

func (s *store) fsyncUnderRead() {
	s.mu.RLock()
	s.log.Sync() // want `calling \(\*wal\.Log\)\.Sync while holding hot-path lock s\.mu`
	s.mu.RUnlock()
}

func (s *store) sleepUnderWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `calling time\.Sleep while holding hot-path lock s\.mu`
}

func (s *store) readFileUnderLock(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want `calling os\.ReadFile while holding hot-path lock s\.mu`
}

func (s *store) goodSyncOutside() {
	s.mu.Lock()
	s.m["k"]++
	s.mu.Unlock()
	s.log.Sync()
}
