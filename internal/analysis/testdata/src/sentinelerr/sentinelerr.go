// Package sentinelerr is the fixture for the sentinelerr analyzer: module
// error sentinels are compared with errors.Is, never == or !=.
package sentinelerr

import (
	"errors"
	"io"

	"nntstream/internal/core"
)

var errLocal = errors.New("local sentinel")

func classify(err error) string {
	if err == core.ErrUnknownStream { // want `sentinel core\.ErrUnknownStream is compared with ==`
		return "unknown-stream"
	}
	if err != core.ErrSealed { // want `sentinel core\.ErrSealed is compared with !=`
		return "other"
	}
	return "sealed"
}

func localSentinel(err error) bool {
	return err == errLocal // want `sentinel sentinelerr\.errLocal is compared with ==`
}

func goodIs(err error) bool {
	return errors.Is(err, core.ErrUnknownQuery)
}

func goodNil(err error) bool {
	return err == nil
}

func goodForeign(err error) bool {
	return err == io.EOF // io.EOF is not a module sentinel; stdlib idiom allows identity here
}

func goodSuppressed(err error) bool {
	//lint:ignore sentinelerr this path receives the sentinel unwrapped by construction
	return err == core.ErrUnsupported
}
