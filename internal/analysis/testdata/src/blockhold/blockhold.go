// Package blockhold exercises the interprocedural no-blocking-under-lock
// analyzer. The two bad coordinator/engine shapes reproduce the bugs the
// cluster review caught by hand: probe RPCs issued while the coordinator
// mutex is held, and WAL shipping under the engine commit lock.
package blockhold

import (
	"net/http"
	"sync"
	"time"
)

// transport abstracts the worker RPC client, like the cluster's Transport.
type transport interface {
	Do(req *http.Request) (*http.Response, error)
}

type httpTransport struct{ client *http.Client }

func (t *httpTransport) Do(req *http.Request) (*http.Response, error) {
	return t.client.Do(req) // network I/O is fine outside critical sections
}

// coordinator mirrors the cluster coordinator: a mutex guarding worker
// state plus a transport used for probe RPCs.
type coordinator struct {
	mu      sync.Mutex
	tr      transport
	targets []*http.Request
}

// badProbeUnderMutex reproduces the heartbeat bug: the probe RPC runs while
// c.mu is held, so one slow worker stalls every state reader.
func (c *coordinator) badProbeUnderMutex() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, req := range c.targets {
		c.tr.Do(req) // want `call to \(\*blockhold.httpTransport\).Do while holding c.mu.Lock\(\) may block: \(\*blockhold.httpTransport\).Do reaches calling \(\*http.Client\).Do \(network I/O\)`
	}
}

// goodProbeAfterSnapshot collects the targets under the lock and probes
// after releasing it — the shape the cluster uses now.
func (c *coordinator) goodProbeAfterSnapshot() {
	c.mu.Lock()
	targets := c.targets
	c.mu.Unlock()
	for _, req := range targets {
		c.tr.Do(req)
	}
}

// engine mirrors the commit path: mu is the commit lock and notifyCommit
// fans out to replication.
type engine struct {
	mu  sync.Mutex
	rep *replicator
}

type replicator struct{ client *http.Client }

// ship streams WAL segments to a replica: network I/O.
func (r *replicator) ship() error {
	resp, err := r.client.Get("http://replica/segments")
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// notifyCommit is the commit-hook body.
func (e *engine) notifyCommit() {
	_ = e.rep.ship()
}

// badShipUnderCommitLock reproduces the shipping bug: the commit lock is
// held across the replication RPC, two calls deep.
func (e *engine) badShipUnderCommitLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notifyCommit() // want `call to \(\*blockhold.engine\).notifyCommit while holding e.mu.Lock\(\) may block: \(\*blockhold.engine\).notifyCommit -> \(\*blockhold.replicator\).ship reaches calling \(\*http.Client\).Get \(network I/O\)`
}

// goodShipAfterCommit releases the commit lock before shipping.
func (e *engine) goodShipAfterCommit() {
	e.mu.Lock()
	e.mu.Unlock()
	e.notifyCommit()
}

// badDirectOps blocks directly inside the critical section.
func (e *engine) badDirectOps(ch chan int, wg *sync.WaitGroup) {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want `calling time.Sleep while holding e.mu.Lock\(\): a critical section must not block`
	ch <- 1                      // want `channel send while holding e.mu.Lock\(\)`
	<-ch                         // want `channel receive while holding e.mu.Lock\(\)`
	wg.Wait()                    // want `calling \(\*sync.WaitGroup\).Wait while holding e.mu.Lock\(\)`
	select {                     // want `select with no default while holding e.mu.Lock\(\)`
	case <-ch:
	}
	for range ch { // want `range over channel while holding e.mu.Lock\(\)`
		break
	}
}

// goodSelectDefault polls without blocking: a select with a default never
// parks the goroutine.
func (e *engine) goodSelectDefault(ch chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// goodSpawnUnderLock hands the blocking work to a goroutine instead of
// doing it inline; the spawner itself never blocks.
func (e *engine) goodSpawnUnderLock(ch chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() { ch <- 1 }()
}

// boundedWait waits for a fan-out whose goroutines never touch locks or
// the network, so the wait is bounded by local compute.
//
//nnt:nonblocking the awaited goroutines are compute-only and bounded
func boundedWait(wg *sync.WaitGroup) {
	wg.Wait()
}

// goodAnnotatedCallee may wait under the lock: the reviewed annotation on
// the callee cuts the traversal for every caller.
func (e *engine) goodAnnotatedCallee(wg *sync.WaitGroup) {
	e.mu.Lock()
	defer e.mu.Unlock()
	boundedWait(wg)
}

// badBareAnnotation loses its exemption: the annotation carries no reason.
//
//nnt:nonblocking // want `nnt:nonblocking needs a reason`
func badBareAnnotation(wg *sync.WaitGroup) {
	wg.Wait()
}
