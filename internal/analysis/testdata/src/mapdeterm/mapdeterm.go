// Package mapdeterm is the fixture for the mapdeterm analyzer: map iteration
// that feeds slices or encoders must be sorted before use.
package mapdeterm

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func goodSorted(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortNames(names []string) []string {
	sort.Strings(names)
	return names
}

func goodHelperSorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return sortNames(names)
}

func badUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `keys accumulates entries in map-iteration order with no following sort`
	}
	return keys
}

func badFprint(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want `map iteration feeds fmt\.Fprintf`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration feeds b\.WriteString`
	}
	return b.String()
}

func goodPerBucketSort(m map[int]int, n int) [][]int {
	buckets := make([][]int, n)
	for k, v := range m {
		buckets[k%n] = append(buckets[k%n], v)
	}
	for i := range buckets {
		sort.Ints(buckets[i])
	}
	return buckets
}

func goodPerIteration(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		total += len(local)
	}
	return total
}

func goodSuppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore mapdeterm diagnostic dump; ordering is not durably observable
		out = append(out, k)
	}
	return out
}
