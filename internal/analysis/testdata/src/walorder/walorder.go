// Package walorder is the fixture for the walorder analyzer: inside a
// WAL-owning type, engine mutations must be dominated by a wal.Append.
package walorder

import "nntstream/internal/wal"

type inner struct {
	queries map[int]string
}

func (in *inner) AddQuery(id int, q string) error {
	in.queries[id] = q
	return nil
}

func (in *inner) StepAll() error { return nil }

type durable struct {
	log   *wal.Log
	inner inner
}

func (d *durable) goodAppendFirst(id int, q string) error {
	if _, err := d.log.Append(wal.Record{}); err != nil {
		return err
	}
	return d.inner.AddQuery(id, q)
}

func (d *durable) badApplyFirst(id int, q string) error {
	if err := d.inner.AddQuery(id, q); err != nil { // want `d\.inner\.AddQuery mutates engine state without a preceding wal\.Append`
		return err
	}
	_, err := d.log.Append(wal.Record{})
	return err
}

func (d *durable) badNoAppend() error {
	return d.inner.StepAll() // want `d\.inner\.StepAll mutates engine state without a preceding wal\.Append`
}

// logged is the append-dominating helper shape: append, then apply.
func (d *durable) logged(r wal.Record, apply func() error) error {
	if _, err := d.log.Append(r); err != nil {
		return err
	}
	return apply()
}

func (d *durable) goodViaHelper(id int, q string) error {
	return d.logged(wal.Record{}, func() error {
		return d.inner.AddQuery(id, q)
	})
}

func (d *durable) goodReplaySuppressed(id int, q string) error {
	//lint:ignore walorder replay applies records already present in the log
	return d.inner.AddQuery(id, q)
}
