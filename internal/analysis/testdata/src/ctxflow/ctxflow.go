// Package ctxflow exercises context threading: a function that already
// holds a context.Context must not re-root one with context.Background or
// context.TODO — directly, or by dropping its context at a call into a
// context-less helper that re-roots.
package ctxflow

import (
	"context"
	"net/http"
)

// fetch is a ctx-aware callee.
func fetch(ctx context.Context, key string) string {
	_ = ctx
	return key
}

// badDirect re-roots in the middle of a request path.
func badDirect(ctx context.Context, key string) string {
	_ = ctx
	return fetch(context.Background(), key) // want `ctxflow.badDirect receives a context.Context; thread it instead of re-rooting`
}

// badTODO parks a placeholder context where a real one is in hand.
func badTODO(ctx context.Context) context.Context {
	return context.TODO() // want `ctxflow.badTODO receives a context.Context; thread it instead of re-rooting`
}

// rootHelper is context-less and re-roots internally; on its own that is
// legal — constructors and daemon loops own their roots.
func rootHelper(key string) string {
	return fetch(context.Background(), key)
}

// badDropped holds a context but drops it at the helper boundary.
func badDropped(ctx context.Context, key string) string {
	_ = ctx
	return rootHelper(key) // want `context dropped at call to ctxflow.rootHelper: the callee takes no context and re-roots one`
}

// badHandler ignores the request's context.
func badHandler(w http.ResponseWriter, r *http.Request) {
	_ = fetch(context.Background(), r.URL.Path) // want `ctxflow.badHandler holds an \*http.Request; derive from r.Context\(\)`
}

// goodThread passes its context through.
func goodThread(ctx context.Context, key string) string {
	return fetch(ctx, key)
}

// goodDetached spawns background work that outlives the request; detached
// goroutines may re-root.
func goodDetached(ctx context.Context, key string) {
	_ = ctx
	go func() {
		_ = rootHelper(key)
	}()
}

// goodHandler derives from the request context.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	_ = fetch(r.Context(), r.URL.Path)
}

// goodRoot creates a root context where one is supposed to exist.
func goodRoot(key string) string {
	return fetch(context.Background(), key)
}
