// Package lockorder exercises the module-wide lock acquisition graph. The
// bad pair takes alpha.mu and beta.mu in both orders — a potential ABBA
// deadlock — once directly and once through a helper, so both the direct
// and the transitive edge detection are covered.
package lockorder

import "sync"

type alpha struct{ mu sync.Mutex }

type beta struct{ mu sync.Mutex }

// badAlphaThenBeta holds alpha.mu while acquiring beta.mu.
func badAlphaThenBeta(a *alpha, b *beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle: .*lockorder.beta.mu is acquired \(at lockorder.go:\d+\) while holding .*lockorder.alpha.mu \(acquired at lockorder.go:\d+\), but the reverse order .*lockorder.beta.mu -> .*lockorder.alpha.mu is taken at lockorder.go:\d+`
	defer b.mu.Unlock()
}

// badBetaThenAlpha takes the same pair in the opposite order, through a
// helper, so the reverse edge is recorded at the call site.
func badBetaThenAlpha(a *alpha, b *beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockAlpha(a) // want `lock order cycle: .*lockorder.alpha.mu is acquired \(at lockorder.go:\d+\) while holding .*lockorder.beta.mu \(acquired at lockorder.go:\d+\), but the reverse order .*lockorder.alpha.mu -> .*lockorder.beta.mu is taken at lockorder.go:\d+`
}

func lockAlpha(a *alpha) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

type gamma struct{ mu sync.Mutex }

type delta struct{ mu sync.Mutex }

// goodConsistentOrder always takes gamma.mu before delta.mu; a one-way
// edge is not a cycle.
func goodConsistentOrder(g *gamma, d *delta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// goodConsistentOrderElsewhere repeats the same order with inline
// releases; parallel edges in one direction stay acyclic.
func goodConsistentOrderElsewhere(g *gamma, d *delta) {
	g.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	g.mu.Unlock()
}

// goodHandOff locks two instances of the same type: same-(type, field)
// self-edges are excluded — instance identity is beyond static reach and
// sharded hand-over-hand locking is a legitimate pattern.
func goodHandOff(a, a2 *alpha) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a2.mu.Lock()
	defer a2.mu.Unlock()
}
