// Package hotalloc exercises the hot-path allocation gate: //nnt:hotpath
// functions must contain no allocating constructs, transitively through
// the call graph.
package hotalloc

import (
	"fmt"
	"sort"
)

// dominates is the allocation-free kernel shape: pure compares and index
// math.
//
//nnt:hotpath
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// goodKernel composes hotpath functions and searches with an
// argument-position closure, which Go's escape analysis keeps on the
// stack.
//
//nnt:hotpath
func goodKernel(rows [][]float64, probe []float64) int {
	return sort.Search(len(rows), func(i int) bool {
		return dominates(rows[i], probe)
	})
}

// badMake allocates a scratch buffer on every call.
//
//nnt:hotpath
func badMake(n int) int {
	buf := make([]int, n) // want `make allocates in //nnt:hotpath function hotalloc.badMake`
	return len(buf)
}

// badConcat builds a key by string concatenation.
//
//nnt:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates in //nnt:hotpath function hotalloc.badConcat`
}

// badSprintf formats in the hot loop.
//
//nnt:hotpath
func badSprintf(id int) string {
	return fmt.Sprintf("q%d", id) // want `call to fmt.Sprintf allocates in //nnt:hotpath function hotalloc.badSprintf`
}

// pack allocates; it is not annotated, so it is checked only when a
// hotpath function reaches it.
func pack(vals []float64) []float64 {
	out := make([]float64, len(vals))
	copy(out, vals)
	return out
}

// badTransitive reaches the allocation through an unannotated callee.
//
//nnt:hotpath
func badTransitive(vals []float64) []float64 {
	return pack(vals) // want `//nnt:hotpath function hotalloc.badTransitive calls hotalloc.pack which allocates: hotalloc.pack \(make allocates\)`
}

// badEscape stores a closure, which escapes to the heap.
//
//nnt:hotpath
func badEscape(fns *[]func() int, v int) {
	f := func() int { return v } // want `escaping closure allocates`
	*fns = append(*fns, f)       // want `append allocates`
}

type cursor struct{ i, n int }

// badPointerLit returns a heap-escaping literal.
//
//nnt:hotpath
func badPointerLit(n int) *cursor {
	return &cursor{n: n} // want `&composite literal escapes to the heap`
}

// badSliceLit builds a throwaway slice.
//
//nnt:hotpath
func badSliceLit(a, b int) int {
	xs := []int{a, b} // want `slice literal allocates`
	return xs[0]
}

// badBytes crosses the string boundary, which copies.
//
//nnt:hotpath
func badBytes(s string) []byte {
	return []byte(s) // want `string/\[\]byte conversion allocates`
}

func worker(ch chan int, v int) { ch <- v }

// badSpawn launches a goroutine per event.
//
//nnt:hotpath
func badSpawn(ch chan int, v int) {
	go worker(ch, v) // want `go statement allocates a goroutine`
}

// goodValueLit keeps a struct literal on the stack.
//
//nnt:hotpath
func goodValueLit(i, n int) int {
	c := cursor{i: i, n: n}
	return c.i + c.n
}

// goodMapWrite mutates a caller-owned map in place.
//
//nnt:hotpath
func goodMapWrite(m map[int]int, k int) {
	m[k] = m[k] + 1
}

// goodSuppressed documents a reviewed cold-start fallback allocation.
//
//nnt:hotpath
func goodSuppressed(n int) []int {
	//lint:ignore hotalloc cold-start fallback, amortised across the stream
	return make([]int, n)
}
