// Package metricname is the fixture for the metricname analyzer: obs metric
// names are compile-time constants matching the Prometheus grammar.
package metricname

import "nntstream/internal/obs"

const goodName = "nntstream_fixture_total"

func goodRegister(r *obs.Registry) {
	r.Counter(goodName, "a counted thing")
	r.Gauge("nntstream_fixture_ratio", "a ratio")
	r.Histogram("nntstream_fixture_seconds", "a latency", nil)
	r.Counter(goodName+"_sum", "const") // constant folding keeps this checkable
}

func badRegister(r *obs.Registry) {
	r.Counter("0bad", "leading digit") // want `metric name .0bad. passed to \(\*obs\.Registry\)\.Counter violates the Prometheus grammar`
	r.Gauge("has space", "bad gauge")  // want `metric name .has space. passed to \(\*obs\.Registry\)\.Gauge violates the Prometheus grammar`
	r.Gauge(dynamicName(), "computed") // want `metric name passed to \(\*obs\.Registry\)\.Gauge is not a compile-time string constant`
}

func dynamicName() string { return "nntstream_runtime" }

type collector struct {
	n int
}

func (c *collector) CollectMetrics(emit func(name string, value float64)) {
	emit("nntstream_fixture_size", float64(c.n))
	emit("bad name", 1) // want `metric name .bad name. passed to metric emit emit violates the Prometheus grammar`
}
