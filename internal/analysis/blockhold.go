package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BlockHold is the interprocedural extension of locksafe's no-blocking-I/O
// rule: no call path starting inside a critical section — any sync.Mutex or
// sync.RWMutex held — may reach a blocking operation. Blocking operations
// are network I/O (anything under net/, including net/http), time.Sleep,
// channel sends/receives/selects-without-default, (*sync.WaitGroup).Wait,
// and the waiting (*exec.Cmd) methods. Deliberately excluded: file I/O and
// *wal.Log operations — the WAL fsyncs under the engine's commit mutex by
// design (locksafe still forbids them under hot-path RWMutexes).
//
// Call paths follow the module call graph: static calls, concrete-receiver
// method calls, and interface calls over-approximated by every in-module
// implementation. Calls launched with `go` do not block the spawner and are
// skipped. A function that blocks only on provably bounded local work can
// be exempted at the callee with a reviewed
//
//	//nnt:nonblocking <reason>
//
// annotation in its doc comment (the reason is mandatory), which cuts the
// traversal for every caller at once; a single conservative call site is
// silenced in place with //lint:ignore blockhold <reason> as usual.
var BlockHold = &Analyzer{
	Name: "blockhold",
	Doc:  "no call path from a critical section reaches a blocking operation",
	Run:  runBlockHold,
}

// critRegion is one critical section: lock lc held over the source span
// (start, end) inside node. Spans are positional — for a deferred release
// the span runs to the end of the function body, otherwise to the matching
// release in the same statement list (locksafe separately enforces that one
// of the two exists).
type critRegion struct {
	node  *FuncNode
	lc    lockCall
	start token.Pos
	end   token.Pos
}

// regions computes every critical section in the module once.
func (m *Module) regions() []critRegion {
	if m.regionsBuilt {
		return m.critRegions
	}
	m.regionsBuilt = true
	for _, node := range m.Graph().Ordered() {
		info := node.Pkg.Info
		// Each function scope (the declaration and every nested literal)
		// matches defers against acquires within the same scope only, like
		// locksafe.
		scopes := []*ast.BlockStmt{node.Decl.Body}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				scopes = append(scopes, fl.Body)
			}
			return true
		})
		for _, body := range scopes {
			type deferKey struct {
				key  string
				read bool
			}
			deferred := make(map[deferKey]bool)
			walkShallow(body, func(n ast.Node) bool {
				if ds, ok := n.(*ast.DeferStmt); ok {
					if lc, ok := classifyLockCall(info, ds.Call); ok && !lc.acquire {
						deferred[deferKey{lc.key, lc.read}] = true
					}
				}
				return true
			})
			node := node // capture for closure below
			stmtListsShallow(body, func(list []ast.Stmt) {
				for i, stmt := range list {
					lc, ok := acquireAt(info, stmt)
					if !ok || !lc.acquire {
						continue
					}
					// An inline release later in the same list bounds the
					// region even when a deferred release of the same lock
					// exists elsewhere (Lock/Unlock/.../Lock/defer Unlock):
					// the defer belongs to the later acquire.
					inline := false
					for j := i + 1; j < len(list); j++ {
						lc2, ok := acquireAt(info, list[j])
						if ok && !lc2.acquire && lc2.key == lc.key && lc2.read == lc.read {
							m.critRegions = append(m.critRegions, critRegion{node: node, lc: lc, start: stmt.End(), end: list[j].Pos()})
							inline = true
							break
						}
					}
					if !inline && deferred[deferKey{lc.key, lc.read}] {
						m.critRegions = append(m.critRegions, critRegion{node: node, lc: lc, start: stmt.End(), end: body.End()})
					}
				}
			})
		}
	}
	return m.critRegions
}

// acquireAt classifies a statement that is exactly one mutex method call.
// Unlike plain classifyLockCall it also answers for releases (acquire is
// false then), so region matching can find the unlock.
func acquireAt(info *types.Info, stmt ast.Stmt) (lockCall, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return lockCall{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockCall{}, false
	}
	return classifyLockCall(info, call)
}

// stmtListsShallow is stmtLists restricted to one function scope: nested
// function literals have their own scope and are processed separately.
func stmtListsShallow(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	walkShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}

// blockOp is one direct blocking operation inside a function.
type blockOp struct {
	desc       string
	pos        token.Pos
	concurrent bool
}

// blockInfo caches one function's direct blocking operations and the memo
// of its transitive reachability result.
type blockInfo struct {
	ops       []blockOp
	reach     *reachResult
	reachDone bool
}

// reachResult names the first blocking operation a function can reach and
// the call chain to it.
type reachResult struct {
	desc string
	path []string
}

func (m *Module) blockInfoOf(node *FuncNode) *blockInfo {
	if m.blockMemo == nil {
		m.blockMemo = make(map[*types.Func]*blockInfo)
	}
	if bi, ok := m.blockMemo[node.Fn]; ok {
		return bi
	}
	bi := &blockInfo{}
	info := node.Pkg.Info
	// Blocking external callees become ops at their call sites.
	for _, cs := range node.Calls {
		if m.Graph().Node(cs.Callee) != nil {
			continue
		}
		if desc := blockingCalleeDesc(cs.Callee); desc != "" {
			bi.ops = append(bi.ops, blockOp{desc: desc, pos: cs.Call.Pos(), concurrent: cs.Concurrent})
		}
	}
	// Channel constructs.
	var walk func(n ast.Node, conc bool)
	walk = func(n ast.Node, conc bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.GoStmt:
				if !conc {
					walk(s.Call, true)
					return false
				}
			case *ast.SendStmt:
				bi.ops = append(bi.ops, blockOp{desc: "channel send", pos: s.Arrow, concurrent: conc})
			case *ast.UnaryExpr:
				if s.Op == token.ARROW {
					bi.ops = append(bi.ops, blockOp{desc: "channel receive", pos: s.Pos(), concurrent: conc})
				}
			case *ast.SelectStmt:
				blocking := true
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						blocking = false
					}
				}
				if blocking {
					bi.ops = append(bi.ops, blockOp{desc: "select with no default", pos: s.Pos(), concurrent: conc})
				}
				// Sends/receives in the comm clauses are part of the select
				// itself; only the clause bodies run as ordinary code.
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st, conc)
						}
					}
				}
				return false
			case *ast.RangeStmt:
				if t := info.TypeOf(s.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						bi.ops = append(bi.ops, blockOp{desc: "range over channel", pos: s.Pos(), concurrent: conc})
					}
				}
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
	sortOps(bi.ops)
	m.blockMemo[node.Fn] = bi
	return bi
}

func sortOps(ops []blockOp) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].pos < ops[j-1].pos; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

// blockingCalleeDesc classifies a foreign (non-module) callee as blocking.
func blockingCalleeDesc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	name := fn.Name()
	switch {
	case path == "net/http":
		// Only the client side that actually hits the wire. Request
		// construction, header maps, and response-writer bookkeeping are
		// in-memory; server response writes land in the kernel socket
		// buffer for the small JSON bodies this module produces.
		switch recvNamed(fn) {
		case "": // package-level http.Get etc.
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "calling " + shortFunc(fn) + " (network I/O)"
			}
		case "Client":
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head", "CloseIdleConnections":
				return "calling " + shortFunc(fn) + " (network I/O)"
			}
		case "Transport", "RoundTripper":
			if name == "RoundTrip" {
				return "calling " + shortFunc(fn) + " (network I/O)"
			}
		}
		return ""
	case path == "net" || strings.HasPrefix(path, "net/"):
		// Pure-parsing corners of the net tree never touch the network.
		if path == "net/url" || path == "net/netip" || path == "net/mail" || path == "net/textproto" {
			return ""
		}
		if path == "net" {
			switch name {
			case "JoinHostPort", "SplitHostPort", "ParseIP", "ParseCIDR", "ParseMAC", "CIDRMask":
				return ""
			}
		}
		return "calling " + shortFunc(fn) + " (network I/O)"
	case path == "time" && name == "Sleep":
		return "calling time.Sleep"
	case path == "sync" && name == "Wait":
		if recv := recvNamed(fn); recv == "WaitGroup" {
			return "calling (*sync.WaitGroup).Wait"
		}
	case path == "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			if recvNamed(fn) == "Cmd" {
				return "calling (*exec.Cmd)." + name
			}
		}
	}
	return ""
}

// recvNamed returns the bare name of a method's receiver type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedType(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// reaches resolves whether fn can reach a blocking operation through
// non-concurrent calls, cutting at //nnt:nonblocking annotations. visiting
// guards recursion; a cycle contributes nothing beyond its members' own
// direct operations.
func (m *Module) reaches(node *FuncNode, visiting map[*types.Func]bool) *reachResult {
	if node.Nonblocking && node.NonblockingReason != "" {
		return nil
	}
	bi := m.blockInfoOf(node)
	if bi.reachDone {
		return bi.reach
	}
	if visiting[node.Fn] {
		return nil
	}
	visiting[node.Fn] = true
	defer delete(visiting, node.Fn)

	for _, op := range bi.ops {
		if !op.concurrent {
			bi.reach = &reachResult{desc: op.desc}
			bi.reachDone = true
			return bi.reach
		}
	}
	for _, cs := range node.Calls {
		if cs.Concurrent {
			continue
		}
		callee := m.Graph().Node(cs.Callee)
		if callee == nil {
			continue // foreign: blocking foreigners are already ops
		}
		if r := m.reaches(callee, visiting); r != nil {
			bi.reach = &reachResult{
				desc: r.desc,
				path: append([]string{shortFunc(cs.Callee)}, r.path...),
			}
			bi.reachDone = true
			return bi.reach
		}
	}
	bi.reachDone = true
	return nil
}

func runBlockHold(p *Pass) {
	m := p.Module

	// Bare //nnt:nonblocking annotations lose their exemption and are
	// themselves findings, mirroring reason-less //lint:ignore comments.
	for _, node := range m.Graph().Ordered() {
		if node.Pkg == p.Pkg && node.Nonblocking && node.NonblockingReason == "" {
			p.Reportf(node.NonblockingPos, "nnt:nonblocking needs a reason: //nnt:nonblocking <reason>")
		}
	}

	// Overlapping regions of the same lock (e.g. acquires on two branches,
	// both deferred-released) must not report one operation twice.
	type repKey struct {
		pos  token.Pos
		held string
	}
	reported := make(map[repKey]bool)
	for _, r := range m.regions() {
		if r.node.Pkg != p.Pkg {
			continue
		}
		verb := "Lock"
		if r.lc.read {
			verb = "RLock"
		}
		held := r.lc.key + "." + verb
		bi := m.blockInfoOf(r.node)
		for _, op := range bi.ops {
			if !op.concurrent && op.pos > r.start && op.pos < r.end && !reported[repKey{op.pos, held}] {
				reported[repKey{op.pos, held}] = true
				p.Reportf(op.pos, "%s while holding %s(): a critical section must not block", op.desc, held)
			}
		}
		for _, cs := range r.node.Calls {
			pos := cs.Call.Pos()
			if cs.Concurrent || pos <= r.start || pos >= r.end || reported[repKey{pos, held}] {
				continue
			}
			callee := m.Graph().Node(cs.Callee)
			if callee == nil {
				continue
			}
			if res := m.reaches(callee, map[*types.Func]bool{r.node.Fn: true}); res != nil {
				chain := append([]string{shortFunc(cs.Callee)}, res.path...)
				p.Reportf(pos, "call to %s while holding %s() may block: %s reaches %s",
					shortFunc(cs.Callee), held, strings.Join(chain, " -> "), res.desc)
				reported[repKey{pos, held}] = true
			}
		}
	}
}
