package analysis

import (
	"go/ast"
	"go/types"
)

// LockSafe enforces the engine's critical-section discipline:
//
//   - every Lock/RLock on a sync.Mutex/RWMutex is released on all paths,
//     either by a matching defer or by a matching unlock in the same
//     statement list with no way to return in between;
//   - mutex-bearing values are never copied (value receivers or value
//     parameters whose type transitively contains a lock);
//   - no blocking I/O (os, net, net/http, time.Sleep, *os.File methods,
//     *wal.Log appends/fsyncs) runs while a hot-path reader-writer lock is
//     held — RWMutexes guard the engine's concurrent read paths, and an
//     fsync under one stalls every reader.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "mutexes are released on all paths, never copied, and never held across blocking I/O",
	Run:  runLockSafe,
}

// lockCall classifies one mutex method call.
type lockCall struct {
	call    *ast.CallExpr
	key     string // rendered receiver expression, e.g. "m.mu"
	read    bool   // RLock/RUnlock
	acquire bool   // Lock/RLock
	rw      bool   // receiver is a sync.RWMutex (a hot-path lock)
}

func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockCall{}, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
		return lockCall{}, false
	}
	t := info.TypeOf(sel.X)
	isMutex := isNamed(t, "sync", "Mutex")
	isRW := isNamed(t, "sync", "RWMutex")
	if !isMutex && !isRW {
		return lockCall{}, false
	}
	return lockCall{
		call:    call,
		key:     exprKey(sel.X),
		read:    name == "RLock" || name == "RUnlock",
		acquire: name == "Lock" || name == "RLock",
		rw:      isRW,
	}, true
}

func runLockSafe(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkLockCopies(p, fd)
			}
		}
		eachFuncBody(file, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			checkLockBalance(p, body)
		})
	}
}

// checkLockCopies flags value receivers and value parameters whose type
// transitively contains a sync primitive.
func checkLockCopies(p *Pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		if field == nil {
			return
		}
		t := p.Pkg.Info.TypeOf(field.Type)
		if t == nil {
			return
		}
		if name := lockComponent(t, map[types.Type]bool{}); name != "" {
			p.Reportf(field.Type.Pos(), "%s of %s copies a lock: %s contains sync.%s; use a pointer",
				what, fd.Name.Name, t.String(), name)
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		check(fd.Recv.List[0], "value receiver")
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			check(field, "value parameter")
		}
	}
}

// lockComponent returns the name of the sync primitive t contains by value
// (following named types, struct fields, and arrays — not pointers), or "".
func lockComponent(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Alias:
		return lockComponent(types.Unalias(u), seen)
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return obj.Name()
			}
		}
		return lockComponent(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockComponent(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockComponent(u.Elem(), seen)
	}
	return ""
}

// checkLockBalance verifies release-on-all-paths for every acquire in one
// function body, and the no-blocking-I/O rule for RWMutex regions.
func checkLockBalance(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Deferred releases anywhere in this function.
	type deferKey struct {
		key  string
		read bool
	}
	deferred := make(map[deferKey]bool)
	walkShallow(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			if lc, ok := classifyLockCall(info, ds.Call); ok && !lc.acquire {
				deferred[deferKey{lc.key, lc.read}] = true
			}
		}
		return true
	})

	stmtLists(body, func(list []ast.Stmt) {
		for i, stmt := range list {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			lc, ok := classifyLockCall(info, call)
			if !ok || !lc.acquire {
				continue
			}
			verb := "Lock"
			if lc.read {
				verb = "RLock"
			}

			if deferred[deferKey{lc.key, lc.read}] {
				// Held to function exit: for hot-path locks, audit the rest
				// of the function for blocking calls.
				if lc.rw {
					walkShallow(body, func(n ast.Node) bool {
						if n != nil && n.Pos() > stmt.End() {
							checkHotRegion(p, lc, n)
						}
						return true
					})
				}
				continue
			}

			// No defer: require a matching release later in the same
			// statement list, with no early exit in between.
			released := -1
			for j := i + 1; j < len(list); j++ {
				es2, ok := list[j].(*ast.ExprStmt)
				if !ok {
					continue
				}
				call2, ok := es2.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				lc2, ok := classifyLockCall(info, call2)
				if ok && !lc2.acquire && lc2.key == lc.key && lc2.read == lc.read {
					released = j
					break
				}
			}
			if released < 0 {
				p.Reportf(call.Pos(), "%s.%s() has no matching release: no deferred unlock and none in the same block", lc.key, verb)
				continue
			}
			for _, between := range list[i+1 : released] {
				if containsReturn(between) {
					p.Reportf(call.Pos(), "%s.%s() is not released on every path: the critical section can return before the unlock", lc.key, verb)
					break
				}
			}
			if lc.rw {
				for _, between := range list[i+1 : released] {
					walkShallow(between, func(n ast.Node) bool {
						checkHotRegion(p, lc, n)
						return true
					})
				}
			}
		}
	})
}

// checkHotRegion reports blocking calls made while an RWMutex is held.
func checkHotRegion(p *Pass, lc lockCall, n ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	if desc := blockingCallDesc(p.Pkg.Info, call); desc != "" {
		p.Reportf(call.Pos(), "%s while holding hot-path lock %s: move blocking I/O outside the critical section", desc, lc.key)
	}
}

// blockingCallDesc classifies calls that block on I/O or sleeping: direct
// calls into os/net/net/http, time.Sleep, *os.File methods, and *wal.Log
// operations (appends fsync under SyncAlways).
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	switch pkgIdentOf(info, sel.X) {
	case "os", "net", "net/http":
		return "calling " + exprKey(sel)
	case "time":
		if name == "Sleep" {
			return "calling time.Sleep"
		}
		return ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if isNamed(t, "os", "File") {
		return "calling (*os.File)." + name
	}
	if isNamed(t, "internal/wal", "Log") {
		switch name {
		case "Append", "Sync", "Reset", "TruncateTo", "Close":
			return "calling (*wal.Log)." + name
		}
	}
	return ""
}
