package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the module-wide lock acquisition graph and fails on
// cycles — the potential ABBA deadlocks between the coordinator, worker,
// engine, and shard mutexes. Locks are identified by (declaring type,
// field): every instance of cluster.workerGroup shares one node, which is
// exactly the granularity the cluster's "never hold the group lock across
// an engine call" discipline is stated at.
//
// An edge A -> B is recorded when lock B is acquired — directly, or
// transitively through any call path in the module call graph — inside a
// critical section holding lock A. Acquisitions inside `go` statements are
// skipped (the spawner does not hold its locks in the goroutine's program
// order). Self-edges are not reported: acquiring another *instance's* lock
// of the same (type, field) is a common sharded pattern and instance
// identity is beyond static reach — a documented unsoundness.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide lock acquisition graph has no cycles (no ABBA deadlocks)",
	Run:  runLockOrder,
}

// lockID names one lock at type granularity: "pkg/path.Type" + field for
// struct-field mutexes, or "pkg/path" + var name for package-level ones.
type lockID struct {
	owner string
	field string
}

func (id lockID) String() string { return id.owner + "." + id.field }

// lockIdent resolves the receiver expression of a classified lock call
// (e.g. the `g.mu` of `g.mu.Lock()`) to a lockID.
func lockIdent(info *types.Info, e ast.Expr) (lockID, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		owner := info.TypeOf(x.X)
		if n := namedType(owner); n != nil && n.Obj().Pkg() != nil {
			return lockID{owner: n.Obj().Pkg().Path() + "." + n.Obj().Name(), field: x.Sel.Name}, true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() { // package-level mutex var
				return lockID{owner: v.Pkg().Path(), field: v.Name()}, true
			}
		}
	}
	return lockID{}, false
}

// acquireSites collects every classifiable lock acquisition in a function
// (including nested literals, excluding `go` subtrees) as id -> earliest
// position.
func (m *Module) acquireSites(node *FuncNode) map[lockID]token.Pos {
	info := node.Pkg.Info
	out := make(map[lockID]token.Pos)
	record := func(id lockID, pos token.Pos) {
		if old, ok := out[id]; !ok || pos < old {
			out[id] = pos
		}
	}
	var walk func(n ast.Node, conc bool)
	walk = func(n ast.Node, conc bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.GoStmt:
				if !conc {
					walk(s.Call, true)
					return false
				}
			case *ast.CallExpr:
				if conc {
					return true
				}
				if lc, ok := classifyLockCall(info, s); ok && lc.acquire {
					if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
						if id, ok := lockIdent(info, sel.X); ok {
							record(id, s.Pos())
						}
					}
				}
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
	return out
}

// transAcquires computes, for every module function, the set of locks it
// may acquire directly or through any call chain, by iterating the direct
// sets to a fixpoint over the call graph.
func (m *Module) transAcquires() map[*types.Func]map[lockID]token.Pos {
	if m.acqMemo != nil {
		return m.acqMemo
	}
	cg := m.Graph()
	acq := make(map[*types.Func]map[lockID]token.Pos, len(cg.Funcs))
	for _, node := range cg.Ordered() {
		acq[node.Fn] = m.acquireSites(node)
	}
	for changed := true; changed; {
		changed = false
		for _, node := range cg.Ordered() {
			mine := acq[node.Fn]
			for _, cs := range node.Calls {
				if cs.Concurrent {
					continue
				}
				for id, pos := range acq[cs.Callee] {
					if old, ok := mine[id]; !ok || pos < old {
						mine[id] = pos
						changed = true
					}
				}
			}
		}
	}
	m.acqMemo = acq
	return acq
}

// lockEdge is one "B acquired while A held" observation.
type lockEdge struct {
	from, to lockID
	fromPos  token.Pos // where A was acquired (the critical section entry)
	toPos    token.Pos // the acquisition or call site inside the section
	viaPos   token.Pos // where B is actually acquired (== toPos when direct)
	node     *FuncNode // function owning toPos
}

// lockEdges records every acquisition-order edge in the module, sorted.
func (m *Module) lockEdges() []lockEdge {
	if m.edgesBuilt {
		return m.orderEdges
	}
	m.edgesBuilt = true
	acq := m.transAcquires()
	for _, r := range m.regions() {
		info := r.node.Pkg.Info
		sel, ok := r.lc.call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		from, ok := lockIdent(info, sel.X)
		if !ok {
			continue
		}
		// Direct acquisitions inside the span.
		for id, pos := range m.acquireSites(r.node) {
			if id != from && pos > r.start && pos < r.end {
				m.orderEdges = append(m.orderEdges, lockEdge{from: from, to: id, fromPos: r.lc.call.Pos(), toPos: pos, viaPos: pos, node: r.node})
			}
		}
		// Transitive acquisitions through calls inside the span.
		for _, cs := range r.node.Calls {
			pos := cs.Call.Pos()
			if cs.Concurrent || pos <= r.start || pos >= r.end {
				continue
			}
			for id, via := range acq[cs.Callee] {
				if id != from {
					m.orderEdges = append(m.orderEdges, lockEdge{from: from, to: id, fromPos: r.lc.call.Pos(), toPos: pos, viaPos: via, node: r.node})
				}
			}
		}
	}
	sort.Slice(m.orderEdges, func(i, j int) bool {
		a, b := m.orderEdges[i], m.orderEdges[j]
		if a.from != b.from {
			return a.from.String() < b.from.String()
		}
		if a.to != b.to {
			return a.to.String() < b.to.String()
		}
		if a.toPos != b.toPos {
			return a.toPos < b.toPos
		}
		return a.fromPos < b.fromPos
	})
	return m.orderEdges
}

// cycleEdges returns the deduplicated (one per ordered lock pair) edges
// that participate in a cycle of the acquisition graph.
func (m *Module) cycleEdges() []lockEdge {
	edges := m.lockEdges()
	adj := make(map[lockID][]lockID)
	seenPair := make(map[[2]string]bool)
	for _, e := range edges {
		k := [2]string{e.from.String(), e.to.String()}
		if !seenPair[k] {
			seenPair[k] = true
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	reach := func(src, dst lockID) bool {
		seen := map[lockID]bool{src: true}
		stack := []lockID{src}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range adj[n] {
				if next == dst {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var out []lockEdge
	reported := make(map[[2]string]bool)
	for _, e := range edges {
		k := [2]string{e.from.String(), e.to.String()}
		if reported[k] {
			continue
		}
		if reach(e.to, e.from) { // closing the loop back to `from` => cycle
			reported[k] = true
			out = append(out, e)
		}
	}
	return out
}

// counterSite finds the edge that starts the return path to -> ... -> from,
// so the report can name the reverse acquisition site.
func (m *Module) counterSite(from, to lockID) (lockEdge, bool) {
	for _, e := range m.lockEdges() {
		if e.from == to && m.pathExists(e.to, from) {
			return e, true
		}
	}
	return lockEdge{}, false
}

func (m *Module) pathExists(src, dst lockID) bool {
	if src == dst {
		return true
	}
	seen := map[lockID]bool{src: true}
	stack := []lockID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range m.lockEdges() {
			if e.from != n {
				continue
			}
			if e.to == dst {
				return true
			}
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return false
}

func runLockOrder(p *Pass) {
	m := p.Module
	fset := p.Pkg.Fset
	for _, e := range m.cycleEdges() {
		if e.node.Pkg != p.Pkg {
			continue
		}
		msg := "lock order cycle: " + e.to.String() + " is acquired (at " + posBrief(fset, e.viaPos) +
			") while holding " + e.from.String() + " (acquired at " + posBrief(fset, e.fromPos) + ")"
		if rev, ok := m.counterSite(e.from, e.to); ok {
			msg += ", but the reverse order " + rev.from.String() + " -> " + rev.to.String() +
				" is taken at " + posBrief(fset, rev.toPos)
		}
		p.Reportf(e.toPos, "%s", msg)
	}
}
