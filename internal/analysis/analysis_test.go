package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadScratch writes a throwaway single-package module and loads it, so
// framework behavior can be tested without touching the real fixtures.
func loadScratch(t *testing.T, src string) *Package {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "p")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "scratch" {
		t.Fatalf("ModulePath = %q, want scratch", l.ModulePath)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return pkg
}

const scratchTemplate = `package p

import "errors"

var errThing = errors.New("thing")

func compare(err error) bool {
	%s
	return err == errThing
}
`

func TestSuppressionWithReasonSilencesFinding(t *testing.T) {
	pkg := loadScratch(t, strings.Replace(scratchTemplate, "%s",
		"//lint:ignore sentinelerr identity is intended in this test", 1))
	findings := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(findings) != 0 {
		t.Fatalf("want no findings, got %v", findings)
	}
}

func TestSuppressionWithoutReasonIsAFinding(t *testing.T) {
	pkg := loadScratch(t, strings.Replace(scratchTemplate, "%s",
		"//lint:ignore sentinelerr", 1))
	findings := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (suppress + sentinelerr), got %v", findings)
	}
	var names []string
	for _, f := range findings {
		names = append(names, f.Analyzer)
	}
	got := strings.Join(names, ",")
	if !strings.Contains(got, "suppress") || !strings.Contains(got, "sentinelerr") {
		t.Fatalf("want suppress and sentinelerr findings, got %v", findings)
	}
}

func TestSuppressionWrongAnalyzerDoesNotSilence(t *testing.T) {
	pkg := loadScratch(t, strings.Replace(scratchTemplate, "%s",
		"//lint:ignore locksafe wrong analyzer name", 1))
	findings := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(findings) != 1 || findings[0].Analyzer != "sentinelerr" {
		t.Fatalf("want 1 sentinelerr finding, got %v", findings)
	}
}

func TestLoadAllCoversOwnPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	joined := strings.Join(paths, "\n")
	// The linter must check itself and must not descend into fixtures.
	if !strings.Contains(joined, "nntstream/internal/analysis") {
		t.Errorf("LoadAll skipped the analysis package itself:\n%s", joined)
	}
	if strings.Contains(joined, "testdata") {
		t.Errorf("LoadAll descended into testdata:\n%s", joined)
	}
	if !strings.Contains(joined, "nntstream/internal/core") || !strings.Contains(joined, "nntstream/cmd/serve") {
		t.Errorf("LoadAll missing expected module packages:\n%s", joined)
	}
}
