package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentinelErr enforces errors.Is for sentinel comparisons: the engine wraps
// its sentinels (core.ErrUnknownStream, core.ErrSealed, ...) with %w, so a
// direct ==/!= against the sentinel silently stops matching the moment a
// caller adds context. The HTTP status mapping and the recovery paths both
// depend on wrapped sentinels staying recognizable.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "module error sentinels are compared with errors.Is, never == or !=",
	Run:  runSentinelErr,
}

func runSentinelErr(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if name := sentinelName(p, side); name != "" {
					p.Reportf(be.Pos(), "sentinel %s is compared with %s; use errors.Is — the engine wraps sentinels with %%w", name, be.Op)
					return true
				}
			}
			return true
		})
	}
}

// sentinelName reports the qualified name when e refers to a module-level
// error sentinel (a package-scope var of type error named Err*/err*), or "".
func sentinelName(p *Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	v, ok := p.Pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !strings.HasPrefix(v.Pkg().Path(), p.Pkg.ModulePath) {
		return ""
	}
	name := v.Name()
	isSentinelName := strings.HasPrefix(name, "Err") ||
		(strings.HasPrefix(name, "err") && len(name) > 3)
	if !isSentinelName {
		return ""
	}
	errType := types.Universe.Lookup("error").Type()
	if !types.Identical(v.Type(), errType) {
		return ""
	}
	return v.Pkg().Name() + "." + name
}
