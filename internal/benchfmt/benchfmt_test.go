package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeSortedRoundTrip(t *testing.T) {
	r := &Report{Revision: "abc123", GoMaxProcs: 4, Benchtime: "100ms"}
	r.Add(Result{Name: "Fig16_Skyline", Iterations: 50, NsPerOp: 1200, AllocsPerOp: 3, BytesPerOp: 96})
	r.Add(Result{Name: "Fig02_NPVDSC", Iterations: 80, NsPerOp: 900, AllocsPerOp: 1, BytesPerOp: 32})

	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "Fig02_NPVDSC") > strings.Index(out, "Fig16_Skyline") {
		t.Fatalf("results not sorted by name:\n%s", out)
	}

	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Revision != "abc123" || got.GoMaxProcs != 4 || got.Benchtime != "100ms" {
		t.Fatalf("environment fields lost: %+v", got)
	}
	if len(got.Results) != 2 {
		t.Fatalf("results = %d; want 2", len(got.Results))
	}
	res, ok := got.Lookup("Fig02_NPVDSC")
	if !ok || res.NsPerOp != 900 || res.AllocsPerOp != 1 {
		t.Fatalf("Lookup(Fig02_NPVDSC) = %+v, %v", res, ok)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	mk := func(order []string) string {
		r := &Report{}
		for _, n := range order {
			r.Add(Result{Name: n, Iterations: 1, NsPerOp: 1})
		}
		var buf bytes.Buffer
		if err := r.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := mk([]string{"b", "a", "c"})
	b := mk([]string{"c", "b", "a"})
	if a != b {
		t.Fatalf("encoding depends on insertion order:\n%s\nvs\n%s", a, b)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty name":      `{"results":[{"name":"","iterations":1,"ns_per_op":1}]}`,
		"duplicate":       `{"results":[{"name":"X","iterations":1,"ns_per_op":1},{"name":"X","iterations":1,"ns_per_op":2}]}`,
		"zero ns_per_op":  `{"results":[{"name":"X","iterations":1,"ns_per_op":0}]}`,
		"unknown field":   `{"results":[],"bogus":true}`,
		"not json at all": `benchmark: Fig02 900 ns/op`,
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
