// Package benchfmt defines the JSON interchange format for the repo's
// benchmark trajectory: a Report is one run of the figure benchmarks
// (BENCH_<rev>.json), and cmd/benchgate diffs two Reports to gate
// regressions in CI.
//
// The package deliberately does not import testing: the root test binary
// converts testing.BenchmarkResult values into plain Result records, and
// benchgate consumes the JSON without linking the test framework.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Result is the cost of one benchmark: wall time and allocations per
// operation, plus the iteration count the numbers were averaged over so a
// reader can judge how trustworthy a short -benchtime run is.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is one benchmark run. Environment fields record the conditions
// the numbers were taken under; comparisons across different GOMAXPROCS
// or Go versions are still mechanically possible but benchgate surfaces
// the mismatch so a human can discount them.
type Report struct {
	Revision   string   `json:"revision,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Benchtime  string   `json:"benchtime,omitempty"`
	Results    []Result `json:"results"`
}

// Add appends a result. Encode sorts, so call order does not matter.
func (r *Report) Add(res Result) { r.Results = append(r.Results, res) }

// Lookup returns the result with the given name.
func (r *Report) Lookup(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Encode writes the report as indented JSON with results sorted by name,
// so successive runs of the same suite produce line-diffable files.
func (r *Report) Encode(w io.Writer) error {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("benchfmt: encode: %w", err)
	}
	return nil
}

// Decode reads a report and validates the minimum shape benchgate needs:
// every result is named, named once, has a positive per-op time, and
// non-negative allocation stats (testing.BenchmarkResult can never produce
// negative counts, so a negative value means a hand-edited or corrupt file
// that would silently satisfy any -max-allocs cap).
func Decode(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchfmt: decode: %w", err)
	}
	seen := make(map[string]bool, len(r.Results))
	for _, res := range r.Results {
		if res.Name == "" {
			return nil, fmt.Errorf("benchfmt: result with empty name")
		}
		if seen[res.Name] {
			return nil, fmt.Errorf("benchfmt: duplicate result %q", res.Name)
		}
		seen[res.Name] = true
		if res.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchfmt: result %q has non-positive ns_per_op", res.Name)
		}
		if res.AllocsPerOp < 0 {
			return nil, fmt.Errorf("benchfmt: result %q has negative allocs_per_op", res.Name)
		}
		if res.BytesPerOp < 0 {
			return nil, fmt.Errorf("benchfmt: result %q has negative bytes_per_op", res.Name)
		}
	}
	return &r, nil
}
