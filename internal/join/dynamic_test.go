package join

import (
	"math/rand"
	"reflect"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// dynamicFilters returns fresh instances of every filter supporting dynamic
// query registration.
func dynamicFilters(depth int) []core.DynamicFilter {
	return []core.DynamicFilter{
		NewNL(depth), NewDSC(depth), NewSkyline(depth), NewBranch(depth), NewExact(),
	}
}

func TestDynamicAddAfterStreams(t *testing.T) {
	for _, f := range dynamicFilters(3) {
		t.Run(f.Name(), func(t *testing.T) {
			// Stream contains an A-B edge and a triangle.
			g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
				[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
			if err := f.AddStream(0, g); err != nil {
				t.Fatal(err)
			}
			// Now add queries live.
			q0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
			q1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 3}, [][3]int{{0, 1, 0}})
			if err := f.AddQuery(0, q0); err != nil {
				t.Fatal(err)
			}
			if err := f.AddQuery(1, q1); err != nil {
				t.Fatal(err)
			}
			got := f.Candidates()
			want := []core.Pair{{Stream: 0, Query: 0}}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Candidates = %v; want %v", got, want)
			}
		})
	}
}

func TestDynamicRemove(t *testing.T) {
	for _, f := range dynamicFilters(3) {
		t.Run(f.Name(), func(t *testing.T) {
			workload(t, f.(core.Filter))
			if err := f.RemoveQuery(0); err != nil {
				t.Fatal(err)
			}
			for _, p := range f.Candidates() {
				if p.Query == 0 {
					t.Fatalf("removed query still reported: %v", p)
				}
			}
			if err := f.RemoveQuery(0); err == nil {
				t.Fatal("double remove should fail")
			}
			if err := f.RemoveQuery(99); err == nil {
				t.Fatal("removing unknown query should fail")
			}
			// Re-register under the same ID and keep streaming.
			q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
			if err := f.AddQuery(0, q); err != nil {
				t.Fatal(err)
			}
			if err := f.Apply(0, graph.ChangeSet{graph.DeleteOp(0, 1)}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDynamicAgreementRandomized interleaves stream changes with query
// additions and removals and checks that NL, DSC, and Skyline always agree
// and never miss an exact pair — the same invariant as the static test, now
// under a churning query set.
func TestDynamicAgreementRandomized(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + r.Intn(3)
		template := randomConnected(r, 10, 3, 2)

		nl := NewNL(depth)
		dsc := NewDSC(depth)
		sky := NewSkyline(depth)
		exact := NewExact()
		filters := []core.DynamicFilter{nl, dsc, sky, exact}

		// Streams first: the dynamic path is exercised by adding every
		// query live.
		var starts []*graph.Graph
		for i := 0; i < 3; i++ {
			starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
		}
		starts = append(starts, template.Clone())
		for _, f := range filters {
			for sid, g := range starts {
				if err := f.AddStream(core.StreamID(sid), g); err != nil {
					t.Fatal(err)
				}
			}
		}

		live := map[core.QueryID]bool{}
		nextQ := core.QueryID(0)
		check := func(step int) {
			base := nl.Candidates()
			for _, f := range []core.DynamicFilter{dsc, sky} {
				if got := f.Candidates(); !reflect.DeepEqual(base, got) {
					t.Fatalf("seed=%d depth=%d step=%d: %s=%v vs NL=%v",
						seed, depth, step, f.Name(), got, base)
				}
			}
			in := make(map[core.Pair]bool)
			for _, p := range base {
				in[p] = true
			}
			for _, p := range exact.Candidates() {
				if !in[p] {
					t.Fatalf("seed=%d depth=%d step=%d: NPV filters missed exact pair %v",
						seed, depth, step, p)
				}
			}
		}

		labelOf := func(g *graph.Graph, v graph.VertexID, fb graph.Label) graph.Label {
			if l, ok := g.VertexLabel(v); ok {
				return l
			}
			return fb
		}
		for step := 0; step < 25; step++ {
			switch {
			case step%5 == 0 || len(live) == 0:
				// Add a query (a subgraph of the template half the time so
				// real matches occur).
				var q *graph.Graph
				if r.Intn(2) == 0 {
					q = randomSub(r, template)
				} else {
					q = randomSub(r, starts[r.Intn(len(starts))])
				}
				if q.VertexCount() == 0 {
					continue
				}
				id := nextQ
				nextQ++
				for _, f := range filters {
					if err := f.AddQuery(id, q); err != nil {
						t.Fatalf("seed=%d step=%d: %s add query: %v", seed, step, f.Name(), err)
					}
				}
				live[id] = true
			case step%7 == 0 && len(live) > 0:
				// Remove a random live query.
				var id core.QueryID
				for q := range live {
					id = q
					break
				}
				for _, f := range filters {
					if err := f.RemoveQuery(id); err != nil {
						t.Fatalf("seed=%d step=%d: %s remove query: %v", seed, step, f.Name(), err)
					}
				}
				delete(live, id)
			default:
				// Mutate a random stream.
				sid := core.StreamID(r.Intn(len(starts)))
				cur := exact.streams[sid]
				var cs graph.ChangeSet
				for k := 0; k < 1+r.Intn(3); k++ {
					u := graph.VertexID(r.Intn(12))
					v := graph.VertexID(r.Intn(12))
					if u == v {
						continue
					}
					if cur.HasEdge(u, v) && r.Float64() < 0.5 {
						cs = append(cs, graph.DeleteOp(u, v))
					} else if !cur.HasEdge(u, v) {
						cs = append(cs, graph.InsertOp(u, labelOf(cur, u, graph.Label(r.Intn(3))),
							v, labelOf(cur, v, graph.Label(r.Intn(3))), graph.Label(r.Intn(2))))
					}
				}
				cs = cs.Normalize()
				if err := cs.Apply(cur.Clone()); err != nil {
					continue
				}
				for _, f := range filters {
					if err := f.Apply(sid, cs); err != nil {
						t.Fatalf("seed=%d step=%d: %s apply: %v", seed, step, f.Name(), err)
					}
				}
			}
			check(step)
		}
	}
}

func TestMonitorDynamicQueries(t *testing.T) {
	mon := core.NewMonitor(NewDSC(3))
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if _, err := mon.AddStream(g); err != nil {
		t.Fatal(err)
	}
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	id, err := mon.AddQuery(q) // after a stream: allowed, DSC is dynamic
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Candidates(); len(got) != 1 {
		t.Fatalf("Candidates = %v", got)
	}
	if err := mon.RemoveQuery(id); err != nil {
		t.Fatal(err)
	}
	if got := mon.Candidates(); len(got) != 0 {
		t.Fatalf("Candidates after removal = %v", got)
	}
	if err := mon.RemoveQuery(id); err == nil {
		t.Fatal("removing twice should fail")
	}
}
