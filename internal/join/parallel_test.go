package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// parallelStrategies returns the batch-capable NPV filters under their
// constructor, so sequential and parallel twins can be built per strategy.
func parallelStrategies(depth int) map[string]func() core.Filter {
	return map[string]func() core.Filter{
		"NL":      func() core.Filter { return NewNL(depth) },
		"DSC":     func() core.Filter { return NewDSC(depth) },
		"Skyline": func() core.Filter { return NewSkyline(depth) },
	}
}

// randomBatch builds a valid multi-stream change batch against the current
// canonical graphs, mutating them in place as the new canonical state.
func randomBatch(r *rand.Rand, graphs map[core.StreamID]*graph.Graph) map[core.StreamID]graph.ChangeSet {
	batch := make(map[core.StreamID]graph.ChangeSet)
	for sid, cur := range graphs {
		if r.Float64() < 0.25 {
			continue // leave this stream unchanged at this timestamp
		}
		var cs graph.ChangeSet
		// fresh pins the label of a vertex first seen inside this change
		// set, so two inserts touching the same new vertex agree.
		fresh := make(map[graph.VertexID]graph.Label)
		labelOf := func(v graph.VertexID) graph.Label {
			if l, ok := cur.VertexLabel(v); ok {
				return l
			}
			if l, ok := fresh[v]; ok {
				return l
			}
			l := graph.Label(r.Intn(3))
			fresh[v] = l
			return l
		}
		for k := 0; k < 1+r.Intn(4); k++ {
			u := graph.VertexID(r.Intn(12))
			v := graph.VertexID(r.Intn(12))
			if u == v {
				continue
			}
			if cur.HasEdge(u, v) && r.Float64() < 0.5 {
				cs = append(cs, graph.DeleteOp(u, v))
			} else if !cur.HasEdge(u, v) {
				cs = append(cs, graph.InsertOp(u, labelOf(u), v, labelOf(v), graph.Label(r.Intn(2))))
			}
		}
		cs = cs.Normalize()
		if len(cs) == 0 {
			continue
		}
		next := cur.Clone()
		if err := cs.Apply(next); err != nil {
			continue // skip invalid batches; canonical state untouched
		}
		graphs[sid] = next
		batch[sid] = cs
	}
	return batch
}

// TestParallelMatchesSequentialRandomized is the determinism contract of
// the tentpole: for every strategy, a filter driven through the parallel
// ApplyAll batch path reports candidate sets identical to a sequential
// twin fed the same change sets through Apply, at every timestamp of a
// randomized multi-stream workload. Run under -race (the Makefile's race
// target covers this package) it also proves the fan-out shares no state.
func TestParallelMatchesSequentialRandomized(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(400 + seed))
		depth := 1 + r.Intn(3)
		template := randomConnected(r, 10, 3, 2)
		var queries []*graph.Graph
		for i := 0; i < 4; i++ {
			queries = append(queries, randomSub(r, template))
		}
		var starts []*graph.Graph
		for i := 0; i < 4; i++ {
			starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
		}
		starts = append(starts, template.Clone())

		for name, mk := range parallelStrategies(depth) {
			rr := rand.New(rand.NewSource(7000 + seed))
			seq := mk()
			par := mk().(interface {
				core.Filter
				core.BatchApplier
				core.ParallelFilter
			})
			par.SetWorkers(8)
			for _, f := range []core.Filter{seq, par} {
				for qid, q := range queries {
					if err := f.AddQuery(core.QueryID(qid), q); err != nil {
						t.Fatal(err)
					}
				}
				for sid, g := range starts {
					if err := f.AddStream(core.StreamID(sid), g); err != nil {
						t.Fatal(err)
					}
				}
			}
			graphs := make(map[core.StreamID]*graph.Graph)
			for sid, g := range starts {
				graphs[core.StreamID(sid)] = g.Clone()
			}
			for step := 0; step < 25; step++ {
				batch := randomBatch(rr, graphs)
				for _, sid := range batchStreamIDs(batch) {
					if err := seq.Apply(sid, batch[sid]); err != nil {
						t.Fatalf("seed=%d %s step=%d: sequential apply: %v", seed, name, step, err)
					}
				}
				if err := par.ApplyAll(batch); err != nil {
					t.Fatalf("seed=%d %s step=%d: parallel apply: %v", seed, name, step, err)
				}
				want, got := seq.Candidates(), par.Candidates()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d %s step=%d: parallel candidates %v != sequential %v",
						seed, name, step, got, want)
				}
			}
		}
	}
}

// TestApplyAllErrors pins the batch path's error behavior: an unknown
// stream in the batch fails deterministically with the lowest offending
// StreamID, and an empty batch is a no-op.
func TestApplyAllErrors(t *testing.T) {
	for name, mk := range parallelStrategies(2) {
		t.Run(name, func(t *testing.T) {
			f := mk().(core.BatchApplier)
			ff := f.(core.Filter)
			workload(t, ff)
			if err := f.ApplyAll(nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}
			err := f.ApplyAll(map[core.StreamID]graph.ChangeSet{
				7: {graph.DeleteOp(0, 1)},
				5: {graph.DeleteOp(0, 1)},
			})
			if err == nil {
				t.Fatal("unknown streams not rejected")
			}
			want := fmt.Sprintf("join: unknown stream %d", 5)
			if err.Error() != want {
				t.Fatalf("error = %q; want %q (lowest StreamID first)", err, want)
			}
			// The known streams' verdicts survive a failed batch untouched
			// only when the batch never validated; engines stage changes
			// first, so all we require here is that valid streams still
			// answer Candidates.
			if got := ff.Candidates(); len(got) == 0 {
				t.Fatal("candidates lost after rejected batch")
			}
		})
	}
}

// TestSetWorkersBounds pins the pool-sizing contract: n <= 0 resolves to
// GOMAXPROCS, 1 stays sequential, and the configured bound is what the
// pool metrics report.
func TestSetWorkersBounds(t *testing.T) {
	f := NewDSC(2)
	read := func() float64 {
		var got float64
		f.CollectMetrics(func(name string, v float64) {
			if name == "nntstream_join_pool_workers" {
				got = v
			}
		})
		return got
	}
	if got := read(); got != 1 {
		t.Fatalf("default workers = %v; want 1 (sequential)", got)
	}
	f.SetWorkers(0)
	if got := read(); got != float64(runtime.GOMAXPROCS(0)) {
		t.Fatalf("auto workers = %v; want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	f.SetWorkers(6)
	if got := read(); got != 6 {
		t.Fatalf("explicit workers = %v; want 6", got)
	}
}

// TestPoolDispatchCounted drives a parallel batch and checks the pool
// telemetry moved — the worker fan-out actually engaged rather than
// falling back to the inline path.
func TestPoolDispatchCounted(t *testing.T) {
	f := NewNL(2)
	f.SetWorkers(4)
	workload(t, f)
	batch := map[core.StreamID]graph.ChangeSet{
		0: {graph.InsertOp(0, 0, 2, 2, 0)},
		1: {graph.DeleteOp(2, 0)},
	}
	if err := f.ApplyAll(batch); err != nil {
		t.Fatal(err)
	}
	metrics := map[string]float64{}
	f.CollectMetrics(func(name string, v float64) { metrics[name] = v })
	if metrics["nntstream_join_pool_parallel_batches_total"] == 0 {
		t.Fatalf("no parallel batches dispatched: %v", metrics)
	}
	if metrics["nntstream_join_pool_parallel_tasks_total"] < 2 {
		t.Fatalf("parallel tasks = %v; want >= 2", metrics["nntstream_join_pool_parallel_tasks_total"])
	}
	if metrics["nntstream_join_pool_max_batch_tasks"] < 2 {
		t.Fatalf("max batch tasks = %v; want >= 2", metrics["nntstream_join_pool_max_batch_tasks"])
	}
}
