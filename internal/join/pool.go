package join

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// evalPool fans independent evaluation tasks out over a bounded set of
// goroutines. It is the parallel substrate behind the filters' ApplyAll
// batch path: every task owns exactly one result slot, so the fan-out is
// deterministic — the merged output is bit-identical to running the tasks
// sequentially in slot order, regardless of scheduling (the mapdeterm
// discipline extended to goroutine joins).
//
// The zero value is sequential (one worker). Filters resize it through
// core.ParallelFilter's SetWorkers.
type evalPool struct {
	// workers bounds the goroutines per batch; 0 and 1 both mean
	// sequential (run inline on the caller's goroutine).
	workers int

	// Pool telemetry, exported by the owning filter's CollectMetrics.
	batches   atomic.Int64 // parallel batches dispatched
	tasks     atomic.Int64 // tasks run across parallel batches
	waitNanos atomic.Int64 // summed submit→start latency across tasks
	maxBatch  atomic.Int64 // largest task count handed to one batch
}

// setWorkers bounds the pool; n <= 0 sizes it to runtime.GOMAXPROCS.
func (p *evalPool) setWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.workers = n
}

// size reports the configured bound (minimum 1).
func (p *evalPool) size() int {
	if p.workers < 1 {
		return 1
	}
	return p.workers
}

// run executes fn(0..n-1). With more than one worker and more than one
// task, tasks are pulled off a shared atomic cursor by min(workers, n)
// goroutines; otherwise they run inline. fn must write only to state owned
// by task i (its result slot and, for per-stream tasks, that stream's
// state) — run provides the happens-before edge between all tasks and the
// caller via the WaitGroup join.
//
//nnt:nonblocking the join waits only for the batch's own compute-bound tasks, which by contract take no locks and do no I/O
func (p *evalPool) run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.size()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.batches.Add(1)
	p.tasks.Add(int64(n))
	for {
		prev := p.maxBatch.Load()
		if int64(n) <= prev || p.maxBatch.CompareAndSwap(prev, int64(n)) {
			break
		}
	}
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				p.waitNanos.Add(time.Since(start).Nanoseconds())
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// collect emits the pool gauges and counters under the shared
// nntstream_join_pool_ prefix. obs.Gather sums duplicates, so across a
// sharded engine the workers gauge reads as total evaluation capacity and
// the counters as fleet-wide totals.
func (p *evalPool) collect(emit func(name string, value float64)) {
	emit("nntstream_join_pool_workers", float64(p.size()))
	emit("nntstream_join_pool_parallel_batches_total", float64(p.batches.Load()))
	emit("nntstream_join_pool_parallel_tasks_total", float64(p.tasks.Load()))
	emit("nntstream_join_pool_task_wait_seconds_total", float64(p.waitNanos.Load())/1e9)
	emit("nntstream_join_pool_max_batch_tasks", float64(p.maxBatch.Load()))
}
