package join

import (
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/factor"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// TestSkylineDominatedEmptyQueryVector covers the len(u)==0 branch of
// Skyline.dominated: an isolated query vertex projects to the empty vector,
// which is dominated by any stream vertex — so the pair is a candidate iff
// the stream has at least one vertex.
func TestSkylineDominatedEmptyQueryVector(t *testing.T) {
	f := NewSkyline(DefaultDepth)
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 5}, nil)
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}

	empty := graph.New()
	if err := f.AddStream(0, empty); err != nil {
		t.Fatal(err)
	}
	nonEmpty := buildGraph(t, map[graph.VertexID]graph.Label{0: 9}, nil)
	if err := f.AddStream(1, nonEmpty); err != nil {
		t.Fatal(err)
	}

	got := f.Candidates()
	want := []core.Pair{{Stream: 1, Query: 0}}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("Candidates = %v; want %v (empty stream cannot dominate, any vertex dominates the empty query vector)", got, want)
	}

	// Direct unit check of the probe.
	ss := f.streams[0]
	empty0 := factor.Unfactored(npv.Pack(npv.Vector{}))
	if ok, _ := dominated(ss, empty0); ok {
		t.Fatal("empty stream should not dominate the empty vector")
	}
	if ok, _ := dominated(f.streams[1], empty0); !ok {
		t.Fatal("non-empty stream should dominate the empty vector")
	}
}

// TestSkylineRetiredVertex covers vertex retirement: deleting the last edge
// of a vertex removes it from the graph, its NPV from the space, and its
// entries from the per-dimension statistics, flipping verdicts that depended
// on it.
func TestSkylineRetiredVertex(t *testing.T) {
	f := NewSkyline(DefaultDepth)
	// Query A-B (labels 0-1).
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}
	// Stream: A-B plus an unrelated C-C edge that survives the deletion.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2, 3: 2},
		[][3]int{{0, 1, 0}, {2, 3, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 1 {
		t.Fatalf("Candidates before deletion = %v; want 1 pair", got)
	}
	ss := f.streams[0]
	dimsBefore := len(ss.dims)
	if dimsBefore == 0 || len(ss.prev) != 4 {
		t.Fatalf("stream stats before deletion: dims=%d prev=%d", dimsBefore, len(ss.prev))
	}

	// Deleting edge 0-1 retires both endpoints (degree drops to zero).
	if err := f.Apply(0, graph.ChangeSet{graph.DeleteOp(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 0 {
		t.Fatalf("Candidates after retirement = %v; want none", got)
	}
	if len(ss.prev) != 2 {
		t.Fatalf("prev after retirement = %d vertices; want 2 (retired vectors must be deregistered)", len(ss.prev))
	}
	for v := range ss.prev {
		if v != 2 && v != 3 {
			t.Fatalf("retired vertex %d still registered", v)
		}
	}
	// Dimensions fed only by the retired vertices must be gone, and every
	// remaining dimension's membership must reference live vertices only.
	for d, stat := range ss.dims {
		if len(stat.members) == 0 {
			t.Fatalf("dimension %v kept with no members", d)
		}
		for v := range stat.members {
			if v != 2 && v != 3 {
				t.Fatalf("dimension %v still lists retired vertex %d", d, v)
			}
		}
	}

	// The query vector is now refuted via the per-dimension max fast path:
	// its dimensions have no members at all.
	u := f.fq[0][0]
	if ok, _ := dominated(ss, u); ok {
		t.Fatal("retired vertices must not dominate the query vector")
	}

	// Re-inserting the edge restores the pair (no stale max/member state).
	if err := f.Apply(0, graph.ChangeSet{graph.InsertOp(0, 0, 1, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 1 {
		t.Fatalf("Candidates after re-insertion = %v; want 1 pair", got)
	}
}

// TestSkylineMaxRecomputedOnRetreat checks the max-recomputation branch of
// refresh: when the vertex holding a dimension's max shrinks, the max must
// drop to the runner-up, not stay stale.
func TestSkylineMaxRecomputedOnRetreat(t *testing.T) {
	f := NewSkyline(1)
	// Stream: star center 0 with two leaves (dim count 2), and an
	// independent edge 3-4 contributing count 1 on the same dimension
	// (labels chosen to collide: all vertices label 7, edges label 0).
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 7, 1: 7, 2: 7, 3: 7, 4: 7},
		[][3]int{{0, 1, 0}, {0, 2, 0}, {3, 4, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	ss := f.streams[0]
	var d npv.Dim
	var maxBefore int32
	for dim, stat := range ss.dims {
		if stat.max > maxBefore {
			d, maxBefore = dim, stat.max
		}
	}
	if maxBefore != 2 {
		t.Fatalf("max before = %d; want 2 (star center)", maxBefore)
	}
	// Delete one star edge: center's count drops to 1.
	if err := f.Apply(0, graph.ChangeSet{graph.DeleteOp(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if got := ss.dims[d].max; got != 1 {
		t.Fatalf("max after retreat = %d; want 1", got)
	}
}
