// Package join implements the paper's three strategies for continuously
// joining graph streams with query patterns in the projected vector space
// (Section IV-B):
//
//   - NL: the nested-loop baseline, re-checking dominance pair by pair for
//     every changed stream.
//   - DSC: the dominated-set-cover method (Figure 8), which keeps position
//     and dominant counters per stream vertex so one NPV change touches only
//     the sorted-dimension entries it crosses.
//   - Skyline: the skyline-with-early-stop method (Figure 11), which checks
//     only the maximal query vectors, prunes via per-dimension max values,
//     and probes the lowest-cardinality dimension first.
//
// All three report a pair (G,Q) as possibly joinable iff every query vertex
// NPV is dominated by some stream vertex NPV (Lemma 4.2); they differ only
// in how that condition is maintained, so their candidate sets are
// identical — a property the tests enforce.
//
// The package also provides the branch-compatible NNT filter (Lemma 4.1,
// used for the ablation study) and the exact VF2 filter (ground truth).
package join

import (
	"fmt"
	"sort"

	"nntstream/internal/core"
	"nntstream/internal/factor"
	"nntstream/internal/graph"
	"nntstream/internal/nnt"
	"nntstream/internal/npv"
)

// DefaultDepth is the NNT depth bound used when callers do not override it;
// the paper's Figure 12 finds depth 3 sufficient for effective filtering.
const DefaultDepth = 3

// streamState bundles the incrementally maintained feature structures of
// one stream: its NNT forest, the projected vector space observing it, and
// — when the owning filter factors its query set — the per-(vertex, factor)
// verdict memo those factored tests short-circuit through.
type streamState struct {
	forest *nnt.Forest
	space  *npv.Space
	memo   *factor.Memo
}

// newStreamState builds the stream's feature structures. packed enables the
// space's PackedVector cache: filters whose evaluation runs on the packed
// dominance kernel (NL, Skyline) pass true so every timestamp's seal
// freezes the dirty vertices into packed form; counter-based DSC and the
// NNT-only Branch filter pass false and skip the sealing cost — except
// that a non-nil factor table forces packing on, because the factor memo
// evaluates the shared sub-vectors on the packed kernel at each seal.
func newStreamState(g0 *graph.Graph, depth int, packed bool, tbl *factor.Table) *streamState {
	space := npv.NewSpace()
	if packed || tbl != nil {
		space.EnablePacking()
	}
	st := &streamState{
		forest: nnt.NewForest(g0, depth, space),
		space:  space,
	}
	if tbl != nil {
		st.memo = factor.NewMemo(tbl)
	}
	return st
}

// sealDeltas seals the stream's dirty vertices into packed form and folds
// the transitions into the factor memo — the once-per-(vertex, factor,
// timestamp) shared evaluation. It mutates only this stream's state, so it
// belongs in the per-stream maintenance stage of a parallel batch; the
// memo is immutable (read-only) during the per-(stream, query) fan-out
// that follows. Requires packing (every caller enables it).
func (s *streamState) sealDeltas() []npv.DirtyDelta {
	deltas := s.space.SealDirty()
	if s.memo != nil {
		s.memo.ApplyDeltas(deltas)
	}
	return deltas
}

func (s *streamState) apply(cs graph.ChangeSet) error {
	return s.forest.ApplySet(cs)
}

// nodeCount reports the current NNT node count of the stream's forest, the
// structure-size gauge every NPV filter exports (see CollectMetrics).
func (s *streamState) nodeCount() int { return s.forest.TotalNodes() }

// qKey identifies one query vertex across all registered queries.
type qKey struct {
	Q core.QueryID
	V graph.VertexID
}

func (k qKey) String() string { return fmt.Sprintf("Q%d/%d", k.Q, k.V) }

// projectQuery computes the per-vertex NPVs of a static query graph.
func projectQuery(q *graph.Graph, depth int) map[graph.VertexID]npv.Vector {
	return npv.ProjectGraph(q, depth)
}

// packQuery projects a query and freezes its vectors into packed form in
// ascending vertex order — queries are static, so this runs once at
// registration and evaluation never touches a map vector again.
func packQuery(q *graph.Graph, depth int) []npv.PackedVector {
	return npv.PackAll(npv.VectorsByVertex(projectQuery(q, depth)))
}

// batchStreamIDs extracts a change batch's stream IDs in ascending order.
// The fan-out indexes tasks by position in this slice, so a fixed order is
// what makes the parallel merge — and the error reported for an invalid
// batch — deterministic.
func batchStreamIDs(changes map[core.StreamID]graph.ChangeSet) []core.StreamID {
	ids := make([]core.StreamID, 0, len(changes))
	for id := range changes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedQueryIDs extracts registered query IDs in ascending order — the
// pair-task enumeration order of the batch path.
func sortedQueryIDs[T any](m map[core.QueryID]T) []core.QueryID {
	qids := make([]core.QueryID, 0, len(m))
	for qid := range m {
		qids = append(qids, qid)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	return qids
}

// pairTask is one (stream, query) re-evaluation unit of a parallel batch.
type pairTask struct {
	sid core.StreamID
	qid core.QueryID
}

// firstError returns the lowest-index non-nil error of a fan-out, so a
// failing batch reports the same error the sequential loop would have hit
// first.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// unfactoredAll wraps a query's packed vectors as trivial decompositions —
// the evaluation form filters use when factoring is disabled.
func unfactoredAll(vecs []npv.PackedVector) []factor.Factored {
	out := make([]factor.Factored, len(vecs))
	for i, p := range vecs {
		out[i] = factor.Unfactored(p)
	}
	return out
}

// decompAll fetches the table's decompositions of a query's vectors, which
// registration keyed by slice position (the qindex.Key convention). The
// table must be sealed.
func decompAll(tbl *factor.Table, id core.QueryID, n int) []factor.Factored {
	out := make([]factor.Factored, n)
	for i := range out {
		d, ok := tbl.Decomp(factor.Key{Query: id, Vertex: graph.VertexID(i)})
		if !ok {
			panic(fmt.Sprintf("join: query %d vector %d missing from sealed factor table", id, i))
		}
		out[i] = d
	}
	return out
}

// dominatedByAny reports whether any vector in the stream's space dominates
// u, along with the number of vectors scanned before deciding (the
// nested-loop work measure NL exports). The scan runs entirely on the
// packed kernel — sealed stream vectors against a query decomposition
// frozen at registration. For a factored decomposition the probe loop
// walks only the memoized dominators of u's factor (a complete candidate
// set: factors are lower envelopes, so a vertex that doesn't dominate the
// factor dominates no member) and settles each with a merge over the small
// residual — the whole-space scan survives only for unfactored vectors.
//
//nnt:hotpath
func dominatedByAny(st *streamState, u factor.Factored) (found bool, scanned int) {
	if u.Factor != factor.None {
		st.memo.DominatorsOf(u.Factor, func(v graph.VertexID) bool {
			scanned++
			//lint:ignore hotalloc Packed's Pack() fallback only runs for dirty or cache-disabled vectors; sealed spaces on this path hit the packed cache allocation-free
			if p, ok := st.space.Packed(v); ok && p.Dominates(u.Residual) {
				found = true
				return false
			}
			return true
		})
		return found, scanned
	}
	//lint:ignore hotalloc Packed's Pack() fallback only runs for dirty or cache-disabled vectors; sealed spaces on this path hit the packed cache allocation-free
	st.space.PackedVectors(func(v graph.VertexID, p npv.PackedVector) bool {
		scanned++
		if st.memo.Dominated(v, p, u) {
			found = true
			return false
		}
		return true
	})
	return found, scanned
}
