package join

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

// Exact is the ground-truth "filter": it runs full subgraph isomorphism on
// every changed stream. Its candidate set is exactly the joinable pairs, so
// it has zero false positives — at NP-complete per-timestamp cost. It
// exists to measure the effectiveness of the real filters and to
// demonstrate why the paper's problem statement rules this approach out for
// real-time monitoring.
type Exact struct {
	matchers map[core.QueryID]*iso.Matcher
	streams  map[core.StreamID]*graph.Graph
	verdict  map[core.StreamID]map[core.QueryID]bool
	opts     []iso.Option
}

var _ core.DynamicFilter = (*Exact)(nil)

// NewExact returns the exact filter. Options (such as iso.WithNodeLimit)
// are forwarded to every query matcher.
func NewExact(opts ...iso.Option) *Exact {
	return &Exact{
		matchers: make(map[core.QueryID]*iso.Matcher),
		streams:  make(map[core.StreamID]*graph.Graph),
		verdict:  make(map[core.StreamID]map[core.QueryID]bool),
		opts:     opts,
	}
}

// Name implements core.Filter.
func (f *Exact) Name() string { return "Exact-VF2" }

// AddQuery implements core.Filter.
func (f *Exact) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.matchers[id]; ok {
		return fmt.Errorf("join: duplicate query %d", id)
	}
	f.matchers[id] = iso.NewMatcher(q.Clone(), f.opts...)
	for sid, g := range f.streams {
		f.verdict[sid][id] = f.matchers[id].Contains(g)
	}
	return nil
}

// RemoveQuery implements core.DynamicFilter.
func (f *Exact) RemoveQuery(id core.QueryID) error {
	if _, ok := f.matchers[id]; !ok {
		return fmt.Errorf("join: unknown query %d", id)
	}
	delete(f.matchers, id)
	for _, m := range f.verdict {
		delete(m, id)
	}
	return nil
}

// AddStream implements core.Filter.
func (f *Exact) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("join: duplicate stream %d", id)
	}
	f.streams[id] = g0.Clone()
	f.verdict[id] = make(map[core.QueryID]bool, len(f.matchers))
	f.evaluate(id)
	return nil
}

// Apply implements core.Filter.
func (f *Exact) Apply(id core.StreamID, cs graph.ChangeSet) error {
	g, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("join: unknown stream %d", id)
	}
	if err := cs.Apply(g); err != nil {
		return err
	}
	f.evaluate(id)
	return nil
}

func (f *Exact) evaluate(id core.StreamID) {
	g := f.streams[id]
	for qid, m := range f.matchers {
		f.verdict[id][qid] = m.Contains(g)
	}
}

// Candidates implements core.Filter.
func (f *Exact) Candidates() []core.Pair {
	var out []core.Pair
	for sid, m := range f.verdict {
		for qid, ok := range m {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}
