package join

import (
	"math/rand"
	"reflect"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// mapKernelReference recomputes the Lemma 4.2 candidate set from scratch
// with the original map-based kernel (Vector.Dominates over fresh
// projections): pair (G,Q) passes iff every query vertex NPV is dominated
// by some stream vertex NPV. It is the ground truth the packed kernel must
// reproduce bit-identically.
func mapKernelReference(graphs map[core.StreamID]*graph.Graph, queries []*graph.Graph, depth int) []core.Pair {
	qvecs := make([][]npv.Vector, len(queries))
	for qid, q := range queries {
		qvecs[qid] = npv.VectorsByVertex(npv.ProjectGraph(q, depth))
	}
	var out []core.Pair
	for sid, g := range graphs {
		gv := npv.VectorsByVertex(npv.ProjectGraph(g, depth))
		for qid := range queries {
			ok := true
			for _, u := range qvecs[qid] {
				found := false
				for _, v := range gv {
					if v.Dominates(u) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: core.QueryID(qid)})
			}
		}
	}
	return core.SortPairs(out)
}

// TestPackedKernelMatchesMapKernelRandomized is the representation-change
// contract of the packed-vector tentpole at the filter level: NL, DSC, and
// Skyline — sequential and through the parallel ApplyAll path — report
// candidate sets bit-identical to a from-scratch map-kernel recomputation
// at every timestamp of a randomized multi-stream workload.
func TestPackedKernelMatchesMapKernelRandomized(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(900 + seed))
		depth := 1 + r.Intn(3)
		template := randomConnected(r, 10, 3, 2)
		var queries []*graph.Graph
		for i := 0; i < 3; i++ {
			queries = append(queries, randomSub(r, template))
		}
		var starts []*graph.Graph
		for i := 0; i < 3; i++ {
			starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
		}
		starts = append(starts, template.Clone())

		for name, mk := range parallelStrategies(depth) {
			rr := rand.New(rand.NewSource(9100 + seed))
			seq := mk()
			par := mk().(interface {
				core.Filter
				core.BatchApplier
				core.ParallelFilter
			})
			par.SetWorkers(4)
			for _, f := range []core.Filter{seq, par} {
				for qid, q := range queries {
					if err := f.AddQuery(core.QueryID(qid), q); err != nil {
						t.Fatal(err)
					}
				}
				for sid, g := range starts {
					if err := f.AddStream(core.StreamID(sid), g); err != nil {
						t.Fatal(err)
					}
				}
			}
			graphs := make(map[core.StreamID]*graph.Graph)
			for sid, g := range starts {
				graphs[core.StreamID(sid)] = g.Clone()
			}
			for step := 0; step < 20; step++ {
				batch := randomBatch(rr, graphs)
				for _, sid := range batchStreamIDs(batch) {
					if err := seq.Apply(sid, batch[sid]); err != nil {
						t.Fatalf("seed=%d %s step=%d: sequential apply: %v", seed, name, step, err)
					}
				}
				if err := par.ApplyAll(batch); err != nil {
					t.Fatalf("seed=%d %s step=%d: parallel apply: %v", seed, name, step, err)
				}
				want := mapKernelReference(graphs, queries, depth)
				if got := seq.Candidates(); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d %s step=%d: sequential packed candidates %v != map kernel %v",
						seed, name, step, got, want)
				}
				if got := par.Candidates(); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d %s step=%d: parallel packed candidates %v != map kernel %v",
						seed, name, step, got, want)
				}
			}
		}
	}
}
