package join

import (
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/obs"
)

// TestFilterCollectors drives each NPV filter through a small workload and
// checks the structure-size samples it exports.
func TestFilterCollectors(t *testing.T) {
	mkQuery := func(t *testing.T) *graph.Graph {
		return buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	}
	mkStream := func(t *testing.T) *graph.Graph {
		return buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
			[][3]int{{0, 1, 0}, {1, 2, 0}})
	}
	cases := []struct {
		name    string
		filter  core.Filter
		present []string // sample names that must be > 0 after the workload
		work    []string // monotone work counters that must grow
	}{
		{
			name:    "dsc",
			filter:  NewDSC(DefaultDepth),
			present: []string{"nntstream_dsc_column_entries", "nntstream_dsc_query_vertices", "nntstream_filter_nnt_nodes"},
			work:    []string{"nntstream_dsc_dom_updates_total"},
		},
		{
			name:    "skyline",
			filter:  NewSkyline(DefaultDepth),
			present: []string{"nntstream_skyline_maximal_query_vectors", "nntstream_skyline_dimensions", "nntstream_filter_nnt_nodes"},
			work:    []string{"nntstream_skyline_probe_scans_total"},
		},
		{
			name:    "nl",
			filter:  NewNL(DefaultDepth),
			present: []string{"nntstream_nl_query_vectors", "nntstream_nl_stream_vectors", "nntstream_filter_nnt_nodes"},
			work:    []string{"nntstream_nl_vector_scans_total"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			col, ok := c.filter.(obs.Collector)
			if !ok {
				t.Fatalf("%s does not implement obs.Collector", c.name)
			}
			if err := c.filter.AddQuery(0, mkQuery(t)); err != nil {
				t.Fatal(err)
			}
			if err := c.filter.AddStream(0, mkStream(t)); err != nil {
				t.Fatal(err)
			}
			before := obs.Gather(col)
			for _, name := range c.present {
				if before[name] <= 0 {
					t.Fatalf("sample %s = %v; want > 0 (all: %v)", name, before[name], before)
				}
			}
			if before["nntstream_filter_streams"] != 1 {
				t.Fatalf("stream count sample = %v", before["nntstream_filter_streams"])
			}
			// Drive maintenance work — deleting and re-inserting the matched
			// edge crosses DSC's column entries in both directions — and
			// check the work counters advance.
			for i := 0; i < 3; i++ {
				del := graph.ChangeSet{graph.DeleteOp(0, 1)}
				if err := c.filter.Apply(0, del); err != nil {
					t.Fatal(err)
				}
				ins := graph.ChangeSet{graph.InsertOp(0, 0, 1, 1, 0)}
				if err := c.filter.Apply(0, ins); err != nil {
					t.Fatal(err)
				}
			}
			after := obs.Gather(col)
			for _, name := range c.work {
				if after[name] <= before[name] {
					t.Fatalf("work counter %s did not grow: %v -> %v", name, before[name], after[name])
				}
			}
		})
	}
}
