package join

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// factorEquiv is one participant in the factored-vs-unfactored matrix.
type factorEquiv struct {
	name     string
	f        core.DynamicFilter
	par      core.BatchApplier
	factored bool
}

// factorEquivFilters builds the matrix the tentpole's exactness claim is
// tested on: NL, Skyline, and DSC, each with shared-factor evaluation on
// (aggressive thresholds so factors actually form at test scale) and off,
// sequential and through the parallel batch path.
func factorEquivFilters(depth int) []factorEquiv {
	batch := func(f core.ParallelFilter) core.BatchApplier {
		f.SetWorkers(4)
		return f.(core.BatchApplier)
	}
	mkNL := func(on bool) *NL {
		f := NewNL(depth)
		if on {
			f.SetFactorThresholds(2, 1)
		} else {
			f.DisableFactors()
		}
		return f
	}
	mkSky := func(on bool) *Skyline {
		f := NewSkyline(depth)
		if on {
			f.SetFactorThresholds(2, 1)
		} else {
			f.DisableFactors()
		}
		return f
	}
	mkDSC := func(on bool) *DSC {
		f := NewDSC(depth)
		if on {
			f.SetFactorThresholds(2, 1)
		} else {
			f.DisableFactors()
		}
		return f
	}
	nlPar, skyPar, dscPar := mkNL(true), mkSky(true), mkDSC(true)
	nlOffPar, skyOffPar, dscOffPar := mkNL(false), mkSky(false), mkDSC(false)
	return []factorEquiv{
		{name: "NL/factored/seq", f: mkNL(true), factored: true},
		{name: "NL/factored/par", f: nlPar, par: batch(nlPar), factored: true},
		{name: "NL/nofactor/seq", f: mkNL(false)},
		{name: "NL/nofactor/par", f: nlOffPar, par: batch(nlOffPar)},
		{name: "Skyline/factored/seq", f: mkSky(true), factored: true},
		{name: "Skyline/factored/par", f: skyPar, par: batch(skyPar), factored: true},
		{name: "Skyline/nofactor/seq", f: mkSky(false)},
		{name: "Skyline/nofactor/par", f: skyOffPar, par: batch(skyOffPar)},
		{name: "DSC/factored/seq", f: mkDSC(true), factored: true},
		{name: "DSC/factored/par", f: dscPar, par: batch(dscPar), factored: true},
		{name: "DSC/nofactor/seq", f: mkDSC(false)},
		{name: "DSC/nofactor/par", f: dscOffPar, par: batch(dscOffPar)},
	}
}

// factorCount reads a participant's factor table size (0 when disabled).
func factorCount(f core.DynamicFilter) int {
	switch ff := f.(type) {
	case *NL:
		if ff.ft != nil {
			return ff.ft.FactorCount()
		}
	case *Skyline:
		if ff.ft != nil {
			return ff.ft.FactorCount()
		}
	case *DSC:
		if ff.ft != nil {
			return ff.ft.FactorCount()
		}
	}
	return 0
}

// TestFactoredMatchesUnfactoredRandomized is the exactness contract of
// shared-factor evaluation at the filter level: with factoring on, NL,
// DSC, and Skyline — sequential and through ApplyAll — report candidate
// sets bit-identical to their unfactored twins and to a from-scratch map
// kernel recomputation, at every timestamp of a randomized multi-stream
// workload whose query set is template-derived (so factors genuinely
// form), with queries added and removed mid-stream (so the NL/Skyline
// tables reseal and DSC's pinned set sees late matches).
func TestFactoredMatchesUnfactoredRandomized(t *testing.T) {
	sawFactors := false
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(4400 + seed))
		depth := 1 + r.Intn(3)
		template := randomConnected(r, 10, 3, 2)
		var starts []*graph.Graph
		for i := 0; i < 3; i++ {
			starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
		}
		starts = append(starts, template.Clone())

		filters := factorEquivFilters(depth)
		live := make(map[core.QueryID]*graph.Graph)
		nextQ := core.QueryID(0)
		addQuery := func(q *graph.Graph) {
			id := nextQ
			nextQ++
			for _, ef := range filters {
				if err := ef.f.AddQuery(id, q); err != nil {
					t.Fatalf("seed=%d: %s add query %d: %v", seed, ef.name, id, err)
				}
			}
			live[id] = q
		}
		// Template-with-variations set: each pattern registered twice
		// (identical twins guarantee shared entries) plus perturbed
		// variants from the same template.
		for i := 0; i < 3; i++ {
			q := randomSub(r, template)
			addQuery(q)
			addQuery(q.Clone())
		}
		for _, ef := range filters {
			for sid, g := range starts {
				if err := ef.f.AddStream(core.StreamID(sid), g); err != nil {
					t.Fatal(err)
				}
			}
		}
		graphs := make(map[core.StreamID]*graph.Graph)
		for sid, g := range starts {
			graphs[core.StreamID(sid)] = g.Clone()
		}
		for _, ef := range filters {
			if ef.factored && factorCount(ef.f) > 0 {
				sawFactors = true
			}
		}

		check := func(step int) {
			want := dynamicReference(graphs, live, depth)
			for _, ef := range filters {
				if got := ef.f.Candidates(); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d step=%d: %s candidates %v != reference %v",
						seed, step, ef.name, got, want)
				}
			}
		}
		check(-1)

		for step := 0; step < 24; step++ {
			switch {
			case step%6 == 2:
				// Mid-stream registration: a fresh template subgraph half
				// the time (matches existing factors), live-state subgraph
				// otherwise.
				var q *graph.Graph
				if r.Intn(2) == 0 {
					q = randomSub(r, template)
				} else {
					q = randomSub(r, graphs[core.StreamID(r.Intn(len(starts)))])
				}
				if q.VertexCount() > 0 {
					addQuery(q)
				}
			case step%8 == 5 && len(live) > 1:
				ids := make([]core.QueryID, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				victim := ids[r.Intn(len(ids))]
				for _, ef := range filters {
					if err := ef.f.RemoveQuery(victim); err != nil {
						t.Fatalf("seed=%d step=%d: %s remove query %d: %v",
							seed, step, ef.name, victim, err)
					}
				}
				delete(live, victim)
			default:
				batch := randomBatch(r, graphs)
				for _, ef := range filters {
					if ef.par != nil {
						if err := ef.par.ApplyAll(batch); err != nil {
							t.Fatalf("seed=%d step=%d: %s batch apply: %v", seed, step, ef.name, err)
						}
						continue
					}
					for _, sid := range batchStreamIDs(batch) {
						if err := ef.f.Apply(sid, batch[sid]); err != nil {
							t.Fatalf("seed=%d step=%d: %s apply: %v", seed, step, ef.name, err)
						}
					}
				}
			}
			check(step)
		}
	}
	if !sawFactors {
		t.Fatal("no factored participant ever discovered a factor — the matrix tested nothing")
	}
}

// TestFactorChurnTeardown is the factor-table removal audit of the
// satellite: register → evaluate → remove → re-register must tear down and
// rebuild factor memberships, leaving no vector, decomposition, or member
// list behind — and the re-registered filter must answer exactly like a
// twin built fresh (packed-cache/SealDirty state included).
func TestFactorChurnTeardown(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	depth := 2
	template := randomConnected(r, 10, 3, 2)
	g0 := template.Clone()

	type factored interface {
		core.DynamicFilter
		SetFactorThresholds(minSupport, minDims int)
	}
	mks := map[string]func() factored{
		"NL":      func() factored { return NewNL(depth) },
		"DSC":     func() factored { return NewDSC(depth) },
		"Skyline": func() factored { return NewSkyline(depth) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			f := mk()
			f.SetFactorThresholds(2, 1)
			queries := make(map[core.QueryID]*graph.Graph)
			for i := 0; i < 4; i++ {
				q := randomSub(r, template)
				queries[core.QueryID(2*i)] = q
				queries[core.QueryID(2*i+1)] = q.Clone()
			}
			for id, q := range queries {
				if err := f.AddQuery(id, q); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.AddStream(0, g0); err != nil {
				t.Fatal(err)
			}

			// Stream a few timestamps so memos carry real verdicts.
			graphs := map[core.StreamID]*graph.Graph{0: g0.Clone()}
			for step := 0; step < 4; step++ {
				for sid, cs := range randomBatch(r, graphs) {
					if err := f.Apply(sid, cs); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Remove everything: the factor table must drain with the
			// queries.
			for id := range queries {
				if err := f.RemoveQuery(id); err != nil {
					t.Fatal(err)
				}
			}
			assertTornDown(t, f)

			// Re-register and compare against a twin built fresh at this
			// point — leaked factor state would diverge the candidates.
			twin := mk()
			twin.SetFactorThresholds(2, 1)
			for id, q := range queries {
				if err := f.AddQuery(id, q); err != nil {
					t.Fatal(err)
				}
				if err := twin.AddQuery(id, q); err != nil {
					t.Fatal(err)
				}
			}
			if err := twin.AddStream(0, graphs[0].Clone()); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 6; step++ {
				for sid, cs := range randomBatch(r, graphs) {
					if err := f.Apply(sid, cs); err != nil {
						t.Fatal(err)
					}
					if err := twin.Apply(sid, cs); err != nil {
						t.Fatal(err)
					}
				}
				got, want := f.Candidates(), twin.Candidates()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: veteran %v != fresh twin %v", step, got, want)
				}
			}
		})
	}
}
