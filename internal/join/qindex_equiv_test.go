package join

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// dynamicReference recomputes the Lemma 4.2 candidate set from scratch with
// the map kernel over a churning query set — mapKernelReference with
// removable query IDs. Ground truth for the indexed-vs-scan equivalence.
func dynamicReference(graphs map[core.StreamID]*graph.Graph, queries map[core.QueryID]*graph.Graph, depth int) []core.Pair {
	qvecs := make(map[core.QueryID][]npv.Vector, len(queries))
	for qid, q := range queries {
		qvecs[qid] = npv.VectorsByVertex(npv.ProjectGraph(q, depth))
	}
	var out []core.Pair
	for sid, g := range graphs {
		gv := npv.VectorsByVertex(npv.ProjectGraph(g, depth))
		for qid := range queries {
			ok := true
			for _, u := range qvecs[qid] {
				found := false
				for _, v := range gv {
					if v.Dominates(u) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}

// equivFilter is one harness participant: a dynamic filter plus, when par
// is non-nil, the batch path it is driven through instead of Apply.
type equivFilter struct {
	name string
	f    core.DynamicFilter
	par  core.BatchApplier
}

// qindexEquivFilters builds the full matrix: indexed and scan variants of
// NL and Skyline, each sequential and parallel, plus DSC (whose index is
// its column store — the incremental counters are its only path) in both
// drive modes.
func qindexEquivFilters(depth int) []equivFilter {
	batch := func(f core.ParallelFilter) core.BatchApplier {
		f.SetWorkers(4)
		return f.(core.BatchApplier)
	}
	nlScanSeq := NewNL(depth)
	nlScanSeq.DisableQueryIndex()
	nlScanPar := NewNL(depth)
	nlScanPar.DisableQueryIndex()
	skyScanSeq := NewSkyline(depth)
	skyScanSeq.DisableQueryIndex()
	skyScanPar := NewSkyline(depth)
	skyScanPar.DisableQueryIndex()
	nlPar, skyPar, dscPar := NewNL(depth), NewSkyline(depth), NewDSC(depth)
	return []equivFilter{
		{name: "NL/indexed/seq", f: NewNL(depth)},
		{name: "NL/indexed/par", f: nlPar, par: batch(nlPar)},
		{name: "NL/scan/seq", f: nlScanSeq},
		{name: "NL/scan/par", f: nlScanPar, par: batch(nlScanPar)},
		{name: "Skyline/indexed/seq", f: NewSkyline(depth)},
		{name: "Skyline/indexed/par", f: skyPar, par: batch(skyPar)},
		{name: "Skyline/scan/seq", f: skyScanSeq},
		{name: "Skyline/scan/par", f: skyScanPar, par: batch(skyScanPar)},
		{name: "DSC/seq", f: NewDSC(depth)},
		{name: "DSC/par", f: dscPar, par: batch(dscPar)},
	}
}

// TestIndexedMatchesScanRandomized is the exactness contract of the query
// dominance index at the filter level: with candidate generation on, NL,
// DSC, and Skyline — sequential and through ApplyAll — report candidate
// sets bit-identical to the unindexed full scan and to a from-scratch map
// kernel recomputation, at every timestamp of a randomized multi-stream
// workload with queries added and removed mid-stream.
func TestIndexedMatchesScanRandomized(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(1700 + seed))
		depth := 1 + r.Intn(3)
		template := randomConnected(r, 10, 3, 2)
		var starts []*graph.Graph
		for i := 0; i < 3; i++ {
			starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
		}
		starts = append(starts, template.Clone())

		filters := qindexEquivFilters(depth)
		live := make(map[core.QueryID]*graph.Graph)
		nextQ := core.QueryID(0)
		addQuery := func(q *graph.Graph) {
			id := nextQ
			nextQ++
			for _, ef := range filters {
				if err := ef.f.AddQuery(id, q); err != nil {
					t.Fatalf("seed=%d: %s add query %d: %v", seed, ef.name, id, err)
				}
			}
			live[id] = q
		}
		for i := 0; i < 3; i++ {
			addQuery(randomSub(r, template))
		}
		for _, ef := range filters {
			for sid, g := range starts {
				if err := ef.f.AddStream(core.StreamID(sid), g); err != nil {
					t.Fatal(err)
				}
			}
		}
		graphs := make(map[core.StreamID]*graph.Graph)
		for sid, g := range starts {
			graphs[core.StreamID(sid)] = g.Clone()
		}

		check := func(step int) {
			want := dynamicReference(graphs, live, depth)
			for _, ef := range filters {
				if got := ef.f.Candidates(); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d step=%d: %s candidates %v != reference %v",
						seed, step, ef.name, got, want)
				}
			}
		}
		check(-1)

		for step := 0; step < 20; step++ {
			switch {
			case step%6 == 2:
				// Register a fresh query mid-stream; subgraphs of live state
				// half the time so real matches occur.
				var q *graph.Graph
				if r.Intn(2) == 0 {
					q = randomSub(r, template)
				} else {
					q = randomSub(r, graphs[core.StreamID(r.Intn(len(starts)))])
				}
				if q.VertexCount() > 0 {
					addQuery(q)
				}
			case step%8 == 5 && len(live) > 1:
				// Remove a deterministic pick from the live set.
				ids := make([]core.QueryID, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				victim := ids[r.Intn(len(ids))]
				for _, ef := range filters {
					if err := ef.f.RemoveQuery(victim); err != nil {
						t.Fatalf("seed=%d step=%d: %s remove query %d: %v",
							seed, step, ef.name, victim, err)
					}
				}
				delete(live, victim)
			default:
				batch := randomBatch(r, graphs)
				for _, ef := range filters {
					if ef.par != nil {
						if err := ef.par.ApplyAll(batch); err != nil {
							t.Fatalf("seed=%d step=%d: %s batch apply: %v", seed, step, ef.name, err)
						}
						continue
					}
					for _, sid := range batchStreamIDs(batch) {
						if err := ef.f.Apply(sid, batch[sid]); err != nil {
							t.Fatalf("seed=%d step=%d: %s apply: %v", seed, step, ef.name, err)
						}
					}
				}
			}
			check(step)
		}
	}
}

// assertTornDown checks a strategy's derived query state is empty after
// every query was removed: index postings, packed query vectors, DSC's
// counter columns — nothing may leak and nothing may keep answering.
func assertTornDown(t *testing.T, f core.DynamicFilter) {
	t.Helper()
	switch ff := f.(type) {
	case *NL:
		if n := ff.ix.PostingCount(); n != 0 {
			t.Fatalf("NL: %d index postings leaked", n)
		}
		if ff.ix.QueryCount() != 0 || len(ff.queries) != 0 || len(ff.fq) != 0 {
			t.Fatalf("NL: query state leaked: index=%d packed=%d factored=%d",
				ff.ix.QueryCount(), len(ff.queries), len(ff.fq))
		}
		if ff.ft != nil && ff.ft.VectorCount() != 0 {
			t.Fatalf("NL: %d factor-table vectors leaked", ff.ft.VectorCount())
		}
	case *DSC:
		if n := ff.ix.PostingCount(); n != 0 {
			t.Fatalf("DSC: %d column postings leaked", n)
		}
		if len(ff.nnz) != 0 || len(ff.fdec) != 0 || len(ff.qsize) != 0 || len(ff.pending) != 0 {
			t.Fatalf("DSC: query maps leaked: nnz=%d fdec=%d qsize=%d pending=%d",
				len(ff.nnz), len(ff.fdec), len(ff.qsize), len(ff.pending))
		}
		if len(ff.fmembers) != 0 {
			t.Fatalf("DSC: %d factor membership lists leaked", len(ff.fmembers))
		}
		if ff.ft != nil && ff.ft.VectorCount() != 0 {
			t.Fatalf("DSC: %d factor-table vectors leaked", ff.ft.VectorCount())
		}
		for sid, ds := range ff.streams {
			if len(ds.pos) != 0 || len(ds.dom) != 0 || len(ds.cover) != 0 || len(ds.covered) != 0 {
				t.Fatalf("DSC stream %d: counters leaked: pos=%d dom=%d cover=%d covered=%d",
					sid, len(ds.pos), len(ds.dom), len(ds.cover), len(ds.covered))
			}
		}
	case *Skyline:
		if n := ff.ix.PostingCount(); n != 0 {
			t.Fatalf("Skyline: %d index postings leaked", n)
		}
		if ff.ix.QueryCount() != 0 || len(ff.queries) != 0 || len(ff.fq) != 0 {
			t.Fatalf("Skyline: query state leaked: index=%d maximal=%d factored=%d",
				ff.ix.QueryCount(), len(ff.queries), len(ff.fq))
		}
		if ff.ft != nil && ff.ft.VectorCount() != 0 {
			t.Fatalf("Skyline: %d factor-table vectors leaked", ff.ft.VectorCount())
		}
		for sid, ss := range ff.streams {
			if len(ss.verdict) != 0 {
				t.Fatalf("Skyline stream %d: %d stale verdicts", sid, len(ss.verdict))
			}
		}
	default:
		t.Fatalf("unknown filter type %T", f)
	}
}

// TestRemoveReRegisterEquivalence is the removal audit: register queries,
// stream, remove every query (checking all derived state is torn down),
// re-register the same patterns under the same IDs, and keep streaming —
// the filter must behave exactly like a twin built fresh at the
// re-registration point. A leaked posting, counter column, or stale
// verdict shows up as a candidate-set divergence.
func TestRemoveReRegisterEquivalence(t *testing.T) {
	for name, mk := range parallelStrategies(2) {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(311))
			template := randomConnected(r, 10, 3, 2)
			var queries []*graph.Graph
			for i := 0; i < 4; i++ {
				queries = append(queries, randomSub(r, template))
			}
			var starts []*graph.Graph
			for i := 0; i < 3; i++ {
				starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
			}
			starts = append(starts, template.Clone())

			veteran := mk().(core.DynamicFilter)
			for qid, q := range queries {
				if err := veteran.AddQuery(core.QueryID(qid), q); err != nil {
					t.Fatal(err)
				}
			}
			for sid, g := range starts {
				if err := veteran.AddStream(core.StreamID(sid), g); err != nil {
					t.Fatal(err)
				}
			}
			graphs := make(map[core.StreamID]*graph.Graph)
			for sid, g := range starts {
				graphs[core.StreamID(sid)] = g.Clone()
			}
			for step := 0; step < 10; step++ {
				batch := randomBatch(r, graphs)
				for _, sid := range batchStreamIDs(batch) {
					if err := veteran.Apply(sid, batch[sid]); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Tear every query down and audit the derived state.
			for qid := range queries {
				if err := veteran.RemoveQuery(core.QueryID(qid)); err != nil {
					t.Fatal(err)
				}
			}
			if got := veteran.Candidates(); len(got) != 0 {
				t.Fatalf("candidates after removing all queries: %v", got)
			}
			assertTornDown(t, veteran)

			// Re-register the same patterns under the same IDs and race a
			// twin built fresh from the current canonical graphs.
			fresh := mk().(core.DynamicFilter)
			for qid, q := range queries {
				if err := veteran.AddQuery(core.QueryID(qid), q); err != nil {
					t.Fatal(err)
				}
				if err := fresh.AddQuery(core.QueryID(qid), q); err != nil {
					t.Fatal(err)
				}
			}
			for sid := range starts {
				if err := fresh.AddStream(core.StreamID(sid), graphs[core.StreamID(sid)].Clone()); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := veteran.Candidates(), fresh.Candidates(); !reflect.DeepEqual(got, want) {
				t.Fatalf("after re-register: veteran %v != fresh %v", got, want)
			}
			for step := 0; step < 10; step++ {
				batch := randomBatch(r, graphs)
				for _, sid := range batchStreamIDs(batch) {
					if err := veteran.Apply(sid, batch[sid]); err != nil {
						t.Fatal(err)
					}
					if err := fresh.Apply(sid, batch[sid]); err != nil {
						t.Fatal(err)
					}
				}
				if got, want := veteran.Candidates(), fresh.Candidates(); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d after re-register: veteran %v != fresh %v", step, got, want)
				}
			}
		})
	}
}
