package join

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/nnt"
	"nntstream/internal/obs"
)

// Branch is the branch-compatible NNT filter of Lemma 4.1, without the NPV
// projection: a pair (G,Q) is a candidate iff every query vertex's NNT is
// branch-compatible with some stream vertex's NNT. It prunes differently
// from the projected filters — branch compatibility tracks label-path sets
// while NPV dominance tracks per-dimension multiplicities — and is more
// expensive per comparison, which is exactly the trade-off Section IV's
// projection was designed around. It exists for the ablation experiment.
//
// Query NNTs are interned by their canonical label trie: template-derived
// query sets repeat whole trees, and two trees with equal tries have
// identical compatibility verdicts against every data tree (the trie *is*
// the branch set — Lemma 4.1 only reads branches). Each stream therefore
// evaluates every distinct trie once per timestamp and all queries sharing
// it reuse the verdict — the branch-trie analog of the NPV factor table.
type Branch struct {
	depth int
	// queries maps each query to the interning keys of its vertex tries.
	queries map[core.QueryID][]string
	// interned holds one representative NNT per distinct query trie, with a
	// reference count for teardown on query removal.
	interned map[string]*internedTrie
	streams  map[core.StreamID]*branchStream
	// trieEvals counts representative-trie evaluations over the run;
	// together with the per-query verdict reads it measures the work the
	// interning shares (see CollectMetrics).
	trieEvals int64
	trieReads int64
}

// internedTrie is one distinct query trie: the representative NNT root it
// was built from and the number of query vertices referencing it.
type internedTrie struct {
	root *nnt.Node
	refs int
}

type branchStream struct {
	st *streamState
	// tries caches the label trie of each stream vertex's NNT; entries of
	// dirty vertices are rebuilt lazily.
	tries map[graph.VertexID]*nnt.Trie
	// shared caches this timestamp's verdict per interned query trie —
	// computed once, read by every query referencing the trie. Cleared
	// when any stream vertex changes (a changed tree can flip any trie's
	// verdict; Branch has no per-trie change tracking).
	shared  map[string]bool
	verdict map[core.QueryID]bool
}

var _ core.DynamicFilter = (*Branch)(nil)

// NewBranch returns a branch-compatibility filter with the given NNT depth.
func NewBranch(depth int) *Branch {
	return &Branch{
		depth:    depth,
		queries:  make(map[core.QueryID][]string),
		interned: make(map[string]*internedTrie),
		streams:  make(map[core.StreamID]*branchStream),
	}
}

// Name implements core.Filter.
func (f *Branch) Name() string { return "NNT-Branch" }

// AddQuery implements core.Filter.
func (f *Branch) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.queries[id]; ok {
		return fmt.Errorf("join: duplicate query %d", id)
	}
	forest := nnt.NewForest(q, f.depth)
	var keys []string
	forest.Roots(func(_ graph.VertexID, root *nnt.Node) bool {
		key := nnt.BuildTrie(root).Canonical()
		ent := f.interned[key]
		if ent == nil {
			ent = &internedTrie{root: root}
			f.interned[key] = ent
		}
		ent.refs++
		keys = append(keys, key)
		return true
	})
	f.queries[id] = keys
	for _, bs := range f.streams {
		bs.verdict[id] = f.evaluateOne(bs, keys)
	}
	return nil
}

// RemoveQuery implements core.DynamicFilter: interned tries the query was
// the last reference of are torn down with it.
func (f *Branch) RemoveQuery(id core.QueryID) error {
	keys, ok := f.queries[id]
	if !ok {
		return fmt.Errorf("join: unknown query %d", id)
	}
	for _, key := range keys {
		ent := f.interned[key]
		ent.refs--
		if ent.refs == 0 {
			delete(f.interned, key)
			for _, bs := range f.streams {
				delete(bs.shared, key)
			}
		}
	}
	delete(f.queries, id)
	for _, bs := range f.streams {
		delete(bs.verdict, id)
	}
	return nil
}

// AddStream implements core.Filter.
func (f *Branch) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("join: duplicate stream %d", id)
	}
	bs := &branchStream{
		st:      newStreamState(g0, f.depth, false, nil),
		tries:   make(map[graph.VertexID]*nnt.Trie),
		shared:  make(map[string]bool),
		verdict: make(map[core.QueryID]bool, len(f.queries)),
	}
	f.streams[id] = bs
	bs.st.space.TakeDirty()
	f.evaluate(bs)
	return nil
}

// Apply implements core.Filter.
func (f *Branch) Apply(id core.StreamID, cs graph.ChangeSet) error {
	bs, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("join: unknown stream %d", id)
	}
	if err := bs.st.apply(cs); err != nil {
		return err
	}
	dirty := bs.st.space.TakeDirty()
	if len(dirty) == 0 {
		return nil
	}
	for _, v := range dirty {
		delete(bs.tries, v) // rebuilt lazily on next probe
	}
	clear(bs.shared) // any change can flip any trie's verdict
	f.evaluate(bs)
	return nil
}

func (f *Branch) trie(bs *branchStream, v graph.VertexID, root *nnt.Node) *nnt.Trie {
	t, ok := bs.tries[v]
	if !ok {
		t = nnt.BuildTrie(root)
		bs.tries[v] = t
	}
	return t
}

func (f *Branch) evaluate(bs *branchStream) {
	for qid, keys := range f.queries {
		bs.verdict[qid] = f.evaluateOne(bs, keys)
	}
}

// evaluateOne answers one query by reading (or computing, first reader per
// timestamp) the shared verdict of each of its interned tries.
func (f *Branch) evaluateOne(bs *branchStream, keys []string) bool {
	for _, key := range keys {
		f.trieReads++
		ok, cached := bs.shared[key]
		if !cached {
			ok = f.evalTrie(bs, f.interned[key].root)
			bs.shared[key] = ok
		}
		if !ok {
			return false
		}
	}
	return true
}

// evalTrie reports whether some stream vertex's NNT contains every branch
// of the representative query tree.
func (f *Branch) evalTrie(bs *branchStream, qr *nnt.Node) bool {
	f.trieEvals++
	found := false
	bs.st.forest.Roots(func(v graph.VertexID, root *nnt.Node) bool {
		if f.trie(bs, v, root).ContainsBranches(qr) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Candidates implements core.Filter.
func (f *Branch) Candidates() []core.Pair {
	var out []core.Pair
	for sid, bs := range f.streams {
		for qid, ok := range bs.verdict {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}

var _ obs.Collector = (*Branch)(nil)

// CollectMetrics implements obs.Collector with the interning effectiveness:
// distinct tries vs registered references, and evaluations actually run vs
// verdict reads served.
func (f *Branch) CollectMetrics(emit func(name string, value float64)) {
	refs := 0
	for _, ent := range f.interned {
		refs += ent.refs
	}
	emit("nntstream_branch_interned_tries", float64(len(f.interned)))
	emit("nntstream_branch_trie_refs", float64(refs))
	emit("nntstream_branch_trie_evals_total", float64(f.trieEvals))
	emit("nntstream_branch_trie_reads_total", float64(f.trieReads))
}
