package join

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/graph"
	"nntstream/internal/nnt"
)

// Branch is the branch-compatible NNT filter of Lemma 4.1, without the NPV
// projection: a pair (G,Q) is a candidate iff every query vertex's NNT is
// branch-compatible with some stream vertex's NNT. It prunes differently
// from the projected filters — branch compatibility tracks label-path sets
// while NPV dominance tracks per-dimension multiplicities — and is more
// expensive per comparison, which is exactly the trade-off Section IV's
// projection was designed around. It exists for the ablation experiment.
type Branch struct {
	depth   int
	queries map[core.QueryID][]*nnt.Node
	streams map[core.StreamID]*branchStream
}

type branchStream struct {
	st *streamState
	// tries caches the label trie of each stream vertex's NNT; entries of
	// dirty vertices are rebuilt lazily.
	tries   map[graph.VertexID]*nnt.Trie
	verdict map[core.QueryID]bool
}

var _ core.DynamicFilter = (*Branch)(nil)

// NewBranch returns a branch-compatibility filter with the given NNT depth.
func NewBranch(depth int) *Branch {
	return &Branch{
		depth:   depth,
		queries: make(map[core.QueryID][]*nnt.Node),
		streams: make(map[core.StreamID]*branchStream),
	}
}

// Name implements core.Filter.
func (f *Branch) Name() string { return "NNT-Branch" }

// AddQuery implements core.Filter.
func (f *Branch) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.queries[id]; ok {
		return fmt.Errorf("join: duplicate query %d", id)
	}
	forest := nnt.NewForest(q, f.depth)
	var roots []*nnt.Node
	forest.Roots(func(_ graph.VertexID, root *nnt.Node) bool {
		roots = append(roots, root)
		return true
	})
	f.queries[id] = roots
	for _, bs := range f.streams {
		bs.verdict[id] = f.evaluateOne(bs, roots)
	}
	return nil
}

// RemoveQuery implements core.DynamicFilter.
func (f *Branch) RemoveQuery(id core.QueryID) error {
	if _, ok := f.queries[id]; !ok {
		return fmt.Errorf("join: unknown query %d", id)
	}
	delete(f.queries, id)
	for _, bs := range f.streams {
		delete(bs.verdict, id)
	}
	return nil
}

// AddStream implements core.Filter.
func (f *Branch) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("join: duplicate stream %d", id)
	}
	bs := &branchStream{
		st:      newStreamState(g0, f.depth, false),
		tries:   make(map[graph.VertexID]*nnt.Trie),
		verdict: make(map[core.QueryID]bool, len(f.queries)),
	}
	f.streams[id] = bs
	bs.st.space.TakeDirty()
	f.evaluate(bs)
	return nil
}

// Apply implements core.Filter.
func (f *Branch) Apply(id core.StreamID, cs graph.ChangeSet) error {
	bs, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("join: unknown stream %d", id)
	}
	if err := bs.st.apply(cs); err != nil {
		return err
	}
	dirty := bs.st.space.TakeDirty()
	if len(dirty) == 0 {
		return nil
	}
	for _, v := range dirty {
		delete(bs.tries, v) // rebuilt lazily on next probe
	}
	f.evaluate(bs)
	return nil
}

func (f *Branch) trie(bs *branchStream, v graph.VertexID, root *nnt.Node) *nnt.Trie {
	t, ok := bs.tries[v]
	if !ok {
		t = nnt.BuildTrie(root)
		bs.tries[v] = t
	}
	return t
}

func (f *Branch) evaluate(bs *branchStream) {
	for qid, qroots := range f.queries {
		bs.verdict[qid] = f.evaluateOne(bs, qroots)
	}
}

func (f *Branch) evaluateOne(bs *branchStream, qroots []*nnt.Node) bool {
	for _, qr := range qroots {
		found := false
		bs.st.forest.Roots(func(v graph.VertexID, root *nnt.Node) bool {
			if f.trie(bs, v, root).ContainsBranches(qr) {
				found = true
				return false
			}
			return true
		})
		if !found {
			return false
		}
	}
	return true
}

// Candidates implements core.Filter.
func (f *Branch) Candidates() []core.Pair {
	var out []core.Pair
	for sid, bs := range f.streams {
		for qid, ok := range bs.verdict {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}
