package join

import (
	"math/rand"
	"reflect"
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// allFilters returns fresh instances of every NPV-equivalent filter.
func npvFilters(depth int) []core.Filter {
	return []core.Filter{NewNL(depth), NewDSC(depth), NewSkyline(depth)}
}

// workload is a small deterministic scenario: two queries, two streams.
func workload(t *testing.T, f core.Filter) {
	t.Helper()
	// Q0: A-B edge. Q1: triangle A-B-C.
	q0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	q1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
	if err := f.AddQuery(0, q0); err != nil {
		t.Fatal(err)
	}
	if err := f.AddQuery(1, q1); err != nil {
		t.Fatal(err)
	}
	// G0 starts as A-B path; G1 starts as the triangle.
	g0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	g1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
	if err := f.AddStream(0, g0); err != nil {
		t.Fatal(err)
	}
	if err := f.AddStream(1, g1); err != nil {
		t.Fatal(err)
	}
}

func TestFiltersInitialCandidates(t *testing.T) {
	for _, f := range append(npvFilters(3), NewBranch(3), NewExact()) {
		t.Run(f.Name(), func(t *testing.T) {
			workload(t, f)
			got := f.Candidates()
			// Ground truth: Q0 in both streams; Q1 only in G1. NPV filters
			// must report at least these; on graphs this tiny they are
			// exact.
			want := []core.Pair{
				{Stream: 0, Query: 0},
				{Stream: 1, Query: 0},
				{Stream: 1, Query: 1},
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Candidates = %v; want %v", got, want)
			}
		})
	}
}

func TestFiltersTrackDeletion(t *testing.T) {
	for _, f := range append(npvFilters(3), NewBranch(3), NewExact()) {
		t.Run(f.Name(), func(t *testing.T) {
			workload(t, f)
			// Break the triangle in G1: Q1 no longer matches anywhere.
			if err := f.Apply(1, graph.ChangeSet{graph.DeleteOp(2, 0)}); err != nil {
				t.Fatal(err)
			}
			got := f.Candidates()
			want := []core.Pair{
				{Stream: 0, Query: 0},
				{Stream: 1, Query: 0},
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("after delete: Candidates = %v; want %v", got, want)
			}
			// Restore it.
			if err := f.Apply(1, graph.ChangeSet{graph.InsertOp(2, 2, 0, 0, 0)}); err != nil {
				t.Fatal(err)
			}
			got = f.Candidates()
			want = []core.Pair{
				{Stream: 0, Query: 0},
				{Stream: 1, Query: 0},
				{Stream: 1, Query: 1},
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("after restore: Candidates = %v; want %v", got, want)
			}
		})
	}
}

func TestDuplicateRegistrationErrors(t *testing.T) {
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0}, nil)
	for _, f := range append(npvFilters(3), NewBranch(3), NewExact()) {
		if err := f.AddQuery(0, q); err != nil {
			t.Fatalf("%s: AddQuery: %v", f.Name(), err)
		}
		if err := f.AddQuery(0, q); err == nil {
			t.Fatalf("%s: duplicate query not rejected", f.Name())
		}
		if err := f.AddStream(0, q); err != nil {
			t.Fatalf("%s: AddStream: %v", f.Name(), err)
		}
		if err := f.AddStream(0, q); err == nil {
			t.Fatalf("%s: duplicate stream not rejected", f.Name())
		}
		if err := f.Apply(99, nil); err == nil {
			t.Fatalf("%s: unknown stream not rejected", f.Name())
		}
	}
}

func TestDSCSealSortsColumns(t *testing.T) {
	// Multiple queries registered before the first stream land in shared
	// per-dimension columns that must be sorted exactly once at seal time;
	// a stream added afterwards must see consistent positions.
	f := NewDSC(2)
	q1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1},
		[][3]int{{0, 1, 0}, {0, 2, 0}}) // A with two B neighbors
	q2 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if err := f.AddQuery(0, q1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddQuery(1, q2); err != nil {
		t.Fatal(err)
	}
	// Stream: A with three B neighbors contains both.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1, 3: 1},
		[][3]int{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	got := f.Candidates()
	if len(got) != 2 {
		t.Fatalf("Candidates = %v; want both queries", got)
	}
}

// randomConnected builds a connected random graph (spanning tree + extras).
func randomConnected(r *rand.Rand, n, labels, elabels int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.VertexID(i), graph.VertexID(r.Intn(i)), graph.Label(r.Intn(elabels)))
	}
	for k := 0; k < n; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(elabels)))
		}
	}
	return g
}

// randomSub extracts a random connected subgraph.
func randomSub(r *rand.Rand, g *graph.Graph) *graph.Graph {
	ids := g.VertexIDs()
	start := ids[r.Intn(len(ids))]
	sub := graph.New()
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	want := 1 + r.Intn(g.EdgeCount())
	frontier := []graph.VertexID{start}
	for sub.EdgeCount() < want && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return sub
}

// TestAgreementAndSoundnessRandomized is the central join test: over random
// evolving streams, (1) NL, DSC, and Skyline always report identical
// candidate sets — they implement the same predicate — and (2) every filter
// reports a superset of the exact joinable pairs (no false negatives).
func TestAgreementAndSoundnessRandomized(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + r.Intn(3)

		// Queries: subgraphs of a template pool so some actually match.
		template := randomConnected(r, 10, 3, 2)
		var queries []*graph.Graph
		for i := 0; i < 4; i++ {
			queries = append(queries, randomSub(r, template))
		}
		// Streams: start from perturbed copies of the template.
		var starts []*graph.Graph
		for i := 0; i < 3; i++ {
			starts = append(starts, randomConnected(r, 8+r.Intn(4), 3, 2))
		}
		starts = append(starts, template.Clone())

		filters := append(npvFilters(depth), NewBranch(depth))
		exact := NewExact()
		all := append([]core.Filter{}, filters...)
		all = append(all, exact)
		for _, f := range all {
			for qid, q := range queries {
				if err := f.AddQuery(core.QueryID(qid), q); err != nil {
					t.Fatal(err)
				}
			}
			for sid, g := range starts {
				if err := f.AddStream(core.StreamID(sid), g); err != nil {
					t.Fatal(err)
				}
			}
		}

		check := func(step int) {
			nl := filters[0].Candidates()
			for _, f := range filters[1:3] { // DSC, Skyline: same predicate as NL
				got := f.Candidates()
				if !reflect.DeepEqual(nl, got) {
					t.Fatalf("seed=%d depth=%d step=%d: %s=%v disagrees with NL=%v",
						seed, depth, step, f.Name(), got, nl)
				}
			}
			truth := exact.Candidates()
			for _, f := range filters {
				got := make(map[core.Pair]bool)
				for _, p := range f.Candidates() {
					got[p] = true
				}
				for _, p := range truth {
					if !got[p] {
						t.Fatalf("seed=%d depth=%d step=%d: %s missed exact pair %v",
							seed, depth, step, f.Name(), p)
					}
				}
			}
		}
		check(-1)

		// Evolve each stream with random ops.
		labelOf := func(g *graph.Graph, v graph.VertexID, fallback graph.Label) graph.Label {
			if l, ok := g.VertexLabel(v); ok {
				return l
			}
			return fallback
		}
		for step := 0; step < 12; step++ {
			sid := core.StreamID(r.Intn(len(starts)))
			cur := exact.streams[sid]
			var cs graph.ChangeSet
			nops := 1 + r.Intn(3)
			for k := 0; k < nops; k++ {
				u := graph.VertexID(r.Intn(12))
				v := graph.VertexID(r.Intn(12))
				if u == v {
					continue
				}
				if cur.HasEdge(u, v) && r.Float64() < 0.5 {
					cs = append(cs, graph.DeleteOp(u, v))
				} else if !cur.HasEdge(u, v) {
					ul := labelOf(cur, u, graph.Label(r.Intn(3)))
					vl := labelOf(cur, v, graph.Label(r.Intn(3)))
					cs = append(cs, graph.InsertOp(u, ul, v, vl, graph.Label(r.Intn(2))))
				}
			}
			cs = cs.Normalize()
			// Deletes may retire vertices whose labels later inserts rely
			// on; apply to a scratch graph first to weed out conflicting
			// sets (the stream model never produces them).
			scratch := cur.Clone()
			if err := cs.Apply(scratch); err != nil {
				continue
			}
			for _, f := range all {
				if err := f.Apply(sid, cs); err != nil {
					t.Fatalf("seed=%d step=%d: %s apply: %v", seed, step, f.Name(), err)
				}
			}
			check(step)
		}
	}
}
