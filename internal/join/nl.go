package join

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/factor"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
	"nntstream/internal/obs"
	"nntstream/internal/qindex"
)

// NL is the nested-loop join baseline: whenever a stream changes, every
// affected query is re-checked against it by scanning all (query vertex,
// stream vertex) vector pairs for dominance. Simple, correct, and the
// yardstick the two optimized strategies are measured against.
//
// "Affected" is where the query dominance index comes in: instead of
// re-evaluating all registered queries per dirty stream (O(queries) per
// timestamp), the filter feeds each dirty vertex's sealed (old, new)
// transition to its qindex.Index and re-evaluates only the returned
// candidates — a superset of the queries whose verdict could have changed,
// so the kept verdicts are exact by construction. DisableQueryIndex
// restores the full scan, as the measurement baseline and the reference
// the indexed path is tested against.
type NL struct {
	depth   int
	queries map[core.QueryID][]npv.PackedVector
	streams map[core.StreamID]*streamState
	verdict map[core.StreamID]map[core.QueryID]bool
	// ix generates the candidate queries per dirty stream; indexed gates
	// it (true by default; the scan path is kept as the benchmark/testing
	// reference).
	ix      *qindex.Index
	indexed bool
	// ft is the shared-factor table over the registered query vectors and
	// fq their evaluation-time decompositions (nil table = factoring
	// disabled, fq holds trivial decompositions). Like ix, the table is
	// immutable within a timestamp; per-stream memos update in the
	// per-stream maintenance stage only.
	ft *factor.Table
	fq map[core.QueryID][]factor.Factored
	// vectorScans counts stream vectors scanned during dominance checks over
	// the run. Written only on the (serialized) maintenance path — parallel
	// batches accumulate per-task counts and merge them after the join — and
	// read by CollectMetrics.
	vectorScans int64
	pool        evalPool
}

var (
	_ core.DynamicFilter  = (*NL)(nil)
	_ core.BatchApplier   = (*NL)(nil)
	_ core.ParallelFilter = (*NL)(nil)
)

// NewNL returns a nested-loop filter with the given NNT depth.
func NewNL(depth int) *NL {
	return &NL{
		depth:   depth,
		queries: make(map[core.QueryID][]npv.PackedVector),
		streams: make(map[core.StreamID]*streamState),
		verdict: make(map[core.StreamID]map[core.QueryID]bool),
		ix:      qindex.New(),
		indexed: true,
		ft:      factor.NewTable(),
		fq:      make(map[core.QueryID][]factor.Factored),
	}
}

// DisableQueryIndex turns off candidate generation: every dirty stream
// re-evaluates every registered query, as the filter did before the index
// existed. It exists for benchmarks (the sub-linear claim needs its linear
// baseline) and equivalence tests, and must be called before any query or
// stream is registered.
func (f *NL) DisableQueryIndex() {
	if len(f.queries) != 0 || len(f.streams) != 0 {
		panic("join: DisableQueryIndex after registration")
	}
	f.indexed = false
}

// DisableFactors turns off shared-factor evaluation: every query vector is
// tested by the full packed merge, with no memo short-circuit. It exists as
// the benchmark baseline and the reference the factored path is tested
// bit-identical against, and must be called before any query or stream is
// registered.
func (f *NL) DisableFactors() {
	if len(f.queries) != 0 || len(f.streams) != 0 {
		panic("join: DisableFactors after registration")
	}
	f.ft = nil
}

// SetFactorThresholds forwards discovery thresholds to the factor table
// (see factor.Table); panics once factoring is disabled or sealed.
func (f *NL) SetFactorThresholds(minSupport, minDims int) {
	f.ft.SetMinSupport(minSupport)
	f.ft.SetMinDims(minDims)
}

// rebuildFactored re-derives every query's decomposition and every
// stream's memo from the (re)sealed factor table. Per-key writes are
// order-independent, so the map iteration order is immaterial.
func (f *NL) rebuildFactored() {
	for qid, vecs := range f.queries {
		f.fq[qid] = decompAll(f.ft, qid, len(vecs))
	}
	for _, st := range f.streams {
		st.memo.Rebuild(st.space)
	}
}

// Name implements core.Filter.
func (f *NL) Name() string { return "NPV-NL" }

// SetWorkers implements core.ParallelFilter.
func (f *NL) SetWorkers(n int) { f.pool.setWorkers(n) }

// AddQuery implements core.Filter; queries may also arrive while streams
// are live (core.DynamicFilter), in which case the new pattern is evaluated
// against every current stream immediately.
func (f *NL) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.queries[id]; ok {
		return fmt.Errorf("join: duplicate query %d", id)
	}
	vecs := packQuery(q, f.depth)
	f.queries[id] = vecs
	if f.indexed {
		for i, u := range vecs {
			f.ix.Add(qindex.Key{Query: id, Vertex: graph.VertexID(i)}, u)
		}
	}
	switch {
	case f.ft == nil:
		f.fq[id] = unfactoredAll(vecs)
	case f.ft.Sealed():
		// Live addition: match against the existing factors; when churn has
		// piled up, re-discover and rebuild the decompositions and memos.
		for i, u := range vecs {
			f.ft.Add(factor.Key{Query: id, Vertex: graph.VertexID(i)}, u)
		}
		if f.ft.MaybeReseal() {
			f.rebuildFactored()
		} else {
			f.fq[id] = decompAll(f.ft, id, len(vecs))
		}
	default:
		// Pre-seal: store only; decompositions appear when the first stream
		// seals the table, and nothing evaluates before then.
		for i, u := range vecs {
			f.ft.Add(factor.Key{Query: id, Vertex: graph.VertexID(i)}, u)
		}
	}
	for sid, st := range f.streams {
		f.verdict[sid][id] = f.evaluateOne(st, f.fq[id])
	}
	return nil
}

// RemoveQuery implements core.DynamicFilter: the packed query vectors, the
// per-stream verdicts, and the index postings are all torn down.
func (f *NL) RemoveQuery(id core.QueryID) error {
	if _, ok := f.queries[id]; !ok {
		return fmt.Errorf("join: unknown query %d", id)
	}
	delete(f.queries, id)
	delete(f.fq, id)
	f.ix.RemoveQuery(id)
	if f.ft != nil {
		f.ft.RemoveQuery(id)
		if f.ft.Sealed() && f.ft.MaybeReseal() {
			f.rebuildFactored()
		}
	}
	for _, m := range f.verdict {
		delete(m, id)
	}
	return nil
}

// AddStream implements core.Filter. The first stream seals the index (like
// DSC's build phase, registration appends cheaply and sorts once).
func (f *NL) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("join: duplicate stream %d", id)
	}
	f.ix.Seal()
	if f.ft != nil && !f.ft.Sealed() {
		// Discovery runs once over the full pre-seal query set; the first
		// stream has no predecessors, so no memos need rebuilding.
		f.ft.Seal()
		f.rebuildFactored()
	}
	st := newStreamState(g0, f.depth, true, f.ft)
	st.sealDeltas()
	f.streams[id] = st
	f.verdict[id] = make(map[core.QueryID]bool, len(f.queries))
	f.evaluate(id)
	return nil
}

// Apply implements core.Filter.
func (f *NL) Apply(id core.StreamID, cs graph.ChangeSet) error {
	st, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("join: unknown stream %d", id)
	}
	if err := st.apply(cs); err != nil {
		return err
	}
	if !st.space.HasDirty() {
		return nil // nothing changed; verdicts stand
	}
	if !f.indexed {
		st.sealDeltas() // unindexed NL re-evaluates wholesale
		f.evaluate(id)
		return nil
	}
	for _, qid := range f.ix.AffectedQueries(st.sealDeltas()) {
		f.verdict[id][qid] = f.evaluateOne(st, f.fq[qid])
	}
	return nil
}

// ApplyAll implements core.BatchApplier: NNT maintenance runs one task per
// stream — which also seals that stream's dirty vertices and asks the
// index for the affected queries — then dominance re-evaluation fans out
// one task per (dirty stream, candidate query) pair. Each task writes only
// its own slot, and the merge walks slots in (StreamID, QueryID) order, so
// the verdicts — and therefore Candidates — are bit-identical to the
// sequential path.
func (f *NL) ApplyAll(changes map[core.StreamID]graph.ChangeSet) error {
	ids := batchStreamIDs(changes)
	errs := make([]error, len(ids))
	cands := make([][]core.QueryID, len(ids))
	var allQ []core.QueryID
	if !f.indexed {
		allQ = sortedQueryIDs(f.queries)
	}
	f.pool.run(len(ids), func(i int) {
		id := ids[i]
		st, ok := f.streams[id]
		if !ok {
			errs[i] = fmt.Errorf("join: unknown stream %d", id)
			return
		}
		if err := st.apply(changes[id]); err != nil {
			errs[i] = err
			return
		}
		if !st.space.HasDirty() {
			return
		}
		if f.indexed {
			// Candidate generation reads the sealed, immutable index plus
			// atomic counters, so running it inside the per-stream task is
			// race-free; the result lands in this task's own slot. The
			// factor memo updates here too — it is this stream's private
			// state, and the pair stage below only reads it.
			cands[i] = f.ix.AffectedQueries(st.sealDeltas())
		} else {
			st.sealDeltas()
			cands[i] = allQ
		}
	})
	if err := firstError(errs); err != nil {
		return err
	}

	var tasks []pairTask
	for i, id := range ids {
		for _, qid := range cands[i] {
			tasks = append(tasks, pairTask{sid: id, qid: qid})
		}
	}
	verdicts := make([]bool, len(tasks))
	scans := make([]int64, len(tasks))
	f.pool.run(len(tasks), func(i int) {
		t := tasks[i]
		verdicts[i], scans[i] = evalQuery(f.streams[t.sid], f.fq[t.qid])
	})
	for i, t := range tasks {
		f.verdict[t.sid][t.qid] = verdicts[i]
		f.vectorScans += scans[i]
	}
	return nil
}

// evaluate re-derives the verdicts of all queries against stream id.
func (f *NL) evaluate(id core.StreamID) {
	st := f.streams[id]
	for qid := range f.queries {
		f.verdict[id][qid] = f.evaluateOne(st, f.fq[qid])
	}
}

func (f *NL) evaluateOne(st *streamState, vecs []factor.Factored) bool {
	ok, scanned := evalQuery(st, vecs)
	f.vectorScans += scanned
	return ok
}

// evalQuery is the pure dominance check one pair task runs: it reads the
// stream space, the factor memo, and the query decompositions, and touches
// no filter state, which is what makes the fan-out safe.
//
//nnt:hotpath
func evalQuery(st *streamState, vecs []factor.Factored) (bool, int64) {
	var total int64
	for _, u := range vecs {
		found, scanned := dominatedByAny(st, u)
		total += int64(scanned)
		if !found {
			return false, total
		}
	}
	return true, total
}

// Candidates implements core.Filter.
func (f *NL) Candidates() []core.Pair {
	var out []core.Pair
	for sid, m := range f.verdict {
		for qid, ok := range m {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}

var _ obs.Collector = (*NL)(nil)

// CollectMetrics implements obs.Collector with the nested-loop work and
// structure sizes: query/stream vector counts, scan totals, index postings,
// and the NNT node count of the observed forests.
func (f *NL) CollectMetrics(emit func(name string, value float64)) {
	qvecs := 0
	for _, vecs := range f.queries {
		qvecs += len(vecs)
	}
	emit("nntstream_nl_query_vectors", float64(qvecs))
	emit("nntstream_nl_vector_scans_total", float64(f.vectorScans))
	emit("nntstream_qindex_postings", float64(f.ix.PostingCount()))
	if f.ft != nil {
		f.ft.CollectMetrics(emit)
	}
	svecs, nodes := 0, 0
	for _, st := range f.streams {
		svecs += st.space.Len()
		nodes += st.nodeCount()
	}
	emit("nntstream_nl_stream_vectors", float64(svecs))
	emit("nntstream_filter_nnt_nodes", float64(nodes))
	emit("nntstream_filter_streams", float64(len(f.streams)))
	f.pool.collect(emit)
}
