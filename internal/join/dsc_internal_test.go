package join

import (
	"testing"

	"nntstream/internal/core"
	"nntstream/internal/graph"
)

// TestDSCPositionCrossing exercises the positional-delta update directly:
// a stream vertex whose dimension count crosses query entries must gain and
// lose exactly those entries' dominance contributions.
func TestDSCPositionCrossing(t *testing.T) {
	f := NewDSC(1)
	// Query: center A with two B leaves → its center vector has count 2 in
	// the single dimension (1, A-0->B).
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1},
		[][3]int{{0, 1, 0}, {0, 2, 0}})
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}
	// Stream: center A with ONE B leaf — count 1 < 2: not dominated.
	g := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1},
		[][3]int{{10, 11, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 0 {
		t.Fatalf("premature candidate: %v", got)
	}
	// Add a second B leaf: the stream center's count crosses the query
	// entry (value 2) — the pair must appear. (Leaves are dominated by
	// leaves.)
	if err := f.Apply(0, graph.ChangeSet{graph.InsertOp(10, 0, 12, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	got := f.Candidates()
	if len(got) != 1 || got[0] != (core.Pair{Stream: 0, Query: 0}) {
		t.Fatalf("Candidates = %v; want the pair", got)
	}
	// Remove it again: the position must cross back down.
	if err := f.Apply(0, graph.ChangeSet{graph.DeleteOp(10, 12)}); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 0 {
		t.Fatalf("stale candidate after crossing down: %v", got)
	}
}

// TestDSCVertexRetirementDrainsCounters: deleting a stream vertex must
// remove its dominance contributions entirely.
func TestDSCVertexRetirementDrainsCounters(t *testing.T) {
	f := NewDSC(1)
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1}, [][3]int{{10, 11, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 1 {
		t.Fatalf("Candidates = %v; want the pair", got)
	}
	// Deleting the only edge retires both vertices.
	if err := f.Apply(0, graph.ChangeSet{graph.DeleteOp(10, 11)}); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 0 {
		t.Fatalf("Candidates = %v; want none after retirement", got)
	}
	ds := f.streams[0]
	if len(ds.pos) != 0 || len(ds.dom) != 0 || len(ds.cover) != 0 || len(ds.covered) != 0 {
		t.Fatalf("counters not drained: pos=%d dom=%d cover=%d covered=%d",
			len(ds.pos), len(ds.dom), len(ds.cover), len(ds.covered))
	}
}

// TestSkylineMaxRefutation checks the per-dimension max shortcut: a query
// vector exceeding the stream's max in one dimension is refuted without a
// member scan (observable as a pruned pair).
func TestSkylineMaxRefutation(t *testing.T) {
	f := NewSkyline(1)
	// Query center has THREE B leaves; stream max per dimension is 2.
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1, 3: 1},
		[][3]int{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}})
	if err := f.AddQuery(0, q); err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, map[graph.VertexID]graph.Label{10: 0, 11: 1, 12: 1},
		[][3]int{{10, 11, 0}, {10, 12, 0}})
	if err := f.AddStream(0, g); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 0 {
		t.Fatalf("Candidates = %v; want none (3 > max 2)", got)
	}
	// Third leaf arrives: max rises to 3 and the pair passes.
	if err := f.Apply(0, graph.ChangeSet{graph.InsertOp(10, 0, 13, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	if got := f.Candidates(); len(got) != 1 {
		t.Fatalf("Candidates = %v; want the pair", got)
	}
}
