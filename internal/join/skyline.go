package join

import (
	"fmt"
	"sort"

	"nntstream/internal/core"
	"nntstream/internal/factor"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
	"nntstream/internal/obs"
	"nntstream/internal/qindex"
	"nntstream/internal/skyline"
)

// Skyline is the skyline-with-early-stop join (Figure 11). It searches for
// a witness that a pair is NOT joinable: a query vector that no stream
// vector dominates (a bichromatic skyline point of the query set with
// respect to the stream set). Three optimizations from the paper:
//
//  1. Query side: only the maximal (monochromatic skyline) query vectors
//     are checked — if any query vector is undominated, a maximal one is.
//  2. Query side: maximal vectors are probed in an order that favors early
//     stops (descending L1 mass: heavier vectors are harder to dominate).
//  3. Stream side: per-dimension max values give an O(|support|) refutation
//     ("no stream vector is large enough in dimension d"), and otherwise
//     only the vectors of the query vector's lowest-cardinality nonzero
//     dimension are scanned, since any dominator must appear there.
//
// A fourth optimization is ours: the maximal vectors of every registered
// query live in a qindex.Index, so a changed stream re-evaluates only the
// queries whose verdict the dirty vertices' seal transitions could have
// flipped, instead of all of them. DisableQueryIndex restores the full
// re-evaluation as the benchmark/testing reference.
type Skyline struct {
	depth   int
	queries map[core.QueryID][]npv.PackedVector // maximal vectors, probe order
	streams map[core.StreamID]*skyStream
	// ix indexes the maximal vectors for candidate generation; indexed
	// gates it (true by default).
	ix      *qindex.Index
	indexed bool
	// ft factors the maximal vectors across queries and fq holds their
	// evaluation-time decompositions (nil table = factoring disabled).
	ft *factor.Table
	fq map[core.QueryID][]factor.Factored
	// probeScans counts stream vectors scanned inside dominated's probe loop
	// over the run — the work the per-dimension max refutation saves.
	// Written only on the (serialized) maintenance path — parallel batches
	// accumulate per-task counts and merge them after the join — and read
	// by CollectMetrics.
	probeScans int64
	pool       evalPool
}

type skyStream struct {
	st *streamState
	// prev shadows each vertex's vector as currently registered in dims,
	// so removals and max recomputation use consistent values.
	prev map[graph.VertexID]npv.Vector
	dims map[npv.Dim]*dimStat
	// verdict caches the joinability of each query against this stream.
	verdict map[core.QueryID]bool
}

type dimStat struct {
	members map[graph.VertexID]struct{}
	max     int32
}

var (
	_ core.DynamicFilter  = (*Skyline)(nil)
	_ core.BatchApplier   = (*Skyline)(nil)
	_ core.ParallelFilter = (*Skyline)(nil)
)

// NewSkyline returns a skyline-with-early-stop filter with the given NNT
// depth.
func NewSkyline(depth int) *Skyline {
	return &Skyline{
		depth:   depth,
		queries: make(map[core.QueryID][]npv.PackedVector),
		streams: make(map[core.StreamID]*skyStream),
		ix:      qindex.New(),
		indexed: true,
		ft:      factor.NewTable(),
		fq:      make(map[core.QueryID][]factor.Factored),
	}
}

// DisableQueryIndex turns off candidate generation: every changed stream
// re-evaluates every registered query. For benchmarks and equivalence
// tests; must be called before any query or stream is registered.
func (f *Skyline) DisableQueryIndex() {
	if len(f.queries) != 0 || len(f.streams) != 0 {
		panic("join: DisableQueryIndex after registration")
	}
	f.indexed = false
}

// DisableFactors turns off shared-factor evaluation (see NL.DisableFactors);
// must be called before any query or stream is registered.
func (f *Skyline) DisableFactors() {
	if len(f.queries) != 0 || len(f.streams) != 0 {
		panic("join: DisableFactors after registration")
	}
	f.ft = nil
}

// SetFactorThresholds forwards discovery thresholds to the factor table.
func (f *Skyline) SetFactorThresholds(minSupport, minDims int) {
	f.ft.SetMinSupport(minSupport)
	f.ft.SetMinDims(minDims)
}

// rebuildFactored re-derives every query's decomposition and every
// stream's memo from the (re)sealed factor table.
func (f *Skyline) rebuildFactored() {
	for qid, maximal := range f.queries {
		f.fq[qid] = decompAll(f.ft, qid, len(maximal))
	}
	for _, ss := range f.streams {
		ss.st.memo.Rebuild(ss.st.space)
	}
}

// Name implements core.Filter.
func (f *Skyline) Name() string { return "NPV-Skyline" }

// SetWorkers implements core.ParallelFilter.
func (f *Skyline) SetWorkers(n int) { f.pool.setWorkers(n) }

// AddQuery implements core.Filter.
func (f *Skyline) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.queries[id]; ok {
		return fmt.Errorf("join: duplicate query %d", id)
	}
	maximal := skyline.MaximalPacked(packQuery(q, f.depth))
	// Probe heaviest first: those are the least likely to be dominated, so
	// a non-joinable pair is refuted early.
	sort.Slice(maximal, func(i, j int) bool { return maximal[i].L1() > maximal[j].L1() })
	f.queries[id] = maximal
	if f.indexed {
		// Only the maximal vectors decide the verdict, so only they are
		// indexed; the key's vertex slot holds the probe-order position.
		for i, u := range maximal {
			f.ix.Add(qindex.Key{Query: id, Vertex: graph.VertexID(i)}, u)
		}
	}
	switch {
	case f.ft == nil:
		f.fq[id] = unfactoredAll(maximal)
	case f.ft.Sealed():
		for i, u := range maximal {
			f.ft.Add(factor.Key{Query: id, Vertex: graph.VertexID(i)}, u)
		}
		if f.ft.MaybeReseal() {
			f.rebuildFactored()
		} else {
			f.fq[id] = decompAll(f.ft, id, len(maximal))
		}
	default:
		for i, u := range maximal {
			f.ft.Add(factor.Key{Query: id, Vertex: graph.VertexID(i)}, u)
		}
	}
	for _, ss := range f.streams {
		ss.verdict[id] = f.evaluate(ss, f.fq[id])
	}
	return nil
}

// RemoveQuery implements core.DynamicFilter: the maximal vectors, the
// per-stream verdicts, and the index postings are all torn down.
func (f *Skyline) RemoveQuery(id core.QueryID) error {
	if _, ok := f.queries[id]; !ok {
		return fmt.Errorf("join: unknown query %d", id)
	}
	delete(f.queries, id)
	delete(f.fq, id)
	f.ix.RemoveQuery(id)
	if f.ft != nil {
		f.ft.RemoveQuery(id)
		if f.ft.Sealed() && f.ft.MaybeReseal() {
			f.rebuildFactored()
		}
	}
	for _, ss := range f.streams {
		delete(ss.verdict, id)
	}
	return nil
}

// AddStream implements core.Filter. The first stream seals the index.
func (f *Skyline) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("join: duplicate stream %d", id)
	}
	f.ix.Seal()
	if f.ft != nil && !f.ft.Sealed() {
		f.ft.Seal()
		f.rebuildFactored()
	}
	ss := &skyStream{
		st:      newStreamState(g0, f.depth, true, f.ft),
		prev:    make(map[graph.VertexID]npv.Vector),
		dims:    make(map[npv.Dim]*dimStat),
		verdict: make(map[core.QueryID]bool, len(f.queries)),
	}
	f.streams[id] = ss
	f.refresh(ss)
	return nil
}

// Apply implements core.Filter.
func (f *Skyline) Apply(id core.StreamID, cs graph.ChangeSet) error {
	ss, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("join: unknown stream %d", id)
	}
	if err := ss.st.apply(cs); err != nil {
		return err
	}
	f.refresh(ss)
	return nil
}

// ApplyAll implements core.BatchApplier: per-dimension statistics
// reconcile one task per stream (they mutate that stream's state only) and
// ask the index for that stream's candidate queries, then verdict
// re-evaluation fans out one task per (dirty stream, candidate query)
// pair — evaluation only reads the reconciled stats and the query
// vectors. Slot-ordered merge keeps the verdicts bit-identical to the
// sequential path.
func (f *Skyline) ApplyAll(changes map[core.StreamID]graph.ChangeSet) error {
	ids := batchStreamIDs(changes)
	errs := make([]error, len(ids))
	cands := make([][]core.QueryID, len(ids))
	allQ := sortedQueryIDs(f.queries)
	f.pool.run(len(ids), func(i int) {
		id := ids[i]
		ss, ok := f.streams[id]
		if !ok {
			errs[i] = fmt.Errorf("join: unknown stream %d", id)
			return
		}
		if err := ss.st.apply(changes[id]); err != nil {
			errs[i] = err
			return
		}
		deltas := f.reconcile(ss)
		switch {
		case len(deltas) == 0 && len(ss.verdict) == len(f.queries):
			// Nothing changed; verdicts stand.
		case f.indexed && len(ss.verdict) == len(f.queries):
			// Candidate generation reads the sealed, immutable index plus
			// atomic counters — race-free inside the per-stream task.
			cands[i] = f.ix.AffectedQueries(deltas)
		default:
			cands[i] = allQ
		}
	})
	if err := firstError(errs); err != nil {
		return err
	}

	var tasks []pairTask
	for i, id := range ids {
		for _, qid := range cands[i] {
			tasks = append(tasks, pairTask{sid: id, qid: qid})
		}
	}
	verdicts := make([]bool, len(tasks))
	scans := make([]int64, len(tasks))
	f.pool.run(len(tasks), func(i int) {
		t := tasks[i]
		verdicts[i], scans[i] = evalMaximal(f.streams[t.sid], f.fq[t.qid])
	})
	for i, t := range tasks {
		f.streams[t.sid].verdict[t.qid] = verdicts[i]
		f.probeScans += scans[i]
	}
	return nil
}

// refresh reconciles the per-dimension statistics with the dirty vertices
// and re-evaluates the affected query verdicts for the stream — all of
// them on the unindexed path (or when the verdict map is still being
// built), only the index's candidates otherwise.
func (f *Skyline) refresh(ss *skyStream) {
	deltas := f.reconcile(ss)
	if len(deltas) == 0 && len(ss.verdict) == len(f.queries) {
		return
	}
	if !f.indexed || len(ss.verdict) != len(f.queries) {
		for qid := range f.queries {
			ss.verdict[qid] = f.evaluate(ss, f.fq[qid])
		}
		return
	}
	for _, qid := range f.ix.AffectedQueries(deltas) {
		ss.verdict[qid] = f.evaluate(ss, f.fq[qid])
	}
}

// reconcile folds the stream's dirty vertices into its per-dimension
// statistics — and their seal transitions into the factor memo — and
// returns the transitions (nil when no vector changed). It mutates only
// ss, so distinct streams reconcile independently.
func (f *Skyline) reconcile(ss *skyStream) []npv.DirtyDelta {
	deltas := ss.st.sealDeltas()
	for _, dl := range deltas {
		v := dl.Vertex
		// Deregister the old vector.
		if old, ok := ss.prev[v]; ok {
			for d, val := range old {
				stat := ss.dims[d]
				delete(stat.members, v)
				if len(stat.members) == 0 {
					delete(ss.dims, d)
					continue
				}
				if val == stat.max {
					stat.max = 0
					for w := range stat.members {
						if wv := ss.prev[w].Get(d); wv > stat.max {
							stat.max = wv
						}
					}
				}
			}
			delete(ss.prev, v)
		}
		// Register the new vector.
		cur := ss.st.space.Vector(v)
		if cur == nil {
			continue // vertex retired
		}
		cp := cur.Clone()
		ss.prev[v] = cp
		for d, val := range cp {
			stat := ss.dims[d]
			if stat == nil {
				stat = &dimStat{members: make(map[graph.VertexID]struct{})}
				ss.dims[d] = stat
			}
			stat.members[v] = struct{}{}
			if val > stat.max {
				stat.max = val
			}
		}
	}
	return deltas
}

// evaluate reports joinability: true iff every maximal query vector is
// dominated by some stream vector.
func (f *Skyline) evaluate(ss *skyStream, maximal []factor.Factored) bool {
	ok, scanned := evalMaximal(ss, maximal)
	f.probeScans += scanned
	return ok
}

// evalMaximal is the pure form of evaluate one pair task runs: it reads
// the reconciled per-dimension statistics, the factor memo, and the
// query's maximal-vector decompositions, and touches no filter state,
// which is what makes the fan-out safe.
//
//nnt:hotpath
func evalMaximal(ss *skyStream, maximal []factor.Factored) (bool, int64) {
	var total int64
	for _, u := range maximal {
		ok, scanned := dominated(ss, u)
		total += scanned
		if !ok {
			// u is a bichromatic skyline point of the query vectors with
			// respect to the stream vectors: early stop, prune the pair.
			return false, total
		}
	}
	return true, total
}

// dominated implements the stream-side probe for one query vector,
// reporting the number of stream vectors scanned in the probe loop. The
// refutation and probe-dimension selection run on the full vector (they
// reason about u as a whole); the per-member exact check short-circuits
// through the factor memo before paying for u's residual merge.
//
//nnt:hotpath
func dominated(ss *skyStream, u factor.Factored) (bool, int64) {
	if u.Full.Len() == 0 {
		// An empty query vector is dominated by any vertex.
		return len(ss.prev) > 0, 0
	}
	var probe *dimStat
	for i := 0; i < u.Full.Len(); i++ {
		stat := ss.dims[u.Full.Dim(i)]
		if stat == nil || u.Full.Count(i) > stat.max {
			// No stream vector reaches u in dimension d: u is a skyline
			// point, refuted in O(|support|).
			return false, 0
		}
		if probe == nil || len(stat.members) < len(probe.members) {
			probe = stat
		}
	}
	// Any dominator of u is nonzero in every support dimension of u, so it
	// is a member of the probe (minimum-cardinality) dimension. Members are
	// exactly the vertices registered in ss.prev, whose space vectors were
	// sealed by the same reconcile step — Packed never misses here.
	var scanned int64
	for v := range probe.members {
		scanned++
		//lint:ignore hotalloc Packed's Pack() fallback only runs for dirty or cache-disabled vectors; the probe reads a space sealed by the same reconcile step, so it hits the packed cache allocation-free
		if p, ok := ss.st.space.Packed(v); ok && ss.st.memo.Dominated(v, p, u) {
			return true, scanned
		}
	}
	return false, scanned
}

var _ obs.Collector = (*Skyline)(nil)

// CollectMetrics implements obs.Collector with the structure sizes that
// drive the skyline probe: maximal query vectors, per-dimension statistics,
// index postings, registered stream vectors, and the NNT node count of the
// observed forests.
func (f *Skyline) CollectMetrics(emit func(name string, value float64)) {
	maximal := 0
	for _, vecs := range f.queries {
		maximal += len(vecs)
	}
	emit("nntstream_skyline_maximal_query_vectors", float64(maximal))
	emit("nntstream_skyline_probe_scans_total", float64(f.probeScans))
	emit("nntstream_qindex_postings", float64(f.ix.PostingCount()))
	if f.ft != nil {
		f.ft.CollectMetrics(emit)
	}
	dims, vecs, nodes := 0, 0, 0
	for _, ss := range f.streams {
		dims += len(ss.dims)
		vecs += len(ss.prev)
		nodes += ss.st.nodeCount()
	}
	emit("nntstream_skyline_dimensions", float64(dims))
	emit("nntstream_skyline_stream_vectors", float64(vecs))
	emit("nntstream_filter_nnt_nodes", float64(nodes))
	emit("nntstream_filter_streams", float64(len(f.streams)))
	f.pool.collect(emit)
}

// Candidates implements core.Filter.
func (f *Skyline) Candidates() []core.Pair {
	var out []core.Pair
	for sid, ss := range f.streams {
		for qid, ok := range ss.verdict {
			if ok {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}
