package join

import (
	"fmt"
	"sort"

	"nntstream/internal/core"
	"nntstream/internal/factor"
	"nntstream/internal/graph"
	"nntstream/internal/npv"
	"nntstream/internal/obs"
	"nntstream/internal/qindex"
)

// DSC is the dominated-set-cover join (Figure 8). Query vectors are
// projected onto their nonzero dimensions and kept sorted per dimension.
// Every stream vertex carries a position counter per dimension (how many
// query entries it is ≥ in that dimension) and a dominant counter per query
// vertex it has encountered (in how many of that query vertex's nonzero
// dimensions the stream vertex dominates it). A stream vertex fully
// dominates a query vertex when its dominant counter reaches the query
// vertex's nonzero-dimension count. The pair (G,Q) is a candidate when the
// union of query vertices fully dominated by G's vertices covers Q
// (Theorem 4.1).
//
// The stream-side state is updated incrementally: when a vertex's NPV moves
// in a dimension, only the sorted entries between its old and new position
// are touched — the paper's key efficiency argument for stream settings.
//
// The sorted per-dimension columns live in a qindex.Index: DSC's crossed-
// entry ranges are exactly the index's per-dimension postings between two
// upper bounds, so the query dominance index is DSC's column store rather
// than a separate candidate stage (the counters already make evaluation
// incremental in the dirty set).
//
// Shared factors integrate as dominance units: a factored query vertex
// contributes only its *residual* entries to the columns, plus one factor
// unit per decomposition. The factor unit is maintained by the per-stream
// memo — when a vertex's verdict on factor f flips at a seal, the dominant
// counters of every query vertex sharing f adjust by one, so the factor's
// packed evaluation is paid once per (vertex, timestamp) no matter how
// many query vertices it serves. Unlike NL/Skyline, DSC pins its factor
// set at the first Seal (no churn-driven reseal): a reseal would reassign
// every column entry and counter, which defeats the incremental design.
// Late-added queries still match against the existing factors.
type DSC struct {
	depth int
	// ix holds, per dimension, the query-vertex postings sorted by count —
	// residual entries only when the vertex is factored.
	ix *qindex.Index
	// nnz is the dominance-unit count per query vertex: its column entries
	// plus one factor unit when factored. Query vertices with empty
	// vectors (no edges) are trivially dominated and excluded.
	nnz map[qKey]int
	// fdec keeps each query vertex's decomposition, frozen at
	// registration, so dynamic removal can undo its column entries and
	// position-counter contributions. The stream side stays on the
	// incremental counter structure — DSC never scans whole vectors.
	fdec map[qKey]factor.Factored
	// ft is the shared-factor table (nil = factoring disabled) and
	// fmembers the query vertices subscribed to each factor's flips.
	ft       *factor.Table
	fmembers map[factor.ID][]qKey
	// pending buffers pre-seal query registrations: their decompositions
	// exist only once the first stream seals the factor table, so the
	// column entries and unit counts are derived then, in arrival order.
	pending []pendingQV
	// qsize counts the query vertices that must be covered per query.
	qsize   map[core.QueryID]int
	streams map[core.StreamID]*dscStream
	// domUpdates counts dominance-counter adjustments (incDom+decDom) over
	// the run — the paper's "entries crossed" work measure. Written only on
	// the (serialized) maintenance path — parallel batches accumulate
	// per-stream counts and merge them after the join — and read by
	// CollectMetrics.
	domUpdates int64
	pool       evalPool
}

type dscStream struct {
	st *streamState
	// pos[v][d]: number of entries of cols[d] with value ≤ v's count in d.
	pos map[graph.VertexID]map[npv.Dim]int
	// dom[v][k]: in how many of k's nonzero dimensions v dominates k.
	dom map[graph.VertexID]map[qKey]int
	// cover[k]: how many stream vertices fully dominate query vertex k.
	cover map[qKey]int
	// covered[q]: how many of q's query vertices have cover > 0.
	covered map[core.QueryID]int
}

var (
	_ core.DynamicFilter  = (*DSC)(nil)
	_ core.BatchApplier   = (*DSC)(nil)
	_ core.ParallelFilter = (*DSC)(nil)
)

// pendingQV is one pre-seal query-vertex registration awaiting the factor
// table's discovery pass.
type pendingQV struct {
	k   qKey
	vec npv.PackedVector
}

// NewDSC returns a dominated-set-cover filter with the given NNT depth.
func NewDSC(depth int) *DSC {
	return &DSC{
		depth:    depth,
		ix:       qindex.New(),
		nnz:      make(map[qKey]int),
		fdec:     make(map[qKey]factor.Factored),
		ft:       factor.NewTable(),
		fmembers: make(map[factor.ID][]qKey),
		qsize:    make(map[core.QueryID]int),
		streams:  make(map[core.StreamID]*dscStream),
	}
}

// DisableFactors turns off shared-factor evaluation: every query vertex's
// full vector lands in the columns and streams skip packing and the memo.
// The benchmark baseline and equivalence reference; must be called before
// any query or stream is registered.
func (f *DSC) DisableFactors() {
	if len(f.qsize) != 0 || len(f.streams) != 0 {
		panic("join: DisableFactors after registration")
	}
	f.ft = nil
}

// SetFactorThresholds forwards discovery thresholds to the factor table.
func (f *DSC) SetFactorThresholds(minSupport, minDims int) {
	f.ft.SetMinSupport(minSupport)
	f.ft.SetMinDims(minDims)
}

// Name implements core.Filter.
func (f *DSC) Name() string { return "NPV-DSC" }

// SetWorkers implements core.ParallelFilter.
func (f *DSC) SetWorkers(n int) { f.pool.setWorkers(n) }

// AddQuery implements core.Filter. Before the first stream, registrations
// are buffered (the factor table's discovery has not run, so the column
// entries are not yet known) and drained at the seal; afterwards
// (core.DynamicFilter) each vertex is decomposed against the existing
// factors, its residual entries inserted into their sorted columns, and
// every stream's counters fixed up in place.
func (f *DSC) AddQuery(id core.QueryID, q *graph.Graph) error {
	if _, ok := f.qsize[id]; ok {
		return fmt.Errorf("join: duplicate query %d", id)
	}
	size := 0
	proj := projectQuery(q, f.depth)
	ids := make([]graph.VertexID, 0, len(proj))
	for v := range proj {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		vec := npv.Pack(proj[v])
		if vec.Len() == 0 {
			continue // trivially dominated (isolated query vertex)
		}
		k := qKey{Q: id, V: v}
		size++
		if f.ft != nil {
			f.ft.Add(factor.Key{Query: id, Vertex: v}, vec)
		}
		if !f.ix.Sealed() {
			f.pending = append(f.pending, pendingQV{k: k, vec: vec})
			continue
		}
		f.registerQueryVertex(k, vec)
		for _, ds := range f.streams {
			f.attachQueryVertex(ds, k)
		}
	}
	f.qsize[id] = size
	return nil
}

// registerQueryVertex derives k's dominance units — residual column
// entries plus the factor unit — and installs the column postings. The
// factor table must already be sealed when factoring is on.
func (f *DSC) registerQueryVertex(k qKey, vec npv.PackedVector) {
	dec := factor.Unfactored(vec)
	if f.ft != nil {
		d, ok := f.ft.Decomp(factor.Key{Query: k.Q, Vertex: k.V})
		if !ok {
			panic(fmt.Sprintf("join: query vertex %v missing from sealed factor table", k))
		}
		dec = d
	}
	f.fdec[k] = dec
	units := dec.Residual.Len()
	if dec.Factor != factor.None {
		units++
		f.fmembers[dec.Factor] = append(f.fmembers[dec.Factor], k)
	}
	f.nnz[k] = units
	// The index handles both phases: build-phase postings are appended and
	// batch-sorted once at Seal, live additions insert at the sorted
	// position per column.
	f.ix.Add(qindex.Key{Query: k.Q, Vertex: k.V}, dec.Residual)
}

// attachQueryVertex registers a live-added query vertex with one stream:
// every stream vertex's position counters gain the new residual column
// entries they are ≥ of, and its dominant counter for the new key is
// derived directly — the factor unit from the memoized verdict, which is
// current because every filter path seals before returning.
func (f *DSC) attachQueryVertex(ds *dscStream, k qKey) {
	dec := f.fdec[k]
	res := dec.Residual
	ds.st.space.Vectors(func(v graph.VertexID, vvec npv.Vector) bool {
		cnt := 0
		for i := 0; i < res.Len(); i++ {
			d, c := res.Dim(i), res.Count(i)
			if vvec.Get(d) >= c {
				cnt++
				pos := ds.pos[v]
				if pos == nil {
					pos = make(map[npv.Dim]int)
					ds.pos[v] = pos
				}
				pos[d]++
			}
		}
		if dec.Factor != factor.None && ds.st.memo.Has(v, dec.Factor) {
			cnt++
		}
		if cnt > 0 {
			dom := ds.dom[v]
			if dom == nil {
				dom = make(map[qKey]int)
				ds.dom[v] = dom
			}
			dom[k] = cnt
			if cnt == f.nnz[k] {
				ds.cover[k]++
				if ds.cover[k] == 1 {
					ds.covered[k.Q]++
				}
			}
		}
		return true
	})
}

// RemoveQuery implements core.DynamicFilter: the query's residual column
// entries are deleted, stream position counters are rolled back, its
// factor memberships unsubscribe, and its cover state is dropped
// wholesale. Pre-seal removals only have the pending buffer and the factor
// table to clean.
func (f *DSC) RemoveQuery(id core.QueryID) error {
	if _, ok := f.qsize[id]; !ok {
		return fmt.Errorf("join: unknown query %d", id)
	}
	f.ix.RemoveQuery(id)
	if f.ft != nil {
		f.ft.RemoveQuery(id)
	}
	if len(f.pending) > 0 {
		kept := f.pending[:0]
		for _, p := range f.pending {
			if p.k.Q != id {
				kept = append(kept, p)
			}
		}
		f.pending = kept
	}
	for k, dec := range f.fdec {
		if k.Q != id {
			continue
		}
		res := dec.Residual
		for qi := 0; qi < res.Len(); qi++ {
			d, c := res.Dim(qi), res.Count(qi)
			for _, ds := range f.streams {
				f.rollbackPositions(ds, d, c)
			}
		}
		if dec.Factor != factor.None {
			f.dropMember(dec.Factor, k)
		}
		for _, ds := range f.streams {
			for v, dom := range ds.dom {
				if _, ok := dom[k]; ok {
					delete(dom, k)
					if len(dom) == 0 {
						delete(ds.dom, v)
					}
				}
			}
			delete(ds.cover, k)
		}
		delete(f.nnz, k)
		delete(f.fdec, k)
	}
	for _, ds := range f.streams {
		delete(ds.covered, id)
	}
	delete(f.qsize, id)
	return nil
}

// dropMember unsubscribes k from factor fid's flip list.
func (f *DSC) dropMember(fid factor.ID, k qKey) {
	membs := f.fmembers[fid]
	for i, m := range membs {
		if m == k {
			membs[i] = membs[len(membs)-1]
			membs = membs[:len(membs)-1]
			break
		}
	}
	if len(membs) == 0 {
		delete(f.fmembers, fid)
	} else {
		f.fmembers[fid] = membs
	}
}

// rollbackPositions decrements the position counter of every stream vertex
// that counted a removed column entry of value c in dimension d.
func (f *DSC) rollbackPositions(ds *dscStream, d npv.Dim, c int32) {
	ds.st.space.Vectors(func(v graph.VertexID, vvec npv.Vector) bool {
		if vvec.Get(d) >= c {
			pos := ds.pos[v]
			pos[d]--
			if pos[d] == 0 {
				delete(pos, d)
				if len(pos) == 0 {
					delete(ds.pos, v)
				}
			}
		}
		return true
	})
}

// AddStream implements core.Filter. The first stream runs factor discovery
// over the buffered query set, drains the pending registrations into the
// columns, and seals the index.
func (f *DSC) AddStream(id core.StreamID, g0 *graph.Graph) error {
	if !f.ix.Sealed() {
		if f.ft != nil {
			f.ft.Seal()
		}
		// Drain in arrival order; the build-phase columns sort once at
		// ix.Seal, so the sealed postings are order-independent anyway.
		for _, p := range f.pending {
			f.registerQueryVertex(p.k, p.vec)
		}
		f.pending = nil
		f.ix.Seal()
	}
	if _, ok := f.streams[id]; ok {
		return fmt.Errorf("join: duplicate stream %d", id)
	}
	ds := &dscStream{
		st:      newStreamState(g0, f.depth, false, f.ft),
		pos:     make(map[graph.VertexID]map[npv.Dim]int),
		dom:     make(map[graph.VertexID]map[qKey]int),
		cover:   make(map[qKey]int),
		covered: make(map[core.QueryID]int),
	}
	f.streams[id] = ds
	f.domUpdates += f.reconcileStream(ds)
	return nil
}

// Apply implements core.Filter.
func (f *DSC) Apply(id core.StreamID, cs graph.ChangeSet) error {
	ds, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("join: unknown stream %d", id)
	}
	work, err := f.applyStream(ds, cs)
	f.domUpdates += work
	return err
}

// applyStream advances one stream: NNT maintenance, then the dominance
// counter updates of the dirty vertices. It touches only ds (and the
// read-only shared columns and factor table), so distinct streams' calls
// are independent — the property ApplyAll's fan-out relies on. The
// returned work count is merged into domUpdates by the caller.
func (f *DSC) applyStream(ds *dscStream, cs graph.ChangeSet) (int64, error) {
	if err := ds.st.apply(cs); err != nil {
		return 0, err
	}
	return f.reconcileStream(ds), nil
}

// reconcileStream folds the stream's dirty vertices into its counters. On
// the factored path each dirty vertex first re-evaluates every factor once
// against its sealed packed vector; a flipped factor verdict adjusts the
// dominant counter of every subscribed query vertex by one unit, and the
// residual column entries are then crossed as usual.
func (f *DSC) reconcileStream(ds *dscStream) int64 {
	var work int64
	if f.ft == nil {
		for _, v := range ds.st.space.TakeDirty() {
			f.updateVertex(ds, v, &work)
		}
		return work
	}
	for _, dl := range ds.st.space.SealDirty() {
		v := dl.Vertex
		ds.st.memo.Update(v, dl.New, dl.HasNew, func(fid factor.ID, now bool) {
			for _, k := range f.fmembers[fid] {
				if now {
					f.incDom(ds, v, k, &work)
				} else {
					f.decDom(ds, v, k, &work)
				}
			}
		})
		f.updateVertex(ds, v, &work)
	}
	return work
}

// ApplyAll implements core.BatchApplier: one task per stream, because
// DSC's dominance re-evaluation *is* the per-stream counter maintenance —
// every (stream, query) verdict is an aggregate (covered == qsize) the
// stream's own counters answer, so the stream is the finest unit that
// avoids write sharing. Tasks write only their own stream's state and
// work slot; the merge walks slots in StreamID order.
func (f *DSC) ApplyAll(changes map[core.StreamID]graph.ChangeSet) error {
	ids := batchStreamIDs(changes)
	errs := make([]error, len(ids))
	works := make([]int64, len(ids))
	f.pool.run(len(ids), func(i int) {
		id := ids[i]
		ds, ok := f.streams[id]
		if !ok {
			errs[i] = fmt.Errorf("join: unknown stream %d", id)
			return
		}
		works[i], errs[i] = f.applyStream(ds, changes[id])
	})
	for _, w := range works {
		f.domUpdates += w
	}
	return firstError(errs)
}

// updateVertex moves stream vertex v's position counters to match its
// current NPV, adjusting dominant counters for exactly the query entries
// crossed in each dimension. Counter work is accumulated into *work so
// concurrent per-stream tasks never share a cell.
func (f *DSC) updateVertex(ds *dscStream, v graph.VertexID, work *int64) {
	newVec := ds.st.space.Vector(v) // nil when v was retired
	pos := ds.pos[v]

	// Dimensions to reconcile: all with a nonzero old position plus all in
	// the new vector's support (restricted to dimensions queries use).
	touch := make(map[npv.Dim]struct{}, len(pos)+len(newVec))
	for d := range pos {
		touch[d] = struct{}{}
	}
	for d := range newVec {
		if f.ix.HasDim(d) {
			touch[d] = struct{}{}
		}
	}
	if len(touch) == 0 {
		return
	}
	if pos == nil {
		pos = make(map[npv.Dim]int)
		ds.pos[v] = pos
	}
	for d := range touch {
		col := f.ix.Postings(d)
		oldPos := pos[d]
		newVal := newVec.Get(d) // Get on nil map is safe: method on map type
		newPos := qindex.UpperBound(col, newVal)
		switch {
		case newPos > oldPos:
			for _, e := range col[oldPos:newPos] {
				f.incDom(ds, v, qKey{Q: e.Key.Query, V: e.Key.Vertex}, work)
			}
		case newPos < oldPos:
			for _, e := range col[newPos:oldPos] {
				f.decDom(ds, v, qKey{Q: e.Key.Query, V: e.Key.Vertex}, work)
			}
		}
		if newPos == 0 {
			delete(pos, d)
		} else {
			pos[d] = newPos
		}
	}
	if len(pos) == 0 {
		delete(ds.pos, v)
	}
	if dom := ds.dom[v]; dom != nil && len(dom) == 0 {
		delete(ds.dom, v)
	}
}

func (f *DSC) incDom(ds *dscStream, v graph.VertexID, k qKey, work *int64) {
	*work++
	dom := ds.dom[v]
	if dom == nil {
		dom = make(map[qKey]int)
		ds.dom[v] = dom
	}
	dom[k]++
	if dom[k] == f.nnz[k] {
		ds.cover[k]++
		if ds.cover[k] == 1 {
			ds.covered[k.Q]++
		}
	}
}

func (f *DSC) decDom(ds *dscStream, v graph.VertexID, k qKey, work *int64) {
	*work++
	dom := ds.dom[v]
	if dom[k] == f.nnz[k] {
		ds.cover[k]--
		if ds.cover[k] == 0 {
			delete(ds.cover, k)
			ds.covered[k.Q]--
			if ds.covered[k.Q] == 0 {
				delete(ds.covered, k.Q)
			}
		}
	}
	dom[k]--
	if dom[k] == 0 {
		delete(dom, k)
	} else if dom[k] < 0 {
		panic(fmt.Sprintf("join: DSC dominant counter of %v went negative", k))
	}
}

// Candidates implements core.Filter.
func (f *DSC) Candidates() []core.Pair {
	var out []core.Pair
	for sid, ds := range f.streams {
		for qid, size := range f.qsize {
			if ds.covered[qid] == size {
				out = append(out, core.Pair{Stream: sid, Query: qid})
			}
		}
	}
	return core.SortPairs(out)
}

var _ obs.Collector = (*DSC)(nil)

// CollectMetrics implements obs.Collector with the structure sizes that
// drive DSC's per-step cost: sorted-column entries, position/dominance
// counter footprints, and the NNT node count of the observed forests.
func (f *DSC) CollectMetrics(emit func(name string, value float64)) {
	emit("nntstream_dsc_column_entries", float64(f.ix.PostingCount()))
	emit("nntstream_dsc_columns", float64(f.ix.DimCount()))
	emit("nntstream_qindex_postings", float64(f.ix.PostingCount()))
	emit("nntstream_dsc_query_vertices", float64(len(f.nnz)+len(f.pending)))
	emit("nntstream_dsc_dom_updates_total", float64(f.domUpdates))
	if f.ft != nil {
		f.ft.CollectMetrics(emit)
	}
	nodes, posVerts, domVerts := 0, 0, 0
	for _, ds := range f.streams {
		nodes += ds.st.nodeCount()
		posVerts += len(ds.pos)
		domVerts += len(ds.dom)
	}
	emit("nntstream_filter_nnt_nodes", float64(nodes))
	emit("nntstream_filter_streams", float64(len(f.streams)))
	emit("nntstream_dsc_position_vertices", float64(posVerts))
	emit("nntstream_dsc_dominance_vertices", float64(domVerts))
	f.pool.collect(emit)
}
