package npv

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/graph"
	"nntstream/internal/nnt"
)

// randVector draws a sparse vector with 0..maxDims dimensions from a small
// dim universe (so random pairs actually share support) and counts 1..8.
func randVector(r *rand.Rand, maxDims int) Vector {
	v := make(Vector)
	n := r.Intn(maxDims + 1)
	for i := 0; i < n; i++ {
		d := NewDim(byte(r.Intn(4)), graph.Label(r.Intn(3)), graph.Label(r.Intn(2)), graph.Label(r.Intn(3)))
		v[d] = int32(1 + r.Intn(8))
	}
	return v
}

func TestPackedEmptyAndSingleDim(t *testing.T) {
	empty := Pack(Vector{})
	if empty.Len() != 0 || empty.Sig() != 0 || empty.L1() != 0 {
		t.Fatalf("packed empty vector: len=%d sig=%x l1=%d", empty.Len(), empty.Sig(), empty.L1())
	}
	d := NewDim(1, 0, 0, 1)
	one := Pack(Vector{d: 3})
	if one.Len() != 1 || one.Dim(0) != d || one.Count(0) != 3 || one.Get(d) != 3 {
		t.Fatalf("packed single-dim vector broken: %v", one)
	}
	if one.Get(NewDim(2, 0, 0, 1)) != 0 {
		t.Fatal("Get of absent dimension must be 0")
	}
	// Lemma 4.2 edge cases, matching Vector.Dominates exactly:
	if !one.Dominates(empty) {
		t.Fatal("everything dominates the empty vector")
	}
	if empty.Dominates(one) {
		t.Fatal("the empty vector dominates nothing nonzero")
	}
	if !empty.Dominates(empty) {
		t.Fatal("the empty vector dominates itself")
	}
	if !one.Dominates(one) {
		t.Fatal("dominance is reflexive")
	}
	if !Pack(Vector{d: 4}).Dominates(one) || one.Dominates(Pack(Vector{d: 4})) {
		t.Fatal("single-dimension count ordering broken")
	}
}

func TestPackedSortedAndRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		v := randVector(r, 12)
		p := Pack(v)
		for i := 1; i < p.Len(); i++ {
			if p.Dim(i-1) >= p.Dim(i) {
				t.Fatalf("dims not strictly ascending: %v", p)
			}
		}
		if !p.Unpack().Equal(v) {
			t.Fatalf("pack→unpack roundtrip lost data: %v vs %v", p.Unpack(), v)
		}
		if !Pack(p.Unpack()).Equal(p) {
			t.Fatal("unpack→pack not stable")
		}
		if p.L1() != v.L1() {
			t.Fatalf("L1 mismatch: %d vs %d", p.L1(), v.L1())
		}
		for d, c := range v {
			if p.Get(d) != c {
				t.Fatalf("Get(%v) = %d; want %d", d, p.Get(d), c)
			}
		}
	}
}

// TestQuickPackedDominatesEquivalence is the representation-change contract:
// Packed.Dominates answers exactly as Vector.Dominates on randomized vector
// pairs, including empty and single-dimension vectors.
func TestQuickPackedDominatesEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for iter := 0; iter < 50; iter++ {
			u := randVector(r, 6)
			v := randVector(r, 6)
			// Bias toward related pairs: sometimes grow v from u so true
			// dominance (not just rejection) is exercised.
			if r.Intn(2) == 0 {
				v = u.Clone()
				for d := range v {
					if r.Intn(2) == 0 {
						v.Add(d, int32(r.Intn(3)))
					}
				}
			}
			pu, pv := Pack(u), Pack(v)
			if pv.Dominates(pu) != v.Dominates(u) || pu.Dominates(pv) != u.Dominates(v) {
				return false
			}
			if pu.Equal(pv) != u.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureSoundness pins the signature filter's one-sided error: the
// subset reject must never fire when dominance holds (sig(u) &^ sig(v) must
// be zero whenever v dominates u — collisions may only cause false accepts).
func TestSignatureSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		u := randVector(r, 8)
		v := u.Clone()
		// Grow v into a guaranteed dominator.
		for d := range v {
			v.Add(d, int32(r.Intn(3)))
		}
		for i := 0; i < r.Intn(4); i++ {
			extra := randVector(r, 2)
			for d, c := range extra {
				v.Add(d, c)
			}
		}
		pu, pv := Pack(u), Pack(v)
		if !v.Dominates(u) {
			t.Fatal("construction should yield a dominator")
		}
		if pu.Sig()&^pv.Sig() != 0 {
			t.Fatalf("signature reject would fire on a dominating pair: u=%v v=%v", u, v)
		}
		if !pv.Dominates(pu) {
			t.Fatalf("packed kernel rejects a dominating pair: u=%v v=%v", u, v)
		}
	}
}

func TestKernelCountersMove(t *testing.T) {
	d1, d2 := NewDim(1, 0, 0, 1), NewDim(1, 1, 0, 1)
	// Find two dims with distinct signature bits so the reject is certain.
	if sigBit(d1) == sigBit(d2) {
		d2 = NewDim(2, 0, 1, 2)
	}
	if sigBit(d1) == sigBit(d2) {
		t.Skip("could not find non-colliding dims")
	}
	t0, s0 := KernelCounters()
	u, v := Pack(Vector{d1: 1, d2: 1}), Pack(Vector{d1: 5, d2: 5})
	if !v.Dominates(u) {
		t.Fatal("v should dominate u")
	}
	if Pack(Vector{d1: 5, d2: 5}).Dominates(Pack(Vector{d1: 1, d2: 1, NewDim(3, 0, 0, 0): 1})) {
		// Three dims vs two: size reject, no signature involvement needed.
		t.Fatal("size reject failed")
	}
	if Pack(Vector{d2: 9, NewDim(3, 1, 1, 1): 9}).Dominates(u) && sigBit(NewDim(3, 1, 1, 1)) != sigBit(d1) {
		t.Fatal("disjoint-support dominance accepted")
	}
	t1, s1 := KernelCounters()
	if t1-t0 < 3 {
		t.Fatalf("dominance test counter moved by %d; want >= 3", t1-t0)
	}
	if s1 < s0 {
		t.Fatalf("signature reject counter went backwards: %d -> %d", s0, s1)
	}
	// Emission through the collector surface.
	got := map[string]float64{}
	KernelStats{}.CollectMetrics(func(name string, v float64) { got[name] = v })
	if got["nntstream_npv_dominance_tests_total"] < float64(t1) {
		t.Fatalf("collector reports %v; want >= %d", got, t1)
	}
	if _, ok := got["nntstream_npv_sig_rejects_total"]; !ok {
		t.Fatal("sig reject metric missing")
	}
}

// TestSpacePackedCacheTracksDirty drives a space through random maintenance
// and checks, at every timestamp boundary, that the sealed packed vectors
// match a fresh Pack of the live maps — the epoch-invalidation contract.
func TestSpacePackedCacheTracksDirty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := graph.New()
	n := 8
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(3)))
	}
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.VertexID(i), graph.VertexID(r.Intn(i)), graph.Label(r.Intn(2)))
	}
	s := NewSpace()
	s.EnablePacking()
	if !s.PackingEnabled() {
		t.Fatal("packing not enabled")
	}
	f := nnt.NewForest(g, 3, s)
	s.TakeDirty() // first seal
	e0 := s.Epoch()
	assertPackedMatchesLive(t, s)
	for step := 0; step < 30; step++ {
		u := graph.VertexID(r.Intn(n))
		v := graph.VertexID(r.Intn(n))
		if u == v {
			continue
		}
		var op graph.ChangeOp
		if f.Graph().HasEdge(u, v) {
			op = graph.DeleteOp(u, v)
		} else {
			ul, ok := f.Graph().VertexLabel(u)
			if !ok {
				ul = graph.Label(r.Intn(3))
			}
			vl, ok := f.Graph().VertexLabel(v)
			if !ok {
				vl = graph.Label(r.Intn(3))
			}
			op = graph.InsertOp(u, ul, v, vl, graph.Label(r.Intn(2)))
		}
		if err := f.Apply(op); err != nil {
			t.Fatal(err)
		}
		// Before sealing, Packed must already serve current values for the
		// dirty vertices (packed fresh, not from the stale cache).
		assertPackedMatchesLive(t, s)
		s.TakeDirty()
		assertPackedMatchesLive(t, s)
	}
	if s.Epoch() <= e0 {
		t.Fatalf("epoch did not advance: %d -> %d", e0, s.Epoch())
	}
}

func assertPackedMatchesLive(t *testing.T, s *Space) {
	t.Helper()
	seen := 0
	s.Vectors(func(v graph.VertexID, vec Vector) bool {
		seen++
		p, ok := s.Packed(v)
		if !ok {
			t.Fatalf("Packed(%d) missing for live vertex", v)
		}
		if !p.Equal(Pack(vec)) {
			t.Fatalf("Packed(%d) = %v; live vector packs to %v", v, p, Pack(vec))
		}
		return true
	})
	count := 0
	s.PackedVectors(func(v graph.VertexID, p PackedVector) bool {
		count++
		if !p.Unpack().Equal(s.Vector(v)) {
			t.Fatalf("PackedVectors(%d) stale", v)
		}
		return true
	})
	if count != seen || count != s.Len() {
		t.Fatalf("PackedVectors visited %d; want %d", count, s.Len())
	}
	if _, ok := s.Packed(graph.VertexID(1 << 20)); ok {
		t.Fatal("Packed of absent vertex should report false")
	}
}

// decodeVectorPair builds two vectors from fuzz bytes: a leading split byte,
// then 9-byte (dim uint64, count byte) entries routed to u or v.
func decodeVectorPair(data []byte) (u, v Vector) {
	u, v = make(Vector), make(Vector)
	if len(data) == 0 {
		return u, v
	}
	split, data := data[0], data[1:]
	for i := 0; i+9 <= len(data); i += 9 {
		d := Dim(binary.LittleEndian.Uint64(data[i : i+8]))
		c := int32(data[i+8]%16) + 1
		if byte(i/9)%4 < split%4 {
			u[d] = c
		} else {
			v[d] = c
		}
	}
	return u, v
}

// FuzzPackedDominates cross-checks the packed kernel against the map kernel
// on arbitrary byte-derived vectors, plus the roundtrip and signature
// soundness invariants.
func FuzzPackedDominates(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 3})
	f.Add([]byte{2, 1, 0, 0, 0, 0, 0, 0, 0, 3, 1, 0, 0, 0, 0, 0, 0, 0, 5})
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		b := make([]byte, 1+9*(1+r.Intn(6)))
		r.Read(b)
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		u, v := decodeVectorPair(data)
		pu, pv := Pack(u), Pack(v)
		if got, want := pv.Dominates(pu), v.Dominates(u); got != want {
			t.Fatalf("packed %v dominates %v = %v; map kernel says %v", v, u, got, want)
		}
		if got, want := pu.Dominates(pv), u.Dominates(v); got != want {
			t.Fatalf("packed %v dominates %v = %v; map kernel says %v", u, v, got, want)
		}
		if !pu.Unpack().Equal(u) || !pv.Unpack().Equal(v) {
			t.Fatal("pack→unpack roundtrip lost data")
		}
		if v.Dominates(u) && pu.Sig()&^pv.Sig() != 0 {
			t.Fatal("signature reject fired on a dominating pair")
		}
	})
}

// BenchmarkSpaceTakeDirty measures the per-timestamp dirty-set drain. The
// clear()-reuse keeps it at one allocation per call (the returned slice)
// instead of also churning a replacement map.
func BenchmarkSpaceTakeDirty(b *testing.B) {
	s := NewSpace()
	for i := 0; i < 64; i++ {
		s.vectors[graph.VertexID(i)] = Vector{}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 64; v++ {
			s.dirty[graph.VertexID(v)] = struct{}{}
		}
		if got := s.TakeDirty(); len(got) != 64 {
			b.Fatalf("TakeDirty = %d vertices; want 64", len(got))
		}
	}
}
