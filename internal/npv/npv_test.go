package npv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
	"nntstream/internal/nnt"
)

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestVectorAddAndGet(t *testing.T) {
	v := make(Vector)
	d := NewDim(1, 0, 0, 1)
	v.Add(d, 1)
	v.Add(d, 2)
	if v.Get(d) != 3 {
		t.Fatalf("Get = %d; want 3", v.Get(d))
	}
	v.Add(d, -3)
	if _, ok := v[d]; ok {
		t.Fatal("zero entry should be deleted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative count should panic")
		}
	}()
	v.Add(d, -1)
}

func TestDominates(t *testing.T) {
	d1 := NewDim(1, 0, 0, 1)
	d2 := NewDim(1, 0, 0, 2)
	u := Vector{d1: 1, d2: 2}
	v := Vector{d1: 2, d2: 2}
	w := Vector{d1: 2, d2: 1}
	x := Vector{d1: 5}
	if !v.Dominates(u) {
		t.Fatal("v should dominate u")
	}
	if !u.Dominates(u) {
		t.Fatal("dominance is reflexive")
	}
	if w.Dominates(u) {
		t.Fatal("w has smaller d2; should not dominate u")
	}
	if x.Dominates(u) {
		t.Fatal("x misses d2 entirely; should not dominate u")
	}
	if !v.Dominates(Vector{}) {
		t.Fatal("everything dominates the empty vector")
	}
}

func TestVectorCloneEqualL1(t *testing.T) {
	d1 := NewDim(1, 0, 0, 1)
	u := Vector{d1: 3}
	c := u.Clone()
	if !u.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(d1, 1)
	if u.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if u.L1() != 3 || c.L1() != 4 {
		t.Fatalf("L1 = %d,%d", u.L1(), c.L1())
	}
	if len(u.String()) == 0 || len(u.Support()) != 1 {
		t.Fatal("String/Support broken")
	}
}

func TestProjectTreeLevelsAndLabels(t *testing.T) {
	// Path A(0)-B(1)-C(2), depth 2. NNT(0): 0→1→2.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 7}, {1, 2, 8}})
	f := nnt.NewForest(g, 2)
	v := ProjectTree(f.Tree(0))
	want := Vector{
		NewDim(1, 0, 7, 1): 1,
		NewDim(2, 1, 8, 2): 1,
	}
	if !v.Equal(want) {
		t.Fatalf("ProjectTree = %v; want %v", v, want)
	}
	// NNT(1): 1→{0, 2}: two level-1 dims.
	v1 := ProjectTree(f.Tree(1))
	want1 := Vector{
		NewDim(1, 1, 7, 0): 1,
		NewDim(1, 1, 8, 2): 1,
	}
	if !v1.Equal(want1) {
		t.Fatalf("ProjectTree(1) = %v; want %v", v1, want1)
	}
}

func TestProjectCountsMultiplicity(t *testing.T) {
	// Star: center A with three B leaves, same edge label → one dimension
	// with count 3.
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 1, 3: 1},
		[][3]int{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}})
	v := ProjectGraph(g, 2)[0]
	d := NewDim(1, 0, 0, 1)
	if v.Get(d) != 3 {
		t.Fatalf("count = %d; want 3", v.Get(d))
	}
	// Level 2: from each leaf, the path continues to the other two leaves
	// via the center? No — paths go 0→leaf and stop (leaf has only the edge
	// back, which is used). So no level-2 dims.
	if len(v) != 1 {
		t.Fatalf("vector = %v; want single dimension", v)
	}
}

func TestSpaceTracksForestIncrementally(t *testing.T) {
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}})
	s := NewSpace()
	f := nnt.NewForest(g, 3, s)
	// After construction the space matches a scratch projection.
	assertSpaceMatchesScratch(t, s, f)
	if s.Len() != 3 {
		t.Fatalf("Len = %d; want 3", s.Len())
	}
	s.TakeDirty() // reset

	// Apply a few ops and re-verify.
	ops := []graph.ChangeOp{
		graph.InsertOp(2, 2, 3, 0, 1),
		graph.InsertOp(0, 0, 2, 2, 0),
		graph.DeleteOp(0, 1),
		graph.DeleteOp(1, 2), // retires vertex 1
	}
	for i, op := range ops {
		if err := f.Apply(op); err != nil {
			t.Fatalf("op %d: %v", i, op)
		}
		assertSpaceMatchesScratch(t, s, f)
		dirty := s.TakeDirty()
		if len(dirty) == 0 {
			t.Fatalf("op %d: no dirty vertices reported", i)
		}
	}
	if _, ok := s.RootLabel(1); ok {
		t.Fatal("retired vertex still has a root label")
	}
	if s.Vector(1) != nil {
		t.Fatal("retired vertex still has a vector")
	}
}

func TestTakeDirtyResets(t *testing.T) {
	s := NewSpace()
	f := nnt.NewForest(buildGraph(t, map[graph.VertexID]graph.Label{0: 0}, nil), 2, s)
	_ = f
	if len(s.TakeDirty()) != 1 {
		t.Fatal("initial build should mark vertex dirty")
	}
	if s.TakeDirty() != nil {
		t.Fatal("second TakeDirty should be empty")
	}
}

func assertSpaceMatchesScratch(t *testing.T, s *Space, f *nnt.Forest) {
	t.Helper()
	scratch := ProjectForest(f)
	if len(scratch) != s.Len() {
		t.Fatalf("space has %d vectors; scratch has %d", s.Len(), len(scratch))
	}
	for v, want := range scratch {
		got := s.Vector(v)
		if got == nil || !got.Equal(want) {
			t.Fatalf("vector of %d: incremental %v vs scratch %v", v, got, want)
		}
		l, ok := s.RootLabel(v)
		if !ok || l != f.Graph().MustVertexLabel(v) {
			t.Fatalf("root label of %d wrong", v)
		}
	}
}

// TestQuickIncrementalSpaceMatchesScratch runs random op sequences and
// verifies the observer-maintained vectors always equal a scratch
// projection.
func TestQuickIncrementalSpaceMatchesScratch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 7
		g := graph.New()
		for i := 0; i < n; i++ {
			_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(3)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
				}
			}
		}
		s := NewSpace()
		fo := nnt.NewForest(g, 3, s)
		for step := 0; step < 25; step++ {
			u := graph.VertexID(r.Intn(n))
			v := graph.VertexID(r.Intn(n))
			if u == v {
				continue
			}
			var op graph.ChangeOp
			if fo.Graph().HasEdge(u, v) {
				op = graph.DeleteOp(u, v)
			} else {
				ul, ok := fo.Graph().VertexLabel(u)
				if !ok {
					ul = graph.Label(r.Intn(3))
				}
				vl, ok := fo.Graph().VertexLabel(v)
				if !ok {
					vl = graph.Label(r.Intn(3))
				}
				op = graph.InsertOp(u, ul, v, vl, graph.Label(r.Intn(2)))
			}
			if err := fo.Apply(op); err != nil {
				return false
			}
			scratch := ProjectForest(fo)
			if len(scratch) != s.Len() {
				return false
			}
			for vid, want := range scratch {
				got := s.Vector(vid)
				if got == nil || !got.Equal(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma42NoFalseNegatives checks the paper's Lemma 4.2: when Q is
// subgraph-isomorphic to G, every query vertex's NPV is dominated by some
// stream vertex's NPV.
func TestQuickLemma42NoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 5+r.Intn(8), 3)
		q := randomSub(r, g)
		if q.VertexCount() == 0 || !iso.Contains(q, g) {
			return true
		}
		qv := ProjectGraph(q, 3)
		gv := ProjectGraph(g, 3)
		for _, uvec := range qv {
			dominated := false
			for _, vvec := range gv {
				if vvec.Dominates(uvec) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomConnected(r *rand.Rand, n, labels int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		_ = g.AddVertex(graph.VertexID(i), graph.Label(r.Intn(labels)))
	}
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.VertexID(i), graph.VertexID(r.Intn(i)), graph.Label(r.Intn(2)))
	}
	for k := 0; k < n/2; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i != j {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(j), graph.Label(r.Intn(2)))
		}
	}
	return g
}

func randomSub(r *rand.Rand, g *graph.Graph) *graph.Graph {
	ids := g.VertexIDs()
	start := ids[r.Intn(len(ids))]
	sub := graph.New()
	_ = sub.AddVertex(start, g.MustVertexLabel(start))
	want := 1 + r.Intn(g.EdgeCount())
	frontier := []graph.VertexID{start}
	for sub.EdgeCount() < want && len(frontier) > 0 {
		v := frontier[r.Intn(len(frontier))]
		es := g.NeighborsSorted(v)
		added := false
		for _, idx := range r.Perm(len(es)) {
			e := es[idx]
			if sub.HasEdge(e.U, e.V) {
				continue
			}
			_ = sub.AddVertex(e.V, g.MustVertexLabel(e.V))
			_ = sub.AddEdge(e.U, e.V, e.Label)
			frontier = append(frontier, e.V)
			added = true
			break
		}
		if !added {
			for i, u := range frontier {
				if u == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return sub
}
