package npv

import (
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/nnt"
)

// sealTestForest builds a 3-vertex path 0–1–2 observed by a packing space.
func sealTestForest(t *testing.T) (*nnt.Forest, *Space) {
	t.Helper()
	g := graph.New()
	for v := 0; v < 3; v++ {
		if err := g.AddVertex(graph.VertexID(v), graph.Label(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	s := NewSpace()
	s.EnablePacking()
	return nnt.NewForest(g, 2, s), s
}

func TestSealDirtyRequiresPacking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SealDirty without EnablePacking did not panic")
		}
	}()
	NewSpace().SealDirty()
}

// TestSealDirtyTransitions checks the four delta shapes — changed, added,
// retired, ghost — and that Old is exactly the previously sealed value.
func TestSealDirtyTransitions(t *testing.T) {
	f, s := sealTestForest(t)
	first := s.SealDirty()
	if len(first) != 3 {
		t.Fatalf("first seal: %d deltas; want 3", len(first))
	}
	for _, dl := range first {
		if dl.HadOld || !dl.HasNew || !dl.Changed() {
			t.Fatalf("first seal delta %+v; want added", dl)
		}
	}
	if got := s.SealDirty(); got != nil {
		t.Fatalf("clean seal returned %v; want nil", got)
	}

	// Grow a new branch at 0: vertices 0 (changed) and 3 (added) go dirty.
	before, _ := s.Packed(0)
	if err := f.Apply(graph.InsertOp(0, 0, 3, 1, 0)); err != nil {
		t.Fatal(err)
	}
	deltas := s.SealDirty()
	byVertex := make(map[graph.VertexID]DirtyDelta, len(deltas))
	for _, dl := range deltas {
		byVertex[dl.Vertex] = dl
	}
	d0, ok := byVertex[0]
	if !ok || !d0.HadOld || !d0.HasNew || !d0.Changed() {
		t.Fatalf("vertex 0 delta %+v; want changed", d0)
	}
	if !d0.Old.Equal(before) {
		t.Fatalf("vertex 0 Old = %v; previously sealed %v", d0.Old, before)
	}
	if !d0.New.Equal(Pack(s.Vector(0))) {
		t.Fatalf("vertex 0 New = %v; live packs to %v", d0.New, Pack(s.Vector(0)))
	}
	d3, ok := byVertex[3]
	if !ok || d3.HadOld || !d3.HasNew {
		t.Fatalf("vertex 3 delta %+v; want added", d3)
	}

	// Retire 3 again: delete its only edge.
	if err := f.Apply(graph.DeleteOp(0, 3)); err != nil {
		t.Fatal(err)
	}
	deltas = s.SealDirty()
	byVertex = make(map[graph.VertexID]DirtyDelta, len(deltas))
	for _, dl := range deltas {
		byVertex[dl.Vertex] = dl
	}
	d3, ok = byVertex[3]
	if !ok || !d3.HadOld || d3.HasNew || !d3.Changed() {
		t.Fatalf("vertex 3 delta %+v; want retired", d3)
	}
	if _, ok := s.Packed(3); ok {
		t.Fatal("retired vertex still served from the packed cache")
	}

	// Ghost: add 3 and retire it again within one timestamp.
	if err := f.Apply(graph.InsertOp(0, 0, 3, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(graph.DeleteOp(0, 3)); err != nil {
		t.Fatal(err)
	}
	deltas = s.SealDirty()
	byVertex = make(map[graph.VertexID]DirtyDelta, len(deltas))
	for _, dl := range deltas {
		byVertex[dl.Vertex] = dl
	}
	d3, ok = byVertex[3]
	if !ok {
		t.Fatal("ghost vertex 3 missing from deltas")
	}
	if d3.HadOld || d3.HasNew || d3.Changed() {
		t.Fatalf("ghost vertex delta %+v; want neither side present", d3)
	}
}

// TestPackedCacheRetiredVertex is the regression pin for the packed-cache
// invalidation of retired vertices: a vertex deleted and re-added within one
// timestamp must never serve its pre-deletion packed vector, and a vertex
// retired across a seal must leave no cache entry behind (both TakeDirty
// and SealDirty evict, they do not merely bump the epoch).
func TestPackedCacheRetiredVertex(t *testing.T) {
	for _, seal := range []struct {
		name string
		fn   func(*Space)
	}{
		{"TakeDirty", func(s *Space) { s.TakeDirty() }},
		{"SealDirty", func(s *Space) { s.SealDirty() }},
	} {
		t.Run(seal.name, func(t *testing.T) {
			f, s := sealTestForest(t)
			seal.fn(s)
			stale, ok := s.Packed(2)
			if !ok {
				t.Fatal("vertex 2 missing after first seal")
			}

			// Retire 2 (it becomes isolated) and re-attach it elsewhere —
			// with a different edge label, so its vector genuinely differs —
			// all within one timestamp.
			if err := f.Apply(graph.DeleteOp(1, 2)); err != nil {
				t.Fatal(err)
			}
			if err := f.Apply(graph.InsertOp(0, 0, 2, 2, 1)); err != nil {
				t.Fatal(err)
			}
			fresh := Pack(s.Vector(2))
			if fresh.Equal(stale) {
				t.Fatal("test graph does not distinguish stale from fresh")
			}
			// Before the seal, the dirty-vertex path must already bypass the
			// cache.
			if p, ok := s.Packed(2); !ok || !p.Equal(fresh) {
				t.Fatalf("pre-seal Packed(2) = %v, %v; want fresh %v", p, ok, fresh)
			}
			seal.fn(s)
			if p, ok := s.Packed(2); !ok || !p.Equal(fresh) {
				t.Fatalf("post-seal Packed(2) = %v, %v; want fresh %v", p, ok, fresh)
			}

			// Retire 2 for good across a seal: the cache entry must be gone,
			// not just stale-but-epoch-bumped.
			if err := f.Apply(graph.DeleteOp(0, 2)); err != nil {
				t.Fatal(err)
			}
			seal.fn(s)
			if p, ok := s.Packed(2); ok {
				t.Fatalf("retired vertex 2 still packs to %v", p)
			}
		})
	}
}
