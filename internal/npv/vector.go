// Package npv implements the paper's node-projected vectors (Section IV-A):
// each node-neighbor tree is projected into a sparse numeric vector counting
// tree edges per dimension ⟨level, parentLabel, edgeLabel, childLabel⟩, and
// the branch-compatibility test of Lemma 4.1 is relaxed to the dominance
// test of Lemma 4.2, which the join strategies in internal/join evaluate.
//
// The paper's dimensions are triples ⟨l, lab1, lab2⟩ over vertex labels; the
// edge label is included here as a fourth component, which is identical on
// the paper's single-edge-label datasets and strictly increases pruning
// power otherwise, while preserving the no-false-negative guarantee
// (isomorphism preserves edge labels, so the path-injection argument behind
// Lemma 4.2 carries the edge label along).
package npv

import (
	"fmt"
	"sort"
	"strings"

	"nntstream/internal/graph"
)

// Dim is a projection dimension (Definition 4.1): a distinct labeled tree
// edge at a given depth, packed as level│fromLabel│edgeLabel│toLabel into
// one word so vectors hit the runtime's fast integer-keyed map path (these
// maps are the hottest structures in the whole system).
type Dim uint64

// NewDim packs a dimension.
func NewDim(level byte, from, edge, to graph.Label) Dim {
	return Dim(uint64(level)<<48 | uint64(from)<<32 | uint64(edge)<<16 | uint64(to))
}

// Level, From, Edge, and To unpack the components.
func (d Dim) Level() byte       { return byte(d >> 48) }
func (d Dim) From() graph.Label { return graph.Label(d >> 32) }
func (d Dim) Edge() graph.Label { return graph.Label(d >> 16) }
func (d Dim) To() graph.Label   { return graph.Label(d) }

func (d Dim) String() string {
	return fmt.Sprintf("(%d,%d-%d->%d)", d.Level(), d.From(), d.Edge(), d.To())
}

// Vector is a sparse node-projected vector: occurrence counts per dimension.
// Entries are always positive; a missing key means zero.
type Vector map[Dim]int32

// Get returns the count for d (zero when absent).
func (v Vector) Get(d Dim) int32 { return v[d] }

// Add adjusts dimension d by delta, deleting the entry when it reaches zero.
// It panics if a count would go negative, which indicates a maintenance bug.
func (v Vector) Add(d Dim, delta int32) {
	c := v[d] + delta
	switch {
	case c < 0:
		panic(fmt.Sprintf("npv: dimension %v count went negative", d))
	case c == 0:
		delete(v, d)
	default:
		v[d] = c
	}
}

// Dominates reports whether v dominates u in the sense of Lemma 4.2: on
// every dimension of u's support, v's count is at least u's. (Dimensions
// where u is zero impose no constraint.)
func (v Vector) Dominates(u Vector) bool {
	if len(v) < len(u) {
		// v must be nonzero on every dimension u is nonzero on.
		return false
	}
	for d, uc := range u {
		if v[d] < uc {
			return false
		}
	}
	return true
}

// Equal reports entry-wise equality.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for d, c := range u {
		if v[d] != c {
			return false
		}
	}
	return true
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for d, n := range v {
		c[d] = n
	}
	return c
}

// L1 returns the sum of all counts, used by the skyline join's ordering
// heuristic (larger vectors are less likely to be dominated, so they are
// probed first).
func (v Vector) L1() int64 {
	var s int64
	for _, c := range v {
		s += int64(c)
	}
	return s
}

// Support returns v's nonzero dimensions in a deterministic order (the
// packed encoding orders by level, then parent, edge, and child labels).
func (v Vector) Support() []Dim {
	out := make([]Dim, 0, len(v))
	for d := range v {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the vector deterministically for tests and debugging.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, d := range v.Support() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v:%d", d, v[d])
	}
	b.WriteByte('}')
	return b.String()
}
