package npv_test

import (
	"fmt"

	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// ExampleProjectGraph projects a labeled star and shows the dominance test
// of Lemma 4.2: the star's center dominates a query vertex with fewer
// same-label neighbors.
func ExampleProjectGraph() {
	// Star: center (label 0) with three label-1 leaves.
	star := graph.New()
	_ = star.AddVertex(0, 0)
	for i := graph.VertexID(1); i <= 3; i++ {
		_ = star.AddVertex(i, 1)
		_ = star.AddEdge(0, i, 0)
	}
	// Query vertex: a center with two label-1 leaves.
	q := graph.New()
	_ = q.AddVertex(0, 0)
	for i := graph.VertexID(1); i <= 2; i++ {
		_ = q.AddVertex(i, 1)
		_ = q.AddEdge(0, i, 0)
	}

	starCenter := npv.ProjectGraph(star, 2)[0]
	queryCenter := npv.ProjectGraph(q, 2)[0]
	fmt.Println("star center:", starCenter)
	fmt.Println("query center:", queryCenter)
	fmt.Println("dominates:", starCenter.Dominates(queryCenter))
	// Output:
	// star center: {(1,0-0->1):3}
	// query center: {(1,0-0->1):2}
	// dominates: true
}
