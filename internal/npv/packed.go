package npv

import (
	"sort"
	"sync/atomic"
)

// PackedVector is the frozen, evaluation-time form of a Vector: the support
// in ascending Dim order in one slice, the matching counts in a parallel
// slice, and a 64-bit support signature (one bit per hashed dimension).
//
// The map-backed Vector is the right shape for incremental maintenance —
// tree edge events adjust one dimension at a time — but the dominance test
// of Lemma 4.2 only ever *reads* whole vectors, and on the filter hot path
// it does so for every (stream, query) pair each timestamp. Packed form
// turns that read into a branch-predictable linear merge over two sorted
// slices with zero map lookups and zero allocations, preceded by two O(1)
// rejects:
//
//  1. the support-size check (v cannot dominate u with a smaller support),
//  2. the signature subset test: every dimension of u sets one hashed bit
//     in u's signature, so support(u) ⊆ support(v) implies
//     sig(u) &^ sig(v) == 0 — a nonzero result proves some dimension of u
//     is missing from v, hence v cannot dominate u. The signature can only
//     produce false accepts (hash collisions), never false rejects, so the
//     filter is sound: it never fires when dominance holds.
//
// Dominance over packed vectors is bit-identical to Vector.Dominates — a
// pure representation change, pinned by the property and fuzz tests.
//
// The zero value is the packed empty vector. PackedVector values share
// their backing slices when copied; they are immutable by convention —
// nothing in this package mutates a PackedVector after Pack returns.
type PackedVector struct {
	dims   []Dim
	counts []int32
	sig    uint64
}

// Kernel telemetry: total dominance tests answered by the packed kernel and
// how many were settled by the signature subset reject alone. The counters
// are process-global atomics (the kernel runs concurrently inside the join
// pool's fan-out); KernelStats exposes them as an obs.Collector so the
// signature filter's selectivity is observable via /v1/metrics.
var (
	dominanceTests atomic.Int64
	sigRejects     atomic.Int64
)

// KernelStats is an obs.Collector (satisfied structurally; npv does not
// import obs) reporting the packed kernel's process-global counters.
type KernelStats struct{}

// CollectMetrics emits the dominance-test and signature-reject totals.
func (KernelStats) CollectMetrics(emit func(name string, value float64)) {
	emit("nntstream_npv_dominance_tests_total", float64(dominanceTests.Load()))
	emit("nntstream_npv_sig_rejects_total", float64(sigRejects.Load()))
}

// KernelCounters returns the raw totals behind KernelStats, for tests.
func KernelCounters() (tests, sigRejected int64) {
	return dominanceTests.Load(), sigRejects.Load()
}

// sigBit maps a dimension to one of 64 signature bits. Fibonacci hashing
// spreads the packed level│from│edge│to encoding (whose entropy sits in
// scattered bit groups) across the top bits.
//
//nnt:hotpath
func sigBit(d Dim) uint64 {
	return 1 << (uint64(d) * 0x9E3779B97F4A7C15 >> 58)
}

// SigBit exposes the signature bit of one dimension so downstream code
// (the shared-factor discovery in internal/factor) can build support
// signatures compatible with the subset reject.
//
//nnt:hotpath
func SigBit(d Dim) uint64 { return sigBit(d) }

// Pack freezes v into packed form. The result does not alias v.
func Pack(v Vector) PackedVector {
	if len(v) == 0 {
		return PackedVector{}
	}
	dims := v.Support()
	counts := make([]int32, len(dims))
	var sig uint64
	for i, d := range dims {
		counts[i] = v[d]
		sig |= sigBit(d)
	}
	return PackedVector{dims: dims, counts: counts, sig: sig}
}

// PackAll packs every vector of a slice, preserving order.
func PackAll(vecs []Vector) []PackedVector {
	out := make([]PackedVector, len(vecs))
	for i, v := range vecs {
		out[i] = Pack(v)
	}
	return out
}

// Len reports the support size (number of nonzero dimensions).
func (p PackedVector) Len() int { return len(p.dims) }

// Dim returns the i-th support dimension (ascending order).
func (p PackedVector) Dim(i int) Dim { return p.dims[i] }

// Count returns the count of the i-th support dimension.
func (p PackedVector) Count(i int) int32 { return p.counts[i] }

// Sig returns the 64-bit support signature.
func (p PackedVector) Sig() uint64 { return p.sig }

// Get returns the count for d (zero when absent) by binary search.
//
//nnt:hotpath
func (p PackedVector) Get(d Dim) int32 {
	if p.sig&sigBit(d) == 0 {
		return 0
	}
	i := sort.Search(len(p.dims), func(i int) bool { return p.dims[i] >= d })
	if i < len(p.dims) && p.dims[i] == d {
		return p.counts[i]
	}
	return 0
}

// L1 returns the sum of all counts (see Vector.L1).
//
//nnt:hotpath
func (p PackedVector) L1() int64 {
	var s int64
	for _, c := range p.counts {
		s += int64(c)
	}
	return s
}

// Unpack reconstructs the map form. Pack(p.Unpack()) round-trips exactly.
func (p PackedVector) Unpack() Vector {
	out := make(Vector, len(p.dims))
	for i, d := range p.dims {
		out[d] = p.counts[i]
	}
	return out
}

// Equal reports entry-wise equality.
//
//nnt:hotpath
func (p PackedVector) Equal(q PackedVector) bool {
	if len(p.dims) != len(q.dims) || p.sig != q.sig {
		return false
	}
	for i, d := range p.dims {
		if q.dims[i] != d || q.counts[i] != p.counts[i] {
			return false
		}
	}
	return true
}

// String renders the packed vector like its map form.
func (p PackedVector) String() string { return p.Unpack().String() }

// CanDominate runs only the two O(1) rejects of Dominates — support size
// and signature subset. A false result is a proof that p cannot dominate u;
// true means the sorted merge must decide. The shared-factor short-circuit
// (internal/factor) leads its memoized test with this so a factored reject
// never costs more than the reject path of the plain kernel it replaces.
//
//nnt:hotpath
func (p PackedVector) CanDominate(u PackedVector) bool {
	return len(p.dims) >= len(u.dims) && u.sig&^p.sig == 0
}

// Dominates reports whether p dominates u in the sense of Lemma 4.2,
// exactly as Vector.Dominates does: on every dimension of u's support, p's
// count is at least u's. The fast rejects run first; the merge walks both
// sorted supports in lockstep and never allocates.
//
//nnt:hotpath
func (p PackedVector) Dominates(u PackedVector) bool {
	dominanceTests.Add(1)
	if len(u.dims) == 0 {
		return true
	}
	if len(p.dims) < len(u.dims) {
		return false
	}
	if u.sig&^p.sig != 0 {
		sigRejects.Add(1)
		return false
	}
	i := 0
	for j, d := range u.dims {
		for i < len(p.dims) && p.dims[i] < d {
			i++
		}
		if i == len(p.dims) || p.dims[i] != d || p.counts[i] < u.counts[j] {
			return false
		}
		i++
	}
	return true
}
