package npv

import (
	"sort"

	"nntstream/internal/graph"
	"nntstream/internal/nnt"
)

// Space holds the node-projected vectors of every vertex of one graph. It
// implements nnt.Observer, so attaching a Space to a Forest at construction
// time keeps the vectors synchronized with the trees at zero extra traversal
// cost (Procedure TreeProjection runs implicitly, one increment per tree
// edge event).
type Space struct {
	vectors map[graph.VertexID]Vector
	labels  map[graph.VertexID]graph.Label
	dirty   map[graph.VertexID]struct{}
	// Tree edge events cluster by root (a maintenance step expands or
	// destroys whole subtrees of one tree), so the last-touched root's
	// vector and dirty status are memoized to skip repeated map lookups.
	lastRoot  graph.VertexID
	lastVec   Vector
	lastValid bool
	// packed caches the frozen PackedVector of each vertex, nil until
	// EnablePacking. Entries are sealed per dirty vertex at each TakeDirty
	// — the timestamp boundary is the cache's invalidation epoch — so the
	// steady-state evaluation path reads packed vectors without ever
	// touching (or mutating) the incremental maps. Readers may therefore
	// run concurrently: between two TakeDirty calls the cache is immutable.
	packed map[graph.VertexID]PackedVector
	// epoch counts TakeDirty calls (seal generations), for observability
	// and tests.
	epoch uint64
}

var _ nnt.Observer = (*Space)(nil)

// NewSpace returns an empty space, ready to be passed to nnt.NewForest.
func NewSpace() *Space {
	return &Space{
		vectors: make(map[graph.VertexID]Vector),
		labels:  make(map[graph.VertexID]graph.Label),
		dirty:   make(map[graph.VertexID]struct{}),
	}
}

// TreeAdded implements nnt.Observer.
func (s *Space) TreeAdded(root graph.VertexID, rootLabel graph.Label) {
	vec := make(Vector)
	s.vectors[root] = vec
	s.labels[root] = rootLabel
	s.dirty[root] = struct{}{}
	s.lastRoot, s.lastVec, s.lastValid = root, vec, true
}

// TreeRemoved implements nnt.Observer.
func (s *Space) TreeRemoved(root graph.VertexID) {
	delete(s.vectors, root)
	delete(s.labels, root)
	s.dirty[root] = struct{}{}
	s.lastValid = false
}

// vecFor returns root's vector, marking it dirty, through the memo.
func (s *Space) vecFor(root graph.VertexID) Vector {
	if s.lastValid && s.lastRoot == root {
		return s.lastVec
	}
	vec := s.vectors[root]
	s.dirty[root] = struct{}{}
	s.lastRoot, s.lastVec, s.lastValid = root, vec, true
	return vec
}

// TreeEdgeAdded implements nnt.Observer.
func (s *Space) TreeEdgeAdded(root graph.VertexID, level int, pl, el, cl graph.Label) {
	s.vecFor(root).Add(NewDim(byte(level), pl, el, cl), 1)
}

// TreeEdgeRemoved implements nnt.Observer.
func (s *Space) TreeEdgeRemoved(root graph.VertexID, level int, pl, el, cl graph.Label) {
	s.vecFor(root).Add(NewDim(byte(level), pl, el, cl), -1)
}

// Vector returns the NPV of v, or nil when v is absent. Callers must not
// mutate the result.
func (s *Space) Vector(v graph.VertexID) Vector { return s.vectors[v] }

// EnablePacking turns on the packed-vector cache: from the next TakeDirty
// on, every dirty vertex's vector is sealed into PackedVector form at the
// timestamp boundary, and Packed/PackedVectors serve reads from the cache
// without map iteration. Filters whose evaluation runs on the packed kernel
// (NL, Skyline) enable it at stream registration; counter-based filters
// (DSC) skip it and pay nothing.
func (s *Space) EnablePacking() {
	if s.packed == nil {
		s.packed = make(map[graph.VertexID]PackedVector, len(s.vectors))
	}
}

// PackingEnabled reports whether the packed cache is active.
func (s *Space) PackingEnabled() bool { return s.packed != nil }

// Epoch reports the number of seal generations (TakeDirty calls).
func (s *Space) Epoch() uint64 { return s.epoch }

// Packed returns the packed NPV of v. In steady state (packing enabled, no
// pending dirt) this is a single cache lookup and never allocates. A vertex
// with pending dirt — or a space without packing enabled — is packed fresh
// from the live map so the result is always current; the cache itself is
// only written at TakeDirty, which keeps concurrent evaluation readers
// race-free.
func (s *Space) Packed(v graph.VertexID) (PackedVector, bool) {
	if len(s.dirty) != 0 {
		if _, dd := s.dirty[v]; dd {
			vec, ok := s.vectors[v]
			if !ok {
				return PackedVector{}, false
			}
			return Pack(vec), true
		}
	}
	if s.packed != nil {
		if p, ok := s.packed[v]; ok {
			return p, true
		}
	}
	vec, ok := s.vectors[v]
	if !ok {
		return PackedVector{}, false
	}
	return Pack(vec), true
}

// PackedVectors calls fn for every (vertex, packed vector) pair, like
// Vectors but through the packed cache. Iteration order is unspecified; fn
// returning false stops iteration.
func (s *Space) PackedVectors(fn func(v graph.VertexID, p PackedVector) bool) {
	for v := range s.vectors {
		p, _ := s.Packed(v)
		if !fn(v, p) {
			return
		}
	}
}

// RootLabel returns the vertex label of v as last observed.
func (s *Space) RootLabel(v graph.VertexID) (graph.Label, bool) {
	l, ok := s.labels[v]
	return l, ok
}

// Len reports the number of vectors (vertices) in the space.
func (s *Space) Len() int { return len(s.vectors) }

// Vectors calls fn for every (vertex, vector) pair. Iteration order is
// unspecified; fn returning false stops iteration.
func (s *Space) Vectors(fn func(v graph.VertexID, vec Vector) bool) {
	for v, vec := range s.vectors {
		if !fn(v, vec) {
			return
		}
	}
}

// HasDirty reports whether any vector changed (or was added or removed)
// since the last TakeDirty, without consuming the dirty set. Batch join
// evaluation uses it to enumerate the streams whose (stream, query) pairs
// need re-evaluation before fanning work out to a pool, and the filters'
// no-op fast path uses it to skip evaluation without allocating.
func (s *Space) HasDirty() bool { return len(s.dirty) > 0 }

// TakeDirty returns the vertices whose vectors changed (or were added or
// removed) since the previous call, and resets the dirty set. Join
// strategies use this to touch only changed vertices per timestamp.
//
// TakeDirty is also the packed cache's seal point: with packing enabled,
// exactly the dirty vertices are re-frozen (or evicted, when retired), so
// the cache stays consistent at O(dirty) per timestamp and is immutable
// between calls. The dirty map itself is retained and cleared rather than
// reallocated — it is touched every timestamp, and churning a fresh map per
// call showed up as steady-state garbage (see BenchmarkSpaceTakeDirty).
func (s *Space) TakeDirty() []graph.VertexID {
	// Invalidate the event memo: it implies a standing dirty mark, which
	// this call clears.
	s.lastValid = false
	s.epoch++
	if len(s.dirty) == 0 {
		return nil
	}
	out := make([]graph.VertexID, 0, len(s.dirty))
	for v := range s.dirty {
		out = append(out, v)
	}
	clear(s.dirty)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if s.packed != nil {
		for _, v := range out {
			if vec, ok := s.vectors[v]; ok {
				s.packed[v] = Pack(vec)
			} else {
				delete(s.packed, v)
			}
		}
	}
	return out
}

// DirtyDelta is one vertex's transition across a seal boundary: the packed
// vector sealed at the previous TakeDirty/SealDirty (Old, when HadOld) and
// the packed vector sealed now (New, when HasNew). A vertex added since the
// last seal has HadOld false; a retired vertex has HasNew false; a vertex
// added and retired within the same timestamp has neither.
type DirtyDelta struct {
	Vertex graph.VertexID
	Old    PackedVector
	New    PackedVector
	HadOld bool
	HasNew bool
}

// Changed reports whether the transition is observable at all: a presence
// change, or a present-before-and-after vertex whose packed vector differs.
func (d DirtyDelta) Changed() bool {
	if d.HadOld != d.HasNew {
		return true
	}
	if !d.HadOld {
		return false
	}
	return !d.Old.Equal(d.New)
}

// SealDirty is TakeDirty for consumers that need the transition, not just
// the vertex set: it consumes the dirty set, reseals the packed cache, and
// returns one DirtyDelta per dirty vertex in ascending vertex order. Old is
// read from the cache before resealing, so it is exactly the value the
// previous seal exposed to evaluation — the pair (Old, New) is the precise
// input the query dominance index (internal/qindex) prunes candidates with.
//
// SealDirty requires EnablePacking: without the cache there is no sealed
// "before" value, and a caller that silently saw HadOld == false for a
// vertex that merely changed would under-report candidates.
func (s *Space) SealDirty() []DirtyDelta {
	if s.packed == nil {
		panic("npv: SealDirty requires EnablePacking")
	}
	s.lastValid = false
	s.epoch++
	if len(s.dirty) == 0 {
		return nil
	}
	out := make([]DirtyDelta, 0, len(s.dirty))
	for v := range s.dirty {
		out = append(out, DirtyDelta{Vertex: v})
	}
	clear(s.dirty)
	sort.Slice(out, func(i, j int) bool { return out[i].Vertex < out[j].Vertex })
	for i := range out {
		v := out[i].Vertex
		if p, ok := s.packed[v]; ok {
			out[i].Old, out[i].HadOld = p, true
		}
		if vec, ok := s.vectors[v]; ok {
			p := Pack(vec)
			out[i].New, out[i].HasNew = p, true
			s.packed[v] = p
		} else {
			delete(s.packed, v)
		}
	}
	return out
}

// ProjectTree computes the NPV of a single node-neighbor tree from scratch
// (Procedure TreeProjection, Figure 6). It is the reference implementation
// that the incremental Space is validated against, and the path used for
// static query graphs.
func ProjectTree(root *nnt.Node) Vector {
	v := make(Vector)
	var walk func(n *nnt.Node)
	walk = func(n *nnt.Node) {
		for _, c := range n.Children {
			v.Add(NewDim(byte(c.Depth), n.VLabel, c.EdgeLabel, c.VLabel), 1)
			walk(c)
		}
	}
	walk(root)
	return v
}

// ProjectForest computes all NPVs of a forest from scratch.
func ProjectForest(f *nnt.Forest) map[graph.VertexID]Vector {
	out := make(map[graph.VertexID]Vector)
	f.Roots(func(v graph.VertexID, root *nnt.Node) bool {
		out[v] = ProjectTree(root)
		return true
	})
	return out
}

// ProjectGraph is a convenience that builds the depth-l forest of g and
// returns its NPVs together with the vertex labels. It is the one-shot path
// for static graphs (queries are projected once at registration).
func ProjectGraph(g *graph.Graph, depth int) map[graph.VertexID]Vector {
	return ProjectForest(nnt.NewForest(g, depth))
}

// VectorsByVertex flattens a projection map into a slice in ascending vertex
// order. Map iteration order is randomized in Go; filters that keep their
// query vectors in a slice must build it through this helper so that probe
// order — and everything downstream of it, from skyline tie-breaks to
// candidate evaluation cost — is reproducible run to run.
func VectorsByVertex(m map[graph.VertexID]Vector) []Vector {
	ids := make([]graph.VertexID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	vecs := make([]Vector, 0, len(ids))
	for _, id := range ids {
		vecs = append(vecs, m[id])
	}
	return vecs
}
