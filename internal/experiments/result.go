// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the reproduced system: the preliminary
// comparison (Figure 2), the NNT depth sweep (Figure 12), static
// effectiveness (Figure 13), stream effectiveness and efficiency (Figures
// 14 and 15), and the query/stream scalability sweeps (Figures 16 and 17),
// plus an ablation comparing branch-compatible NNT filtering against the
// NPV projection.
//
// Every runner takes a Config whose Scale shrinks the paper's workload
// proportionally — Scale 1.0 is the paper's size, smaller values produce
// the same comparisons in minutes. Seeds make every run reproducible.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Config controls workload sizes and reproducibility.
type Config struct {
	// Seed drives all generators.
	Seed int64
	// Scale multiplies the paper's workload sizes (graph counts, query
	// counts, timestamps). 1.0 reproduces the paper's scale.
	Scale float64
	// Verbose, when set, receives progress lines.
	Verbose io.Writer
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, format+"\n", args...)
	}
}

// scaled applies Scale to a paper-scale quantity with a floor.
func (c Config) scaled(paper, min int) int {
	n := int(float64(paper)*c.Scale + 0.5)
	if n < min {
		n = min
	}
	return n
}

// Result is one regenerated table or figure, as the rows the paper plots.
type Result struct {
	// Name identifies the paper artifact ("Figure 14", …).
	Name string
	// Caption summarizes what is being measured.
	Caption string
	// Header and Rows hold the table body.
	Header []string
	Rows   [][]string
	// Notes records scale, substitutions, and soundness checks.
	Notes []string
}

// Fprint renders the result as a fixed-width table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", r.Name, r.Caption)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
