package experiments

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for CI while still exercising
// every code path of a runner.
func tiny() Config { return Config{Seed: 1, Scale: 0.004} }

func checkResult(t *testing.T, res *Result, wantCols int) {
	t.Helper()
	if res.Name == "" || res.Caption == "" {
		t.Fatal("result missing name/caption")
	}
	if len(res.Header) != wantCols {
		t.Fatalf("header has %d columns; want %d", len(res.Header), wantCols)
	}
	if len(res.Rows) == 0 {
		t.Fatal("result has no rows")
	}
	for i, row := range res.Rows {
		if len(row) != wantCols {
			t.Fatalf("row %d has %d cells; want %d", i, len(row), wantCols)
		}
		for j, cell := range row {
			if cell == "" {
				t.Fatalf("row %d cell %d empty", i, j)
			}
		}
	}
	var b strings.Builder
	res.Fprint(&b)
	out := b.String()
	if !strings.Contains(out, res.Name) || !strings.Contains(out, res.Header[0]) {
		t.Fatalf("Fprint output missing name/header:\n%s", out)
	}
}

func TestFig02Tiny(t *testing.T) {
	res, err := Fig02(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4)
	if len(res.Rows) != 3 {
		t.Fatalf("Fig02 should compare 3 methods, got %d", len(res.Rows))
	}
}

func TestFig12Tiny(t *testing.T) {
	for _, d := range []staticDataset{DatasetAIDS, DatasetSynthetic} {
		res, err := Fig12(tiny(), d)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, res, 5) // query set + 4 depths
		if len(res.Rows) != 3 {
			t.Fatalf("Fig12 should sweep 3 query sets, got %d", len(res.Rows))
		}
	}
}

func TestFig13Tiny(t *testing.T) {
	res, err := Fig13(tiny(), DatasetAIDS)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4)
	if len(res.Rows) != 6 {
		t.Fatalf("Fig13 should sweep 6 query sets, got %d", len(res.Rows))
	}
}

func TestFig14And15Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: gIndex1 re-mining")
	}
	res14, res15, err := Fig1415(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res14, 5)
	if len(res14.Rows) != 3 {
		t.Fatalf("Fig14 should cover 3 datasets, got %d", len(res14.Rows))
	}
	checkResult(t, res15, 5)
}

func TestFig16And17Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: three joins over three datasets")
	}
	res16, err := Fig16(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res16, 5)
	// 3 datasets × 4 fractions.
	if len(res16.Rows) != 12 {
		t.Fatalf("Fig16 rows = %d; want 12", len(res16.Rows))
	}
	res17, err := Fig17(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res17, 5)
}

func TestAblationTinyIsSound(t *testing.T) {
	res, err := Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4)
	// The false-negative column (index 3) must be "0" for every method.
	for _, row := range res.Rows {
		if row[3] != "0" {
			t.Fatalf("method %s reported %s false negatives", row[0], row[3])
		}
	}
}

func TestScaledFloors(t *testing.T) {
	c := Config{Scale: 0.0001}
	if got := c.scaled(10000, 150); got != 150 {
		t.Fatalf("scaled floor = %d; want 150", got)
	}
	c.Scale = 1.0
	if got := c.scaled(10000, 150); got != 10000 {
		t.Fatalf("scaled full = %d; want 10000", got)
	}
}

func TestStaticDBCandidates(t *testing.T) {
	cfg := tiny()
	db := buildStaticDB(cfg, DatasetAIDS, 99)
	sdb := newStaticDB(db, 3)
	// Any database graph is a candidate for a query extracted from itself.
	q := db[0]
	if got := len(sdb.Candidates(q)); got < 1 {
		t.Fatalf("graph should be its own candidate; got %d", got)
	}
}

func TestScalingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: three sharded runs")
	}
	res, err := Scaling(Config{Seed: 1, Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, 4)
	// Shard counts 2 and 4 must report identical candidate sets.
	for _, row := range res.Rows[1:] {
		if row[3] != "yes" {
			t.Fatalf("shards=%s candidates diverged", row[0])
		}
	}
}
