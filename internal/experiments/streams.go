package experiments

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/gindex"
	"nntstream/internal/graphgrep"
	"nntstream/internal/join"
)

// streamWorkloads builds the three stream datasets of Section V-B: the
// Reality-Mining-like real workload (25×25 in the paper) and the sparse and
// dense synthetic flip workloads (70×70 in the paper).
func streamWorkloads(cfg Config) []streamWorkload {
	realPairs := cfg.scaled(25, 4)
	synPairs := cfg.scaled(70, 5)
	ts := cfg.scaled(1000, 20)
	return []streamWorkload{
		realStreamWorkload(cfg, realPairs, ts, 1401),
		synStreamWorkload(cfg, datagen.SparseFlipDefaults(), synPairs, ts, 1402),
		synStreamWorkload(cfg, datagen.DenseFlipDefaults(), synPairs, ts, 1403),
	}
}

// Fig1415 reproduces the stream effectiveness (Figure 14) and efficiency
// (Figure 15) comparisons in a single pass over the workloads: average
// candidate percentage and average processing cost per timestamp for
// GraphGrep, gIndex1, gIndex2, and the NPV dominated-set-cover method.
func Fig1415(cfg Config) (*Result, *Result, error) {
	notes := []string{
		fmt.Sprintf("scale %.2f of the paper's workloads (real 25×25, synthetic 70×70, 1000 timestamps)", cfg.Scale),
		"gIndex columns run on a capped number of timestamps (per-timestamp re-mining is the point the paper makes); averages are per processed timestamp",
	}
	res14 := &Result{
		Name:    "Figure 14",
		Caption: "stream effectiveness: average candidate ratio per timestamp",
		Header:  []string{"dataset", "GraphGrep", "gIndex1", "gIndex2", "NPV-DSC"},
		Notes:   notes,
	}
	res15 := &Result{
		Name:    "Figure 15",
		Caption: "stream efficiency: average processing cost per timestamp (ms)",
		Header:  []string{"dataset", "GraphGrep", "gIndex1", "gIndex2", "NPV-DSC"},
		Notes:   notes,
	}
	for _, w := range streamWorkloads(cfg) {
		ts := w.streams[0].Timestamps() - 1
		g1TS := minInt(ts, 3)
		g2TS := minInt(ts, 10)
		row14 := []string{w.name}
		row15 := []string{w.name}
		methods := []struct {
			f     core.Filter
			maxTS int
		}{
			{graphgrep.New(graphgrep.DefaultLength), 0},
			{gindex.New(gindex.Setting1()), g1TS},
			{gindex.New(gindex.Setting2()), g2TS},
			{join.NewDSC(join.DefaultDepth), 0},
		}
		for _, m := range methods {
			cfg.logf("fig14/15: %s on %s", m.f.Name(), w.name)
			out, err := runStream(w, m.f, m.maxTS, 0)
			if err != nil {
				return nil, nil, err
			}
			row14 = append(row14, fmtPct(out.candidateRatio))
			row15 = append(row15, fmtMS(out.avgPerTS))
		}
		res14.Rows = append(res14.Rows, row14)
		res15.Rows = append(res15.Rows, row15)
	}
	return res14, res15, nil
}

// Fig16 reproduces the query-count scalability sweep (Figure 16): average
// processing cost per timestamp for NL, DSC, and Skyline as the number of
// queries grows, streams fixed at the maximum.
func Fig16(cfg Config) (*Result, error) {
	return runScalability(cfg, "Figure 16", true)
}

// Fig17 reproduces the stream-count scalability sweep (Figure 17): same
// methods, varying the number of streams with queries fixed at maximum.
func Fig17(cfg Config) (*Result, error) {
	return runScalability(cfg, "Figure 17", false)
}

func runScalability(cfg Config, name string, varyQueries bool) (*Result, error) {
	axis := "queries"
	if !varyQueries {
		axis = "streams"
	}
	res := &Result{
		Name:    name,
		Caption: fmt.Sprintf("scalability in the number of %s: avg cost per timestamp (ms)", axis),
		Header:  []string{"dataset", axis, "NPV-NL", "NPV-DSC", "NPV-Skyline"},
		Notes: []string{
			fmt.Sprintf("scale %.2f; the fixed dimension stays at its dataset maximum", cfg.Scale),
		},
	}
	// Scalability uses a smaller timestamp budget so the sweep over pair
	// counts stays affordable.
	realPairs := cfg.scaled(25, 8)
	synPairs := cfg.scaled(70, 8)
	ts := cfg.scaled(500, 12)
	workloads := []streamWorkload{
		realStreamWorkload(cfg, realPairs, ts, 1601),
		synStreamWorkload(cfg, datagen.SparseFlipDefaults(), synPairs, ts, 1602),
		synStreamWorkload(cfg, datagen.DenseFlipDefaults(), synPairs, ts, 1603),
	}
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	for _, w := range workloads {
		max := len(w.queries)
		for _, frac := range fractions {
			n := maxInt(1, int(frac*float64(max)+0.5))
			var ww streamWorkload
			if varyQueries {
				ww = w.truncate(n, len(w.streams))
			} else {
				ww = w.truncate(len(w.queries), n)
			}
			row := []string{w.name, fmt.Sprintf("%d", n)}
			for _, mk := range []func() core.Filter{
				func() core.Filter { return join.NewNL(join.DefaultDepth) },
				func() core.Filter { return join.NewDSC(join.DefaultDepth) },
				func() core.Filter { return join.NewSkyline(join.DefaultDepth) },
			} {
				f := mk()
				cfg.logf("%s: %s on %s with %d %s", name, f.Name(), w.name, n, axis)
				out, err := runStream(ww, f, 0, 0)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtMS(out.avgPerTS))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Ablation compares the branch-compatible NNT filter (Lemma 4.1) against
// the NPV projection (Lemma 4.2) and the exact verifier on the sparse
// synthetic workload: what the projection trades in pruning power for its
// vector-space speed, and how far both stay from exact.
func Ablation(cfg Config) (*Result, error) {
	pairs := cfg.scaled(70, 5)
	ts := cfg.scaled(200, 10)
	w := synStreamWorkload(cfg, datagen.SparseFlipDefaults(), pairs, ts, 9901)
	res := &Result{
		Name:    "Ablation",
		Caption: "branch-compatible NNT vs NPV projection vs exact: candidate ratio and cost",
		Header:  []string{"method", "avg time/ts (ms)", "candidate ratio", "false negatives"},
		Notes: []string{
			fmt.Sprintf("workload: %d×%d sparse synthetic, %d timestamps (scale %.2f)", pairs, pairs, ts, cfg.Scale),
			"soundness: candidate sets are verified against exact isomorphism on sampled timestamps; the false-negative column must be 0",
		},
	}
	exactTS := minInt(ts, 20)
	methods := []struct {
		f      core.Filter
		maxTS  int
		verify int
	}{
		{join.NewBranch(join.DefaultDepth), 0, 10},
		{join.NewDSC(join.DefaultDepth), 0, 10},
		{join.NewSkyline(join.DefaultDepth), 0, 10},
		{join.NewExact(), exactTS, 0},
	}
	for _, m := range methods {
		cfg.logf("ablation: %s", m.f.Name())
		out, err := runStream(w, m.f, m.maxTS, m.verify)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			out.filter, fmtMS(out.avgPerTS), fmtPct(out.candidateRatio),
			fmt.Sprintf("%d", out.missedPairs),
		})
	}
	return res, nil
}
