package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/graph"
)

// streamWorkload is a ready-to-run continuous-search input.
type streamWorkload struct {
	name    string
	queries []*graph.Graph
	streams []*graph.Stream
}

// synStreamWorkload builds the paper's synthetic stream workload: numPairs
// basic graphs (queries), each spawning a flip-process stream over its
// 1.5×-grown template.
func synStreamWorkload(cfg Config, flip datagen.FlipConfig, numPairs, timestamps int, seedOffset int64) streamWorkload {
	r := rand.New(rand.NewSource(cfg.Seed + seedOffset))
	flip.Timestamps = timestamps
	wcfg := datagen.DefaultStreamWorkload(flip)
	wcfg.Gen.NumGraphs = numPairs
	w := datagen.SyntheticStreams(wcfg, r)
	name := "syn-sparse"
	if flip.AppearProb > flip.DisappearProb {
		name = "syn-dense"
	}
	return streamWorkload{name: name, queries: w.Queries, streams: w.Streams}
}

// realStreamWorkload builds the Reality-Mining-like workload: numPairs
// queries extracted from the proximity series and numPairs streams derived
// from it.
func realStreamWorkload(cfg Config, numPairs, timestamps int, seedOffset int64) streamWorkload {
	r := rand.New(rand.NewSource(cfg.Seed + seedOffset))
	pcfg := datagen.ProximityDefaults()
	pcfg.Timestamps = timestamps
	series := datagen.Proximity(pcfg, rand.New(rand.NewSource(cfg.Seed+seedOffset)))
	streams := datagen.ProximityStreams(pcfg, numPairs, r)
	queries := datagen.ProximityQueries(series, numPairs, 2, 6, r)
	return streamWorkload{name: "real", queries: queries, streams: streams}
}

// truncate returns the workload limited to the first n queries and streams.
func (w streamWorkload) truncate(nq, ns int) streamWorkload {
	out := w
	if nq < len(w.queries) {
		out.queries = w.queries[:nq]
	}
	if ns < len(w.streams) {
		out.streams = w.streams[:ns]
	}
	return out
}

// runOutcome aggregates one filter's run over a workload.
type runOutcome struct {
	filter         string
	avgPerTS       time.Duration
	candidateRatio float64
	timestamps     int
	missedPairs    int // false negatives found during sampled verification
}

// runStream drives one filter over the workload for up to maxTS timestamps
// (0 = the full stream length). When verifyEvery > 0, every verifyEvery-th
// timestamp is checked for false negatives with exact isomorphism.
func runStream(w streamWorkload, f core.Filter, maxTS, verifyEvery int) (runOutcome, error) {
	mon := core.NewMonitor(f)
	for _, q := range w.queries {
		if _, err := mon.AddQuery(q); err != nil {
			return runOutcome{}, fmt.Errorf("add query: %w", err)
		}
	}
	cursors := make([]*graph.Cursor, len(w.streams))
	ids := make([]core.StreamID, len(w.streams))
	for i, s := range w.streams {
		cursors[i] = graph.NewCursor(s)
		id, err := mon.AddStream(s.Start)
		if err != nil {
			return runOutcome{}, fmt.Errorf("add stream: %w", err)
		}
		ids[i] = id
	}
	total := w.streams[0].Timestamps() - 1
	if maxTS > 0 && maxTS < total {
		total = maxTS
	}
	missed := 0
	for t := 0; t < total; t++ {
		changes := make(map[core.StreamID]graph.ChangeSet, len(cursors))
		for i, c := range cursors {
			cs, ok := c.Next()
			if !ok {
				continue
			}
			if len(cs) > 0 {
				changes[ids[i]] = cs
			}
		}
		if _, err := mon.StepAll(changes); err != nil {
			return runOutcome{}, err
		}
		if verifyEvery > 0 && t%verifyEvery == 0 {
			missed += len(mon.VerifyNoFalseNegatives())
		}
	}
	st := mon.Stats()
	return runOutcome{
		filter:         f.Name(),
		avgPerTS:       st.AvgTimePerTimestamp(),
		candidateRatio: st.CandidateRatio(),
		timestamps:     st.Timestamps,
		missedPairs:    missed,
	}, nil
}

// fmtMS renders a duration as fractional milliseconds.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// fmtPct renders a ratio as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
