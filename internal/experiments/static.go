package experiments

import (
	"nntstream/internal/graph"
	"nntstream/internal/static"
)

// newStaticDB builds the NPV index the static experiments (Figures 12 and
// 13) filter against; the heavy lifting lives in internal/static.
func newStaticDB(db []*graph.Graph, depth int) *static.Index {
	return static.NewIndex(db, depth)
}
