package experiments

import (
	"fmt"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/graph"
	"nntstream/internal/join"
)

// Scaling measures the multi-core sharded engine (an extension beyond the
// paper): wall-clock cost per timestamp for the DSC filter as streams are
// partitioned over 1, 2, and 4 filter shards, with a candidate-set equality
// check against the single-shard run at the final timestamp.
func Scaling(cfg Config) (*Result, error) {
	pairs := cfg.scaled(70, 16)
	ts := cfg.scaled(300, 20)
	w := synStreamWorkload(cfg, datagen.SparseFlipDefaults(), pairs, ts, 7701)

	res := &Result{
		Name:    "Scaling",
		Caption: "sharded-engine wall time per timestamp (NPV-DSC, sparse synthetic)",
		Header:  []string{"shards", "avg time/ts (ms)", "speedup", "candidates match"},
		Notes: []string{
			fmt.Sprintf("workload: %d×%d sparse synthetic, %d timestamps (scale %.2f); sharding is an extension beyond the paper", pairs, pairs, ts, cfg.Scale),
		},
	}

	var baseline float64
	var reference []core.Pair
	for _, shards := range []int{1, 2, 4} {
		cfg.logf("scaling: %d shards", shards)
		mon := core.NewShardedMonitor(func() core.Filter {
			return join.NewDSC(join.DefaultDepth)
		}, shards)
		for _, q := range w.queries {
			if _, err := mon.AddQuery(q); err != nil {
				return nil, err
			}
		}
		cursors := make([]*graph.Cursor, len(w.streams))
		ids := make([]core.StreamID, len(w.streams))
		for i, s := range w.streams {
			cursors[i] = graph.NewCursor(s)
			id, err := mon.AddStream(s.Start)
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		for t := 0; t < ts; t++ {
			changes := make(map[core.StreamID]graph.ChangeSet, len(cursors))
			for i, c := range cursors {
				if cs, ok := c.Next(); ok && len(cs) > 0 {
					changes[ids[i]] = cs
				}
			}
			if _, err := mon.StepAll(changes); err != nil {
				return nil, err
			}
		}
		st := mon.Stats()
		ms := float64(st.AvgTimePerTimestamp().Microseconds()) / 1000.0
		match := "—"
		if shards == 1 {
			baseline = ms
			reference = mon.Candidates()
		} else {
			match = "yes"
			got := mon.Candidates()
			if len(got) != len(reference) {
				match = "NO"
			} else {
				for i := range got {
					if got[i] != reference[i] {
						match = "NO"
						break
					}
				}
			}
		}
		speedup := "1.00×"
		if shards > 1 && ms > 0 {
			speedup = fmt.Sprintf("%.2f×", baseline/ms)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", shards), fmt.Sprintf("%.3f", ms), speedup, match,
		})
	}
	return res, nil
}
