package experiments

import (
	"fmt"
	"math/rand"

	"nntstream/internal/core"
	"nntstream/internal/datagen"
	"nntstream/internal/gindex"
	"nntstream/internal/graph"
	"nntstream/internal/graphgrep"
	"nntstream/internal/join"
)

// Fig02 reproduces the preliminary comparison of Figure 2: average query
// processing time per timestamp and candidate ratio for gIndex, GraphGrep,
// and the NPV method, on the 70×70 synthetic stream workload.
func Fig02(cfg Config) (*Result, error) {
	pairs := cfg.scaled(70, 5)
	ts := cfg.scaled(100, 10)
	w := synStreamWorkload(cfg, datagen.SparseFlipDefaults(), pairs, ts, 2)

	res := &Result{
		Name:    "Figure 2",
		Caption: "preliminary comparison: avg processing time per timestamp and candidate ratio",
		Header:  []string{"method", "avg time/ts (ms)", "candidate ratio", "timestamps"},
		Notes: []string{
			fmt.Sprintf("workload: %d queries × %d streams, %d timestamps (scale %.2f of the paper's 70×70)", pairs, pairs, ts, cfg.Scale),
			"gIndex runs its per-timestamp re-mining on a capped number of timestamps; its averages extrapolate",
		},
	}
	gindexTS := minInt(ts, 10)
	methods := []struct {
		f     core.Filter
		maxTS int
	}{
		{gindex.New(gindex.Setting2()), gindexTS},
		{graphgrep.New(graphgrep.DefaultLength), 0},
		{join.NewDSC(join.DefaultDepth), 0},
	}
	for _, m := range methods {
		cfg.logf("fig02: running %s", m.f.Name())
		out, err := runStream(w, m.f, m.maxTS, 0)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			out.filter, fmtMS(out.avgPerTS), fmtPct(out.candidateRatio),
			fmt.Sprintf("%d", out.timestamps),
		})
	}
	return res, nil
}

// staticDataset names the two static databases of Section V-A.
type staticDataset int

const (
	// DatasetAIDS is the AIDS-like chemical database (substituted; see
	// DESIGN.md).
	DatasetAIDS staticDataset = iota
	// DatasetSynthetic is the Kuramochi–Karypis synthetic database.
	DatasetSynthetic
)

func (d staticDataset) String() string {
	if d == DatasetAIDS {
		return "AIDS-like"
	}
	return "synthetic"
}

func buildStaticDB(cfg Config, d staticDataset, seedOffset int64) []*graph.Graph {
	r := rand.New(rand.NewSource(cfg.Seed + seedOffset))
	switch d {
	case DatasetAIDS:
		c := datagen.ChemicalDefaults()
		c.NumGraphs = cfg.scaled(10000, 150)
		return datagen.Chemical(c, r)
	default:
		c := datagen.StaticSyntheticDefaults()
		c.NumGraphs = cfg.scaled(10000, 150)
		// Scale the seed pool with the database so cross-graph fragment
		// sharing (which frequent-subgraph indexing depends on) is
		// preserved at reduced scale.
		c.NumSeeds = cfg.scaled(200, 8)
		return datagen.Synthetic(c, r)
	}
}

// Fig12 reproduces the NNT maximum-depth self-test of Figures 12(a)/(b):
// candidate ratio after NPV filtering as the depth bound l grows, per query
// size. The paper's conclusion — depth beyond 3 stops helping — should
// reproduce on both datasets.
func Fig12(cfg Config, d staticDataset) (*Result, error) {
	db := buildStaticDB(cfg, d, 12+int64(d))
	r := rand.New(rand.NewSource(cfg.Seed + 120 + int64(d)))
	numQ := cfg.scaled(1000, 30)
	sizes := []int{8, 16, 24}
	depths := []int{1, 2, 3, 4}

	res := &Result{
		Name:    fmt.Sprintf("Figure 12(%s)", map[staticDataset]string{DatasetAIDS: "a", DatasetSynthetic: "b"}[d]),
		Caption: fmt.Sprintf("candidate ratio vs NNT depth on the %s dataset", d),
		Header:  []string{"query set"},
		Notes: []string{
			fmt.Sprintf("database: %d graphs, %d queries per set (scale %.2f)", len(db), numQ, cfg.Scale),
		},
	}
	for _, l := range depths {
		res.Header = append(res.Header, fmt.Sprintf("l=%d", l))
	}
	queriesBySize := make(map[int][]*graph.Graph)
	for _, m := range sizes {
		queriesBySize[m] = datagen.QuerySet(db, numQ, m, r)
	}
	for _, l := range depths {
		cfg.logf("fig12 %s: depth %d", d, l)
		sdb := newStaticDB(db, l)
		for si, m := range sizes {
			total := 0
			for _, q := range queriesBySize[m] {
				total += len(sdb.Candidates(q))
			}
			ratio := float64(total) / float64(len(db)*numQ)
			if len(res.Rows) <= si {
				res.Rows = append(res.Rows, []string{fmt.Sprintf("Q%d", m)})
			}
			res.Rows[si] = append(res.Rows[si], fmtPct(ratio))
		}
	}
	return res, nil
}

// Fig13 reproduces the static effectiveness comparison of Figures
// 13(a)/(b): candidate ratio per query size for the NPV filter, gIndex1,
// and GraphGrep.
func Fig13(cfg Config, d staticDataset) (*Result, error) {
	db := buildStaticDB(cfg, d, 13+int64(d))
	r := rand.New(rand.NewSource(cfg.Seed + 130 + int64(d)))
	numQ := cfg.scaled(1000, 25)
	sizes := []int{4, 8, 12, 16, 20, 24}

	res := &Result{
		Name:    fmt.Sprintf("Figure 13(%s)", map[staticDataset]string{DatasetAIDS: "a", DatasetSynthetic: "b"}[d]),
		Caption: fmt.Sprintf("static effectiveness (candidate ratio) on the %s dataset", d),
		Header:  []string{"query set", "NPV", "gIndex1", "GraphGrep"},
		Notes: []string{
			fmt.Sprintf("database: %d graphs, %d queries per set (scale %.2f)", len(db), numQ, cfg.Scale),
		},
	}

	cfg.logf("fig13 %s: building NPV projections", d)
	sdb := newStaticDB(db, join.DefaultDepth)
	cfg.logf("fig13 %s: mining gIndex1 features", d)
	idx := gindex.Build(db, gindex.Setting1().MineConfig(len(db)))
	cfg.logf("fig13 %s: %d gIndex1 features", d, len(idx.Features))
	cfg.logf("fig13 %s: computing GraphGrep fingerprints", d)
	fps := make([]graphgrep.Fingerprint, len(db))
	for i, g := range db {
		fps[i] = graphgrep.Compute(g, graphgrep.DefaultLength)
	}

	for _, m := range sizes {
		queries := datagen.QuerySet(db, numQ, m, r)
		var nTot, gTot, pTot int
		for _, q := range queries {
			nTot += len(sdb.Candidates(q))
			gTot += len(idx.Candidates(q, len(db)))
			qfp := graphgrep.Compute(q, graphgrep.DefaultLength)
			for i := range db {
				if graphgrep.Covers(fps[i], qfp) {
					pTot++
				}
			}
		}
		denom := float64(len(db) * numQ)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("Q%d", m),
			fmtPct(float64(nTot) / denom),
			fmtPct(float64(gTot) / denom),
			fmtPct(float64(pTot) / denom),
		})
		cfg.logf("fig13 %s: Q%d done", d, m)
	}
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
