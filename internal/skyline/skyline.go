// Package skyline provides the monochromatic and bichromatic skyline
// computations over node-projected vectors used by the skyline-with-early-
// stop join (Section IV-B.2). Dominance follows Lemma 4.2: v dominates u
// when v's count is ≥ u's on every dimension of u's support, so "maximal"
// vectors are the hardest to dominate.
package skyline

import "nntstream/internal/npv"

// Maximal returns the monochromatic skyline of the vector set under the
// paper's dominance order: the distinct vectors not dominated by any other
// distinct vector in the set. Duplicate vectors are collapsed to one
// representative — for the join's purposes equal vectors are
// interchangeable. The result aliases no input storage beyond the vectors
// themselves.
func Maximal(vecs []npv.Vector) []npv.Vector {
	// Deduplicate by value.
	var uniq []npv.Vector
	for _, v := range vecs {
		dup := false
		for _, u := range uniq {
			if u.Equal(v) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, v)
		}
	}
	var out []npv.Vector
	for i, v := range uniq {
		dominated := false
		for j, w := range uniq {
			if i == j {
				continue
			}
			if w.Dominates(v) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

// IsBichromaticSkyline reports whether u is a bichromatic skyline point of
// its set with respect to the given opposing set: no opposing vector
// dominates it.
func IsBichromaticSkyline(u npv.Vector, opposing []npv.Vector) bool {
	for _, v := range opposing {
		if v.Dominates(u) {
			return false
		}
	}
	return true
}

// Bichromatic returns the vectors of set that no vector of opposing
// dominates.
func Bichromatic(set, opposing []npv.Vector) []npv.Vector {
	var out []npv.Vector
	for _, u := range set {
		if IsBichromaticSkyline(u, opposing) {
			out = append(out, u)
		}
	}
	return out
}
