// Package skyline provides the monochromatic and bichromatic skyline
// computations over node-projected vectors used by the skyline-with-early-
// stop join (Section IV-B.2). Dominance follows Lemma 4.2: v dominates u
// when v's count is ≥ u's on every dimension of u's support, so "maximal"
// vectors are the hardest to dominate.
package skyline

import "nntstream/internal/npv"

// Maximal returns the monochromatic skyline of the vector set under the
// paper's dominance order: the distinct vectors not dominated by any other
// distinct vector in the set. Duplicate vectors are collapsed to one
// representative — for the join's purposes equal vectors are
// interchangeable. The result aliases no input storage beyond the vectors
// themselves.
//
// Each vector is packed once up front and the quadratic comparison phase
// runs on the packed dominance kernel (sorted-merge with signature
// pre-filtering) instead of per-pair map iteration.
func Maximal(vecs []npv.Vector) []npv.Vector {
	var out []npv.Vector
	for _, i := range maximalIndices(npv.PackAll(vecs)) {
		out = append(out, vecs[i])
	}
	return out
}

// MaximalPacked is Maximal over already-packed vectors, for callers that
// keep their working set in packed form.
func MaximalPacked(vecs []npv.PackedVector) []npv.PackedVector {
	var out []npv.PackedVector
	for _, i := range maximalIndices(vecs) {
		out = append(out, vecs[i])
	}
	return out
}

// maximalIndices returns the input indices of the monochromatic skyline:
// the first occurrence of each distinct undominated vector, in input order.
func maximalIndices(packed []npv.PackedVector) []int {
	// Deduplicate by value, keeping first occurrences.
	var uniq []int
	for i, p := range packed {
		dup := false
		for _, j := range uniq {
			if packed[j].Equal(p) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, i)
		}
	}
	var out []int
	for _, i := range uniq {
		dominated := false
		for _, j := range uniq {
			if i == j {
				continue
			}
			if packed[j].Dominates(packed[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// IsBichromaticSkyline reports whether u is a bichromatic skyline point of
// its set with respect to the given opposing set: no opposing vector
// dominates it.
func IsBichromaticSkyline(u npv.Vector, opposing []npv.Vector) bool {
	for _, v := range opposing {
		if v.Dominates(u) {
			return false
		}
	}
	return true
}

// Bichromatic returns the vectors of set that no vector of opposing
// dominates.
func Bichromatic(set, opposing []npv.Vector) []npv.Vector {
	var out []npv.Vector
	for _, u := range set {
		if IsBichromaticSkyline(u, opposing) {
			out = append(out, u)
		}
	}
	return out
}
