package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nntstream/internal/graph"
	"nntstream/internal/npv"
)

// dim builds the i-th test dimension.
func dim(i int) npv.Dim {
	return npv.NewDim(1, 0, 0, graph.Label(i))
}

// vec builds a vector from dense coordinates: value at index i goes to
// dimension dim(i); zeros are skipped.
func vec(coords ...int32) npv.Vector {
	v := make(npv.Vector)
	for i, c := range coords {
		if c != 0 {
			v.Add(dim(i), c)
		}
	}
	return v
}

func containsVec(set []npv.Vector, v npv.Vector) bool {
	for _, u := range set {
		if u.Equal(v) {
			return true
		}
	}
	return false
}

func TestMaximalBasic(t *testing.T) {
	a := vec(1, 1)
	b := vec(0, 3)
	c := vec(2, 3) // dominates a and b
	d := vec(3, 1) // dominates a
	max := Maximal([]npv.Vector{a, b, c, d})
	if len(max) != 2 || !containsVec(max, c) || !containsVec(max, d) {
		t.Fatalf("Maximal = %v; want {c,d}", max)
	}
}

func TestMaximalCollapsesDuplicates(t *testing.T) {
	a := vec(2, 2)
	b := vec(2, 2)
	max := Maximal([]npv.Vector{a, b})
	if len(max) != 1 {
		t.Fatalf("Maximal with duplicates = %v; want one representative", max)
	}
}

func TestMaximalIncomparable(t *testing.T) {
	a := vec(3, 0)
	b := vec(0, 3)
	max := Maximal([]npv.Vector{a, b})
	if len(max) != 2 {
		t.Fatalf("incomparable vectors should both be maximal: %v", max)
	}
}

func TestMaximalEmpty(t *testing.T) {
	if got := Maximal(nil); got != nil {
		t.Fatalf("Maximal(nil) = %v", got)
	}
	// The empty vector is dominated by everything, so with company it is
	// not maximal.
	max := Maximal([]npv.Vector{vec(), vec(1)})
	if len(max) != 1 || !containsVec(max, vec(1)) {
		t.Fatalf("Maximal = %v", max)
	}
}

func TestBichromatic(t *testing.T) {
	queries := []npv.Vector{vec(1, 1), vec(4, 0)}
	stream := []npv.Vector{vec(2, 2), vec(3, 3)}
	// vec(1,1) is dominated by both stream vectors; vec(4,0) by neither.
	if !IsBichromaticSkyline(vec(4, 0), stream) {
		t.Fatal("vec(4,0) should be a bichromatic skyline point")
	}
	if IsBichromaticSkyline(vec(1, 1), stream) {
		t.Fatal("vec(1,1) is dominated; not a skyline point")
	}
	sky := Bichromatic(queries, stream)
	if len(sky) != 1 || !sky[0].Equal(vec(4, 0)) {
		t.Fatalf("Bichromatic = %v", sky)
	}
}

// TestQuickMaximalCoverage: every input vector is dominated by some maximal
// vector (the property the skyline join's query-side optimization rests on).
func TestQuickMaximalCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		var vecs []npv.Vector
		for i := 0; i < n; i++ {
			vecs = append(vecs, vec(int32(r.Intn(4)), int32(r.Intn(4)), int32(r.Intn(4))))
		}
		max := Maximal(vecs)
		for _, v := range vecs {
			covered := false
			for _, m := range max {
				if m.Dominates(v) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		// And no maximal vector is dominated by a distinct input vector.
		for _, m := range max {
			for _, v := range vecs {
				if !v.Equal(m) && v.Dominates(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
