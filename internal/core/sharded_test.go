package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
)

// countingFilter is a passthrough that records Apply calls, used to verify
// fan-out.
type countingFilter struct {
	passthrough
	applies int64
}

func (c *countingFilter) Apply(id StreamID, cs graph.ChangeSet) error {
	atomic.AddInt64(&c.applies, 1)
	return c.passthrough.Apply(id, cs)
}

func TestShardedMonitorMatchesSingle(t *testing.T) {
	mkGraph := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			_ = g.AddVertex(graph.VertexID(i), graph.Label(i%3))
		}
		for i := 0; i+1 < n; i++ {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 0)
		}
		return g
	}

	sharded := NewShardedMonitor(func() Filter { return &passthrough{} }, 3)
	single := NewMonitor(&passthrough{})
	if sharded.Shards() != 3 {
		t.Fatalf("Shards = %d", sharded.Shards())
	}

	q := mkGraph(2)
	if _, err := sharded.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := single.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		g := mkGraph(3 + i)
		if _, err := sharded.AddStream(g); err != nil {
			t.Fatal(err)
		}
		if _, err := single.AddStream(g); err != nil {
			t.Fatal(err)
		}
	}

	cs := map[StreamID]graph.ChangeSet{
		0: {graph.InsertOp(100, 0, 101, 1, 0)},
		3: {graph.DeleteOp(0, 1)},
		6: {graph.InsertOp(100, 0, 101, 1, 0)},
	}
	gotS, err := sharded.StepAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := single.StepAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, gotM) {
		t.Fatalf("sharded %v != single %v", gotS, gotM)
	}
	if !reflect.DeepEqual(sharded.Candidates(), single.Candidates()) {
		t.Fatal("candidate sets diverge")
	}
	// Canonical graphs advanced identically.
	for sid := range cs {
		if !sharded.streams[sid].Equal(single.StreamGraph(sid)) {
			t.Fatalf("canonical graph of stream %d diverges", sid)
		}
	}
	st := sharded.Stats()
	if st.Timestamps != 1 || st.TotalPairs != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if missed := sharded.VerifyNoFalseNegatives(); len(missed) != 0 {
		t.Fatalf("passthrough missed %v", missed)
	}
}

func TestShardedMonitorErrors(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &passthrough{} }, 2)
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{9: nil}); err == nil {
		t.Fatal("unknown stream should error")
	}
	g := graph.New()
	_ = g.AddVertex(0, 0)
	if _, err := m.AddStream(g); err != nil {
		t.Fatal(err)
	}
	// passthrough is not dynamic: post-stream queries and removal fail.
	if _, err := m.AddQuery(g); err == nil {
		t.Fatal("post-stream query on non-dynamic filter should fail")
	}
	if err := m.RemoveQuery(0); err == nil {
		t.Fatal("RemoveQuery on unknown id should fail")
	}
}

func TestShardedMonitorDefaultsToGOMAXPROCS(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &passthrough{} }, 0)
	if m.Shards() < 1 {
		t.Fatalf("Shards = %d", m.Shards())
	}
}

// edgelessRejecter fails AddStream for graphs without edges, used to leave
// one shard under-loaded and observe where later streams are placed.
type edgelessRejecter struct {
	passthrough
}

func (f *edgelessRejecter) AddStream(id StreamID, g0 *graph.Graph) error {
	if g0.EdgeCount() == 0 {
		return errors.New("no edges")
	}
	return f.passthrough.AddStream(id, g0)
}

func TestShardedMonitorLeastLoadedPlacement(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &edgelessRejecter{} }, 2)
	good := func() *graph.Graph {
		g := graph.New()
		_ = g.AddVertex(0, 0)
		_ = g.AddVertex(1, 1)
		_ = g.AddEdge(0, 1, 0)
		return g
	}
	bad := graph.New()
	_ = bad.AddVertex(0, 0)

	id0, err := m.AddStream(good())
	if err != nil {
		t.Fatal(err)
	}
	// The failed add must neither consume a stream ID nor count as load.
	if _, err := m.AddStream(bad); err == nil {
		t.Fatal("edgeless stream should be rejected")
	}
	id1, err := m.AddStream(good())
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.AddStream(good())
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 || id2 != 2 {
		t.Fatalf("stream IDs = %d,%d,%d; want contiguous 0,1,2", id0, id1, id2)
	}
	// Least-loaded placement: 0→shard0, 1→shard1 (shard1 has fewer), 2→shard0
	// (tie broken by lowest index).
	wantShards := map[StreamID]int{0: 0, 1: 1, 2: 0}
	if !reflect.DeepEqual(m.shardOf, wantShards) {
		t.Fatalf("shardOf = %v; want %v", m.shardOf, wantShards)
	}
	if !reflect.DeepEqual(m.loads, []int{2, 1}) {
		t.Fatalf("loads = %v; want [2 1]", m.loads)
	}
}

// flakyDynamic is a dynamic passthrough whose AddQuery can be forced to
// fail, for exercising multi-shard registration rollback.
type flakyDynamic struct {
	failAdds bool
	queries  map[QueryID]bool
	streams  []StreamID
}

func (f *flakyDynamic) Name() string { return "flaky" }
func (f *flakyDynamic) AddQuery(id QueryID, _ *graph.Graph) error {
	if f.failAdds {
		return errors.New("flaky: add failed")
	}
	f.queries[id] = true
	return nil
}
func (f *flakyDynamic) RemoveQuery(id QueryID) error {
	if !f.queries[id] {
		return fmt.Errorf("flaky: unknown query %d", id)
	}
	delete(f.queries, id)
	return nil
}
func (f *flakyDynamic) AddStream(id StreamID, _ *graph.Graph) error {
	f.streams = append(f.streams, id)
	return nil
}
func (f *flakyDynamic) Apply(StreamID, graph.ChangeSet) error { return nil }
func (f *flakyDynamic) Candidates() []Pair {
	var out []Pair
	for _, s := range f.streams {
		for q := range f.queries {
			out = append(out, Pair{Stream: s, Query: q})
		}
	}
	return SortPairs(out)
}

func TestShardedMonitorAddQueryRollback(t *testing.T) {
	var instances []*flakyDynamic
	m := NewShardedMonitor(func() Filter {
		f := &flakyDynamic{queries: make(map[QueryID]bool)}
		instances = append(instances, f)
		return f
	}, 3)
	// Shard 1 rejects the query; shard 0 already accepted it and must be
	// rolled back, and the query ID must not be consumed.
	instances[1].failAdds = true
	q := graph.New()
	_ = q.AddVertex(0, 0)
	if _, err := m.AddQuery(q); err == nil {
		t.Fatal("AddQuery should fail when a shard rejects it")
	}
	for i, f := range instances {
		if len(f.queries) != 0 {
			t.Fatalf("shard %d still holds %d queries after failed AddQuery", i, len(f.queries))
		}
	}
	if len(m.queries) != 0 {
		t.Fatalf("monitor holds %d queries after failed AddQuery", len(m.queries))
	}

	// After the fault clears, registration succeeds, reuses the ID, and all
	// shards agree.
	instances[1].failAdds = false
	id, err := m.AddQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("query ID = %d; want 0 (failed add must not leak an ID)", id)
	}
	for i, f := range instances {
		if !f.queries[id] {
			t.Fatalf("shard %d missing query %d", i, id)
		}
	}
}

func TestShardedMonitorConcurrentStepAndReads(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &passthrough{} }, 4)
	reg := obs.NewRegistry()
	m.SetMetrics(NewEngineMetrics(reg))
	g := graph.New()
	_ = g.AddVertex(0, 0)
	_ = g.AddVertex(1, 1)
	_ = g.AddEdge(0, 1, 0)
	if _, err := m.AddStream(g); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddStream(g.Clone()); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			cs := map[StreamID]graph.ChangeSet{
				0: {graph.InsertOp(100, 0, graph.VertexID(101+i), 1, 0)},
				1: {graph.InsertOp(200, 0, graph.VertexID(201+i), 1, 0)},
			}
			if _, err := m.StepAll(cs); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_ = m.Candidates()
				_ = m.Stats()
				_ = obs.Gather(m)
			}
		}()
	}
	wg.Wait()
	if st := m.Stats(); st.Timestamps != rounds {
		t.Fatalf("timestamps = %d; want %d", st.Timestamps, rounds)
	}
	samples := obs.Gather(m)
	if samples["nntstream_engine_shards"] != 4 {
		t.Fatalf("shards sample = %v", samples["nntstream_engine_shards"])
	}
}

func TestShardedMonitorRecordsMetrics(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &passthrough{} }, 2)
	reg := obs.NewRegistry()
	em := NewEngineMetrics(reg)
	m.SetMetrics(em)
	q := graph.New()
	_ = q.AddVertex(0, 0)
	if _, err := m.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	_ = g.AddVertex(0, 0)
	if _, err := m.AddStream(g); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{0: nil}); err != nil {
		t.Fatal(err)
	}
	if em.Timestamps.Value() != 1 {
		t.Fatalf("timestamps counter = %d", em.Timestamps.Value())
	}
	if em.ApplySeconds.Count() != 1 || em.CollectSeconds.Count() != 1 {
		t.Fatalf("histogram counts = %d,%d", em.ApplySeconds.Count(), em.CollectSeconds.Count())
	}
	// passthrough reports every pair, so the ratio is 1.
	if em.CandidateRatio.Value() != 1 {
		t.Fatalf("candidate ratio = %v", em.CandidateRatio.Value())
	}
	if em.CandidatePairs.Value() != 1 {
		t.Fatalf("candidate pairs = %d", em.CandidatePairs.Value())
	}
}

func TestShardedMonitorFansOutApplies(t *testing.T) {
	var filters []*countingFilter
	m := NewShardedMonitor(func() Filter {
		f := &countingFilter{}
		filters = append(filters, f)
		return f
	}, 2)
	g := graph.New()
	_ = g.AddVertex(0, 0)
	_ = g.AddVertex(1, 0)
	_ = g.AddEdge(0, 1, 0)
	for i := 0; i < 4; i++ {
		if _, err := m.AddStream(g); err != nil {
			t.Fatal(err)
		}
	}
	cs := map[StreamID]graph.ChangeSet{0: nil, 1: nil, 2: nil, 3: nil}
	if _, err := m.StepAll(cs); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, f := range filters {
		total += atomic.LoadInt64(&f.applies)
		if f.applies != 2 {
			t.Fatalf("shard applied %d streams; want 2 each", f.applies)
		}
	}
	if total != 4 {
		t.Fatalf("total applies = %d", total)
	}
}
