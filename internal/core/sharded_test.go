package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"nntstream/internal/graph"
)

// countingFilter is a passthrough that records Apply calls, used to verify
// fan-out.
type countingFilter struct {
	passthrough
	applies int64
}

func (c *countingFilter) Apply(id StreamID, cs graph.ChangeSet) error {
	atomic.AddInt64(&c.applies, 1)
	return c.passthrough.Apply(id, cs)
}

func TestShardedMonitorMatchesSingle(t *testing.T) {
	mkGraph := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			_ = g.AddVertex(graph.VertexID(i), graph.Label(i%3))
		}
		for i := 0; i+1 < n; i++ {
			_ = g.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 0)
		}
		return g
	}

	sharded := NewShardedMonitor(func() Filter { return &passthrough{} }, 3)
	single := NewMonitor(&passthrough{})
	if sharded.Shards() != 3 {
		t.Fatalf("Shards = %d", sharded.Shards())
	}

	q := mkGraph(2)
	if _, err := sharded.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := single.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		g := mkGraph(3 + i)
		if _, err := sharded.AddStream(g); err != nil {
			t.Fatal(err)
		}
		if _, err := single.AddStream(g); err != nil {
			t.Fatal(err)
		}
	}

	cs := map[StreamID]graph.ChangeSet{
		0: {graph.InsertOp(100, 0, 101, 1, 0)},
		3: {graph.DeleteOp(0, 1)},
		6: {graph.InsertOp(100, 0, 101, 1, 0)},
	}
	gotS, err := sharded.StepAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := single.StepAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, gotM) {
		t.Fatalf("sharded %v != single %v", gotS, gotM)
	}
	if !reflect.DeepEqual(sharded.Candidates(), single.Candidates()) {
		t.Fatal("candidate sets diverge")
	}
	// Canonical graphs advanced identically.
	for sid := range cs {
		if !sharded.streams[sid].Equal(single.StreamGraph(sid)) {
			t.Fatalf("canonical graph of stream %d diverges", sid)
		}
	}
	st := sharded.Stats()
	if st.Timestamps != 1 || st.TotalPairs != 7 {
		t.Fatalf("stats = %+v", st)
	}
	if missed := sharded.VerifyNoFalseNegatives(); len(missed) != 0 {
		t.Fatalf("passthrough missed %v", missed)
	}
}

func TestShardedMonitorErrors(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &passthrough{} }, 2)
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{9: nil}); err == nil {
		t.Fatal("unknown stream should error")
	}
	g := graph.New()
	_ = g.AddVertex(0, 0)
	if _, err := m.AddStream(g); err != nil {
		t.Fatal(err)
	}
	// passthrough is not dynamic: post-stream queries and removal fail.
	if _, err := m.AddQuery(g); err == nil {
		t.Fatal("post-stream query on non-dynamic filter should fail")
	}
	if err := m.RemoveQuery(0); err == nil {
		t.Fatal("RemoveQuery on unknown id should fail")
	}
}

func TestShardedMonitorDefaultsToGOMAXPROCS(t *testing.T) {
	m := NewShardedMonitor(func() Filter { return &passthrough{} }, 0)
	if m.Shards() < 1 {
		t.Fatalf("Shards = %d", m.Shards())
	}
}

func TestShardedMonitorFansOutApplies(t *testing.T) {
	var filters []*countingFilter
	m := NewShardedMonitor(func() Filter {
		f := &countingFilter{}
		filters = append(filters, f)
		return f
	}, 2)
	g := graph.New()
	_ = g.AddVertex(0, 0)
	_ = g.AddVertex(1, 0)
	_ = g.AddEdge(0, 1, 0)
	for i := 0; i < 4; i++ {
		if _, err := m.AddStream(g); err != nil {
			t.Fatal(err)
		}
	}
	cs := map[StreamID]graph.ChangeSet{0: nil, 1: nil, 2: nil, 3: nil}
	if _, err := m.StepAll(cs); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, f := range filters {
		total += atomic.LoadInt64(&f.applies)
		if f.applies != 2 {
			t.Fatalf("shard applied %d streams; want 2 each", f.applies)
		}
	}
	if total != 4 {
		t.Fatalf("total applies = %d", total)
	}
}
