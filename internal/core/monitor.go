package core

import (
	"fmt"
	"time"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
	"nntstream/internal/obs"
)

// Monitor drives a Filter over a workload of queries and streams, keeps the
// canonical stream graphs for verification, and accumulates timing and
// effectiveness statistics.
//
// Monitor is not safe for concurrent mutation; callers (see internal/server)
// serialize writes. Concurrent read-only calls (Candidates, Stats) are safe
// provided no mutating call runs at the same time and the wrapped filter's
// Candidates does not mutate observable state (the Filter contract).
type Monitor struct {
	filter   Filter
	queries  map[QueryID]*graph.Graph
	matchers map[QueryID]*iso.Matcher
	streams  map[StreamID]*graph.Graph
	nextQ    QueryID
	nextS    StreamID
	sealed   bool // set once the first stream is added; no more queries
	stats    Stats
	metrics  *EngineMetrics
}

// Stats accumulates per-run measurements.
type Stats struct {
	// Timestamps is the number of StepAll/Step rounds processed.
	Timestamps int
	// FilterTime is the total wall time spent inside the filter's Apply
	// and Candidates calls.
	FilterTime time.Duration
	// CandidatePairs sums the number of reported pairs over all rounds.
	CandidatePairs int64
	// TotalPairs sums streams×queries over all rounds.
	TotalPairs int64
}

// AvgTimePerTimestamp returns FilterTime divided by rounds.
func (s Stats) AvgTimePerTimestamp() time.Duration {
	if s.Timestamps == 0 {
		return 0
	}
	return s.FilterTime / time.Duration(s.Timestamps)
}

// CandidateRatio is the fraction of all (stream, query) pairs reported as
// candidates, averaged over the run — the paper's "candidate size" metric.
func (s Stats) CandidateRatio() float64 {
	if s.TotalPairs == 0 {
		return 0
	}
	return float64(s.CandidatePairs) / float64(s.TotalPairs)
}

// NewMonitor wraps a filter.
func NewMonitor(f Filter) *Monitor {
	return &Monitor{
		filter:   f,
		queries:  make(map[QueryID]*graph.Graph),
		matchers: make(map[QueryID]*iso.Matcher),
		streams:  make(map[StreamID]*graph.Graph),
	}
}

// Filter returns the wrapped filter.
func (m *Monitor) Filter() Filter { return m.filter }

// SetMetrics attaches registry instruments; subsequent StepAll rounds record
// into them. A nil argument detaches.
func (m *Monitor) SetMetrics(em *EngineMetrics) { m.metrics = em }

// CollectMetrics implements obs.Collector by delegating to the wrapped
// filter when it is itself a collector.
func (m *Monitor) CollectMetrics(emit func(name string, value float64)) {
	if c, ok := m.filter.(obs.Collector); ok {
		c.CollectMetrics(emit)
	}
}

// AddQuery registers a query pattern. The paper's base model fixes the
// query set before streaming starts; filters implementing DynamicFilter
// (its stated future work) also accept queries while streams are live.
func (m *Monitor) AddQuery(q *graph.Graph) (QueryID, error) {
	if m.sealed {
		if _, ok := m.filter.(DynamicFilter); !ok {
			return 0, fmt.Errorf("core: filter %s: %w", m.filter.Name(), ErrSealed)
		}
	}
	// The ID is allocated only on success so a failed add leaks nothing.
	id := m.nextQ
	if err := m.replayAddQuery(id, q); err != nil {
		return 0, err
	}
	return id, nil
}

// replayAddQuery registers a query under an explicit ID — the restore path
// used by snapshot loading and WAL replay, which must reproduce historical ID
// assignments exactly (including gaps left by removed queries). It skips the
// seal check: the log only ever contains operations that were accepted, so
// replay trusts it.
func (m *Monitor) replayAddQuery(id QueryID, q *graph.Graph) error {
	if _, dup := m.queries[id]; dup {
		return fmt.Errorf("core: duplicate query id %d", id)
	}
	if err := m.filter.AddQuery(id, q); err != nil {
		return err
	}
	m.queries[id] = q.Clone()
	m.matchers[id] = iso.NewMatcher(m.queries[id])
	if id >= m.nextQ {
		m.nextQ = id + 1
	}
	return nil
}

// RemoveQuery deregisters a pattern. It requires a DynamicFilter.
func (m *Monitor) RemoveQuery(id QueryID) error {
	df, ok := m.filter.(DynamicFilter)
	if !ok {
		return fmt.Errorf("core: filter %s query removal: %w", m.filter.Name(), ErrUnsupported)
	}
	if _, ok := m.queries[id]; !ok {
		return fmt.Errorf("core: %w %d", ErrUnknownQuery, id)
	}
	if err := df.RemoveQuery(id); err != nil {
		return err
	}
	delete(m.queries, id)
	delete(m.matchers, id)
	return nil
}

// AddStream registers a stream with starting graph g0.
func (m *Monitor) AddStream(g0 *graph.Graph) (StreamID, error) {
	m.sealed = true
	id := m.nextS
	if err := m.replayAddStream(id, g0); err != nil {
		return 0, err
	}
	return id, nil
}

// replayAddStream registers a stream under an explicit ID — the restore path
// used by snapshot loading and WAL replay.
func (m *Monitor) replayAddStream(id StreamID, g0 *graph.Graph) error {
	if _, dup := m.streams[id]; dup {
		return fmt.Errorf("core: duplicate stream id %d", id)
	}
	if err := m.filter.AddStream(id, g0); err != nil {
		return err
	}
	m.sealed = true
	m.streams[id] = g0.Clone()
	if id >= m.nextS {
		m.nextS = id + 1
	}
	return nil
}

// QueryCount and StreamCount report workload sizes.
func (m *Monitor) QueryCount() int  { return len(m.queries) }
func (m *Monitor) StreamCount() int { return len(m.streams) }

// StreamGraph returns the canonical current graph of a stream. Callers must
// not mutate it.
func (m *Monitor) StreamGraph(id StreamID) *graph.Graph { return m.streams[id] }

// Query returns a registered query graph. Callers must not mutate it.
func (m *Monitor) Query(id QueryID) *graph.Graph { return m.queries[id] }

// StepAll advances one global timestamp: each entry applies a change set to
// one stream (streams without an entry are unchanged), then the filter's
// candidate set is collected. It returns the candidates and records stats.
//
// The step is atomic with respect to validation: every change set is first
// applied to a clone of its canonical graph, and any failure rejects the
// whole batch before the filter sees a single operation, so a mid-batch
// error can never leave the filter and the canonical graphs diverged. Only
// after all clones validate are the filter applies issued and the validated
// clones swapped in as the new canonical graphs.
func (m *Monitor) StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error) {
	staged, norms, err := stageChanges(m.streams, changes)
	if err != nil {
		return nil, err
	}
	var applyDur time.Duration
	if ba, ok := m.filter.(BatchApplier); ok {
		// Batch-capable filters take the whole validated timestamp at once
		// and fan the (stream, query) re-evaluation out internally.
		start := time.Now()
		if err := ba.ApplyAll(norms); err != nil {
			return nil, fmt.Errorf("core: filter %s batch apply: %w", m.filter.Name(), err)
		}
		applyDur = time.Since(start)
		for id, g := range staged {
			m.streams[id] = g
		}
	} else {
		for id, norm := range norms {
			start := time.Now()
			if err := m.filter.Apply(id, norm); err != nil {
				return nil, fmt.Errorf("core: filter %s apply on stream %d: %w", m.filter.Name(), id, err)
			}
			applyDur += time.Since(start)
			m.streams[id] = staged[id]
		}
	}
	start := time.Now()
	cands := m.filter.Candidates()
	collectDur := time.Since(start)
	m.stats.FilterTime += applyDur + collectDur
	m.stats.Timestamps++
	m.stats.CandidatePairs += int64(len(cands))
	m.stats.TotalPairs += int64(len(m.streams) * len(m.queries))
	m.metrics.observeStep(applyDur, collectDur, len(cands), m.stats, len(m.streams), len(m.queries))
	return cands, nil
}

// Step advances a single stream by one timestamp.
func (m *Monitor) Step(id StreamID, cs graph.ChangeSet) ([]Pair, error) {
	return m.StepAll(map[StreamID]graph.ChangeSet{id: cs})
}

// stageChanges validates a StepAll batch against the canonical graphs
// without mutating them: each change set is normalized and applied to a
// clone. On success it returns the staged post-state graphs and the
// normalized change sets; on any failure nothing has been touched, which is
// what makes StepAll all-or-nothing up to the filter boundary.
func stageChanges(streams map[StreamID]*graph.Graph, changes map[StreamID]graph.ChangeSet) (map[StreamID]*graph.Graph, map[StreamID]graph.ChangeSet, error) {
	staged := make(map[StreamID]*graph.Graph, len(changes))
	norms := make(map[StreamID]graph.ChangeSet, len(changes))
	for id, cs := range changes {
		g, ok := streams[id]
		if !ok {
			return nil, nil, fmt.Errorf("core: %w %d", ErrUnknownStream, id)
		}
		norm := cs.Normalize()
		clone := g.Clone()
		if err := norm.Apply(clone); err != nil {
			return nil, nil, fmt.Errorf("core: invalid change set for stream %d: %w", id, err)
		}
		staged[id] = clone
		norms[id] = norm
	}
	return staged, norms, nil
}

// Candidates returns the filter's current candidate pairs without advancing
// time or recording stats.
func (m *Monitor) Candidates() []Pair { return m.filter.Candidates() }

// ExactPairs computes the ground-truth joinable pairs with subgraph
// isomorphism over the canonical graphs. It is exponential in the worst
// case and intended for evaluation, not the monitoring hot path.
func (m *Monitor) ExactPairs() []Pair {
	var out []Pair
	for sid, g := range m.streams {
		for qid, matcher := range m.matchers {
			if matcher.Contains(g) {
				out = append(out, Pair{Stream: sid, Query: qid})
			}
		}
	}
	return SortPairs(out)
}

// VerifyNoFalseNegatives checks that every exact pair is reported by the
// filter, returning the missed pairs (empty means the filter is sound at
// this timestamp).
func (m *Monitor) VerifyNoFalseNegatives() []Pair {
	cands := make(map[Pair]bool)
	for _, p := range m.filter.Candidates() {
		cands[p] = true
	}
	var missed []Pair
	for _, p := range m.ExactPairs() {
		if !cands[p] {
			missed = append(missed, p)
		}
	}
	return missed
}

// FalsePositives returns the currently reported pairs that are not exact
// matches.
func (m *Monitor) FalsePositives() []Pair {
	exact := make(map[Pair]bool)
	for _, p := range m.ExactPairs() {
		exact[p] = true
	}
	var fps []Pair
	for _, p := range m.filter.Candidates() {
		if !exact[p] {
			fps = append(fps, p)
		}
	}
	return SortPairs(fps)
}

// Stats returns accumulated statistics.
func (m *Monitor) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics (e.g. after a warm-up phase).
func (m *Monitor) ResetStats() { m.stats = Stats{} }

// engineState is the logical state a checkpoint persists: the query and
// canonical stream graphs plus the ID allocators. Filters are deterministic
// functions of this state and are rebuilt on restore.
type engineState struct {
	queries map[QueryID]*graph.Graph
	streams map[StreamID]*graph.Graph
	nextQ   QueryID
	nextS   StreamID
}

// checkpointState exposes the monitor's logical state for checkpointing. The
// returned maps and graphs are shared, not copied: the caller (the durable
// engine) holds its write-exclusion lock across serialization.
func (m *Monitor) checkpointState() engineState {
	return engineState{queries: m.queries, streams: m.streams, nextQ: m.nextQ, nextS: m.nextS}
}

// nextIDs reports the IDs the next AddQuery/AddStream would assign — the
// durable engine logs an operation's ID before applying it.
func (m *Monitor) nextIDs() (QueryID, StreamID) { return m.nextQ, m.nextS }

// setNextIDs raises the ID allocators (never lowers them), restoring
// top-of-range gaps a checkpoint recorded (e.g. the highest query was
// removed before the checkpoint).
func (m *Monitor) setNextIDs(q QueryID, s StreamID) {
	if q > m.nextQ {
		m.nextQ = q
	}
	if s > m.nextS {
		m.nextS = s
	}
}
