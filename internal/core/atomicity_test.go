package core

import (
	"sync/atomic"
	"testing"

	"nntstream/internal/graph"
)

// The StepAll atomicity regression: a batch with one valid and one invalid
// change set must be rejected as a whole, with the filter untouched (zero
// Apply calls) and every canonical graph unchanged — not just the stream
// whose change set was invalid.

func atomicityWorkload(t *testing.T, addStream func(*graph.Graph) (StreamID, error)) (StreamID, StreamID) {
	t.Helper()
	g0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	g1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 2, 1: 2}, [][3]int{{0, 1, 1}})
	s0, err := addStream(g0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := addStream(g1)
	if err != nil {
		t.Fatal(err)
	}
	return s0, s1
}

func TestMonitorStepAllAtomic(t *testing.T) {
	f := &countingFilter{}
	m := NewMonitor(f)
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if _, err := m.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	s0, s1 := atomicityWorkload(t, m.AddStream)

	changes := map[StreamID]graph.ChangeSet{
		s0: {graph.InsertOp(0, 0, 2, 1, 0)}, // valid
		// Invalid: vertex 0 of s1 already has label 2, not 9.
		s1: {graph.InsertOp(0, 9, 5, 2, 0)},
	}
	if _, err := m.StepAll(changes); err == nil {
		t.Fatal("StepAll with an invalid change set must fail")
	}
	if n := atomic.LoadInt64(&f.applies); n != 0 {
		t.Fatalf("filter saw %d Apply calls despite batch rejection", n)
	}
	if got := m.StreamGraph(s0).EdgeCount(); got != 1 {
		t.Fatalf("stream %d canonical graph mutated: %d edges", s0, got)
	}
	if got := m.StreamGraph(s1).EdgeCount(); got != 1 {
		t.Fatalf("stream %d canonical graph mutated: %d edges", s1, got)
	}
	if st := m.Stats(); st.Timestamps != 0 {
		t.Fatalf("rejected batch counted as a timestamp: %+v", st)
	}

	// The same batch with the invalid half removed still works afterwards.
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{s0: changes[s0]}); err != nil {
		t.Fatalf("valid step after rejected batch: %v", err)
	}
	if got := m.StreamGraph(s0).EdgeCount(); got != 2 {
		t.Fatalf("valid step not applied: %d edges", got)
	}
}

func TestShardedMonitorStepAllAtomic(t *testing.T) {
	var filters []*countingFilter
	m := NewShardedMonitor(func() Filter {
		f := &countingFilter{}
		filters = append(filters, f)
		return f
	}, 2)
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if _, err := m.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	s0, s1 := atomicityWorkload(t, m.AddStream)

	// With two streams on two shards, a naive fan-out would let the valid
	// change set reach its shard while the other shard fails.
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{
		s0: {graph.InsertOp(0, 0, 2, 1, 0)},
		s1: {graph.InsertOp(0, 9, 5, 2, 0)}, // label conflict on vertex 0
	}); err == nil {
		t.Fatal("StepAll with an invalid change set must fail")
	}
	for i, f := range filters {
		if n := atomic.LoadInt64(&f.applies); n != 0 {
			t.Fatalf("shard %d saw %d Apply calls despite batch rejection", i, n)
		}
	}
	for _, s := range []StreamID{s0, s1} {
		m.mu.RLock()
		edges := m.streams[s].EdgeCount()
		m.mu.RUnlock()
		if edges != 1 {
			t.Fatalf("stream %d canonical graph mutated: %d edges", s, edges)
		}
	}

	// Unknown streams are still rejected (now during staging).
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{99: nil}); err == nil {
		t.Fatal("unknown stream accepted")
	}
}
