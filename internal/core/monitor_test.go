package core

import (
	"errors"
	"strings"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
)

// passthrough is a trivial filter that reports every pair as a candidate —
// sound (no false negatives) but maximally imprecise.
type passthrough struct {
	queries []QueryID
	streams []StreamID
}

func (p *passthrough) Name() string { return "passthrough" }
func (p *passthrough) AddQuery(id QueryID, _ *graph.Graph) error {
	p.queries = append(p.queries, id)
	return nil
}
func (p *passthrough) AddStream(id StreamID, _ *graph.Graph) error {
	p.streams = append(p.streams, id)
	return nil
}
func (p *passthrough) Apply(StreamID, graph.ChangeSet) error { return nil }
func (p *passthrough) Candidates() []Pair {
	var out []Pair
	for _, s := range p.streams {
		for _, q := range p.queries {
			out = append(out, Pair{Stream: s, Query: q})
		}
	}
	return SortPairs(out)
}

func buildGraph(t *testing.T, vlabels map[graph.VertexID]graph.Label, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range vlabels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestMonitorLifecycle(t *testing.T) {
	m := NewMonitor(&passthrough{})
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	qid, err := m.AddQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1, 2: 2},
		[][3]int{{0, 1, 0}, {1, 2, 0}})
	sid, err := m.AddStream(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueryCount() != 1 || m.StreamCount() != 1 {
		t.Fatal("counts wrong")
	}
	// Queries after streams are rejected.
	if _, err := m.AddQuery(q); err == nil {
		t.Fatal("query after stream should fail")
	}
	// Step advances the canonical graph.
	if _, err := m.Step(sid, graph.ChangeSet{graph.DeleteOp(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if m.StreamGraph(sid).EdgeCount() != 1 {
		t.Fatal("canonical graph not advanced")
	}
	if m.Query(qid) == nil {
		t.Fatal("query not stored")
	}
	st := m.Stats()
	if st.Timestamps != 1 || st.TotalPairs != 1 || st.CandidatePairs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CandidateRatio() != 1.0 {
		t.Fatalf("CandidateRatio = %v", st.CandidateRatio())
	}
	m.ResetStats()
	if m.Stats().Timestamps != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

func TestMonitorExactAndVerification(t *testing.T) {
	m := NewMonitor(&passthrough{})
	// Query: A-B. Stream 0 contains it, stream 1 does not.
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if _, err := m.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	s0 := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	s1 := buildGraph(t, map[graph.VertexID]graph.Label{0: 2, 1: 2}, [][3]int{{0, 1, 0}})
	if _, err := m.AddStream(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddStream(s1); err != nil {
		t.Fatal(err)
	}
	exact := m.ExactPairs()
	if len(exact) != 1 || exact[0] != (Pair{Stream: 0, Query: 0}) {
		t.Fatalf("ExactPairs = %v", exact)
	}
	if missed := m.VerifyNoFalseNegatives(); len(missed) != 0 {
		t.Fatalf("passthrough cannot miss pairs: %v", missed)
	}
	fps := m.FalsePositives()
	if len(fps) != 1 || fps[0] != (Pair{Stream: 1, Query: 0}) {
		t.Fatalf("FalsePositives = %v", fps)
	}
}

func TestMonitorUnknownStream(t *testing.T) {
	m := NewMonitor(&passthrough{})
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{7: nil}); err == nil {
		t.Fatal("unknown stream should error")
	}
}

func TestSortPairs(t *testing.T) {
	ps := []Pair{{2, 1}, {1, 2}, {1, 1}, {2, 0}}
	SortPairs(ps)
	want := []Pair{{1, 1}, {1, 2}, {2, 0}, {2, 1}}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("SortPairs = %v", ps)
		}
	}
	if (Pair{Stream: 3, Query: 4}).String() != "(G3,Q4)" {
		t.Fatal("Pair.String format changed")
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.AvgTimePerTimestamp() != 0 || s.CandidateRatio() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestMonitorSentinelErrors(t *testing.T) {
	m := NewMonitor(&passthrough{})
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0}, nil)
	if _, err := m.AddStream(g); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddQuery(g); !errors.Is(err, ErrSealed) {
		t.Fatalf("post-stream AddQuery error = %v; want ErrSealed", err)
	}
	if _, err := m.StepAll(map[StreamID]graph.ChangeSet{7: nil}); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("StepAll error = %v; want ErrUnknownStream", err)
	}
	if err := m.RemoveQuery(0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("RemoveQuery error = %v; want ErrUnsupported (passthrough is not dynamic)", err)
	}
}

func TestMonitorRecordsMetrics(t *testing.T) {
	m := NewMonitor(&passthrough{})
	reg := obs.NewRegistry()
	em := NewEngineMetrics(reg)
	m.SetMetrics(em)
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	if _, err := m.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	sid, err := m.AddStream(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(sid, graph.ChangeSet{graph.InsertOp(1, 1, 2, 2, 0)}); err != nil {
		t.Fatal(err)
	}
	if em.Timestamps.Value() != 1 || em.ApplySeconds.Count() != 1 || em.CollectSeconds.Count() != 1 {
		t.Fatalf("metrics not recorded: ts=%d apply=%d collect=%d",
			em.Timestamps.Value(), em.ApplySeconds.Count(), em.CollectSeconds.Count())
	}
	if em.CandidateRatio.Value() != 1 || em.CandidatePairs.Value() != 1 {
		t.Fatalf("ratio=%v pairs=%d", em.CandidateRatio.Value(), em.CandidatePairs.Value())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "nntstream_engine_apply_seconds_bucket") {
		t.Fatalf("exposition missing apply histogram:\n%s", b.String())
	}
}
