package core

import (
	"errors"
	"testing"

	"nntstream/internal/graph"
	"nntstream/internal/obs"
	"nntstream/internal/wal"
)

// batchSteps builds n single-stream steps, each inserting one fresh edge
// whose labels cycle so the labelFilter's candidate set keeps shifting.
func batchSteps(sid StreamID, n int) []map[StreamID]graph.ChangeSet {
	batch := make([]map[StreamID]graph.ChangeSet, n)
	for i := 0; i < n; i++ {
		u := graph.VertexID(10 + i)
		batch[i] = map[StreamID]graph.ChangeSet{
			sid: {graph.InsertOp(u, graph.Label(i%3), u+1, graph.Label((i+1)%3), graph.Label(i%3))},
		}
	}
	return batch
}

// TestStepAllBatchEquivalence pins that a batch is semantically identical to
// the same steps applied sequentially: same candidate set, same LSNs, same
// recovered state — only the fsync count differs.
func TestStepAllBatchEquivalence(t *testing.T) {
	const n = 6
	dirBatch, dirSeq := t.TempDir(), t.TempDir()

	mBatch := wal.NewMetrics(obs.NewRegistry())
	batchEng := openDurable(t, dirBatch, 1, DurableOptions{Metrics: mBatch})
	mSeq := wal.NewMetrics(obs.NewRegistry())
	seqEng := openDurable(t, dirSeq, 1, DurableOptions{Metrics: mSeq})

	for _, d := range []*DurableEngine{batchEng, seqEng} {
		if _, err := d.AddQuery(lineGraphCore(3)); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AddStream(lineGraphCore(2)); err != nil {
			t.Fatal(err)
		}
	}

	steps := batchSteps(0, n)

	fsyncsBefore := mBatch.Fsyncs.Value()
	applied, _, err := batchEng.StepAllBatch(steps)
	if err != nil || applied != n {
		t.Fatalf("StepAllBatch = (%d, _, %v); want (%d, _, nil)", applied, err, n)
	}
	if got := mBatch.Fsyncs.Value() - fsyncsBefore; got != 1 {
		t.Fatalf("batch of %d steps cost %d fsyncs; want 1 (group commit)", n, got)
	}

	fsyncsBefore = mSeq.Fsyncs.Value()
	for i, changes := range steps {
		if _, err := seqEng.StepAll(changes); err != nil {
			t.Fatalf("sequential step %d: %v", i, err)
		}
	}
	if got := mSeq.Fsyncs.Value() - fsyncsBefore; got != n {
		t.Fatalf("%d sequential steps cost %d fsyncs; want %d", n, got, n)
	}

	if !pairsEqual(batchEng.Candidates(), seqEng.Candidates()) {
		t.Fatalf("candidates diverged: batch %v vs sequential %v",
			batchEng.Candidates(), seqEng.Candidates())
	}
	if batchEng.LastLSN() != seqEng.LastLSN() {
		t.Fatalf("LSNs diverged: batch %d vs sequential %d", batchEng.LastLSN(), seqEng.LastLSN())
	}

	// Both recover to the same answers from their logs alone.
	if err := batchEng.Crash(); err != nil {
		t.Fatal(err)
	}
	recovered := openDurable(t, dirBatch, 1, DurableOptions{})
	if !pairsEqual(recovered.Candidates(), seqEng.Candidates()) {
		t.Fatalf("recovered batch engine diverged: %v vs %v",
			recovered.Candidates(), seqEng.Candidates())
	}
}

// TestStepAllBatchMidBatchFailure: a step the engine rejects stops the batch
// there. Earlier steps stay applied and durable; the rejected step's WAL
// record is withdrawn, so recovery replays exactly the applied prefix.
func TestStepAllBatchMidBatchFailure(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, 1, DurableOptions{})
	if _, err := d.AddQuery(lineGraphCore(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddStream(lineGraphCore(2)); err != nil {
		t.Fatal(err)
	}

	steps := batchSteps(0, 3)
	steps[1] = map[StreamID]graph.ChangeSet{
		99: {graph.InsertOp(1, 0, 2, 0, 0)}, // unknown stream: apply rejects
	}
	applied, _, err := d.StepAllBatch(steps)
	if !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("err = %v; want ErrUnknownStream", err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d; want 1 (step 0 only)", applied)
	}

	wantLSN := d.LastLSN()
	wantPairs := d.Candidates()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	recovered := openDurable(t, dir, 1, DurableOptions{})
	if recovered.LastLSN() != wantLSN {
		t.Fatalf("recovered LSN = %d; want %d (rejected record withdrawn)", recovered.LastLSN(), wantLSN)
	}
	if !pairsEqual(recovered.Candidates(), wantPairs) {
		t.Fatalf("recovered candidates %v; want %v", recovered.Candidates(), wantPairs)
	}

	// The engine keeps working after a failed batch.
	if _, _, err := d.StepAllBatch(batchSteps(0, 1)); !errors.Is(err, errDurableClosed) {
		t.Fatalf("stepping a crashed engine = %v; want errDurableClosed", err)
	}
	if _, _, err := recovered.StepAllBatch(batchSteps(0, 2)[1:]); err != nil {
		t.Fatalf("batch after recovery: %v", err)
	}
}

// TestStepAllBatchOnCommitAfterFsync pins the durable-before-ship ordering:
// OnCommit notifications for a batch fire only after the group commit's
// closing fsync, in commit order with contiguous LSNs — never per step
// inside the window, where a crash could still lose what was shipped.
func TestStepAllBatchOnCommitAfterFsync(t *testing.T) {
	const n = 3
	m := wal.NewMetrics(obs.NewRegistry())
	var shippedLSNs []uint64
	var fsyncsAtShip []int64
	d := openDurable(t, t.TempDir(), 1, DurableOptions{
		Metrics: m,
		OnCommit: func(r wal.Record) {
			shippedLSNs = append(shippedLSNs, r.LSN)
			fsyncsAtShip = append(fsyncsAtShip, m.Fsyncs.Value())
		},
	})
	if _, err := d.AddQuery(lineGraphCore(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddStream(lineGraphCore(2)); err != nil {
		t.Fatal(err)
	}

	shippedLSNs, fsyncsAtShip = nil, nil
	base := m.Fsyncs.Value()
	firstLSN := d.LastLSN() + 1
	applied, _, err := d.StepAllBatch(batchSteps(0, n))
	if err != nil || applied != n {
		t.Fatalf("StepAllBatch = (%d, _, %v); want (%d, _, nil)", applied, err, n)
	}
	if len(shippedLSNs) != n {
		t.Fatalf("OnCommit fired %d times; want %d", len(shippedLSNs), n)
	}
	for i, lsn := range shippedLSNs {
		if lsn != firstLSN+uint64(i) {
			t.Fatalf("shipped LSNs %v; want contiguous from %d", shippedLSNs, firstLSN)
		}
		if fsyncsAtShip[i] != base+1 {
			t.Fatalf("OnCommit %d observed %d batch fsyncs; want 1 (ship only after the closing fsync)",
				i, fsyncsAtShip[i]-base)
		}
	}
}

// TestStepAllBatchMidBatchFailureShipsPrefix: a per-step rejection still
// ships the applied prefix (the closing fsync ran; those records are
// durable), and ships nothing for the withdrawn step — exactly what N
// sequential StepAll calls would have shipped.
func TestStepAllBatchMidBatchFailureShipsPrefix(t *testing.T) {
	var shipped []wal.Record
	d := openDurable(t, t.TempDir(), 1, DurableOptions{
		OnCommit: func(r wal.Record) { shipped = append(shipped, r) },
	})
	if _, err := d.AddQuery(lineGraphCore(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddStream(lineGraphCore(2)); err != nil {
		t.Fatal(err)
	}

	shipped = nil
	steps := batchSteps(0, 3)
	steps[1] = map[StreamID]graph.ChangeSet{
		99: {graph.InsertOp(1, 0, 2, 0, 0)}, // unknown stream: apply rejects
	}
	applied, _, err := d.StepAllBatch(steps)
	if !errors.Is(err, ErrUnknownStream) || applied != 1 {
		t.Fatalf("StepAllBatch = (%d, _, %v); want (1, _, ErrUnknownStream)", applied, err)
	}
	if len(shipped) != 1 {
		t.Fatalf("OnCommit fired %d times after mid-batch failure; want 1 (applied prefix only)", len(shipped))
	}
	if shipped[0].LSN != d.LastLSN() {
		t.Fatalf("shipped LSN %d; want the applied step's %d", shipped[0].LSN, d.LastLSN())
	}
}

// failSyncLogFile makes the WAL file's Sync fail on demand, so a batch's
// closing fsync can be forced to fail after its appends succeeded.
type failSyncLogFile struct {
	wal.LogFile
	fail bool
}

func (f *failSyncLogFile) Sync() error {
	if f.fail {
		return errors.New("injected sync failure")
	}
	return f.LogFile.Sync()
}

// TestStepAllBatchSyncFailureShipsNothing: when the closing fsync fails the
// batch's durability is unknown, so no record may reach OnCommit — a replica
// must never apply state the primary can still lose — and the error carries
// the wal.ErrSyncFailed marker callers use to withhold acknowledgement.
func TestStepAllBatchSyncFailureShipsNothing(t *testing.T) {
	ff := &failSyncLogFile{}
	var shipped []wal.Record
	d := openDurable(t, t.TempDir(), 1, DurableOptions{
		OnCommit: func(r wal.Record) { shipped = append(shipped, r) },
		WrapFile: func(f wal.LogFile) wal.LogFile {
			ff.LogFile = f
			return ff
		},
	})
	if _, err := d.AddQuery(lineGraphCore(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddStream(lineGraphCore(2)); err != nil {
		t.Fatal(err)
	}

	shipped = nil
	ff.fail = true
	_, _, err := d.StepAllBatch(batchSteps(0, 2))
	if !errors.Is(err, wal.ErrSyncFailed) {
		t.Fatalf("StepAllBatch with failed closing fsync = %v; want wal.ErrSyncFailed", err)
	}
	if len(shipped) != 0 {
		t.Fatalf("OnCommit fired %d times despite failed closing fsync; want 0", len(shipped))
	}
}

// TestStepAllBatchEmpty: an empty batch is a no-op success.
func TestStepAllBatchEmpty(t *testing.T) {
	d := openDurable(t, t.TempDir(), 1, DurableOptions{})
	applied, pairs, err := d.StepAllBatch(nil)
	if err != nil || applied != 0 || pairs != 0 {
		t.Fatalf("empty batch = (%d, %d, %v); want (0, 0, nil)", applied, pairs, err)
	}
}

// lineGraphCore builds a path graph with n vertices, labels cycling 0..2.
func lineGraphCore(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		if err := g.AddVertex(graph.VertexID(i), graph.Label(i%3)); err != nil {
			panic(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(graph.VertexID(i-1), graph.VertexID(i), graph.Label(i%3)); err != nil {
			panic(err)
		}
	}
	return g
}
