package core

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"nntstream/internal/graph"
)

// batchFilter is a passthrough that records how the engine hands batches
// to it: ApplyAll invocations, their stream sets, and the worker bound it
// was configured with. Its Candidates are returned deliberately unsorted
// to prove the engines' merge re-establishes (Stream, Query) order.
type batchFilter struct {
	mu       sync.Mutex
	queries  []QueryID
	streams  []StreamID
	workers  int
	applies  int
	batches  [][]StreamID
	verdicts map[StreamID]bool
}

func newBatchFilter() *batchFilter { return &batchFilter{verdicts: map[StreamID]bool{}} }

func (f *batchFilter) Name() string { return "batch-passthrough" }
func (f *batchFilter) AddQuery(id QueryID, _ *graph.Graph) error {
	f.queries = append(f.queries, id)
	return nil
}
func (f *batchFilter) AddStream(id StreamID, _ *graph.Graph) error {
	f.streams = append(f.streams, id)
	return nil
}
func (f *batchFilter) Apply(StreamID, graph.ChangeSet) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applies++
	return nil
}
func (f *batchFilter) ApplyAll(changes map[StreamID]graph.ChangeSet) error {
	ids := make([]StreamID, 0, len(changes))
	for id := range changes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches = append(f.batches, ids)
	return nil
}
func (f *batchFilter) SetWorkers(n int) { f.workers = n }

// Candidates returns every pair in descending order — the worst case for
// a merge that relies on its inputs being pre-sorted.
func (f *batchFilter) Candidates() []Pair {
	var out []Pair
	for i := len(f.streams) - 1; i >= 0; i-- {
		for j := len(f.queries) - 1; j >= 0; j-- {
			out = append(out, Pair{Stream: f.streams[i], Query: f.queries[j]})
		}
	}
	return out
}

var (
	_ Filter         = (*batchFilter)(nil)
	_ BatchApplier   = (*batchFilter)(nil)
	_ ParallelFilter = (*batchFilter)(nil)
)

func engineWorkload(t *testing.T, addQuery func(*graph.Graph) (QueryID, error), addStream func(*graph.Graph) (StreamID, error), queries, streams int) []StreamID {
	t.Helper()
	q := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
	for i := 0; i < queries; i++ {
		if _, err := addQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	var ids []StreamID
	for i := 0; i < streams; i++ {
		g := buildGraph(t, map[graph.VertexID]graph.Label{0: 0, 1: 1}, [][3]int{{0, 1, 0}})
		id, err := addStream(g)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestMonitorPrefersBatchApplier checks that StepAll hands a batch-capable
// filter the whole validated timestamp in one ApplyAll call instead of a
// per-stream Apply walk.
func TestMonitorPrefersBatchApplier(t *testing.T) {
	f := newBatchFilter()
	m := NewMonitor(f)
	ids := engineWorkload(t, m.AddQuery, m.AddStream, 2, 3)
	changes := map[StreamID]graph.ChangeSet{
		ids[0]: {graph.DeleteOp(0, 1)},
		ids[2]: {graph.DeleteOp(0, 1)},
	}
	if _, err := m.StepAll(changes); err != nil {
		t.Fatal(err)
	}
	if f.applies != 0 {
		t.Fatalf("Apply called %d times; batch filters must receive ApplyAll", f.applies)
	}
	if len(f.batches) != 1 || len(f.batches[0]) != 2 {
		t.Fatalf("batches = %v; want one batch of two streams", f.batches)
	}
	// The canonical graphs advanced despite the batch path.
	if m.StreamGraph(ids[0]).EdgeCount() != 0 {
		t.Fatal("canonical graph not advanced through the batch path")
	}
}

// TestShardedWorkersOption pins the pool-sizing plumbing: an explicit
// Workers option reaches every shard's filter, and the default splits
// GOMAXPROCS across the shards.
func TestShardedWorkersOption(t *testing.T) {
	var made []*batchFilter
	factory := func() Filter {
		f := newBatchFilter()
		made = append(made, f)
		return f
	}
	m := NewShardedMonitorWith(factory, ShardedOptions{Shards: 2, Workers: 5})
	if m.Workers() != 5 {
		t.Fatalf("Workers() = %d; want 5", m.Workers())
	}
	for i, f := range made {
		if f.workers != 5 {
			t.Fatalf("shard %d got SetWorkers(%d); want 5", i, f.workers)
		}
	}

	made = nil
	def := NewShardedMonitor(factory, 2)
	want := runtime.GOMAXPROCS(0) / 2
	if want < 1 {
		want = 1
	}
	if def.Workers() != want {
		t.Fatalf("default Workers() = %d; want GOMAXPROCS/shards = %d", def.Workers(), want)
	}
}

// TestShardedStepAllBatchesPerShard checks that each shard's filter gets
// exactly its own streams in one ApplyAll batch.
func TestShardedStepAllBatchesPerShard(t *testing.T) {
	var made []*batchFilter
	factory := func() Filter {
		f := newBatchFilter()
		made = append(made, f)
		return f
	}
	m := NewShardedMonitorWith(factory, ShardedOptions{Shards: 2, Workers: 2})
	ids := engineWorkload(t, m.AddQuery, m.AddStream, 1, 4)
	changes := make(map[StreamID]graph.ChangeSet, len(ids))
	for _, id := range ids {
		changes[id] = graph.ChangeSet{graph.DeleteOp(0, 1)}
	}
	if _, err := m.StepAll(changes); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, f := range made {
		if f.applies != 0 {
			t.Fatalf("shard %d used per-stream Apply", i)
		}
		if len(f.batches) != 1 {
			t.Fatalf("shard %d batches = %v; want exactly one", i, f.batches)
		}
		total += len(f.batches[0])
	}
	if total != len(ids) {
		t.Fatalf("batched %d streams across shards; want %d", total, len(ids))
	}
}

// TestShardedCollectSortedUnderPool is the collect-ordering contract: even
// when every shard emits its candidates in reverse order and the shards
// run concurrently, the merged output of StepAll and Candidates is sorted
// by (StreamID, QueryID).
func TestShardedCollectSortedUnderPool(t *testing.T) {
	m := NewShardedMonitorWith(func() Filter { return newBatchFilter() },
		ShardedOptions{Shards: 3, Workers: 4})
	ids := engineWorkload(t, m.AddQuery, m.AddStream, 3, 7)
	changes := make(map[StreamID]graph.ChangeSet, len(ids))
	for _, id := range ids {
		changes[id] = graph.ChangeSet{graph.DeleteOp(0, 1)}
	}
	sorted := func(ps []Pair) bool {
		return sort.SliceIsSorted(ps, func(i, j int) bool {
			if ps[i].Stream != ps[j].Stream {
				return ps[i].Stream < ps[j].Stream
			}
			return ps[i].Query < ps[j].Query
		})
	}
	for step := 0; step < 3; step++ {
		pairs, err := m.StepAll(changes)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != len(ids)*3 {
			t.Fatalf("step %d: %d pairs; want %d", step, len(pairs), len(ids)*3)
		}
		if !sorted(pairs) {
			t.Fatalf("step %d: StepAll output not sorted: %v", step, pairs)
		}
	}
	if got := m.Candidates(); !sorted(got) {
		t.Fatalf("Candidates not sorted: %v", got)
	}
}
