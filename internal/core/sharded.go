package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
)

// FilterFactory builds one filter instance per shard.
type FilterFactory func() Filter

// ShardedMonitor runs continuous subgraph search across multiple CPU cores:
// streams are partitioned over independent filter instances (filters keep
// per-stream state, so sharding by stream is exact — every shard sees all
// queries and produces the candidates of its own streams), and one global
// timestamp fans the per-stream change sets out to the shards in parallel.
//
// The candidate set of a ShardedMonitor is identical to a single Monitor
// over the same filter type; only wall-clock time differs.
type ShardedMonitor struct {
	filters  []Filter
	shardOf  map[StreamID]int
	queries  map[QueryID]*graph.Graph
	matchers map[QueryID]*iso.Matcher
	streams  map[StreamID]*graph.Graph
	nextQ    QueryID
	nextS    StreamID
	sealed   bool
	stats    Stats
}

// NewShardedMonitor creates shards filter instances (0 uses GOMAXPROCS).
func NewShardedMonitor(factory FilterFactory, shards int) *ShardedMonitor {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	m := &ShardedMonitor{
		shardOf:  make(map[StreamID]int),
		queries:  make(map[QueryID]*graph.Graph),
		matchers: make(map[QueryID]*iso.Matcher),
		streams:  make(map[StreamID]*graph.Graph),
	}
	for i := 0; i < shards; i++ {
		m.filters = append(m.filters, factory())
	}
	return m
}

// Shards reports the number of filter instances.
func (m *ShardedMonitor) Shards() int { return len(m.filters) }

// AddQuery registers a pattern with every shard. As with Monitor, queries
// after the first stream require the filters to be DynamicFilters.
func (m *ShardedMonitor) AddQuery(q *graph.Graph) (QueryID, error) {
	if m.sealed {
		if _, ok := m.filters[0].(DynamicFilter); !ok {
			return 0, fmt.Errorf("core: filter %s requires all queries before streams", m.filters[0].Name())
		}
	}
	id := m.nextQ
	m.nextQ++
	for _, f := range m.filters {
		if err := f.AddQuery(id, q); err != nil {
			return 0, err
		}
	}
	m.queries[id] = q.Clone()
	m.matchers[id] = iso.NewMatcher(m.queries[id])
	return id, nil
}

// RemoveQuery deregisters a pattern from every shard (DynamicFilter only).
func (m *ShardedMonitor) RemoveQuery(id QueryID) error {
	if _, ok := m.queries[id]; !ok {
		return fmt.Errorf("core: unknown query %d", id)
	}
	for _, f := range m.filters {
		df, ok := f.(DynamicFilter)
		if !ok {
			return fmt.Errorf("core: filter %s does not support query removal", f.Name())
		}
		if err := df.RemoveQuery(id); err != nil {
			return err
		}
	}
	delete(m.queries, id)
	delete(m.matchers, id)
	return nil
}

// AddStream registers a stream on the least-loaded shard.
func (m *ShardedMonitor) AddStream(g0 *graph.Graph) (StreamID, error) {
	m.sealed = true
	id := m.nextS
	m.nextS++
	shard := int(id) % len(m.filters)
	if err := m.filters[shard].AddStream(id, g0); err != nil {
		return 0, err
	}
	m.shardOf[id] = shard
	m.streams[id] = g0.Clone()
	return id, nil
}

// StepAll advances one global timestamp, applying each stream's change set
// on its shard; shards run concurrently.
func (m *ShardedMonitor) StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error) {
	perShard := make([]map[StreamID]graph.ChangeSet, len(m.filters))
	for id, cs := range changes {
		shard, ok := m.shardOf[id]
		if !ok {
			return nil, fmt.Errorf("core: unknown stream %d", id)
		}
		if perShard[shard] == nil {
			perShard[shard] = make(map[StreamID]graph.ChangeSet)
		}
		perShard[shard][id] = cs.Normalize()
	}

	start := time.Now()
	errs := make([]error, len(m.filters))
	var wg sync.WaitGroup
	for i, f := range m.filters {
		if perShard[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int, f Filter) {
			defer wg.Done()
			for id, cs := range perShard[i] {
				if err := f.Apply(id, cs); err != nil {
					errs[i] = fmt.Errorf("core: shard %d stream %d: %w", i, id, err)
					return
				}
			}
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cands, err := m.collect()
	m.stats.FilterTime += time.Since(start)
	if err != nil {
		return nil, err
	}

	// Maintain the canonical graphs (outside the timed section, matching
	// Monitor's accounting of filter time only).
	for id, cs := range changes {
		if err := cs.Normalize().Apply(m.streams[id]); err != nil {
			return nil, fmt.Errorf("core: canonical graph of stream %d: %w", id, err)
		}
	}
	m.stats.Timestamps++
	m.stats.CandidatePairs += int64(len(cands))
	m.stats.TotalPairs += int64(len(m.streams) * len(m.queries))
	return cands, nil
}

// collect merges the shards' candidate sets concurrently.
func (m *ShardedMonitor) collect() ([]Pair, error) {
	parts := make([][]Pair, len(m.filters))
	var wg sync.WaitGroup
	for i, f := range m.filters {
		wg.Add(1)
		go func(i int, f Filter) {
			defer wg.Done()
			parts[i] = f.Candidates()
		}(i, f)
	}
	wg.Wait()
	var out []Pair
	for _, p := range parts {
		out = append(out, p...)
	}
	return SortPairs(out), nil
}

// Candidates returns the current merged candidate set.
func (m *ShardedMonitor) Candidates() []Pair {
	out, _ := m.collect()
	return out
}

// ExactPairs computes ground truth over the canonical graphs.
func (m *ShardedMonitor) ExactPairs() []Pair {
	var out []Pair
	for sid, g := range m.streams {
		for qid, matcher := range m.matchers {
			if matcher.Contains(g) {
				out = append(out, Pair{Stream: sid, Query: qid})
			}
		}
	}
	return SortPairs(out)
}

// VerifyNoFalseNegatives returns any exact pairs missing from the merged
// candidate set.
func (m *ShardedMonitor) VerifyNoFalseNegatives() []Pair {
	cands := make(map[Pair]bool)
	for _, p := range m.Candidates() {
		cands[p] = true
	}
	var missed []Pair
	for _, p := range m.ExactPairs() {
		if !cands[p] {
			missed = append(missed, p)
		}
	}
	return missed
}

// Stats returns accumulated statistics.
func (m *ShardedMonitor) Stats() Stats { return m.stats }
