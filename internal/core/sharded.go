package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"nntstream/internal/graph"
	"nntstream/internal/iso"
	"nntstream/internal/obs"
)

// FilterFactory builds one filter instance per shard.
type FilterFactory func() Filter

// ShardedMonitor runs continuous subgraph search across multiple CPU cores:
// streams are partitioned over independent filter instances (filters keep
// per-stream state, so sharding by stream is exact — every shard sees all
// queries and produces the candidates of its own streams), and one global
// timestamp fans the per-stream change sets out to the shards in parallel.
//
// The candidate set of a ShardedMonitor is identical to a single Monitor
// over the same filter type; only wall-clock time differs.
//
// Unlike Monitor, ShardedMonitor is safe for concurrent use: mutating calls
// (AddQuery, AddStream, RemoveQuery, StepAll) serialize behind a write lock,
// while the read paths (Candidates, Stats, ExactPairs, CollectMetrics) share
// a read lock and may run concurrently with one another. Filters must honor
// the Filter contract that Candidates does not mutate observable state (or
// must synchronize internally), because concurrent readers fan out to the
// same filter instances.
type ShardedMonitor struct {
	mu       sync.RWMutex
	filters  []Filter
	workers  int   // per-shard evaluation workers handed to ParallelFilters
	loads    []int // streams placed per shard, for least-loaded placement
	shardOf  map[StreamID]int
	queries  map[QueryID]*graph.Graph
	matchers map[QueryID]*iso.Matcher
	streams  map[StreamID]*graph.Graph
	nextQ    QueryID
	nextS    StreamID
	sealed   bool
	stats    Stats
	metrics  *EngineMetrics
}

// ShardedOptions configures a ShardedMonitor beyond the defaults.
type ShardedOptions struct {
	// Shards is the filter instance count; 0 uses GOMAXPROCS.
	Shards int
	// Workers bounds the per-shard evaluation pool handed to filters that
	// implement ParallelFilter. 0 sizes it to max(1, GOMAXPROCS/shards),
	// so the shard fan-out times the in-shard fan-out tracks the machine's
	// parallelism instead of oversubscribing it; 1 forces the sequential
	// in-shard path. Filters that are not ParallelFilters ignore it.
	Workers int
}

// NewShardedMonitor creates shards filter instances (0 uses GOMAXPROCS)
// with default per-shard evaluation workers.
func NewShardedMonitor(factory FilterFactory, shards int) *ShardedMonitor {
	return NewShardedMonitorWith(factory, ShardedOptions{Shards: shards})
}

// NewShardedMonitorWith creates a sharded engine with explicit options.
func NewShardedMonitorWith(factory FilterFactory, opts ShardedOptions) *ShardedMonitor {
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / shards
		if workers < 1 {
			workers = 1
		}
	}
	m := &ShardedMonitor{
		workers:  workers,
		loads:    make([]int, shards),
		shardOf:  make(map[StreamID]int),
		queries:  make(map[QueryID]*graph.Graph),
		matchers: make(map[QueryID]*iso.Matcher),
		streams:  make(map[StreamID]*graph.Graph),
	}
	for i := 0; i < shards; i++ {
		f := factory()
		if pf, ok := f.(ParallelFilter); ok {
			pf.SetWorkers(workers)
		}
		m.filters = append(m.filters, f)
	}
	return m
}

// Workers reports the per-shard evaluation worker bound.
func (m *ShardedMonitor) Workers() int { return m.workers }

// Shards reports the number of filter instances.
func (m *ShardedMonitor) Shards() int { return len(m.filters) }

// QueryCount and StreamCount report workload sizes.
func (m *ShardedMonitor) QueryCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.queries)
}

func (m *ShardedMonitor) StreamCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.streams)
}

// SetMetrics attaches registry instruments; subsequent StepAll rounds record
// into them. A nil argument detaches.
func (m *ShardedMonitor) SetMetrics(em *EngineMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metrics = em
}

// AddQuery registers a pattern with every shard. As with Monitor, queries
// after the first stream require the filters to be DynamicFilters.
//
// Registration is all-or-nothing: when a shard rejects the query, the shards
// that already accepted it roll it back (via DynamicFilter.RemoveQuery when
// the filter supports removal), so no shard is left holding a query the
// others never saw.
func (m *ShardedMonitor) AddQuery(q *graph.Graph) (QueryID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		if _, ok := m.filters[0].(DynamicFilter); !ok {
			return 0, fmt.Errorf("core: filter %s: %w", m.filters[0].Name(), ErrSealed)
		}
	}
	id := m.nextQ
	if err := m.addQueryLocked(id, q); err != nil {
		return 0, err
	}
	return id, nil
}

// replayAddQuery registers a query under an explicit ID — the restore path
// used by snapshot loading and WAL replay. It skips the seal check: the log
// only ever contains operations that were accepted.
func (m *ShardedMonitor) replayAddQuery(id QueryID, q *graph.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.addQueryLocked(id, q)
}

// addQueryLocked registers a query on every shard all-or-nothing: when a
// shard rejects the query, the shards that already accepted it roll it back
// (via DynamicFilter.RemoveQuery when the filter supports removal), so no
// shard is left holding a query the others never saw. Callers hold m.mu.
func (m *ShardedMonitor) addQueryLocked(id QueryID, q *graph.Graph) error {
	if _, dup := m.queries[id]; dup {
		return fmt.Errorf("core: duplicate query id %d", id)
	}
	for k, f := range m.filters {
		if err := f.AddQuery(id, q); err != nil {
			for j := k - 1; j >= 0; j-- {
				df, ok := m.filters[j].(DynamicFilter)
				if !ok {
					// Non-dynamic filters cannot be rolled back; this can
					// only happen pre-seal, where the engine is still
					// unusable until a consistent AddQuery succeeds, and
					// identical instances almost always fail on shard 0
					// (before any shard accepted) anyway.
					break
				}
				if rerr := df.RemoveQuery(id); rerr != nil {
					return fmt.Errorf("core: shard %d rejected query (%v); rollback on shard %d failed: %w", k, err, j, rerr)
				}
			}
			return fmt.Errorf("core: shard %d: %w", k, err)
		}
	}
	m.queries[id] = q.Clone()
	m.matchers[id] = iso.NewMatcher(m.queries[id])
	if id >= m.nextQ {
		m.nextQ = id + 1
	}
	return nil
}

// RemoveQuery deregisters a pattern from every shard (DynamicFilter only).
func (m *ShardedMonitor) RemoveQuery(id QueryID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.queries[id]; !ok {
		return fmt.Errorf("core: %w %d", ErrUnknownQuery, id)
	}
	for _, f := range m.filters {
		df, ok := f.(DynamicFilter)
		if !ok {
			return fmt.Errorf("core: filter %s query removal: %w", f.Name(), ErrUnsupported)
		}
		if err := df.RemoveQuery(id); err != nil {
			return err
		}
	}
	delete(m.queries, id)
	delete(m.matchers, id)
	return nil
}

// AddStream registers a stream on the least-loaded shard (fewest streams,
// ties broken by lowest shard index, so placement is deterministic).
func (m *ShardedMonitor) AddStream(g0 *graph.Graph) (StreamID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextS
	if err := m.addStreamLocked(id, g0); err != nil {
		return 0, err
	}
	return id, nil
}

// replayAddStream registers a stream under an explicit ID — the restore path
// used by snapshot loading and WAL replay. Placement re-runs the same
// deterministic least-loaded rule, so a replayed engine reproduces the
// original shard assignment as long as operations arrive in log order.
func (m *ShardedMonitor) replayAddStream(id StreamID, g0 *graph.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.addStreamLocked(id, g0)
}

// addStreamLocked places a stream on the least-loaded shard (fewest streams,
// ties broken by lowest shard index, so placement is deterministic). Callers
// hold m.mu.
func (m *ShardedMonitor) addStreamLocked(id StreamID, g0 *graph.Graph) error {
	if _, dup := m.streams[id]; dup {
		return fmt.Errorf("core: duplicate stream id %d", id)
	}
	m.sealed = true
	shard := 0
	for i := 1; i < len(m.loads); i++ {
		if m.loads[i] < m.loads[shard] {
			shard = i
		}
	}
	if err := m.filters[shard].AddStream(id, g0); err != nil {
		return err
	}
	m.loads[shard]++
	m.shardOf[id] = shard
	m.streams[id] = g0.Clone()
	if id >= m.nextS {
		m.nextS = id + 1
	}
	return nil
}

// StepAll advances one global timestamp, applying each stream's change set
// on its shard; shards run concurrently.
//
// As with Monitor.StepAll, the step is atomic with respect to validation:
// every change set is applied to a clone of its canonical graph first, and
// any failure rejects the whole batch before a single shard sees an
// operation. Only validated batches fan out, so a mid-batch error can never
// leave some shards stepped and others not.
func (m *ShardedMonitor) StepAll(changes map[StreamID]graph.ChangeSet) ([]Pair, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	staged, norms, err := stageChanges(m.streams, changes)
	if err != nil {
		return nil, err
	}
	perShard := make([]map[StreamID]graph.ChangeSet, len(m.filters))
	for id, norm := range norms {
		shard := m.shardOf[id] // staging verified the stream exists
		if perShard[shard] == nil {
			perShard[shard] = make(map[StreamID]graph.ChangeSet)
		}
		perShard[shard][id] = norm
	}

	start := time.Now()
	if err := m.applyShards(perShard); err != nil {
		return nil, err
	}
	applyDur := time.Since(start)
	start = time.Now()
	cands := m.collect()
	collectDur := time.Since(start)
	m.stats.FilterTime += applyDur + collectDur

	// Swap in the staged post-state graphs as the new canonical graphs
	// (outside the timed section, matching Monitor's accounting of filter
	// time only).
	for id, g := range staged {
		m.streams[id] = g
	}
	m.stats.Timestamps++
	m.stats.CandidatePairs += int64(len(cands))
	m.stats.TotalPairs += int64(len(m.streams) * len(m.queries))
	m.metrics.observeStep(applyDur, collectDur, len(cands), m.stats, len(m.streams), len(m.queries))
	return cands, nil
}

// applyShards applies each shard's validated change sets on one goroutine
// per shard and joins them, returning the first shard error in shard order.
// Callers hold m.mu.
//
//nnt:nonblocking waits only for the shard appliers, which run the filters' compute-bound Apply paths and take no locks
func (m *ShardedMonitor) applyShards(perShard []map[StreamID]graph.ChangeSet) error {
	errs := make([]error, len(m.filters))
	var wg sync.WaitGroup
	for i, f := range m.filters {
		if perShard[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int, f Filter) {
			defer wg.Done()
			// Batch-capable filters fan the shard's whole timestamp out
			// over their own worker pool; others walk it stream by stream.
			if ba, ok := f.(BatchApplier); ok {
				if err := ba.ApplyAll(perShard[i]); err != nil {
					errs[i] = fmt.Errorf("core: shard %d: %w", i, err)
				}
				return
			}
			for id, cs := range perShard[i] {
				if err := f.Apply(id, cs); err != nil {
					errs[i] = fmt.Errorf("core: shard %d stream %d: %w", i, id, err)
					return
				}
			}
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collect merges the shards' candidate sets concurrently. Callers hold at
// least a read lock; the per-shard goroutines only invoke the filters'
// Candidates, which the Filter contract requires to be read-safe.
//
//nnt:nonblocking waits only for the shards' Candidates fan-out, which is compute-bound and lock-free by the Filter contract
func (m *ShardedMonitor) collect() []Pair {
	parts := make([][]Pair, len(m.filters))
	var wg sync.WaitGroup
	for i, f := range m.filters {
		wg.Add(1)
		go func(i int, f Filter) {
			defer wg.Done()
			parts[i] = f.Candidates()
		}(i, f)
	}
	wg.Wait()
	var out []Pair
	for _, p := range parts {
		out = append(out, p...)
	}
	return SortPairs(out)
}

// Candidates returns the current merged candidate set.
func (m *ShardedMonitor) Candidates() []Pair {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.collect()
}

// exactPairs computes ground truth over the canonical graphs; callers hold
// at least a read lock.
func (m *ShardedMonitor) exactPairs() []Pair {
	var out []Pair
	for sid, g := range m.streams {
		for qid, matcher := range m.matchers {
			if matcher.Contains(g) {
				out = append(out, Pair{Stream: sid, Query: qid})
			}
		}
	}
	return SortPairs(out)
}

// ExactPairs computes ground truth over the canonical graphs.
func (m *ShardedMonitor) ExactPairs() []Pair {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.exactPairs()
}

// VerifyNoFalseNegatives returns any exact pairs missing from the merged
// candidate set.
func (m *ShardedMonitor) VerifyNoFalseNegatives() []Pair {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cands := make(map[Pair]bool)
	for _, p := range m.collect() {
		cands[p] = true
	}
	var missed []Pair
	for _, p := range m.exactPairs() {
		if !cands[p] {
			missed = append(missed, p)
		}
	}
	return missed
}

// Stats returns accumulated statistics.
func (m *ShardedMonitor) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// checkpointState exposes the logical state for checkpointing; the maps and
// graphs are shared, not copied — the durable engine excludes writers for
// the duration of serialization.
func (m *ShardedMonitor) checkpointState() engineState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return engineState{queries: m.queries, streams: m.streams, nextQ: m.nextQ, nextS: m.nextS}
}

// nextIDs reports the IDs the next AddQuery/AddStream would assign.
func (m *ShardedMonitor) nextIDs() (QueryID, StreamID) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nextQ, m.nextS
}

// setNextIDs raises the ID allocators (never lowers them), restoring
// top-of-range gaps a checkpoint recorded.
func (m *ShardedMonitor) setNextIDs(q QueryID, s StreamID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q > m.nextQ {
		m.nextQ = q
	}
	if s > m.nextS {
		m.nextS = s
	}
}

// CollectMetrics implements obs.Collector: the per-shard emissions of
// collector filters are forwarded (the obs.Gather caller sums duplicate
// names across shards), plus shard-level placement gauges.
func (m *ShardedMonitor) CollectMetrics(emit func(name string, value float64)) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	emit("nntstream_engine_shards", float64(len(m.filters)))
	emit("nntstream_engine_shard_workers", float64(m.workers))
	maxLoad := 0
	for _, l := range m.loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	emit("nntstream_engine_shard_streams_max", float64(maxLoad))
	for _, f := range m.filters {
		if c, ok := f.(obs.Collector); ok {
			c.CollectMetrics(emit)
		}
	}
}
